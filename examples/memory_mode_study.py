#!/usr/bin/env python
"""Characterize a new workload the way the paper characterizes its five.

Scenario: you have an application kernel and want to know, before porting
to a KNL-like hybrid-memory machine, whether HBM will pay off.  Describe
it as a profile, put it on the two-ceiling roofline, and sweep it through
the memory configurations and thread counts.

Run:  python examples/memory_mode_study.py
"""

from repro import (
    AccessPattern,
    ConfigName,
    ExperimentRunner,
    MemoryProfile,
    PerformanceModel,
    Phase,
    PlacementMix,
    Location,
    knl7210,
)
from repro.engine.roofline import RooflineModel
from repro.memory.dram import ddr4_archer
from repro.memory.mcdram import mcdram_archer
from repro.memory.modes import MCDRAMConfig, MemorySystem
from repro.util.units import GB


def build_profile() -> MemoryProfile:
    """A made-up stencil application: one streaming sweep plus a sparse
    halo-exchange-like random phase."""
    return MemoryProfile(
        workload="my-stencil",
        phases=(
            Phase(
                name="sweep",
                pattern=AccessPattern.SEQUENTIAL,
                traffic_bytes=200 * GB,
                flops=75e9 * 2,
                footprint_bytes=10 * GB,
            ),
            Phase(
                name="halo",
                pattern=AccessPattern.RANDOM,
                traffic_bytes=2 * GB,
                footprint_bytes=10 * GB,
                access_bytes=8,
            ),
        ),
    )


def main() -> None:
    machine = knl7210()
    profile = build_profile()

    # 1. Roofline screening: is HBM even able to help?
    roofline = RooflineModel(machine, ddr4_archer(), mcdram_archer())
    point = roofline.locate(profile)
    print(
        f"{point.name}: arithmetic intensity "
        f"{point.arithmetic_intensity:.3f} flops/byte"
    )
    print(
        f"  attainable: {point.attainable_gflops_dram:.0f} GF on DDR, "
        f"{point.attainable_gflops_hbm:.0f} GF on MCDRAM "
        f"(HBM bound: {point.hbm_speedup_bound:.2f}x)\n"
    )

    # 2. Full model: the three configurations across thread counts.
    flat = PerformanceModel(machine, MemorySystem(MCDRAMConfig.flat()))
    cache = PerformanceModel(machine, MemorySystem(MCDRAMConfig.cache()))
    combos = [
        ("DRAM", flat, PlacementMix.pure(Location.DRAM)),
        ("HBM", flat, PlacementMix.pure(Location.HBM)),
        ("Cache", cache, PlacementMix.pure(Location.DRAM_CACHED)),
    ]
    print(f"{'threads':>8}" + "".join(f"{name:>12}" for name, _, _ in combos))
    for threads in (64, 128, 192, 256):
        row = [f"{threads:>8}"]
        for _, model, mix in combos:
            run = model.run(profile, mix, threads)
            row.append(f"{run.time_s * 1e3:>10.1f}ms")
        print("".join(row))
    print("\n(lower is better; note where extra hardware threads stop paying)")


if __name__ == "__main__":
    main()
