#!/usr/bin/env python
"""Multi-node capacity planning from the Section IV-C guideline.

Given a 96 GB MiniFE problem and a cluster of KNL nodes, how many nodes
should the job use?  The paper: "decompose the problem so that each
compute node is assigned with a sub-problem that has a size close to the
HBM capacity."  The sweep makes the knee visible.

Run:  python examples/capacity_planning.py
"""

from repro.core.decomposition import hbm_knee, sweep_node_counts
from repro.util.ascii_plot import AsciiChart
from repro.workloads import MiniFE

TOTAL_GB = 96.0


def main() -> None:
    points = sweep_node_counts(
        MiniFE.from_matrix_gb, TOTAL_GB, [1, 2, 4, 6, 8, 12, 16, 24, 32]
    )
    print(f"decomposing a {TOTAL_GB:g} GB MiniFE problem:\n")
    print(
        f"{'nodes':>6} {'per-node':>10} {'best config':>12} "
        f"{'aggregate CG GFLOPS':>20} {'efficiency':>11}"
    )
    for p in points:
        aggregate = (
            "does not fit"
            if p.aggregate_metric is None
            else f"{p.aggregate_metric / 1e9:.1f}"
        )
        config = p.best_config.value if p.best_config else "-"
        print(
            f"{p.nodes:>6} {p.per_node_gb:>8.1f}GB {config:>12} "
            f"{aggregate:>20} {p.parallel_efficiency:>10.1%}"
        )

    knee = hbm_knee(points)
    assert knee is not None
    print(
        f"\nknee: from {knee.nodes} nodes the sub-problem "
        f"({knee.per_node_gb:.1f} GB) fits MCDRAM -> bind to HBM."
    )

    chart = AsciiChart(
        title="aggregate throughput vs node count",
        xlabel="nodes",
        ylabel="GF",
        height=12,
    )
    xs = [p.nodes for p in points if p.aggregate_metric is not None]
    ys = [
        p.aggregate_metric / 1e9
        for p in points
        if p.aggregate_metric is not None
    ]
    chart.add_series("aggregate", xs, ys)
    print()
    print(chart.render())


if __name__ == "__main__":
    main()
