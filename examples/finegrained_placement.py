#!/usr/bin/env python
"""Fine-grained per-structure placement with the memkind-style allocator.

The paper's future-work section proposes applying its conclusions "to
individual data structures".  This example places MiniFE's structures one
by one (matrix -> HBM, everything else where it helps) and compares
against the three coarse configurations.

Run:  python examples/finegrained_placement.py
"""

from repro import ConfigName, ExperimentRunner
from repro.engine.perfmodel import PerformanceModel
from repro.engine.placement import PlacementMix
from repro.memory.allocator import Kind
from repro.memory.modes import MCDRAMConfig
from repro.runtime.simos import SimulatedOS
from repro.workloads import MiniFE


def main() -> None:
    # A problem whose matrix (15.5 GB) fits HBM but whose total (matrix +
    # CG vectors) does not — exactly where structure-level placement pays.
    workload = MiniFE.from_matrix_gb(15.5)
    runner = ExperimentRunner()

    print(f"{workload.describe()}")
    print(
        f"  matrix {workload.matrix_bytes / 1e9:.1f} GB, "
        f"vectors {workload.vector_bytes / 1e9:.1f} GB\n"
    )

    print("coarse configurations (the paper's three):")
    for config in ConfigName.paper_trio():
        record = runner.run(workload, config, 64)
        value = "-" if record.metric is None else f"{record.metric / 1e6:.0f}"
        print(f"  {config.value:<12} {value:>8} CG MFLOPS")

    # Fine-grained: one memkind allocation per structure.
    sim_os = SimulatedOS(MCDRAMConfig.flat())
    with sim_os.allocation_scope():
        matrix = sim_os.malloc(
            "stiffness-matrix", workload.matrix_bytes, kind=Kind.HBW_PREFERRED
        )
        vectors = sim_os.malloc(
            "cg-vectors", workload.vector_bytes, kind=Kind.HBW_PREFERRED
        )
        print("\nfine-grained allocations (memkind):")
        for allocation in (matrix, vectors):
            placed = ", ".join(
                f"node {n}: {b / 1e9:.1f} GB"
                for n, b in sorted(allocation.split.items())
            )
            print(f"  {allocation.name:<18} {placed}")

        mixes = {
            "spmv-stream": PlacementMix.from_allocation_split(matrix.split),
            "spmv-gather": PlacementMix.from_allocation_split(vectors.split),
            "vector-ops": PlacementMix.from_allocation_split(vectors.split),
        }
        model = PerformanceModel(runner.machine, sim_os.memory)
        run = model.run(workload.profile(), mixes, 64)
        print(
            f"\n  fine-grained            {workload.metric(run) / 1e6:.0f} "
            f"CG MFLOPS  "
            f"({sim_os.allocator.hbm_fraction():.0%} of bytes in HBM)"
        )


if __name__ == "__main__":
    main()
