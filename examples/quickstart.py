#!/usr/bin/env python
"""Quickstart: run one application under the paper's three memory
configurations and ask the advisor what to use.

Run:  python examples/quickstart.py
"""

from repro import ConfigName, ExperimentRunner, PlacementAdvisor
from repro.memory.modes import MCDRAMConfig
from repro.runtime.simos import SimulatedOS
from repro.workloads import MiniFE


def main() -> None:
    # The modelled node: the paper's Archer KNL 7210 testbed.
    print(SimulatedOS(MCDRAMConfig.flat()).describe())
    print()

    # A MiniFE problem whose 7.2 GB matrix fits the 16 GB MCDRAM.
    workload = MiniFE.from_matrix_gb(7.2)
    print(workload.describe())
    print()

    # 1. Functional face: actually solve a small instance and verify.
    small = MiniFE(nx=16)
    result = small.execute()
    print(
        f"functional check (nx=16): converged in "
        f"{result.details['iterations']} CG iterations, "
        f"residual {result.details['residual']:.2e}, "
        f"verified={result.verified}"
    )
    print()

    # 2. Profiled face: the paper's experiment under DRAM / HBM / Cache.
    runner = ExperimentRunner()
    print("simulated testbed performance, 64 OpenMP threads:")
    baseline = None
    for config in ConfigName.paper_trio():
        record = runner.run(workload, config, num_threads=64)
        assert record.metric is not None
        if baseline is None:
            baseline = record.metric
        print(
            f"  {config.value:<12} {record.metric / 1e6:10.0f} CG MFLOPS "
            f"({record.metric / baseline:.2f}x vs DRAM)"
        )
    print()

    # 3. The Section-VI advisor.
    recommendation = PlacementAdvisor(runner).recommend(workload, 64)
    print(recommendation.describe())


if __name__ == "__main__":
    main()
