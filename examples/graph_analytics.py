#!/usr/bin/env python
"""Graph analytics scenario: run Graph500 end to end at laptop scale,
then size the testbed run and pick a memory configuration.

This is the data-analytics workload class the paper's introduction
motivates (random access, poor locality) — the class that should *not*
be moved to HBM.

Run:  python examples/graph_analytics.py
"""

import numpy as np

from repro import ConfigName, ExperimentRunner, PlacementAdvisor
from repro.workloads import Graph500
from repro.workloads.graph500 import bfs_csr, build_adjacency, kronecker_edges
from repro.workloads.graph500.validate import validate_bfs


def functional_demo() -> None:
    """Generate a scale-12 Kronecker graph and BFS it, like the benchmark."""
    workload = Graph500(scale=12, n_roots=8)
    print(
        f"generating Kronecker graph: scale {workload.scale}, "
        f"{workload.n_vertices} vertices, {workload.n_edges} edges"
    )
    edges = kronecker_edges(workload.params_kron, seed=1)
    graph = build_adjacency(edges, workload.n_vertices)
    degrees = graph.row_degrees()
    print(
        f"CSR built: {graph.nnz} directed entries, "
        f"max degree {degrees.max()} (mean {degrees.mean():.1f} — the "
        f"heavy tail is what defeats the prefetchers)"
    )
    roots = np.flatnonzero(degrees > 0)[: workload.n_roots]
    traversed = 0
    for root in roots:
        result = bfs_csr(graph, int(root))
        ok, errors = validate_bfs(graph, result)
        assert ok, errors
        traversed += result.edges_traversed
    print(
        f"BFS from {len(roots)} roots: {traversed} edges scanned, "
        f"all parent trees validated\n"
    )


def placement_study() -> None:
    """Size the paper's runs and show why DRAM wins for this class."""
    runner = ExperimentRunner()
    print("testbed study (simulated), TEPS by configuration:")
    print(f"{'graph':>10} {'DRAM':>12} {'HBM':>12} {'Cache':>12}")
    for gb in (2.2, 8.8, 35.0):
        workload = Graph500.from_graph_gb(gb)
        cells = []
        for config in ConfigName.paper_trio():
            record = runner.run(workload, config, 128)
            cells.append(
                "-" if record.metric is None else f"{record.metric:.3g}"
            )
        print(f"{gb:>8.1f}GB {cells[0]:>12} {cells[1]:>12} {cells[2]:>12}")
    print()
    recommendation = PlacementAdvisor(runner).recommend(
        Graph500.from_graph_gb(35.0), 128
    )
    print(recommendation.describe())


if __name__ == "__main__":
    functional_demo()
    placement_study()
