#!/usr/bin/env python
"""Energy study: what does each memory configuration cost in joules?

The paper motivates high-bandwidth memory partly through data-movement
cost.  This example prices simulated runs with the energy extension and
shows the two regimes:

* bandwidth-bound (MiniFE): HBM wins time *and* energy — cheaper bytes
  and less static burn;
* latency-bound (GUPS): DRAM wins total energy even though HBM moves
  bytes for a third of the picojoules, because the run takes longer and
  static power dominates.

Run:  python examples/energy_study.py
"""

from repro import ConfigName, ExperimentRunner
from repro.core.report import energy_comparison
from repro.engine.energy import EnergyModel, EnergyParameters
from repro.workloads import GUPS, MiniFE


def main() -> None:
    runner = ExperimentRunner()

    for workload in (MiniFE.from_matrix_gb(7.2), GUPS.from_table_gb(8.0)):
        print(energy_comparison(workload, runner=runner).render())
        print()

    # Where does the energy go?  Break one run down.
    workload = MiniFE.from_matrix_gb(7.2)
    record = runner.run(workload, ConfigName.HBM, 64)
    assert record.run_result is not None
    estimate = EnergyModel().estimate(workload.profile(), record.run_result)
    total = estimate.total_j
    print("MiniFE on HBM — energy breakdown:")
    print(f"  memory traffic  {estimate.dynamic_memory_j:8.1f} J "
          f"({estimate.dynamic_memory_j / total:5.1%})")
    print(f"  compute         {estimate.dynamic_compute_j:8.1f} J "
          f"({estimate.dynamic_compute_j / total:5.1%})")
    print(f"  static          {estimate.static_j:8.1f} J "
          f"({estimate.static_j / total:5.1%})")
    print(f"  total           {total:8.1f} J over {record.run_result.time_s:.2f} s")
    print()
    params = EnergyParameters()
    print(
        f"(coefficients: DDR {params.dram_pj_per_byte:.0f} pJ/B, MCDRAM "
        f"{params.hbm_pj_per_byte:.0f} pJ/B, {params.flop_pj:.0f} pJ/flop, "
        f"{params.static_watts:.0f} W static — see docs/MODEL.md §7)"
    )


if __name__ == "__main__":
    main()
