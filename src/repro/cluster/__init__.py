"""Multi-node cluster substrate.

The paper's testbed is a 12-node Cray cluster on the Aries interconnect
(Section III-A); all evaluated experiments are single-node, but the
Section IV-C discussion reasons about multi-node decompositions.  This
subpackage completes that analysis:

* :mod:`repro.cluster.interconnect` — an alpha-beta Aries model with the
  collectives the workloads need (halo exchange, allreduce, alltoall),
* :mod:`repro.cluster.multinode` — combine per-node simulated compute
  with communication time to size real multi-node runs.
"""

from repro.cluster.interconnect import AriesInterconnect
from repro.cluster.multinode import (
    CollectiveOp,
    CommunicationProfile,
    MultiNodeModel,
    MultiNodeResult,
    scaling_efficiency,
)

__all__ = [
    "AriesInterconnect",
    "CollectiveOp",
    "CommunicationProfile",
    "MultiNodeModel",
    "MultiNodeResult",
    "scaling_efficiency",
]
