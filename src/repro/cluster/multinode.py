"""Multi-node run composition: per-node compute + interconnect time.

Turns the paper's Section IV-C reasoning into numbers: a problem is
decomposed over N nodes, each node's sub-problem runs under its best (or
a chosen) memory configuration via the single-node engine, and the
communication the decomposition implies is priced on the Aries model.
"""

from __future__ import annotations

import enum
import math
from collections.abc import Callable
from dataclasses import dataclass

from repro.cluster.interconnect import AriesInterconnect
from repro.core.advisor import PlacementAdvisor
from repro.core.configs import ConfigName, make_config
from repro.core.runner import ExperimentRunner
from repro.util.validation import check_positive
from repro.workloads.base import Workload
from repro.workloads.graph500.workload import Graph500
from repro.workloads.minife.workload import MiniFE


class CollectiveOp(enum.Enum):
    """Communication primitives a workload step issues."""

    HALO = "halo"
    ALLREDUCE = "allreduce"
    ALLTOALL = "alltoall"


@dataclass(frozen=True)
class CommunicationStep:
    """One collective, repeated ``count`` times over the run."""

    op: CollectiveOp
    nbytes: float
    count: float

    def time_s(self, network: AriesInterconnect, nodes: int) -> float:
        if self.op is CollectiveOp.HALO:
            single = network.halo_exchange_s(self.nbytes)
        elif self.op is CollectiveOp.ALLREDUCE:
            single = network.allreduce_s(self.nbytes, nodes)
        else:
            single = network.alltoall_s(self.nbytes, nodes)
        return single * self.count


@dataclass(frozen=True)
class CommunicationProfile:
    """All communication of one decomposed run on one node."""

    steps: tuple[CommunicationStep, ...]

    def time_s(self, network: AriesInterconnect, nodes: int) -> float:
        return sum(step.time_s(network, nodes) for step in self.steps)


def minife_communication(workload: MiniFE, nodes: int) -> CommunicationProfile:
    """MiniFE's CG communication: one halo exchange and two allreduces
    per iteration (3-D block decomposition)."""
    check_positive("nodes", nodes)
    if nodes == 1:
        return CommunicationProfile(())
    # Sub-domain face: (n_local)^(2/3) nodesworth of doubles.
    local_rows = workload.n_rows / nodes
    face_bytes = 8.0 * local_rows ** (2.0 / 3.0)
    iters = float(workload.cg_iterations)
    return CommunicationProfile(
        (
            CommunicationStep(CollectiveOp.HALO, face_bytes, iters),
            CommunicationStep(CollectiveOp.ALLREDUCE, 8.0, 2.0 * iters),
        )
    )


def graph500_communication(
    workload: Graph500, nodes: int
) -> CommunicationProfile:
    """Graph500's BFS communication: an alltoall of remote frontier edges
    per level (1-D vertex partition, ~d levels on a Kronecker graph)."""
    check_positive("nodes", nodes)
    if nodes == 1:
        return CommunicationProfile(())
    levels = max(1.0, math.log2(workload.n_vertices) / 2.0)
    remote_fraction = 1.0 - 1.0 / nodes
    edge_bytes = 16.0  # (target vertex, source vertex)
    bytes_per_level = (
        workload.n_edges * remote_fraction * edge_bytes / nodes / levels
    )
    return CommunicationProfile(
        (CommunicationStep(CollectiveOp.ALLTOALL, bytes_per_level, levels),)
    )


#: Workload type -> communication builder.
COMMUNICATION_MODELS: dict[type, Callable[[Workload, int], CommunicationProfile]] = {
    MiniFE: minife_communication,  # type: ignore[dict-item]
    Graph500: graph500_communication,  # type: ignore[dict-item]
}


def scaling_efficiency(throughput_by_n: "dict[int, float]") -> dict[int, float]:
    """Parallel efficiency of a throughput scaling curve.

    For each point N, ``efficiency = (T_N / T_base) / (N / base)`` where
    *base* is the smallest N in the curve — 1.0 is perfect linear
    scaling, above 1.0 is super-linear.  The same notion as
    :attr:`MultiNodeResult.parallel_efficiency`, generalized to any
    replicated-resource curve; the sharded serve benchmark
    (:mod:`repro.serve.loadgen`) applies it to replica counts.
    """
    if not throughput_by_n:
        return {}
    base_n = min(throughput_by_n)
    base = throughput_by_n[base_n]
    if base <= 0 or base_n <= 0:
        return {n: 0.0 for n in throughput_by_n}
    return {
        n: (value / base) / (n / base_n)
        for n, value in sorted(throughput_by_n.items())
    }


@dataclass(frozen=True)
class MultiNodeResult:
    """Composition of one decomposed run."""

    nodes: int
    per_node_gb: float
    config: ConfigName
    compute_s: float
    communication_s: float
    per_node_metric: float
    aggregate_metric: float

    @property
    def total_s(self) -> float:
        return self.compute_s + self.communication_s

    @property
    def parallel_efficiency(self) -> float:
        return self.compute_s / self.total_s if self.total_s else 1.0


class MultiNodeModel:
    """Compose single-node simulation with interconnect time."""

    def __init__(
        self,
        runner: ExperimentRunner | None = None,
        network: AriesInterconnect | None = None,
    ) -> None:
        self.runner = runner if runner is not None else ExperimentRunner()
        self.network = network if network is not None else AriesInterconnect()

    def run(
        self,
        factory: Callable[[float], Workload],
        total_gb: float,
        nodes: int,
        *,
        config: ConfigName | None = None,
        num_threads: int = 64,
    ) -> MultiNodeResult:
        """Decompose ``total_gb`` over ``nodes`` and compose the run.

        ``config=None`` lets the advisor pick the best per-node
        configuration.  Raises :class:`RuntimeError` when the sub-problem
        fits nothing.
        """
        check_positive("total_gb", total_gb)
        check_positive("nodes", nodes)
        per_node_gb = total_gb / nodes
        workload = factory(per_node_gb)
        if config is None:
            recommendation = PlacementAdvisor(self.runner).recommend(
                workload, num_threads
            )
            record = next(
                r
                for r in recommendation.records
                if r.config is recommendation.best
            )
        else:
            record = self.runner.run(workload, make_config(config), num_threads)
            if not record.feasible:
                raise RuntimeError(
                    f"{config.value} infeasible for {per_node_gb:.1f} GB "
                    f"sub-problem: {record.infeasible_reason}"
                )
        assert record.metric is not None and record.run_result is not None
        compute_s = record.run_result.time_s
        builder = None
        for workload_type, candidate in COMMUNICATION_MODELS.items():
            if isinstance(workload, workload_type):
                builder = candidate
                break
        comm_s = (
            builder(workload, nodes).time_s(self.network, nodes)
            if builder is not None
            else 0.0
        )
        total_s = compute_s + comm_s
        slowdown = compute_s / total_s if total_s else 1.0
        return MultiNodeResult(
            nodes=nodes,
            per_node_gb=per_node_gb,
            config=record.config,
            compute_s=compute_s,
            communication_s=comm_s,
            per_node_metric=record.metric * slowdown,
            aggregate_metric=nodes * record.metric * slowdown,
        )
