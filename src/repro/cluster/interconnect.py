"""Cray Aries interconnect model (alpha-beta with collectives).

Parameters follow published Aries measurements: ~1.3 µs MPI latency and
~10 GB/s injection bandwidth per node; the dragonfly topology keeps hop
counts low enough that a flat alpha is adequate at the 2-32 node scales
the decomposition analysis covers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.util.validation import check_positive


@dataclass(frozen=True)
class AriesInterconnect:
    """Alpha-beta network model.

    alpha_s:
        Per-message latency (seconds).
    beta_bytes_per_s:
        Per-node injection bandwidth.
    """

    alpha_s: float = 1.3e-6
    beta_bytes_per_s: float = 10e9

    def __post_init__(self) -> None:
        check_positive("alpha_s", self.alpha_s)
        check_positive("beta_bytes_per_s", self.beta_bytes_per_s)

    # -- primitives -----------------------------------------------------------
    def point_to_point_s(self, nbytes: float) -> float:
        """One message of ``nbytes``."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        return self.alpha_s + nbytes / self.beta_bytes_per_s

    # -- collectives ------------------------------------------------------------
    def halo_exchange_s(self, nbytes_per_face: float, faces: int = 6) -> float:
        """Nearest-neighbour halo exchange (3-D decomposition default).

        Opposite faces overlap pairwise; three sequential phases of
        concurrent pairwise exchanges.
        """
        check_positive("faces", faces)
        phases = math.ceil(faces / 2)
        return phases * self.point_to_point_s(nbytes_per_face)

    def allreduce_s(self, nbytes: float, nodes: int) -> float:
        """Recursive-doubling allreduce."""
        check_positive("nodes", nodes)
        if nodes == 1:
            return 0.0
        rounds = math.ceil(math.log2(nodes))
        return rounds * self.point_to_point_s(nbytes)

    def alltoall_s(self, nbytes_per_node: float, nodes: int) -> float:
        """Pairwise-exchange alltoall of ``nbytes_per_node`` to each peer."""
        check_positive("nodes", nodes)
        if nodes == 1:
            return 0.0
        return (nodes - 1) * self.point_to_point_s(
            nbytes_per_node / max(1, nodes - 1)
        )
