"""Fig. 4: application performance vs problem size (five panels).

Top panels (sequential pattern): DGEMM (a) and MiniFE (b) — HBM best,
~2x / ~3x over DRAM; cache mode in between, degrading with size; HBM bar
missing beyond 16 GB.

Bottom panels (random pattern): GUPS (c), Graph500 (d), XSBench (e) —
DRAM best everywhere; the DRAM advantage grows with problem size
(Graph500 reaches ~1.3x over cache mode on the largest graphs).
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

from repro.core.executor import SweepExecutor
from repro.core.runner import ExperimentRunner
from repro.core.sweep import size_sweep
from repro.figures.common import Exhibit
from repro.workloads.base import Workload
from repro.workloads.dgemm import DGEMM
from repro.workloads.graph500 import Graph500
from repro.workloads.gups import GUPS
from repro.workloads.minife import MiniFE
from repro.workloads.xsbench import XSBench


@dataclass(frozen=True)
class Panel:
    """One Fig. 4 panel definition (the paper's x-axis values)."""

    panel_id: str
    factory: Callable[[float], Workload]
    sizes_gb: tuple[float, ...]
    x_label: str
    expectation: str


PANELS: dict[str, Panel] = {
    "fig4a": Panel(
        "fig4a",
        DGEMM.from_array_gb,
        (0.1, 0.4, 1.5, 6.0, 24.0),
        "Array Size (GB)",
        "HBM ~2x DRAM; HBM absent at 24 GB; cache between",
    ),
    "fig4b": Panel(
        "fig4b",
        MiniFE.from_matrix_gb,
        (0.1, 0.9, 1.8, 3.6, 7.2, 14.4, 28.8),
        "Matrix Size (GB)",
        "HBM ~3x DRAM; cache improvement drops to ~1.05x at 28.8 GB",
    ),
    "fig4c": Panel(
        "fig4c",
        GUPS.from_table_gb,
        (1.0, 2.0, 4.0, 8.0, 16.0, 32.0),
        "Table Size (GB)",
        "narrow band ~1.06-1.1e-2 GUPS; DRAM marginally best",
    ),
    "fig4d": Panel(
        "fig4d",
        Graph500.from_graph_gb,
        (1.1, 2.2, 4.4, 8.8, 17.5, 35.0),
        "Graph Size (GB)",
        "DRAM best; ~1.3x over cache mode at the largest graphs",
    ),
    "fig4e": Panel(
        "fig4e",
        XSBench.from_problem_gb,
        (5.6, 11.3, 22.5, 45.0, 90.0),
        "Problem Size (GB)",
        "DRAM best, ~2.5-3e6 lookups/s, declining with size",
    ),
}


def _generate(
    panel: Panel,
    runner: ExperimentRunner | SweepExecutor | None,
    num_threads: int,
) -> Exhibit:
    runner = runner if runner is not None else ExperimentRunner()
    sample = panel.factory(panel.sizes_gb[0])
    results = size_sweep(
        runner,
        panel.factory,
        panel.sizes_gb,
        num_threads=num_threads,
        title=(
            f"Fig. 4{panel.panel_id[-1]}: {sample.spec.name} "
            f"({sample.spec.metric_name}) vs problem size, {num_threads} threads"
        ),
        x_label=panel.x_label,
    )
    data = {c.value: list(results.series(c).ys) for c in results.configs}
    data["sizes_gb"] = list(panel.sizes_gb)
    hbm_vs_dram = results.improvement_series(
        results.configs[1], results.configs[0]
    )
    cache_vs_dram = results.improvement_series(
        results.configs[2], results.configs[0]
    )
    data["hbm_improvement"] = list(hbm_vs_dram.ys)
    data["cache_improvement"] = list(cache_vs_dram.ys)
    text = results.render()
    text += "\n\nImprovement vs DRAM: HBM " + ", ".join(
        "-" if v is None else f"{v:.2f}x" for v in hbm_vs_dram.ys
    )
    text += "\n                   Cache " + ", ".join(
        "-" if v is None else f"{v:.2f}x" for v in cache_vs_dram.ys
    )
    return Exhibit(
        exhibit_id=panel.panel_id,
        title=results.title,
        text=text,
        data=data,
        paper_expectation=panel.expectation,
    )


def generate_a(runner: ExperimentRunner | SweepExecutor | None = None, num_threads: int = 64) -> Exhibit:
    return _generate(PANELS["fig4a"], runner, num_threads)


def generate_b(runner: ExperimentRunner | SweepExecutor | None = None, num_threads: int = 64) -> Exhibit:
    return _generate(PANELS["fig4b"], runner, num_threads)


def generate_c(runner: ExperimentRunner | SweepExecutor | None = None, num_threads: int = 64) -> Exhibit:
    return _generate(PANELS["fig4c"], runner, num_threads)


def generate_d(runner: ExperimentRunner | SweepExecutor | None = None, num_threads: int = 64) -> Exhibit:
    return _generate(PANELS["fig4d"], runner, num_threads)


def generate_e(runner: ExperimentRunner | SweepExecutor | None = None, num_threads: int = 64) -> Exhibit:
    return _generate(PANELS["fig4e"], runner, num_threads)
