"""Fig. 2: STREAM triad peak bandwidth under the three configurations.

Paper: DRAM plateaus at 77 GB/s; HBM at 330 GB/s (series stops at the
16 GB capacity); cache mode peaks at 260 GB/s around 8 GB, drops to
125 GB/s at 11.4 GB, and falls below DRAM beyond ~24 GB.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.executor import SweepExecutor
from repro.core.runner import ExperimentRunner
from repro.core.sweep import size_sweep
from repro.figures.common import Exhibit
from repro.workloads.stream import StreamBenchmark

DEFAULT_SIZES_GB: tuple[float, ...] = (
    2, 4, 6, 8, 10, 11.4, 12, 14, 16, 18, 20, 22.8, 24, 28, 32, 36, 40
)


def generate(
    runner: ExperimentRunner | SweepExecutor | None = None,
    sizes_gb: Sequence[float] | None = None,
    num_threads: int = 64,
) -> Exhibit:
    runner = runner if runner is not None else ExperimentRunner()
    sizes = tuple(sizes_gb) if sizes_gb is not None else DEFAULT_SIZES_GB
    results = size_sweep(
        runner,
        lambda gb: StreamBenchmark(size_bytes=int(gb * 1e9)),
        sizes,
        num_threads=num_threads,
        title="Fig. 2: STREAM triad bandwidth",
        x_label="Size (GB)",
    )
    # Report in GB/s (the workload metric is bytes/s).
    data = {
        config.value: [
            None if v is None else v / 1e9
            for v in results.series(config).ys
        ]
        for config in results.configs
    }
    data["sizes_gb"] = list(sizes)
    table = results.to_table()
    # Re-render values as GB/s for readability.
    from repro.util.tables import TextTable

    gbs_table = TextTable(
        ["Size (GB)"] + [c.value for c in results.configs],
        title="Fig. 2: STREAM triad bandwidth (GB/s), 64 threads",
    )
    for x in results.xs:
        row: list[object] = [f"{x:g}"]
        for config in results.configs:
            v = results.value(x, config)
            row.append("-" if v is None else f"{v / 1e9:.1f}")
        gbs_table.add_row(row)
    chart = results.to_chart()
    return Exhibit(
        exhibit_id="fig2",
        title="STREAM peak bandwidth, three memory configurations",
        text=gbs_table.render() + "\n\n" + chart.render(),
        data=data,
        paper_expectation=(
            "DRAM ~77 GB/s flat; HBM ~330 GB/s up to 16 GB then absent; "
            "cache ~260 GB/s @8 GB, 125 GB/s @11.4 GB, below DRAM >= ~24 GB"
        ),
    )
