"""Fig. 5: STREAM bandwidth vs hardware threads per core (DRAM & HBM).

Paper: on HBM, two threads per core reach 1.27x the one-thread bandwidth
(~420 GB/s) at every size; three and four threads cluster with two.  On
DRAM all four thread counts overlap at ~77-80 GB/s.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.configs import ConfigName, make_config
from repro.core.executor import SweepCell, SweepExecutor, as_executor
from repro.core.runner import ExperimentRunner
from repro.figures.common import Exhibit
from repro.util.ascii_plot import AsciiChart
from repro.util.tables import TextTable
from repro.workloads.stream import StreamBenchmark

DEFAULT_SIZES_GB: tuple[float, ...] = (2.0, 4.0, 6.0, 8.0, 10.0)
HT_LEVELS: tuple[int, ...] = (1, 2, 3, 4)


def generate(
    runner: ExperimentRunner | SweepExecutor | None = None,
    sizes_gb: Sequence[float] | None = None,
) -> Exhibit:
    executor = as_executor(runner if runner is not None else ExperimentRunner())
    sizes = tuple(sizes_gb) if sizes_gb is not None else DEFAULT_SIZES_GB
    cores = executor.machine.num_cores
    keys: list[str] = []
    cells: list[SweepCell] = []
    for config_name in (ConfigName.DRAM, ConfigName.HBM):
        config = make_config(config_name)
        for ht in HT_LEVELS:
            keys.append(f"{config_name.value} (ht={ht})")
            for gb in sizes:
                cells.append(
                    SweepCell(
                        StreamBenchmark(size_bytes=int(gb * 1e9)),
                        config,
                        cores * ht,
                    )
                )
    records = executor.run_cells(cells)
    series: dict[str, list[float]] = {}
    for i, key in enumerate(keys):
        values = []
        for record in records[i * len(sizes):(i + 1) * len(sizes)]:
            assert record.metric is not None
            values.append(record.metric / 1e9)
        series[key] = values
    table = TextTable(
        ["Size (GB)"] + list(series),
        title="Fig. 5: STREAM triad bandwidth (GB/s) by hardware threads/core",
    )
    for i, gb in enumerate(sizes):
        table.add_row([f"{gb:g}"] + [f"{series[k][i]:.0f}" for k in series])
    chart = AsciiChart(title="Fig. 5 (GB/s)", xlabel="size (GB)")
    for key, values in series.items():
        chart.add_series(key, list(sizes), values)
    return Exhibit(
        exhibit_id="fig5",
        title="Hardware-thread impact on STREAM bandwidth",
        text=table.render() + "\n\n" + chart.render(),
        data={"sizes_gb": list(sizes), **series},
        paper_expectation=(
            "HBM ht=2 reaches 1.27x of ht=1 (~420 GB/s); ht=2..4 cluster; "
            "DRAM lines overlap at ~77-80 GB/s"
        ),
    )
