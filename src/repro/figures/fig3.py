"""Fig. 3: TinyMemBench dual random read latency vs block size.

Paper: three tiers — ~10 ns below 1 MB (tile L2), ~200 ns up to 64 MB,
growth beyond 128 MB (TLB misses + page walks); DRAM is 15-20 % faster
than HBM throughout, the gap peaking just above the tile L2 size.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.engine.perfmodel import PerformanceModel
from repro.engine.placement import Location
from repro.figures.common import Exhibit
from repro.machine.presets import knl7210
from repro.memory.modes import MCDRAMConfig, MemorySystem
from repro.util.ascii_plot import AsciiChart
from repro.util.tables import TextTable
from repro.util.units import KiB, MiB, GiB
from repro.workloads.tinymembench import TinyMemBench

DEFAULT_BLOCKS: tuple[int, ...] = (
    128 * KiB, 256 * KiB, 512 * KiB,
    1 * MiB, 2 * MiB, 4 * MiB, 8 * MiB, 16 * MiB, 32 * MiB, 64 * MiB,
    128 * MiB, 256 * MiB, 512 * MiB, 1 * GiB,
)


def _label(block: int) -> str:
    if block >= GiB:
        return f"{block // GiB}G"
    if block >= MiB:
        return f"{block // MiB}M"
    return f"{block // KiB}K"


def generate(blocks: Sequence[int] | None = None) -> Exhibit:
    blocks = tuple(blocks) if blocks is not None else DEFAULT_BLOCKS
    machine = knl7210()
    model = PerformanceModel(machine, MemorySystem(MCDRAMConfig.flat()))
    dram, hbm, gap = [], [], []
    for block in blocks:
        bench = TinyMemBench(block_bytes=block)
        d = bench.model_latency_ns(model, Location.DRAM)
        h = bench.model_latency_ns(model, Location.HBM)
        dram.append(d)
        hbm.append(h)
        gap.append((h / d - 1.0) * 100.0)
    table = TextTable(
        ["Block", "DRAM (ns)", "HBM (ns)", "Gap (%)"],
        title="Fig. 3: dual random read latency",
    )
    for block, d, h, g in zip(blocks, dram, hbm, gap):
        table.add_row([_label(block), f"{d:.1f}", f"{h:.1f}", f"{g:.1f}"])
    chart = AsciiChart(
        title="Fig. 3: dual random read latency (ns)",
        logx=True,
        xlabel="block size (bytes)",
    )
    chart.add_series("DRAM", [float(b) for b in blocks], dram)
    chart.add_series("HBM", [float(b) for b in blocks], hbm)
    return Exhibit(
        exhibit_id="fig3",
        title="Dual random read latency, DRAM vs HBM",
        text=table.render() + "\n\n" + chart.render(),
        data={
            "blocks": list(blocks),
            "dram_ns": dram,
            "hbm_ns": hbm,
            "gap_percent": gap,
        },
        paper_expectation=(
            "~10 ns tier below 1 MB; ~200 ns tier to 64 MB; growth beyond "
            "128 MB; DRAM 15-20% faster, gap peaking just above 1 MB"
        ),
    )
