"""Table II: NUMA distances in flat vs cache mode (`numactl --hardware`)."""

from __future__ import annotations

from repro.figures.common import Exhibit
from repro.memory.modes import MCDRAMConfig, MemorySystem


def generate() -> Exhibit:
    flat = MemorySystem(MCDRAMConfig.flat())
    cache = MemorySystem(MCDRAMConfig.cache())
    flat_text = flat.numactl_hardware()
    cache_text = cache.numactl_hardware()
    text = (
        "HBM in flat mode:\n"
        f"{flat_text}\n\n"
        "HBM in cache mode:\n"
        f"{cache_text}"
    )
    return Exhibit(
        exhibit_id="table2",
        title="NUMA domain distances (numactl --hardware)",
        text=text,
        data={
            "flat_distances": flat.topology.distances,
            "flat_capacities_gb": [
                n.capacity_bytes // (1 << 30) for n in flat.topology.nodes
            ],
            "cache_distances": cache.topology.distances,
            "cache_capacities_gb": [
                n.capacity_bytes // (1 << 30) for n in cache.topology.nodes
            ],
        },
        paper_expectation=(
            "flat: nodes 0 (96 GB) / 1 (16 GB), distances 10 local, 31 "
            "remote; cache: single node 0 (96 GB)"
        ),
    )
