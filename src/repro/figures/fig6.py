"""Fig. 6: application performance vs OpenMP thread count (four panels).

Paper: DGEMM and MiniFE gain ~1.7x on HBM from 64 to 192 threads (DGEMM's
256-thread run fails); Graph500 peaks at 128 threads (~1.5x) in every
configuration; XSBench keeps gaining to 256 threads (2.5x on HBM/cache,
1.5x on DRAM) and HBM overtakes DRAM once hyper-threading hides latency.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

from repro.core.executor import SweepExecutor
from repro.core.runner import ExperimentRunner
from repro.core.sweep import thread_sweep
from repro.figures.common import Exhibit
from repro.workloads.base import Workload
from repro.workloads.dgemm import DGEMM
from repro.workloads.graph500 import Graph500
from repro.workloads.minife import MiniFE
from repro.workloads.xsbench import XSBench

#: Fixed problem sizes for the thread sweeps.  The paper does not list
#: them; these are chosen to fit the flat HBM node (so all three
#: configurations have bars) while being large enough to stress memory.
FIG6_SIZES_GB = {"dgemm": 6.0, "minife": 7.2, "graph500": 8.8, "xsbench": 11.3}

DEFAULT_THREADS: tuple[int, ...] = (64, 128, 192, 256)
DGEMM_THREADS: tuple[int, ...] = (64, 128, 192, 256)  # 256 fails (footnote 1)


@dataclass(frozen=True)
class Panel:
    panel_id: str
    workload: Callable[[], Workload]
    threads: tuple[int, ...]
    expectation: str


PANELS: dict[str, Panel] = {
    "fig6a": Panel(
        "fig6a",
        lambda: DGEMM.from_array_gb(FIG6_SIZES_GB["dgemm"]),
        DGEMM_THREADS,
        "HBM 1.7x from 64 to 192 threads; 256-thread run fails; DRAM flat",
    ),
    "fig6b": Panel(
        "fig6b",
        lambda: MiniFE.from_matrix_gb(FIG6_SIZES_GB["minife"]),
        DEFAULT_THREADS,
        "HBM gains with threads (up to ~3.8x vs DRAM@64); DRAM flat",
    ),
    "fig6c": Panel(
        "fig6c",
        lambda: Graph500.from_graph_gb(FIG6_SIZES_GB["graph500"]),
        DEFAULT_THREADS,
        "~1.5x at 128 threads in all configurations, declining after; "
        "DRAM remains best",
    ),
    "fig6d": Panel(
        "fig6d",
        lambda: XSBench.from_problem_gb(FIG6_SIZES_GB["xsbench"]),
        DEFAULT_THREADS,
        "HBM/cache 2.5x at 256 threads, DRAM 1.5x; HBM overtakes DRAM "
        "with hyper-threading",
    ),
}


def _generate(
    panel: Panel, runner: ExperimentRunner | SweepExecutor | None
) -> Exhibit:
    runner = runner if runner is not None else ExperimentRunner()
    workload = panel.workload()
    results = thread_sweep(
        runner,
        workload,
        panel.threads,
        title=(
            f"Fig. 6{panel.panel_id[-1]}: {workload.spec.name} "
            f"({workload.spec.metric_name}) vs threads"
        ),
    )
    data = {c.value: list(results.series(c).ys) for c in results.configs}
    data["threads"] = list(panel.threads)
    # Speedup relative to the same configuration at 64 threads (the
    # paper's black lines).
    speedups = {}
    for config in results.configs:
        base = results.value(64.0, config)
        speedups[config.value] = [
            None if (v is None or base is None) else v / base
            for v in results.series(config).ys
        ]
    data["speedup_vs_64"] = speedups
    text = results.render()
    for name, line in speedups.items():
        text += f"\nSpeedup {name}: " + ", ".join(
            "-" if v is None else f"{v:.2f}x" for v in line
        )
    return Exhibit(
        exhibit_id=panel.panel_id,
        title=results.title,
        text=text,
        data=data,
        paper_expectation=panel.expectation,
    )


def generate_a(runner: ExperimentRunner | SweepExecutor | None = None) -> Exhibit:
    return _generate(PANELS["fig6a"], runner)


def generate_b(runner: ExperimentRunner | SweepExecutor | None = None) -> Exhibit:
    return _generate(PANELS["fig6b"], runner)


def generate_c(runner: ExperimentRunner | SweepExecutor | None = None) -> Exhibit:
    return _generate(PANELS["fig6c"], runner)


def generate_d(runner: ExperimentRunner | SweepExecutor | None = None) -> Exhibit:
    return _generate(PANELS["fig6d"], runner)
