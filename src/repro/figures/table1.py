"""Table I: list of evaluated applications."""

from __future__ import annotations

from repro.figures.common import Exhibit
from repro.workloads.registry import render_table1, table1_rows


def generate() -> Exhibit:
    return Exhibit(
        exhibit_id="table1",
        title="List of Evaluated Applications",
        text=render_table1(),
        data={"rows": table1_rows()},
        paper_expectation=(
            "DGEMM/MiniFE sequential (24/30 GB max); GUPS/Graph500/XSBench "
            "random (32/35/90 GB max)"
        ),
    )
