"""Fig. 1: layout of the KNL memories and the tile mesh (ASCII).

The paper's Fig. 1 diagrams the mesh of tiles (two cores sharing a 1 MB
L2 each), the on-package MCDRAM and the off-package DDR4 channels.  This
generator renders the *modelled* machine, so the exhibit doubles as a
check that the machine model carries the figure's structure.
"""

from __future__ import annotations

from repro.figures.common import Exhibit
from repro.machine.presets import knl7210
from repro.machine.topology import KNLMachine
from repro.memory.dram import ddr4_archer
from repro.memory.mcdram import mcdram_archer


def render_layout(machine: KNLMachine) -> str:
    mesh = machine.mesh
    mcdram = mcdram_archer()
    dram = ddr4_archer()
    cell = "[L2 1MB]"
    rows = []
    for r in range(mesh.rows):
        row_tiles = []
        for c in range(mesh.cols):
            index = r * mesh.cols + c
            row_tiles.append(cell if index < mesh.num_tiles else " " * len(cell))
        rows.append(" ".join(row_tiles))
    grid_width = len(rows[0])
    mc = (
        f"MCDRAM {mcdram.capacity_bytes >> 30} GB "
        f"({mcdram.channels} modules, on-package)"
    )
    dr = (
        f"DDR4 {dram.capacity_bytes >> 30} GB "
        f"({dram.channels} channels, off-package)"
    )
    lines = [
        mc.center(grid_width),
        "=" * grid_width,
        *rows,
        "=" * grid_width,
        dr.center(grid_width),
        "",
        f"{mesh.num_tiles} tiles x 2 cores = {machine.num_cores} cores @ "
        f"{machine.frequency_ghz:.1f} GHz, {machine.smt_per_core} HW "
        f"threads/core; each tile: 2 cores + shared 1 MB L2; "
        f"{mesh.cluster_mode.value} cluster mode",
    ]
    return "\n".join(lines)


def generate() -> Exhibit:
    machine = knl7210()
    return Exhibit(
        exhibit_id="fig1",
        title="Layout of the memories and the tile mesh on KNL",
        text=render_layout(machine),
        data={
            "tiles": machine.mesh.num_tiles,
            "cores": machine.num_cores,
            "l2_per_tile_mb": machine.tile_l2_bytes >> 20,
            "mcdram_gb": mcdram_archer().capacity_bytes >> 30,
            "ddr_gb": ddr4_archer().capacity_bytes >> 30,
            "ddr_channels": ddr4_archer().channels,
        },
        paper_expectation=(
            "tiles of 2 cores sharing 1 MB L2 on a mesh; MCDRAM 16 GB "
            "on-package; DDR 96 GB over six DDR4 channels off-package"
        ),
    )
