"""Shared exhibit container."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass
class Exhibit:
    """One reproduced table/figure.

    ``data`` holds machine-readable series/rows for tests and
    EXPERIMENTS.md generation; ``text`` is the printable rendering;
    ``paper_expectation`` states what the paper reports for the same
    exhibit so the harness output is self-describing.
    """

    exhibit_id: str
    title: str
    text: str
    data: dict[str, Any] = field(default_factory=dict)
    paper_expectation: str = ""

    def render(self) -> str:
        parts = [f"=== {self.exhibit_id}: {self.title} ===", self.text]
        if self.paper_expectation:
            parts.append(f"[paper] {self.paper_expectation}")
        return "\n".join(parts)
