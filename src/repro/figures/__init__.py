"""Generators for every table and figure in the paper.

Each module exposes ``generate(...) -> Exhibit``; the CLI and the
benchmark harness call these to print the same rows/series the paper
reports.  ``EXHIBITS`` maps exhibit ids ("fig2", "table1", "fig4a", ...)
to their generators.
"""

from repro.figures.common import Exhibit
from repro.figures.fig1 import generate as fig1
from repro.figures.table1 import generate as table1
from repro.figures.table2 import generate as table2
from repro.figures.fig2 import generate as fig2
from repro.figures.fig3 import generate as fig3
from repro.figures.fig4 import (
    generate_a as fig4a,
    generate_b as fig4b,
    generate_c as fig4c,
    generate_d as fig4d,
    generate_e as fig4e,
)
from repro.figures.fig5 import generate as fig5
from repro.figures.machines import generate as machines
from repro.figures.fig6 import (
    generate_a as fig6a,
    generate_b as fig6b,
    generate_c as fig6c,
    generate_d as fig6d,
)

EXHIBITS = {
    "table1": table1,
    "table2": table2,
    "fig1": fig1,
    "fig2": fig2,
    "fig3": fig3,
    "fig4a": fig4a,
    "fig4b": fig4b,
    "fig4c": fig4c,
    "fig4d": fig4d,
    "fig4e": fig4e,
    "fig5": fig5,
    "fig6a": fig6a,
    "fig6b": fig6b,
    "fig6c": fig6c,
    "fig6d": fig6d,
    "machines": machines,
}

__all__ = ["Exhibit", "EXHIBITS"] + list(EXHIBITS)
