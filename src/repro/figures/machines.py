"""Machine zoo: the paper's comparison grid replayed on every registered
machine.

Section VI argues the KNL conclusions "can be generalized to other
heterogeneous memory systems with similar characteristics".  This exhibit
makes that claim inspectable: for each machine in the registry
(:mod:`repro.machine.registry`) it runs the same small comparison sweep —
a sequential solver and a random-access kernel under the paper's
configuration trio at one thread per core and at full SMT — and reports
which configuration wins where.  On both KNL presets and on Xeon Max the
qualitative picture must match the paper (near tier wins sequential,
far/low-latency tier wins random at low concurrency); on the emulated
DRAM+NVM node the near DRAM tier wins both, because NVM is the
high-latency, write-asymmetric *far* tier there.

The sweep deliberately ignores the harness runner's machine binding:
this exhibit's whole point is spanning machines, so it builds one
columnar evaluator per registry entry.
"""

from __future__ import annotations

from typing import Any

from repro.core.configs import ConfigName
from repro.engine.batch import BatchEvaluator
from repro.machine import registry
from repro.figures.common import Exhibit
from repro.util.tables import TextTable
from repro.workloads.gups import GUPS
from repro.workloads.minife import MiniFE

#: (label, workload factory) — one bandwidth-bound, one latency-bound.
_WORKLOADS = (
    ("minife-7.2GB", lambda: MiniFE.from_matrix_gb(7.2)),
    ("gups-4GB", lambda: GUPS.from_table_gb(4.0)),
)


def _machine_rows(key: str) -> "tuple[Any, list[dict[str, Any]]]":
    """The comparison grid for one registry machine, batch-evaluated."""
    evaluator = BatchEvaluator(registry.build(key))
    machine = evaluator.machine
    trio = ConfigName.paper_trio()
    thread_levels = (machine.num_cores, machine.max_threads)
    cells = [
        (factory(), config, threads)
        for _, factory in _WORKLOADS
        for threads in thread_levels
        for config in trio
    ]
    records = evaluator.evaluate(cells).records()
    rows: list[dict[str, Any]] = []
    i = 0
    for label, _ in _WORKLOADS:
        for threads in thread_levels:
            metrics: dict[str, float | None] = {}
            for config in trio:
                metrics[config.value] = records[i].metric
                i += 1
            feasible = {c: m for c, m in metrics.items() if m is not None}
            rows.append(
                {
                    "workload": label,
                    "threads": threads,
                    "metrics": metrics,
                    "best": max(feasible, key=feasible.__getitem__)
                    if feasible
                    else "-",
                }
            )
    return machine, rows


def generate(runner: "object | None" = None) -> Exhibit:
    """Build the cross-machine exhibit (``runner`` accepted for harness
    compatibility; evaluation always spans the whole registry)."""
    del runner
    trio = ConfigName.paper_trio()
    table = TextTable(
        ["machine", "workload", "threads"]
        + [c.value for c in trio]
        + ["best"],
        title="Machine zoo: paper trio across every registered machine",
    )
    lines: list[str] = []
    data: dict[str, Any] = {"machines": list(registry.names())}
    for key in registry.names():
        machine, rows = _machine_rows(key)
        spec = machine.spec
        assert spec is not None
        lines.append(
            f"{key}: {machine.name} — {machine.num_cores} cores x "
            f"{machine.smt_per_core} HW threads @ "
            f"{machine.frequency_ghz:g} GHz; near "
            f"{spec.near_tier.name} {spec.near_tier.capacity_bytes >> 30} GiB, "
            f"far {spec.far_tier.name} {spec.far_tier.capacity_bytes >> 30} GiB; "
            f"modes: {', '.join(spec.supported_modes)}"
        )
        data[key] = [
            {
                "workload": row["workload"],
                "threads": row["threads"],
                "best": row["best"],
                **row["metrics"],
            }
            for row in rows
        ]
        for row in rows:
            table.add_row(
                [key, row["workload"], str(row["threads"])]
                + [
                    "-"
                    if row["metrics"][c.value] is None
                    else f"{row['metrics'][c.value]:.4g}"
                    for c in trio
                ]
                + [row["best"]]
            )
    text = "\n".join(lines) + "\n\n" + table.render()
    return Exhibit(
        exhibit_id="machines",
        title="Cross-machine comparison (machine registry)",
        text=text,
        data=data,
        paper_expectation=(
            "conclusions generalize (Section VI): the near tier wins "
            "sequential work on every hybrid-memory machine; the "
            "lower-latency tier wins random access at one thread per core "
            "— which flips to the near tier on the DRAM+NVM node"
        ),
    )
