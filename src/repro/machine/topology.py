"""Whole-node compute topology."""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import TYPE_CHECKING

from repro.machine.caches import CacheGeometry
from repro.machine.core import Core
from repro.machine.mesh import Mesh2D
from repro.util.validation import check_positive

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.machine.spec import MachineSpec
    from repro.memory.device import MemoryDevice


@dataclass(frozen=True)
class ThreadPlacement:
    """How an OpenMP thread count maps onto cores.

    The paper's runs use compact-by-core placement: 64 threads = 1 per core,
    128 = 2 per core, etc.  ``active_cores`` and ``threads_per_core``
    describe the resulting shape; uneven counts put the remainder on the
    low-numbered cores (``extra_cores`` of them run one more thread).
    """

    total_threads: int
    active_cores: int
    threads_per_core: int
    extra_cores: int

    @property
    def max_threads_per_core(self) -> int:
        return self.threads_per_core + (1 if self.extra_cores else 0)


@dataclass(frozen=True)
class Machine:
    """A single node's compute side.

    Combines the tile mesh with per-core L1 geometry and exposes the
    aggregates the performance engine consumes.  Memory devices and modes
    are configured separately (:mod:`repro.memory`) and paired with a
    machine inside :class:`repro.core.configs.SystemConfig`.

    ``spec`` links back to the declarative
    :class:`~repro.machine.spec.MachineSpec` when the machine was built
    through the registry; hand-constructed machines (``spec=None``)
    default to the paper's Archer KNL memory tiers, preserving the
    historical behaviour.
    """

    name: str
    mesh: Mesh2D
    l1d: CacheGeometry
    spec: "MachineSpec | None" = None
    #: Per-instance ``num_threads -> ThreadPlacement`` memo.  Placements are
    #: frozen and derived only from the (frozen) mesh, so sharing them is
    #: safe; excluded from equality/repr like any cache.
    _placements: dict = field(
        default_factory=dict, init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("machine needs a name")

    # -- memory tiers -------------------------------------------------------
    def near_device(self) -> "MemoryDevice":
        """The fast/near memory tier (MCDRAM on KNL; NUMA node 1 in flat
        mode)."""
        if self.spec is not None:
            return self.spec.near_tier.device()
        from repro.memory.mcdram import mcdram_archer

        return mcdram_archer()

    def far_device(self) -> "MemoryDevice":
        """The capacity/far memory tier (DDR4 on KNL; NUMA node 0)."""
        if self.spec is not None:
            return self.spec.far_tier.device()
        from repro.memory.dram import ddr4_archer

        return ddr4_archer()

    @property
    def supported_memory_modes(self) -> tuple[str, ...]:
        """Memory-mode names this platform's firmware offers."""
        if self.spec is not None:
            return self.spec.supported_modes
        return ("flat", "cache", "hybrid")

    # -- counts ---------------------------------------------------------------
    # All of these are constants of the frozen mesh; the scalar model reads
    # them on every evaluate() call, so they are cached on first access.
    @cached_property
    def num_cores(self) -> int:
        return 2 * self.mesh.num_tiles

    @cached_property
    def smt_per_core(self) -> int:
        return self.mesh.tiles[0].cores[0].smt_threads

    @cached_property
    def max_threads(self) -> int:
        return self.num_cores * self.smt_per_core

    @cached_property
    def frequency_ghz(self) -> float:
        return self.mesh.tiles[0].cores[0].frequency_ghz

    @cached_property
    def reference_core(self) -> Core:
        """A representative core (all cores are homogeneous)."""
        return self.mesh.tiles[0].cores[0]

    # -- aggregates -------------------------------------------------------------
    @cached_property
    def peak_dp_gflops(self) -> float:
        """Node peak double-precision GFLOP/s (~2662 for a 7210)."""
        return sum(c.peak_dp_gflops for c in self.mesh.cores())

    @cached_property
    def total_l2_bytes(self) -> int:
        return self.mesh.total_l2_bytes

    @cached_property
    def tile_l2_bytes(self) -> int:
        return self.mesh.tiles[0].l2_capacity_bytes

    # -- thread placement ---------------------------------------------------
    def place_threads(self, num_threads: int) -> ThreadPlacement:
        """Map an OpenMP thread count to cores, compact-by-core.

        Raises if the count exceeds the node's hardware-thread capacity
        (the 7210 tops out at 256).  Placements are memoized per machine:
        the scalar path asks for the same handful of thread counts on
        every run.
        """
        cached = self._placements.get(num_threads)
        if cached is not None:
            return cached
        check_positive("num_threads", num_threads)
        if num_threads > self.max_threads:
            raise ValueError(
                f"{num_threads} threads exceed the node capacity of "
                f"{self.max_threads} ({self.num_cores} cores x "
                f"{self.smt_per_core} hardware threads)"
            )
        if num_threads <= self.num_cores:
            placement = ThreadPlacement(
                total_threads=num_threads,
                active_cores=num_threads,
                threads_per_core=1,
                extra_cores=0,
            )
        else:
            per_core, extra = divmod(num_threads, self.num_cores)
            placement = ThreadPlacement(
                total_threads=num_threads,
                active_cores=self.num_cores,
                threads_per_core=per_core,
                extra_cores=extra,
            )
        self._placements[num_threads] = placement
        return placement

    def describe(self) -> str:
        """One-paragraph summary used by the CLI."""
        return (
            f"{self.name}: {self.num_cores} cores @ {self.frequency_ghz:.1f} GHz, "
            f"{self.smt_per_core} HW threads/core ({self.max_threads} total), "
            f"{self.mesh.num_tiles} tiles x {self.tile_l2_bytes // (1 << 20)} MB L2 "
            f"({self.total_l2_bytes // (1 << 20)} MB mesh L2), "
            f"{self.mesh.cluster_mode.value} cluster mode, "
            f"peak {self.peak_dp_gflops:.0f} DP GFLOP/s"
        )


#: Historical name, kept as an alias — the class long predates the
#: machine registry and is referenced throughout the codebase.
KNLMachine = Machine
