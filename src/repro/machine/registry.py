"""The machine-spec registry.

Every machine the toolkit can model is registered here as a declarative
:class:`~repro.machine.spec.MachineSpec`.  The KNL presets
(:func:`~repro.machine.presets.knl7210` / ``knl7250``) are data-driven
entries whose built machines are bit-identical to the historical
hand-constructed ones; two further entries extend the paper's analysis to
later hybrid-memory systems:

* ``xeonmax9480`` — an HBM-enabled Intel Xeon Max socket (64 GB HBM2e in
  front of DDR5, flat/cache modes), the Aurora-class node studied by
  arXiv:2504.03632.  Like KNL, the fast tier has *higher* idle latency
  than DRAM, so the paper's random-access guideline carries over.
* ``nvmsim`` — an emulated DRAM+NVM node in the style of the Quartz-like
  emulators (arXiv:1808.00064): local DRAM is the near tier, NVM the
  capacity tier with asymmetric read/write bandwidth.  Here the *near*
  tier also has the lower latency, which flips the random-access
  preference — exactly the cross-machine behaviour the conformance
  suite exercises.

Bandwidths are decimal GB/s and capacities binary GiB, following
:mod:`repro.util.units`.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, Any

from repro.machine.spec import (
    CacheLevelSpec,
    CoreSpec,
    MachineSpec,
    MemoryTierSpec,
    MeshSpec,
)
from repro.util.units import GB, GiB, KiB, MiB

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.machine.topology import Machine

__all__ = [
    "register",
    "get",
    "build",
    "names",
    "specs",
    "fingerprint_extras",
]

_REGISTRY: dict[str, MachineSpec] = {}


def register(spec: MachineSpec) -> MachineSpec:
    """Add a spec to the registry; keys are unique."""
    if spec.key in _REGISTRY:
        raise ValueError(f"machine {spec.key!r} is already registered")
    _REGISTRY[spec.key] = spec
    return spec


def names() -> tuple[str, ...]:
    """Registered machine keys, in registration order (KNL entries first)."""
    return tuple(_REGISTRY)


def specs() -> tuple[MachineSpec, ...]:
    return tuple(_REGISTRY.values())


def get(key: str) -> MachineSpec:
    try:
        return _REGISTRY[key]
    except KeyError:
        raise KeyError(
            f"unknown machine {key!r}; registered: {', '.join(_REGISTRY)}"
        ) from None


def build(key: str) -> "Machine":
    """Construct the runnable machine model for a registered key."""
    return get(key).build()


# -- cache-key participation ------------------------------------------------

# The historical content-addressed cache keys carry the compute-side
# fingerprint only (name, cores, SMT, frequency, L2, cluster mode, peak
# FLOPs) because every machine shared the Archer memory tiers.  Machines
# whose tiers or mode support differ add them here; KNL entries return an
# empty dict so their keys stay byte-identical to the pre-registry format.
_KNL_TIER_PAIR: "tuple[MemoryTierSpec, MemoryTierSpec] | None" = None
_KNL_MODES = ("flat", "cache", "hybrid")


def fingerprint_extras(spec: MachineSpec) -> dict[str, Any]:
    """Extra cache-key material for machines that differ from the Archer
    memory configuration (empty for the KNL entries — see above)."""
    extras: dict[str, Any] = {}
    knl_near, knl_far = _KNL_TIER_PAIR  # type: ignore[misc]
    if spec.near_tier != knl_near or spec.far_tier != knl_far:
        extras["memory_tiers"] = {
            "near": dataclasses.asdict(spec.near_tier),
            "far": dataclasses.asdict(spec.far_tier),
        }
    if spec.supported_modes != _KNL_MODES:
        extras["memory_modes"] = list(spec.supported_modes)
    return extras


# -- KNL (the paper's testbed family) ---------------------------------------

# Literals below reproduce repro.memory.mcdram.mcdram_archer() /
# repro.memory.dram.ddr4_archer() and the historical preset builders
# exactly; the KNL equivalence golden test pins this.
_MCDRAM_ARCHER = MemoryTierSpec(
    name="MCDRAM",
    capacity_bytes=int(16.0 * GiB),
    channels=8,
    idle_latency_ns=154.0,
    peak_bandwidth=430.0 * GB,
    stream_efficiency_1t=330.0 / 430.0,
    smt_bandwidth_gain=1.27,
    random_bandwidth_cap=30.3 * GB,
    random_write_penalty=0.65,
    cache_capable=True,
)

_DDR4_ARCHER = MemoryTierSpec(
    name="DDR4",
    capacity_bytes=int(96.0 * GiB),
    channels=6,
    idle_latency_ns=130.4,
    peak_bandwidth=80.0 * GB,
    stream_efficiency_1t=77.0 / 80.0,
    smt_bandwidth_gain=80.0 / 77.0,
    random_bandwidth_cap=20.7 * GB,
    random_write_penalty=0.0,
    cache_capable=False,
)

_KNL_TIER_PAIR = (_MCDRAM_ARCHER, _DDR4_ARCHER)

_KNL_L1D = CacheLevelSpec(
    name="L1D",
    capacity_bytes=32 * KiB,
    associativity=8,
    load_to_use_ns=4 / 1.3,  # ~4 cycles at 1.3 GHz (shared by both presets)
)

_KNL_L2 = CacheLevelSpec(
    name="L2",
    capacity_bytes=1 * MiB,
    associativity=16,
    load_to_use_ns=10.0,
)


def _knl_core(frequency_ghz: float) -> CoreSpec:
    return CoreSpec(
        frequency_ghz=frequency_ghz,
        smt_threads=4,
        mlp_sequential=13.4,
        mlp_random=2.0,
        dp_flops_per_cycle=32.0,
        issue_efficiency=(0.55, 0.85, 0.95, 0.92),
        outstanding_line_cap=17.0,
    )


KNL7210 = register(
    MachineSpec(
        key="knl7210",
        name="Intel Xeon Phi 7210",
        core=_knl_core(1.3),
        mesh=MeshSpec(rows=4, cols=8, num_tiles=32),
        l1d=_KNL_L1D,
        l2=_KNL_L2,
        near_tier=_MCDRAM_ARCHER,
        far_tier=_DDR4_ARCHER,
        supported_modes=("flat", "cache", "hybrid"),
    )
)

KNL7250 = register(
    MachineSpec(
        key="knl7250",
        name="Intel Xeon Phi 7250",
        core=_knl_core(1.4),
        mesh=MeshSpec(rows=5, cols=7, num_tiles=34),
        l1d=_KNL_L1D,
        l2=_KNL_L2,
        near_tier=_MCDRAM_ARCHER,
        far_tier=_DDR4_ARCHER,
        supported_modes=("flat", "cache", "hybrid"),
    )
)


# -- Xeon Max (HBM + DDR5, arXiv:2504.03632) --------------------------------

# One Xeon CPU Max 9480 socket: 56 P-cores (modelled as 28 two-core
# tiles), 64 GB on-package HBM2e and 8-channel DDR5.  The published
# microbenchmarks show HBM idle latency *above* DDR5 — the same
# latency/bandwidth trade the paper measured on KNL — with sustained
# HBM stream bandwidth around half the datasheet peak at one thread per
# core.  SNC is left off, matching the flat-quadrant-like default.
XEONMAX9480 = register(
    MachineSpec(
        key="xeonmax9480",
        name="Intel Xeon Max 9480",
        core=CoreSpec(
            frequency_ghz=1.9,  # all-core AVX-512 clock
            smt_threads=2,
            mlp_sequential=16.0,
            mlp_random=8.0,
            dp_flops_per_cycle=32.0,  # 2 x 8-wide AVX-512 FMA
            # A big out-of-order core saturates issue with one thread;
            # the second SMT context adds nothing to peak compute.
            issue_efficiency=(1.0, 1.0),
            outstanding_line_cap=48.0,
        ),
        mesh=MeshSpec(rows=4, cols=7, num_tiles=28, hop_latency_ns=1.0),
        l1d=CacheLevelSpec(
            name="L1D",
            capacity_bytes=48 * KiB,
            associativity=12,
            load_to_use_ns=5 / 1.9,
        ),
        l2=CacheLevelSpec(
            name="L2",
            capacity_bytes=4 * MiB,  # 2 MB per core, two cores per tile
            associativity=16,
            load_to_use_ns=7.0,
        ),
        near_tier=MemoryTierSpec(
            name="HBM2e",
            capacity_bytes=int(64.0 * GiB),
            channels=32,
            idle_latency_ns=185.0,
            peak_bandwidth=1600.0 * GB,
            stream_efficiency_1t=0.5,
            smt_bandwidth_gain=1.25,
            random_bandwidth_cap=55.0 * GB,
            random_write_penalty=0.3,
            cache_capable=True,
        ),
        far_tier=MemoryTierSpec(
            name="DDR5",
            capacity_bytes=int(256.0 * GiB),
            channels=8,
            idle_latency_ns=110.0,
            peak_bandwidth=307.2 * GB,
            stream_efficiency_1t=0.75,
            smt_bandwidth_gain=1.1,
            random_bandwidth_cap=35.0 * GB,
            random_write_penalty=0.0,
            cache_capable=False,
        ),
        # Xeon Max firmware offers HBM-only, flat and cache modes; the
        # boot-time hybrid split is a KNL-only feature.
        supported_modes=("flat", "cache"),
    )
)


# -- Emulated DRAM + NVM node (arXiv:1808.00064) ----------------------------

# A throttled-socket NVM emulation: local DRAM is the fast near tier,
# NVM the large far tier with asymmetric read/write bandwidth (writes
# stream at roughly half the read rate and scattered writes are heavily
# serialized).  Unlike KNL/Xeon Max, the *near* tier here also has the
# lower idle latency, so the random-access preference flips toward it —
# the cross-machine case the conformance suite pins.
NVMSIM = register(
    MachineSpec(
        key="nvmsim",
        name="Emulated DRAM+NVM node",
        core=CoreSpec(
            frequency_ghz=2.2,
            smt_threads=2,
            mlp_sequential=10.0,
            mlp_random=6.0,
            dp_flops_per_cycle=16.0,  # 2 x 4-wide AVX2 FMA
            issue_efficiency=(1.0, 1.0),
            outstanding_line_cap=24.0,
        ),
        mesh=MeshSpec(
            rows=2,
            cols=4,
            num_tiles=8,
            hop_latency_ns=1.2,
            cluster_mode="all-to-all",
        ),
        l1d=CacheLevelSpec(
            name="L1D",
            capacity_bytes=32 * KiB,
            associativity=8,
            load_to_use_ns=4 / 2.2,
        ),
        l2=CacheLevelSpec(
            name="L2",
            capacity_bytes=2 * MiB,
            associativity=16,
            load_to_use_ns=8.0,
        ),
        near_tier=MemoryTierSpec(
            name="DRAM",
            capacity_bytes=int(32.0 * GiB),
            channels=4,
            idle_latency_ns=95.0,
            peak_bandwidth=76.8 * GB,
            stream_efficiency_1t=60.0 / 76.8,
            smt_bandwidth_gain=1.05,
            random_bandwidth_cap=18.0 * GB,
            random_write_penalty=0.0,
            # The emulator can run DRAM as a hardware-managed cache in
            # front of NVM (Memory Mode on real Optane systems).
            cache_capable=True,
        ),
        far_tier=MemoryTierSpec(
            name="NVM",
            capacity_bytes=int(512.0 * GiB),
            channels=6,
            idle_latency_ns=300.0,
            peak_bandwidth=40.0 * GB,
            stream_efficiency_1t=0.8,
            smt_bandwidth_gain=1.0,
            random_bandwidth_cap=8.0 * GB,
            random_write_penalty=0.8,
            stream_write_penalty=0.55,
            cache_capable=False,
        ),
        supported_modes=("flat", "cache"),
    )
)
