"""Core and hardware-thread model.

A KNL (Silvermont-derived) core runs up to four hardware threads.  The
performance engine needs just a handful of per-core parameters:

* clock frequency (1.3 GHz on the 7210),
* the number of hardware threads and how sharing them scales per-thread
  issue capacity,
* memory-level parallelism (MLP): how many outstanding cache-line requests
  a thread sustains for *sequential* streams (hardware prefetchers working)
  vs *random* streams (only out-of-order dual issue; the paper's
  TinyMemBench "dual random read" measures exactly this), and
* per-core double-precision FLOP peak (2 × AVX-512 FMA units).

The MLP values drive the Little's-law throughput model that the paper
invokes in Section IV-B.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.validation import check_positive


@dataclass(frozen=True)
class HardwareThread:
    """One SMT context of a core; identified by (core_id, slot)."""

    core_id: int
    slot: int

    def __post_init__(self) -> None:
        if self.slot < 0:
            raise ValueError(f"thread slot must be >= 0, got {self.slot}")
        if self.core_id < 0:
            raise ValueError(f"core_id must be >= 0, got {self.core_id}")


@dataclass(frozen=True)
class Core:
    """Static parameters of a single KNL core.

    Parameters
    ----------
    core_id:
        Index within the machine (0..63 on a 7210).
    frequency_ghz:
        Core clock; 1.3 GHz on the 7210 testbed.
    smt_threads:
        Hardware threads per core (4 on KNL).
    mlp_sequential:
        Outstanding 64 B lines a single thread sustains with the hardware
        prefetcher engaged (sequential access).  KNL's L2 prefetcher tracks
        many streams; an effective ~13 lines reproduces the measured
        single-thread-per-core STREAM point (64 cores x 13.4 x 64 B /
        165 ns loaded latency ~= 330 GB/s on MCDRAM).
    mlp_random:
        Outstanding lines under dependent/random access; the out-of-order
        window of the Silvermont-based core sustains about two concurrent
        demand misses (hence TinyMemBench's *dual* random read).
    dp_flops_per_cycle:
        Peak double-precision FLOPs per cycle (2 x 8-wide AVX-512 FMA = 32).
    issue_efficiency:
        Per-core compute throughput multiplier indexed by active SMT
        contexts (entry ``[n-1]`` applies with ``n`` threads).  The KNL
        default encodes the alternating front end (see
        :meth:`smt_issue_efficiency`); a big out-of-order core would use
        ``(1.0, 1.0)``.
    outstanding_line_cap:
        Superqueue bound on total outstanding cache-line requests per
        core, capping the SMT MLP gain (see :meth:`outstanding_lines`).
    """

    core_id: int
    frequency_ghz: float = 1.3
    smt_threads: int = 4
    mlp_sequential: float = 13.4
    mlp_random: float = 2.0
    dp_flops_per_cycle: float = 32.0
    issue_efficiency: tuple[float, ...] = (0.55, 0.85, 0.95, 0.92)
    outstanding_line_cap: float = 17.0

    def __post_init__(self) -> None:
        check_positive("frequency_ghz", self.frequency_ghz)
        check_positive("smt_threads", self.smt_threads)
        check_positive("mlp_sequential", self.mlp_sequential)
        check_positive("mlp_random", self.mlp_random)
        check_positive("dp_flops_per_cycle", self.dp_flops_per_cycle)
        check_positive("outstanding_line_cap", self.outstanding_line_cap)
        if self.core_id < 0:
            raise ValueError(f"core_id must be >= 0, got {self.core_id}")
        object.__setattr__(
            self, "issue_efficiency", tuple(self.issue_efficiency)
        )
        if len(self.issue_efficiency) < self.smt_threads:
            raise ValueError(
                f"issue_efficiency needs one factor per SMT level "
                f"(got {len(self.issue_efficiency)} for "
                f"{self.smt_threads} threads)"
            )
        for factor in self.issue_efficiency:
            if not 0.0 < factor <= 1.0:
                raise ValueError(
                    f"issue_efficiency factors must be in (0, 1], got {factor}"
                )

    @property
    def cycle_ns(self) -> float:
        """Duration of one cycle in nanoseconds."""
        return 1.0 / self.frequency_ghz

    @property
    def peak_dp_gflops(self) -> float:
        """Peak double-precision GFLOP/s of this core."""
        return self.frequency_ghz * self.dp_flops_per_cycle

    def threads(self) -> list[HardwareThread]:
        """Enumerate this core's hardware-thread contexts."""
        return [HardwareThread(self.core_id, s) for s in range(self.smt_threads)]

    def smt_issue_efficiency(self, active_threads: int) -> float:
        """Per-core *compute* throughput multiplier with ``active_threads`` SMT
        contexts active.

        KNL cores cannot issue from a single thread every cycle (the front
        end alternates); two threads are needed to saturate issue.  Beyond
        two, compute throughput is flat while resource sharing adds slight
        overhead.  These factors reproduce the paper's observation that even
        DGEMM (compute-heavy) gains from 2-3 threads/core (Fig. 6a).
        """
        if not 1 <= active_threads <= self.smt_threads:
            raise ValueError(
                f"active_threads must be in [1, {self.smt_threads}], "
                f"got {active_threads}"
            )
        # The KNL default: the front end issues from the same thread only
        # every other cycle, so one thread reaches ~55% of peak issue;
        # three threads peak, four pay a little contention.  The
        # 0.95/0.55 ~ 1.7x span reproduces the paper's DGEMM/MiniFE
        # hyper-threading gain (Fig. 6a/6b, 192 vs 64 threads),
        # consistent with the Joo et al. Wilson-Dslash study the paper
        # cites on the importance of hyper-threads on KNL.
        return self.issue_efficiency[active_threads - 1]

    def outstanding_lines(self, pattern_mlp: float, active_threads: int) -> float:
        """Total outstanding cache-line requests this core sustains.

        Each hardware thread contributes its own miss-status registers, but
        the core's superqueue bounds the total in flight.  KNL supports
        about 16 outstanding L2 misses per tile per core-pair; we cap at
        a per-core limit (:attr:`outstanding_line_cap`) so SMT gains
        taper realistically.
        """
        if not 1 <= active_threads <= self.smt_threads:
            raise ValueError(
                f"active_threads must be in [1, {self.smt_threads}], "
                f"got {active_threads}"
            )
        return min(pattern_mlp * active_threads, self.outstanding_line_cap)
