"""2D mesh interconnect with quadrant clustering.

KNL tiles sit on a 2D mesh; L2 coherence is kept by a distributed tag
directory.  In *quadrant* cluster mode (the testbed's configuration,
Section III-A) the directory for an address lives in the same quadrant as
the memory channel serving it, which shortens the three-hop
core -> directory -> memory path.

The mesh model provides:

* Manhattan hop distances between tile coordinates,
* average directory-lookup latency under a cluster mode, and
* the "mesh L2" aggregate capacity that sets the 64 MB knee of Fig. 3
  ("two mesh L2 cache size" — 2 x 32 MB for the 32 active tiles of a 7210).
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass
from functools import cached_property

from repro.machine.tile import Tile
from repro.util.validation import check_positive


def _axis_pair_distance_sum(counts: list[int]) -> int:
    """Σ |i - j| · counts[i] · counts[j] over ordered index pairs.

    One prefix-sum pass; exact integer arithmetic.  For position i with
    weight n_i, the pairs against all j < i contribute
    n_i · (i·Σn_j - Σj·n_j), and ordered pairs double the one-sided sum.
    """
    total = 0
    cum_count = 0
    cum_weighted = 0
    for i, n in enumerate(counts):
        total += n * (i * cum_count - cum_weighted)
        cum_count += n
        cum_weighted += i * n
    return 2 * total


class ClusterMode(enum.Enum):
    """KNL cluster-on-die modes for the tile mesh."""

    ALL_TO_ALL = "all-to-all"
    QUADRANT = "quadrant"
    SNC4 = "snc-4"

    @property
    def directory_locality_factor(self) -> float:
        """Scale on the average core->directory distance.

        Quadrant mode confines directory homes to the requester's quadrant,
        roughly halving the average hop count versus all-to-all; SNC-4 also
        localizes memory but exposes NUMA subdomains (not used by the
        paper's testbed, provided for completeness).
        """
        return {
            ClusterMode.ALL_TO_ALL: 1.0,
            ClusterMode.QUADRANT: 0.55,
            ClusterMode.SNC4: 0.5,
        }[self]


@dataclass(frozen=True)
class Mesh2D:
    """Rectangular mesh of tiles.

    Parameters
    ----------
    rows, cols:
        Mesh shape.  A 7210 exposes 32 active tiles laid out on the 6x6+
        physical grid; we model the 32 active tiles as rows x cols = 4 x 8.
    tiles:
        The tile list, row-major; ``len(tiles) <= rows * cols`` (dark
        silicon/disabled tiles leave holes at the end).
    hop_latency_ns:
        Per-hop mesh traversal latency.
    cluster_mode:
        Directory clustering mode; the testbed uses quadrant.
    """

    rows: int
    cols: int
    tiles: tuple[Tile, ...]
    hop_latency_ns: float = 1.6
    cluster_mode: ClusterMode = ClusterMode.QUADRANT

    def __post_init__(self) -> None:
        check_positive("rows", self.rows)
        check_positive("cols", self.cols)
        check_positive("hop_latency_ns", self.hop_latency_ns)
        if not self.tiles:
            raise ValueError("mesh must contain at least one tile")
        if len(self.tiles) > self.rows * self.cols:
            raise ValueError(
                f"{len(self.tiles)} tiles do not fit a {self.rows}x{self.cols} mesh"
            )

    # -- geometry -----------------------------------------------------------
    def coordinates(self, tile_index: int) -> tuple[int, int]:
        """(row, col) of a tile by positional index (row-major placement)."""
        if not 0 <= tile_index < len(self.tiles):
            raise ValueError(f"tile index {tile_index} out of range")
        return divmod(tile_index, self.cols)

    def hop_distance(self, a: int, b: int) -> int:
        """Manhattan hop count between two tiles (XY routing)."""
        ra, ca = self.coordinates(a)
        rb, cb = self.coordinates(b)
        return abs(ra - rb) + abs(ca - cb)

    def average_hop_distance(self) -> float:
        """Mean hop distance over all ordered tile pairs (a != b).

        Computed in closed form per axis and cached on the frozen mesh:
        Manhattan distance separates into |Δrow| + |Δcol|, so the pair sum
        is the sum of two one-dimensional weighted pair-distance sums over
        the row/column occupancy counts of the row-major tile layout.
        Both axis sums are exact integers, so the single float division
        is bit-identical to the historical O(n²) permutation sum
        (:meth:`average_hop_distance_permutation`, retained for tests).
        """
        return self._average_hop_distance

    @cached_property
    def _average_hop_distance(self) -> float:
        n = len(self.tiles)
        if n == 1:
            return 0.0
        full_rows, tail = divmod(n, self.cols)
        # Occupancy per row index and per column index for the first n
        # row-major grid positions (a possibly partial last row).
        row_counts = [self.cols] * full_rows + ([tail] if tail else [])
        col_counts = [
            full_rows + (1 if c < tail else 0) for c in range(self.cols)
        ]
        total = _axis_pair_distance_sum(row_counts) + _axis_pair_distance_sum(
            col_counts
        )
        return total / (n * (n - 1))

    def average_hop_distance_permutation(self) -> float:
        """Reference O(n²) permutation sum the closed form must match."""
        n = len(self.tiles)
        if n == 1:
            return 0.0
        total = sum(
            self.hop_distance(a, b)
            for a, b in itertools.permutations(range(n), 2)
        )
        return total / (n * (n - 1))

    # -- coherence timing ---------------------------------------------------
    def directory_lookup_ns(self) -> float:
        """Average latency of a tag-directory lookup for a miss.

        core -> home-directory traversal plus the directory access itself;
        quadrant mode shortens the traversal (see
        :attr:`ClusterMode.directory_locality_factor`).  Cached on the
        frozen mesh: the scalar model calls this per phase per run.
        """
        return self._directory_lookup_ns

    @cached_property
    def _directory_lookup_ns(self) -> float:
        traverse = (
            self.average_hop_distance()
            * self.hop_latency_ns
            * self.cluster_mode.directory_locality_factor
        )
        directory_access_ns = 8.0
        return traverse + directory_access_ns

    def remote_l2_forward_ns(self) -> float:
        """Average latency of a cache-to-cache (MESIF forward) transfer.

        Covers the directory lookup plus the forward from the owning tile.
        This sets the ~200 ns tier of Fig. 3 together with memory latency:
        blocks between 1 MB and 64 MB mostly live spread over other tiles'
        L2 slices or main memory.  Cached on the frozen mesh like
        :meth:`directory_lookup_ns`.
        """
        return self._remote_l2_forward_ns

    @cached_property
    def _remote_l2_forward_ns(self) -> float:
        return (
            self.directory_lookup_ns()
            + self.average_hop_distance() * self.hop_latency_ns
        )

    # -- aggregates -----------------------------------------------------------
    @property
    def num_tiles(self) -> int:
        return len(self.tiles)

    @cached_property
    def total_l2_bytes(self) -> int:
        """Aggregate "mesh L2" capacity (32 MB on the modelled 7210)."""
        return sum(t.l2_capacity_bytes for t in self.tiles)

    def cores(self) -> list:
        """All cores on the mesh, in tile order."""
        return [core for tile in self.tiles for core in tile.cores]
