"""Machine models.

Models the compute side of hybrid-memory nodes, originally the Knights
Landing machine the paper measures (Section II): cores with SMT hardware
threads, tiles of two cores sharing an L2 slice, a 2D mesh interconnect
with a distributed MESIF tag directory, and the per-level cache
parameters that produce the latency tiers of Fig. 3.

Machines are described declaratively: :mod:`repro.machine.spec` defines
the frozen :class:`MachineSpec` schema and :mod:`repro.machine.registry`
holds every known machine (the KNL presets plus a Xeon Max and an
emulated DRAM+NVM node).  The machine model is *structural*: it knows
capacities, latencies and concurrency limits.  Timing behaviour is
computed by :mod:`repro.engine` from these parameters together with the
memory subsystem model (:mod:`repro.memory`).
"""

from repro.machine.caches import (
    CacheGeometry,
    SetAssociativeCache,
    CacheStats,
    knl_l1d,
    knl_l2,
)
from repro.machine.core import Core, HardwareThread
from repro.machine.tile import Tile
from repro.machine.mesh import Mesh2D, ClusterMode
from repro.machine.spec import (
    CacheLevelSpec,
    CoreSpec,
    MachineSpec,
    MemoryTierSpec,
    MeshSpec,
)
from repro.machine.topology import KNLMachine, Machine
from repro.machine.presets import knl7210, knl7250
from repro.machine import registry

__all__ = [
    "CacheGeometry",
    "SetAssociativeCache",
    "CacheStats",
    "knl_l1d",
    "knl_l2",
    "Core",
    "HardwareThread",
    "Tile",
    "Mesh2D",
    "ClusterMode",
    "CacheLevelSpec",
    "CoreSpec",
    "MachineSpec",
    "MemoryTierSpec",
    "MeshSpec",
    "Machine",
    "KNLMachine",
    "knl7210",
    "knl7250",
    "registry",
]
