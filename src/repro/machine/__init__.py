"""KNL machine model.

Models the compute side of the Knights Landing node the paper measures
(Section II): cores with four hardware threads, tiles of two cores sharing a
1 MB L2, a 2D mesh interconnect with a distributed MESIF tag directory in
quadrant cluster mode, and the per-level cache parameters that produce the
latency tiers of Fig. 3.

The machine model is *structural*: it knows capacities, latencies and
concurrency limits.  Timing behaviour is computed by :mod:`repro.engine`
from these parameters together with the memory subsystem model
(:mod:`repro.memory`).
"""

from repro.machine.caches import (
    CacheGeometry,
    SetAssociativeCache,
    CacheStats,
    knl_l1d,
    knl_l2,
)
from repro.machine.core import Core, HardwareThread
from repro.machine.tile import Tile
from repro.machine.mesh import Mesh2D, ClusterMode
from repro.machine.topology import KNLMachine
from repro.machine.presets import knl7210, knl7250

__all__ = [
    "CacheGeometry",
    "SetAssociativeCache",
    "CacheStats",
    "knl_l1d",
    "knl_l2",
    "Core",
    "HardwareThread",
    "Tile",
    "Mesh2D",
    "ClusterMode",
    "KNLMachine",
    "knl7210",
    "knl7250",
]
