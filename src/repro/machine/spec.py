"""Declarative machine specifications.

A :class:`MachineSpec` is a frozen, purely-declarative description of one
hybrid-memory node: core microarchitecture, tile mesh, cache hierarchy,
the two memory tiers (near/fast and far/capacity) and the memory modes
the platform's BIOS offers.  Specs are plain data — they can round-trip
through ``to_dict``/``from_dict`` losslessly, which is what the registry
property tests pin — and :meth:`MachineSpec.build` turns one into the
:class:`~repro.machine.topology.Machine` object the engine consumes.

Tier-role convention: every machine exposes a **near** tier (fast,
usually small: MCDRAM on KNL, HBM on Xeon Max, local DRAM on an NVM
testbed) and a **far** tier (large capacity: DDR4/DDR5/NVM).  The far
tier is NUMA node 0 and the near tier node 1, exactly the layout the
paper's Table II shows for flat-mode KNL, so placement policies, the
invariant checker and the figure generators work unchanged across
machines.

This module deliberately imports only the cache-geometry helper from the
machine package; memory devices are constructed lazily so the wire-type
layer can enumerate registered machines without dragging in the heavy
model stack.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Mapping

from repro.machine.caches import CacheGeometry
from repro.util.validation import check_positive

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.machine.topology import Machine
    from repro.memory.device import MemoryDevice

#: The memory modes a spec may declare, in canonical order.
MEMORY_MODES = ("flat", "cache", "hybrid")


def _check_fraction(name: str, value: float, *, low_open: bool = False) -> None:
    low_ok = value > 0.0 if low_open else value >= 0.0
    if not (low_ok and value <= 1.0):
        bound = "(0, 1]" if low_open else "[0, 1]"
        raise ValueError(f"{name} must be in {bound}, got {value}")


@dataclass(frozen=True)
class MemoryTierSpec:
    """One memory tier: the measured device characteristics plus its role.

    Field semantics match :class:`~repro.memory.device.MemoryDevice`
    one-for-one; ``cache_capable`` additionally records whether the
    platform can run this tier as a memory-side cache in front of the
    other one (MCDRAM and Xeon Max HBM can; a plain DRAM tier in front of
    NVM is modelled the same way by the emulator).
    """

    name: str
    capacity_bytes: int
    channels: int
    idle_latency_ns: float
    peak_bandwidth: float
    stream_efficiency_1t: float
    smt_bandwidth_gain: float
    random_bandwidth_cap: float
    random_write_penalty: float = 0.0
    stream_write_penalty: float = 0.0
    cache_capable: bool = True

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("memory tier needs a name")
        check_positive("capacity_bytes", self.capacity_bytes)
        check_positive("channels", self.channels)
        check_positive("idle_latency_ns", self.idle_latency_ns)
        check_positive("peak_bandwidth", self.peak_bandwidth)
        check_positive("random_bandwidth_cap", self.random_bandwidth_cap)
        _check_fraction(
            "stream_efficiency_1t", self.stream_efficiency_1t, low_open=True
        )
        if self.smt_bandwidth_gain < 1.0:
            raise ValueError(
                f"smt_bandwidth_gain must be >= 1, got {self.smt_bandwidth_gain}"
            )
        _check_fraction("random_write_penalty", self.random_write_penalty)
        _check_fraction("stream_write_penalty", self.stream_write_penalty)

    def device(self) -> "MemoryDevice":
        """Materialize the device model (imported lazily; see module doc)."""
        from repro.memory.device import MemoryDevice

        return MemoryDevice(
            name=self.name,
            capacity_bytes=self.capacity_bytes,
            channels=self.channels,
            idle_latency_ns=self.idle_latency_ns,
            peak_bandwidth=self.peak_bandwidth,
            stream_efficiency_1t=self.stream_efficiency_1t,
            smt_bandwidth_gain=self.smt_bandwidth_gain,
            random_bandwidth_cap=self.random_bandwidth_cap,
            random_write_penalty=self.random_write_penalty,
            stream_write_penalty=self.stream_write_penalty,
        )


@dataclass(frozen=True)
class CoreSpec:
    """Per-core microarchitecture parameters (see :class:`~repro.machine.core.Core`)."""

    frequency_ghz: float
    smt_threads: int
    mlp_sequential: float
    mlp_random: float
    dp_flops_per_cycle: float
    issue_efficiency: tuple[float, ...]
    outstanding_line_cap: float

    def __post_init__(self) -> None:
        check_positive("frequency_ghz", self.frequency_ghz)
        check_positive("smt_threads", self.smt_threads)
        check_positive("mlp_sequential", self.mlp_sequential)
        check_positive("mlp_random", self.mlp_random)
        check_positive("dp_flops_per_cycle", self.dp_flops_per_cycle)
        check_positive("outstanding_line_cap", self.outstanding_line_cap)
        object.__setattr__(
            self, "issue_efficiency", tuple(self.issue_efficiency)
        )
        if len(self.issue_efficiency) < self.smt_threads:
            raise ValueError(
                f"issue_efficiency needs one factor per SMT level "
                f"(got {len(self.issue_efficiency)} for {self.smt_threads} threads)"
            )
        for factor in self.issue_efficiency:
            _check_fraction("issue_efficiency", factor, low_open=True)


@dataclass(frozen=True)
class CacheLevelSpec:
    """One cache level; mirrors :class:`~repro.machine.caches.CacheGeometry`."""

    name: str
    capacity_bytes: int
    line_bytes: int = 64
    associativity: int = 8
    load_to_use_ns: float = 1.0

    def __post_init__(self) -> None:
        # CacheGeometry carries the full validation (divisibility etc.);
        # building it here makes an invalid spec fail at construction.
        self.geometry()

    def geometry(self) -> CacheGeometry:
        return CacheGeometry(
            name=self.name,
            capacity_bytes=self.capacity_bytes,
            line_bytes=self.line_bytes,
            associativity=self.associativity,
            load_to_use_ns=self.load_to_use_ns,
        )


@dataclass(frozen=True)
class MeshSpec:
    """Tile-mesh shape and interconnect timing."""

    rows: int
    cols: int
    num_tiles: int
    hop_latency_ns: float = 1.6
    cluster_mode: str = "quadrant"

    def __post_init__(self) -> None:
        check_positive("rows", self.rows)
        check_positive("cols", self.cols)
        check_positive("num_tiles", self.num_tiles)
        check_positive("hop_latency_ns", self.hop_latency_ns)
        if self.num_tiles > self.rows * self.cols:
            raise ValueError(
                f"{self.num_tiles} tiles do not fit a {self.rows}x{self.cols} mesh"
            )
        from repro.machine.mesh import ClusterMode

        ClusterMode(self.cluster_mode)  # raises on unknown mode strings


@dataclass(frozen=True)
class MachineSpec:
    """A complete declarative machine description.

    ``key`` is the registry identifier ("knl7210", "xeonmax9480", ...);
    ``name`` the human-readable model name used in exhibit output.
    ``supported_modes`` lists the memory modes the platform's firmware
    offers, as strings from :data:`MEMORY_MODES`.
    """

    key: str
    name: str
    core: CoreSpec
    mesh: MeshSpec
    l1d: CacheLevelSpec
    l2: CacheLevelSpec
    near_tier: MemoryTierSpec
    far_tier: MemoryTierSpec
    supported_modes: tuple[str, ...] = MEMORY_MODES

    def __post_init__(self) -> None:
        if not self.key or not self.key.replace("_", "").isalnum():
            raise ValueError(f"spec key must be a simple identifier, got {self.key!r}")
        if self.key != self.key.lower():
            raise ValueError(f"spec key must be lowercase, got {self.key!r}")
        if not self.name:
            raise ValueError("machine spec needs a display name")
        object.__setattr__(
            self, "supported_modes", tuple(self.supported_modes)
        )
        if not self.supported_modes:
            raise ValueError("a machine must support at least one memory mode")
        unknown = [m for m in self.supported_modes if m not in MEMORY_MODES]
        if unknown:
            raise ValueError(
                f"unknown memory modes {unknown}; expected a subset of {MEMORY_MODES}"
            )
        if len(set(self.supported_modes)) != len(self.supported_modes):
            raise ValueError(f"duplicate memory modes in {self.supported_modes}")
        needs_cache = {"cache", "hybrid"} & set(self.supported_modes)
        if needs_cache and not self.near_tier.cache_capable:
            raise ValueError(
                f"{sorted(needs_cache)} modes require a cache-capable near "
                f"tier, but {self.near_tier.name} is not"
            )

    # -- derived ------------------------------------------------------------
    @property
    def num_cores(self) -> int:
        return 2 * self.mesh.num_tiles

    # -- canonicalization ---------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """A JSON-compatible canonical form; exact inverse of :meth:`from_dict`."""
        out = dataclasses.asdict(self)
        out["supported_modes"] = list(self.supported_modes)
        out["core"]["issue_efficiency"] = list(self.core.issue_efficiency)
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "MachineSpec":
        data = dict(data)
        return cls(
            key=data["key"],
            name=data["name"],
            core=CoreSpec(
                **{
                    **data["core"],
                    "issue_efficiency": tuple(data["core"]["issue_efficiency"]),
                }
            ),
            mesh=MeshSpec(**data["mesh"]),
            l1d=CacheLevelSpec(**data["l1d"]),
            l2=CacheLevelSpec(**data["l2"]),
            near_tier=MemoryTierSpec(**data["near_tier"]),
            far_tier=MemoryTierSpec(**data["far_tier"]),
            supported_modes=tuple(data["supported_modes"]),
        )

    # -- construction -------------------------------------------------------
    def build(self) -> "Machine":
        """Materialize the runnable machine model for this spec."""
        from repro.machine.mesh import ClusterMode, Mesh2D
        from repro.machine.tile import Tile
        from repro.machine.topology import Machine

        core_kwargs = dict(
            frequency_ghz=self.core.frequency_ghz,
            smt_threads=self.core.smt_threads,
            mlp_sequential=self.core.mlp_sequential,
            mlp_random=self.core.mlp_random,
            dp_flops_per_cycle=self.core.dp_flops_per_cycle,
            issue_efficiency=self.core.issue_efficiency,
            outstanding_line_cap=self.core.outstanding_line_cap,
        )
        tiles = tuple(
            Tile.build(
                tile_id=t,
                first_core_id=2 * t,
                l2=self.l2.geometry(),
                **core_kwargs,
            )
            for t in range(self.mesh.num_tiles)
        )
        mesh = Mesh2D(
            rows=self.mesh.rows,
            cols=self.mesh.cols,
            tiles=tiles,
            hop_latency_ns=self.mesh.hop_latency_ns,
            cluster_mode=ClusterMode(self.mesh.cluster_mode),
        )
        return Machine(
            name=self.name, mesh=mesh, l1d=self.l1d.geometry(), spec=self
        )
