"""Cache geometry and a functional set-associative cache simulator.

Two distinct uses:

* :class:`CacheGeometry` instances parameterize the *analytic* performance
  engine (capacities and load-to-use latencies set the Fig. 3 tiers).
* :class:`SetAssociativeCache` is a small *functional* simulator driven by
  explicit address streams.  It exists to validate the analytic models in
  tests (e.g. that a direct-mapped cache really shows the conflict behaviour
  the MCDRAM-cache model assumes) and to let property-based tests assert
  conservation invariants (hits + misses == accesses, occupancy <= capacity).

The functional simulator is vectorization-friendly: :meth:`access_block`
accepts a numpy address array and processes it in one pass per set using
sorted grouping rather than a Python-per-access loop, following the
"vectorize the hot loop" idiom of the HPC guides.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.units import CACHE_LINE, KiB, MiB
from repro.util.validation import check_positive


@dataclass(frozen=True)
class CacheGeometry:
    """Static description of one cache level.

    Parameters
    ----------
    name:
        Human-readable level name ("L1D", "L2", "MCDRAM-cache").
    capacity_bytes:
        Total data capacity.
    line_bytes:
        Cache-line size; 64 B everywhere on KNL.
    associativity:
        Number of ways; ``1`` means direct-mapped (the MCDRAM cache).
    load_to_use_ns:
        Load-to-use hit latency in nanoseconds.
    """

    name: str
    capacity_bytes: int
    line_bytes: int = CACHE_LINE
    associativity: int = 8
    load_to_use_ns: float = 1.0

    def __post_init__(self) -> None:
        check_positive("capacity_bytes", self.capacity_bytes)
        check_positive("line_bytes", self.line_bytes)
        check_positive("associativity", self.associativity)
        check_positive("load_to_use_ns", self.load_to_use_ns)
        if self.capacity_bytes % self.line_bytes:
            raise ValueError(
                f"{self.name}: capacity {self.capacity_bytes} not a multiple of "
                f"line size {self.line_bytes}"
            )
        if self.num_lines % self.associativity:
            raise ValueError(
                f"{self.name}: {self.num_lines} lines not divisible by "
                f"{self.associativity} ways"
            )

    @property
    def num_lines(self) -> int:
        return self.capacity_bytes // self.line_bytes

    @property
    def num_sets(self) -> int:
        return self.num_lines // self.associativity

    @property
    def is_direct_mapped(self) -> bool:
        return self.associativity == 1


def knl_l1d() -> CacheGeometry:
    """The private 32 KB L1 data cache of a KNL core (Section II)."""
    return CacheGeometry(
        name="L1D",
        capacity_bytes=32 * KiB,
        associativity=8,
        load_to_use_ns=4 / 1.3,  # ~4 cycles at 1.3 GHz
    )


def knl_l2() -> CacheGeometry:
    """The 1 MB L2 cache shared by the two cores of a tile.

    The ~10 ns tier of Fig. 3 for blocks below 1 MB is the L2 hit latency
    (the paper excludes L1 from the TinyMemBench measurement).
    """
    return CacheGeometry(
        name="L2",
        capacity_bytes=1 * MiB,
        associativity=16,
        load_to_use_ns=10.0,
    )


@dataclass
class CacheStats:
    """Counters reported by :class:`SetAssociativeCache`."""

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


class SetAssociativeCache:
    """Functional LRU set-associative cache over byte addresses.

    LRU is exact.  Addresses are byte addresses; each access touches the
    line containing the address (accesses never straddle lines — the
    simulator is used with line-aligned synthetic streams).
    """

    def __init__(self, geometry: CacheGeometry) -> None:
        self.geometry = geometry
        self.stats = CacheStats()
        # tags[set, way] holds the line tag; -1 means invalid.
        self._tags = np.full(
            (geometry.num_sets, geometry.associativity), -1, dtype=np.int64
        )
        # lru[set, way]: larger = more recently used.
        self._lru = np.zeros(
            (geometry.num_sets, geometry.associativity), dtype=np.int64
        )
        self._clock = 0

    # -- single-access path -------------------------------------------------
    def _line_of(self, address: int) -> int:
        return address // self.geometry.line_bytes

    def _set_of(self, line: int) -> int:
        return line % self.geometry.num_sets

    def access(self, address: int) -> bool:
        """Touch ``address``; returns True on hit.  Misses fill with LRU
        replacement."""
        if address < 0:
            raise ValueError(f"address must be non-negative, got {address}")
        line = self._line_of(address)
        set_idx = self._set_of(line)
        self._clock += 1
        self.stats.accesses += 1
        ways = self._tags[set_idx]
        hit_ways = np.nonzero(ways == line)[0]
        if hit_ways.size:
            self._lru[set_idx, hit_ways[0]] = self._clock
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        empty = np.nonzero(ways == -1)[0]
        if empty.size:
            victim = int(empty[0])
        else:
            victim = int(np.argmin(self._lru[set_idx]))
            self.stats.evictions += 1
        self._tags[set_idx, victim] = line
        self._lru[set_idx, victim] = self._clock
        return False

    # -- vectorized path ----------------------------------------------------
    def access_block(self, addresses: np.ndarray) -> np.ndarray:
        """Process an address stream; returns a boolean hit mask.

        Semantically identical to calling :meth:`access` in order; the
        implementation only avoids Python-level attribute traffic, not the
        per-access state update (LRU needs sequential state).
        """
        addresses = np.asarray(addresses, dtype=np.int64)
        if addresses.ndim != 1:
            raise ValueError("addresses must be a 1-D array")
        if addresses.size and addresses.min() < 0:
            raise ValueError("addresses must be non-negative")
        hits = np.empty(addresses.size, dtype=bool)
        lines = addresses // self.geometry.line_bytes
        sets = lines % self.geometry.num_sets
        tags = self._tags
        lru = self._lru
        clock = self._clock
        n_hits = 0
        n_evict = 0
        for i in range(addresses.size):
            set_idx = sets[i]
            line = lines[i]
            clock += 1
            ways = tags[set_idx]
            pos = -1
            for w in range(ways.shape[0]):
                if ways[w] == line:
                    pos = w
                    break
            if pos >= 0:
                lru[set_idx, pos] = clock
                hits[i] = True
                n_hits += 1
                continue
            hits[i] = False
            victim = -1
            for w in range(ways.shape[0]):
                if ways[w] == -1:
                    victim = w
                    break
            if victim < 0:
                victim = int(np.argmin(lru[set_idx]))
                n_evict += 1
            tags[set_idx, victim] = line
            lru[set_idx, victim] = clock
        self._clock = clock
        self.stats.accesses += int(addresses.size)
        self.stats.hits += n_hits
        self.stats.misses += int(addresses.size) - n_hits
        self.stats.evictions += n_evict
        return hits

    def occupancy(self) -> int:
        """Number of valid lines currently resident."""
        return int((self._tags != -1).sum())

    def contains(self, address: int) -> bool:
        """True if the line holding ``address`` is resident (no LRU update)."""
        line = self._line_of(address)
        return bool((self._tags[self._set_of(line)] == line).any())

    def flush(self) -> None:
        """Invalidate all lines; statistics are preserved."""
        self._tags.fill(-1)
        self._lru.fill(0)
