"""Tile model: two cores sharing a 1 MB L2 (Fig. 1 of the paper)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.machine.caches import CacheGeometry, knl_l2
from repro.machine.core import Core


@dataclass(frozen=True)
class Tile:
    """One mesh tile: a core pair plus the shared L2 slice.

    The distributed tag directory (MESIF) lives per tile; remote-L2
    forwarding latency is modelled in :class:`repro.machine.mesh.Mesh2D`.
    """

    tile_id: int
    cores: tuple[Core, Core]
    l2: CacheGeometry

    def __post_init__(self) -> None:
        if self.tile_id < 0:
            raise ValueError(f"tile_id must be >= 0, got {self.tile_id}")
        if len(self.cores) != 2:
            raise ValueError(f"a KNL tile has exactly 2 cores, got {len(self.cores)}")

    @classmethod
    def build(
        cls,
        tile_id: int,
        first_core_id: int,
        l2: CacheGeometry | None = None,
        **core_kwargs: object,
    ) -> "Tile":
        """Construct a tile with consecutive core ids.

        ``l2`` defaults to the standard KNL geometry; machine specs pass
        their own.
        """
        cores = (
            Core(core_id=first_core_id, **core_kwargs),  # type: ignore[arg-type]
            Core(core_id=first_core_id + 1, **core_kwargs),  # type: ignore[arg-type]
        )
        return cls(
            tile_id=tile_id, cores=cores, l2=l2 if l2 is not None else knl_l2()
        )

    @property
    def l2_capacity_bytes(self) -> int:
        return self.l2.capacity_bytes

    @property
    def core_ids(self) -> tuple[int, int]:
        return (self.cores[0].core_id, self.cores[1].core_id)
