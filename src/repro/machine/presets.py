"""Machine presets.

:func:`knl7210` is the paper's testbed (Archer KNL nodes, Section III-A).
:func:`knl7250` (Cori's part) is provided for what-if studies and tests that
need a second configuration.

Both are thin wrappers over the declarative machine registry
(:mod:`repro.machine.registry`): the specs registered there reproduce the
historical hand-built presets bit-for-bit, which the KNL equivalence
golden test pins.
"""

from __future__ import annotations

import dataclasses

from repro.machine import registry
from repro.machine.mesh import ClusterMode
from repro.machine.topology import KNLMachine


def _build_preset(key: str, cluster_mode: ClusterMode) -> KNLMachine:
    spec = registry.get(key)
    if cluster_mode.value != spec.mesh.cluster_mode:
        spec = dataclasses.replace(
            spec,
            mesh=dataclasses.replace(spec.mesh, cluster_mode=cluster_mode.value),
        )
    return spec.build()


def knl7210(cluster_mode: ClusterMode = ClusterMode.QUADRANT) -> KNLMachine:
    """Xeon Phi 7210: 64 cores (32 tiles) @ 1.3 GHz — the Archer testbed."""
    return _build_preset("knl7210", cluster_mode)


def knl7250(cluster_mode: ClusterMode = ClusterMode.QUADRANT) -> KNLMachine:
    """Xeon Phi 7250: 68 cores (34 tiles) @ 1.4 GHz — the Cori configuration."""
    return _build_preset("knl7250", cluster_mode)
