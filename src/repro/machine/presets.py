"""Machine presets.

:func:`knl7210` is the paper's testbed (Archer KNL nodes, Section III-A).
:func:`knl7250` (Cori's part) is provided for what-if studies and tests that
need a second configuration.
"""

from __future__ import annotations

from repro.machine.caches import knl_l1d
from repro.machine.mesh import ClusterMode, Mesh2D
from repro.machine.tile import Tile
from repro.machine.topology import KNLMachine


def _build_machine(
    name: str,
    num_tiles: int,
    rows: int,
    cols: int,
    frequency_ghz: float,
    cluster_mode: ClusterMode,
) -> KNLMachine:
    tiles = tuple(
        Tile.build(tile_id=t, first_core_id=2 * t, frequency_ghz=frequency_ghz)
        for t in range(num_tiles)
    )
    mesh = Mesh2D(
        rows=rows,
        cols=cols,
        tiles=tiles,
        cluster_mode=cluster_mode,
    )
    return KNLMachine(name=name, mesh=mesh, l1d=knl_l1d())


def knl7210(cluster_mode: ClusterMode = ClusterMode.QUADRANT) -> KNLMachine:
    """Xeon Phi 7210: 64 cores (32 tiles) @ 1.3 GHz — the Archer testbed."""
    return _build_machine(
        name="Intel Xeon Phi 7210",
        num_tiles=32,
        rows=4,
        cols=8,
        frequency_ghz=1.3,
        cluster_mode=cluster_mode,
    )


def knl7250(cluster_mode: ClusterMode = ClusterMode.QUADRANT) -> KNLMachine:
    """Xeon Phi 7250: 68 cores (34 tiles) @ 1.4 GHz — the Cori configuration."""
    return _build_machine(
        name="Intel Xeon Phi 7250",
        num_tiles=34,
        rows=5,
        cols=7,
        frequency_ghz=1.4,
        cluster_mode=cluster_mode,
    )
