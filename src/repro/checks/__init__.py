"""Model-invariant checking: registry, runtime checker, batch audits.

Public surface:

* :data:`~repro.checks.invariants.REGISTRY` and the
  :func:`~repro.checks.invariants.invariant` decorator — the declarative
  invariant registry (see docs/TESTING.md for the catalogue);
* :class:`~repro.checks.checker.CheckingRunner` and the ``check_run`` /
  ``check_sweep`` / ``check_exhibit`` entry points — runtime checking,
  wired into :class:`~repro.core.executor.SweepExecutor` via its
  ``check=`` parameter, the ``--check`` CLI flag and ``REPRO_CHECK``;
* :mod:`repro.checks.batch` (imported lazily by the CLI) — the
  ``make check`` pass over every exhibit.
"""

from repro.checks.checker import (
    CheckingRunner,
    CheckMode,
    CheckReport,
    InvariantViolation,
    check_exhibit,
    check_mode_from_env,
    check_run,
    check_sweep,
)
from repro.checks.invariants import (
    REGISTRY,
    ExhibitContext,
    Invariant,
    RunContext,
    Scope,
    SweepContext,
    SweepEntry,
    Violation,
    invariant,
    unregister,
)
from repro.checks.window import MetricsWindow, metrics_window

__all__ = [
    "REGISTRY",
    "Scope",
    "Invariant",
    "Violation",
    "invariant",
    "unregister",
    "RunContext",
    "SweepEntry",
    "SweepContext",
    "ExhibitContext",
    "CheckMode",
    "CheckReport",
    "CheckingRunner",
    "InvariantViolation",
    "check_run",
    "check_sweep",
    "check_exhibit",
    "check_mode_from_env",
    "MetricsWindow",
    "metrics_window",
]
