"""Metrics windows: per-run deltas over the observability stream.

The invariants in :mod:`repro.checks.invariants` audit *event
conservation* — bytes moved per device, MCDRAM-cache hits/misses, TLB
walks — and those events accumulate in the global
:class:`~repro.obs.metrics.MetricsRegistry` across every run of a
session.  A :class:`MetricsWindow` brackets exactly one run: it
snapshots the relevant counters before the run, reads them again after,
and exposes the difference, so a checker can ask "how many DRAM bytes
did *this* run move" regardless of what ran before it.

When no observation session is active, :func:`metrics_window`
temporarily installs a private registry for the duration of the run and
uninstalls it afterwards — checking works identically with or without
``--trace-out``/``--metrics-out``.  A module-level lock serializes
windowed runs within one process (two concurrent runs would blend their
deltas); under the ``processes`` sweep strategy each worker has its own
lock and registry, so checked sweeps still parallelize across processes.
"""

from __future__ import annotations

import threading
from collections.abc import Iterator, Mapping
from contextlib import contextmanager
from typing import Any

from repro.obs import metrics as obs_metrics
from repro.obs.metrics import MetricsRegistry

__all__ = ["MetricsWindow", "metrics_window", "COUNTER_KEYS", "GAUGE_KEYS"]

_PATTERNS = ("sequential", "random")

#: Counters whose per-run deltas the invariants consume.
COUNTER_KEYS: tuple[tuple[str, dict[str, str] | None], ...] = tuple(
    [("model.bytes_moved", {"device": d}) for d in ("dram", "mcdram")]
    + [
        (f"mcdram_cache.{event}", {"pattern": p})
        for event in ("accesses", "hits", "misses", "conflict_misses")
        for p in _PATTERNS
    ]
    + [("tlb.l1_misses", None), ("tlb.walks", None)]
)

#: Gauges read at window close (last-written semantics; no delta).
GAUGE_KEYS: tuple[tuple[str, dict[str, str] | None], ...] = tuple(
    [("mcdram_cache.hit_rate", {"pattern": p}) for p in _PATTERNS]
    + [("tlb.walk_depth", None)]
)

# One windowed run at a time per process: concurrent runs in the same
# registry would blend their counter deltas.
_WINDOW_LOCK = threading.Lock()


def _key(name: str, labels: Mapping[str, Any] | None) -> tuple[str, tuple]:
    return (name, tuple(sorted(labels.items())) if labels else ())


class MetricsWindow:
    """Before/after counter deltas (and closing gauges) for one run."""

    def __init__(self, registry: MetricsRegistry) -> None:
        self._registry = registry
        self._before = {
            _key(name, labels): registry.counter_value(name, labels)
            for name, labels in COUNTER_KEYS
        }
        self._deltas: dict[tuple[str, tuple], float] | None = None
        self._gauges: dict[tuple[str, tuple], float | None] | None = None

    def finish(self) -> None:
        """Read the after-side; the window becomes queryable."""
        registry = self._registry
        self._deltas = {
            _key(name, labels): registry.counter_value(name, labels)
            - self._before[_key(name, labels)]
            for name, labels in COUNTER_KEYS
        }
        self._gauges = {
            _key(name, labels): registry.gauge_value(name, labels)
            for name, labels in GAUGE_KEYS
        }

    @property
    def finished(self) -> bool:
        return self._deltas is not None

    def delta(self, name: str, labels: Mapping[str, Any] | None = None) -> float:
        """Counter increase across the window (0.0 when never written)."""
        if self._deltas is None:
            raise RuntimeError("window not finished; call finish() first")
        try:
            return self._deltas[_key(name, labels)]
        except KeyError:
            raise KeyError(
                f"{name!r} with labels {labels!r} is not a windowed counter"
            ) from None

    def gauge(
        self, name: str, labels: Mapping[str, Any] | None = None
    ) -> float | None:
        """Gauge value at window close (None when never written)."""
        if self._gauges is None:
            raise RuntimeError("window not finished; call finish() first")
        try:
            return self._gauges[_key(name, labels)]
        except KeyError:
            raise KeyError(
                f"{name!r} with labels {labels!r} is not a windowed gauge"
            ) from None


@contextmanager
def metrics_window() -> Iterator[MetricsWindow]:
    """Bracket one run with a :class:`MetricsWindow`.

    Reuses the session's registry when one is installed (the window is
    purely a pair of snapshots — nothing the user exports changes);
    otherwise installs a private registry for the duration and removes
    it on exit, leaving the global no-op fast path exactly as found.
    """
    with _WINDOW_LOCK:
        registry = obs_metrics.active_registry()
        temporary = registry is None
        if temporary:
            registry = obs_metrics.install()
        window = MetricsWindow(registry)
        try:
            yield window
        finally:
            window.finish()
            if temporary:
                obs_metrics.uninstall()
