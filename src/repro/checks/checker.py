"""The runtime invariant checker.

Three entry points evaluate the registry of
:mod:`repro.checks.invariants` at its three scopes:

* :func:`check_run` — one record (optionally with a metrics window),
* :func:`check_sweep` — one completed sweep batch,
* :func:`check_exhibit` — one rendered exhibit,

each returning a :class:`CheckReport` (which invariants were applicable,
which were violated).  :class:`CheckingRunner` wraps any runner-shaped
object (:class:`~repro.core.runner.ExperimentRunner` or a
:class:`~repro.core.executor.SweepExecutor`'s inner runner) so that
every ``run()`` executes inside a metrics window and is audited on the
way out — this is what the ``--check`` CLI flag, the ``REPRO_CHECK``
environment variable and ``make check`` all build on.

Violation handling is one of three policies:

* ``raise`` (default) — throw :class:`InvariantViolation`,
* ``warn`` — print each violation to stderr and continue,
* a ``collect`` list — append and continue (the batch checker's mode;
  only meaningful with the serial/threads strategies, as a process-pool
  worker's list never travels back).
"""

from __future__ import annotations

import enum
import sys
import threading
from collections.abc import Mapping, Sequence
from dataclasses import dataclass
from typing import Any

from repro.checks.invariants import (
    REGISTRY,
    ExhibitContext,
    RunContext,
    Scope,
    SweepContext,
    SweepEntry,
    Violation,
)
from repro.checks.window import metrics_window
from repro.core.configs import ConfigName, SystemConfig, make_config
from repro.core.runner import ExperimentRunner, RunRecord
from repro.machine.topology import KNLMachine
from repro.obs import metrics as obs_metrics
from repro.runtime.simos import memory_system_for
from repro.workloads.base import Workload

__all__ = [
    "CheckMode",
    "CheckReport",
    "InvariantViolation",
    "CheckingRunner",
    "check_run",
    "check_sweep",
    "check_exhibit",
    "check_mode_from_env",
]


class CheckMode(enum.Enum):
    """What to do when an invariant is violated."""

    WARN = "warn"
    RAISE = "raise"

    @classmethod
    def parse(cls, value: "CheckMode | str") -> "CheckMode":
        if isinstance(value, cls):
            return value
        try:
            return cls(str(value).lower())
        except ValueError:
            options = ", ".join(m.value for m in cls)
            raise ValueError(
                f"unknown check mode {value!r}; expected one of {options}"
            ) from None


_ENV_FALSY = {"", "0", "false", "off", "no"}


def check_mode_from_env(
    env: Mapping[str, str] | None = None,
) -> "str | None":
    """Interpret ``REPRO_CHECK``: unset/falsy -> None, ``warn`` -> warn,
    anything else truthy (``1``, ``raise``, ...) -> raise."""
    import os

    environ = env if env is not None else os.environ
    raw = environ.get("REPRO_CHECK", "").strip().lower()
    if raw in _ENV_FALSY:
        return None
    return raw if raw in {m.value for m in CheckMode} else CheckMode.RAISE.value


class InvariantViolation(AssertionError):
    """Raised in ``raise`` mode; carries the full violation list."""

    def __init__(self, violations: Sequence[Violation]) -> None:
        self.violations = tuple(violations)
        lines = [f"{len(self.violations)} invariant violation(s):"]
        lines += [f"  {v.describe()}" for v in self.violations]
        super().__init__("\n".join(lines))


@dataclass(frozen=True)
class CheckReport:
    """Outcome of one checker evaluation."""

    #: Names of the invariants that were applicable and ran.
    evaluated: tuple[str, ...]
    violations: tuple[Violation, ...]

    @property
    def ok(self) -> bool:
        return not self.violations


def _evaluate(scope: Scope, ctx: Any) -> CheckReport:
    evaluated: list[str] = []
    violations: list[Violation] = []
    for inv in REGISTRY.values():
        if inv.scope is not scope:
            continue
        result = inv.fn(ctx)
        if result is None:
            continue  # not applicable to this subject
        evaluated.append(inv.name)
        violations.extend(result)
    return CheckReport(tuple(evaluated), tuple(violations))


def check_run(
    machine: KNLMachine,
    workload: Workload,
    config: "SystemConfig | ConfigName",
    num_threads: int,
    record: RunRecord,
    window: "object | None" = None,
) -> CheckReport:
    """Evaluate every run-scope invariant against one record.

    ``window`` is the run's :class:`~repro.checks.window.MetricsWindow`;
    without one the event-conservation invariants report not-applicable
    and only the record-level laws (capacity, timing, Little's law) run.
    """
    resolved = make_config(config) if isinstance(config, ConfigName) else config
    ctx = RunContext(
        machine=machine,
        memory=memory_system_for(machine, resolved.mcdram),
        workload=workload,
        config=resolved,
        num_threads=num_threads,
        record=record,
        profile=(
            workload.profile_cached() if record.run_result is not None else None
        ),
        window=window,
    )
    return _evaluate(Scope.RUN, ctx)


def check_sweep(
    entries: Sequence[
        "SweepEntry | tuple[Workload, SystemConfig, int, RunRecord]"
    ],
    *,
    machine: KNLMachine,
    axis: str,
) -> CheckReport:
    """Evaluate every sweep-scope invariant against one batch.

    ``axis`` is ``"size"`` or ``"threads"`` — which sweep axis varied.
    """
    normalized = tuple(
        entry if isinstance(entry, SweepEntry) else SweepEntry(*entry)
        for entry in entries
    )
    ctx = SweepContext(machine=machine, axis=axis, entries=normalized)
    return _evaluate(Scope.SWEEP, ctx)


def check_exhibit(exhibit: "object") -> CheckReport:
    """Evaluate every exhibit-scope invariant against one exhibit."""
    return _evaluate(Scope.EXHIBIT, ExhibitContext(exhibit))


class CheckingRunner:
    """Runner wrapper auditing every run against the invariant registry.

    Duck-compatible with :class:`~repro.core.runner.ExperimentRunner`
    (``machine``, ``run``, ``run_configs``), so it slots between a
    :class:`~repro.core.executor.SweepExecutor` and its runner — or can
    be used directly.  Each run executes inside a metrics window (see
    :mod:`repro.checks.window`), which serializes checked runs within a
    process; the ``processes`` sweep strategy still checks in parallel,
    one window per worker.

    Parameters
    ----------
    runner:
        The wrapped runner (default: a fresh ``ExperimentRunner``).
    mode:
        ``"raise"`` or ``"warn"`` — violation policy when ``collect`` is
        not given.
    collect:
        Optional list; violations are appended instead of raised/warned.
    """

    def __init__(
        self,
        runner: ExperimentRunner | None = None,
        *,
        mode: "CheckMode | str" = CheckMode.RAISE,
        collect: "list[Violation] | None" = None,
    ) -> None:
        self.runner = runner if runner is not None else ExperimentRunner()
        self.mode = CheckMode.parse(mode)
        self.collect = collect
        self.runs_checked = 0
        self.invariants_evaluated = 0
        self.violation_count = 0
        self.evaluated_names: set[str] = set()
        self._lock = threading.Lock()

    # The lock must not travel to process-pool workers (it cannot be
    # pickled); each worker rebuilds its own.
    def __getstate__(self) -> dict[str, Any]:
        state = self.__dict__.copy()
        del state["_lock"]
        return state

    def __setstate__(self, state: dict[str, Any]) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()

    # -- runner compatibility -------------------------------------------------
    @property
    def machine(self) -> KNLMachine:
        return self.runner.machine

    def run(
        self,
        workload: Workload,
        config: "SystemConfig | ConfigName",
        num_threads: int = 64,
    ) -> RunRecord:
        """Run one cell under a metrics window and audit it."""
        with metrics_window() as window:
            record = self.runner.run(workload, config, num_threads)
        # Evaluate after the window closes so a temporary registry is
        # already uninstalled and ``checks.*`` counters land in the
        # user's session registry, if any.
        report = check_run(
            self.machine, workload, config, num_threads, record, window
        )
        self.handle_report(report)
        return record

    def run_configs(
        self,
        workload: Workload,
        configs: "tuple[SystemConfig | ConfigName, ...] | None" = None,
        num_threads: int = 64,
    ) -> list[RunRecord]:
        if configs is None:
            configs = ConfigName.paper_trio()
        return [self.run(workload, c, num_threads) for c in configs]

    # -- violation policy -----------------------------------------------------
    def handle_report(self, report: CheckReport) -> None:
        """Account a report and apply the violation policy."""
        with self._lock:
            self.runs_checked += 1
            self.invariants_evaluated += len(report.evaluated)
            self.violation_count += len(report.violations)
            self.evaluated_names.update(report.evaluated)
        obs_metrics.add("checks.evaluated", float(len(report.evaluated)))
        if not report.violations:
            return
        obs_metrics.add("checks.violations", float(len(report.violations)))
        if self.collect is not None:
            self.collect.extend(report.violations)
            return
        if self.mode is CheckMode.WARN:
            for violation in report.violations:
                print(f"[check] {violation.describe()}", file=sys.stderr)
            return
        raise InvariantViolation(report.violations)
