"""Batch checking: every exhibit, every invariant, one report.

``make check`` (and ``python -m repro check``) drives
:func:`check_exhibits`: all 15 exhibits are regenerated through one
:class:`~repro.core.executor.SweepExecutor` whose runner is a
collecting :class:`~repro.checks.checker.CheckingRunner`, so every
sweep cell is audited at run scope, every sweep at sweep scope, and
every rendered exhibit at exhibit scope.  The per-exhibit rendered text
is kept on the result, letting the golden-identity suite assert that a
fully checked pass is byte-identical to the unchecked goldens.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.checks.checker import CheckingRunner, check_exhibit
from repro.checks.invariants import Violation
from repro.core.executor import ExecutionStrategy, SweepExecutor
from repro.core.runner import ExperimentRunner
from repro.figures import EXHIBITS
from repro.machine.topology import KNLMachine

__all__ = ["ExhibitCheck", "BatchReport", "check_exhibits"]


@dataclass(frozen=True)
class ExhibitCheck:
    """Checking outcome for one exhibit."""

    exhibit_id: str
    #: Invariant evaluations attributed to this exhibit (runs + sweeps +
    #: the exhibit itself).
    evaluated: int
    violations: tuple[Violation, ...]
    #: The exhibit's rendered text (for golden-identity comparison).
    rendered: str

    @property
    def ok(self) -> bool:
        return not self.violations


@dataclass(frozen=True)
class BatchReport:
    """Aggregate of one :func:`check_exhibits` pass."""

    checks: tuple[ExhibitCheck, ...]

    @property
    def ok(self) -> bool:
        return all(check.ok for check in self.checks)

    @property
    def total_evaluated(self) -> int:
        return sum(check.evaluated for check in self.checks)

    @property
    def total_violations(self) -> int:
        return sum(len(check.violations) for check in self.checks)

    def render(self) -> str:
        lines = []
        for check in self.checks:
            status = "OK  " if check.ok else "FAIL"
            lines.append(
                f"{status} {check.exhibit_id:<8} "
                f"{check.evaluated:>4} invariant evaluations, "
                f"{len(check.violations)} violation(s)"
            )
            lines.extend(f"     {v.describe()}" for v in check.violations)
        lines.append(
            f"{len(self.checks)} exhibits, {self.total_evaluated} invariant "
            f"evaluations, {self.total_violations} violation(s)"
        )
        return "\n".join(lines)


def check_exhibits(
    exhibit_ids: "tuple[str, ...] | None" = None,
    *,
    machine: KNLMachine | None = None,
    jobs: int = 1,
    strategy: "ExecutionStrategy | str | None" = None,
    cache_dir: "str | os.PathLike[str] | None" = None,
) -> BatchReport:
    """Regenerate exhibits under full invariant checking.

    One executor (and hence one run cache) serves the whole batch:
    repeated cells across exhibits are reused, which is sound because a
    cached record was itself audited under the same check configuration
    (the check mode is part of the cache key) — and the sweep- and
    exhibit-scope invariants always re-run.
    """
    ids = tuple(exhibit_ids) if exhibit_ids is not None else tuple(EXHIBITS)
    unknown = [i for i in ids if i not in EXHIBITS]
    if unknown:
        raise ValueError(f"unknown exhibit(s): {unknown}; known: {list(EXHIBITS)}")
    violations: list[Violation] = []
    runner = CheckingRunner(ExperimentRunner(machine), collect=violations)
    checks: list[ExhibitCheck] = []
    with SweepExecutor(
        runner, jobs=jobs, strategy=strategy, cache_dir=cache_dir
    ) as executor:
        for exhibit_id in ids:
            generate = EXHIBITS[exhibit_id]
            seen_violations = len(violations)
            seen_evaluated = runner.invariants_evaluated
            try:
                exhibit = generate(executor)  # type: ignore[call-arg]
            except TypeError:
                exhibit = generate()  # table generators take no runner
            report = check_exhibit(exhibit)
            runner.handle_report(report)
            checks.append(
                ExhibitCheck(
                    exhibit_id=exhibit_id,
                    evaluated=runner.invariants_evaluated - seen_evaluated,
                    violations=tuple(violations[seen_violations:]),
                    rendered=exhibit.render(),
                )
            )
    return BatchReport(tuple(checks))
