"""The declarative invariant registry.

Every invariant encodes a physical accounting law or a paper-grounded
ordering the simulation must obey *by construction* — Little's law
(Section IV), per-device byte conservation, MCDRAM-cache and TLB event
conservation (Sections II and IV-A, Fig. 3), NUMA capacity feasibility
(``--membind=1`` beyond 16 GB must fail, Section III-C) and the
cross-configuration orderings behind Figs. 2-6.  The checker
(:mod:`repro.checks.checker`) evaluates them at three scopes:

* ``run`` — one :class:`~repro.core.runner.RunRecord`, optionally with a
  :class:`~repro.checks.window.MetricsWindow` of the run's metric deltas;
* ``sweep`` — one batch of sweep cells (a size or thread axis);
* ``exhibit`` — one rendered :class:`~repro.figures.common.Exhibit`.

An invariant function receives its scope's context object and returns
``None`` when not applicable (wrong configuration, infeasible record,
no metrics window, ...) or a list of :class:`Violation` — empty when
the law holds.  Registration is declarative::

    @invariant(
        "byte-conservation",
        scope=Scope.RUN,
        description="...",
        paper_ref="Section IV",
    )
    def _byte_conservation(ctx: RunContext) -> list[Violation] | None: ...

``docs/TESTING.md`` catalogues every registered invariant.
"""

from __future__ import annotations

import enum
import json
import math
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

from repro.core.configs import ConfigName, SystemConfig
from repro.core.runner import RunRecord
from repro.engine.littles_law import littles_law_bandwidth
from repro.engine.perfmodel import PerformanceModel
from repro.engine.placement import Location
from repro.engine.profilephase import AccessPattern, MemoryProfile, Phase
from repro.machine.topology import KNLMachine
from repro.memory.modes import MemorySystem
from repro.memory.tlb import TLBModel
from repro.runtime.process import OpenMPEnvironment
from repro.util.units import CACHE_LINE, NS_PER_S
from repro.workloads.base import Workload

__all__ = [
    "Scope",
    "Violation",
    "Invariant",
    "RunContext",
    "SweepEntry",
    "SweepContext",
    "ExhibitContext",
    "REGISTRY",
    "invariant",
    "unregister",
]

#: Relative tolerance for "equal up to float round-off" assertions.
REL_TOL = 1e-6

_PATTERNS = ("sequential", "random")


class Scope(enum.Enum):
    """Granularity at which an invariant is evaluated."""

    RUN = "run"
    SWEEP = "sweep"
    EXHIBIT = "exhibit"


@dataclass(frozen=True)
class Violation:
    """One broken invariant at one subject."""

    invariant: str
    subject: str
    message: str

    def describe(self) -> str:
        return f"[{self.invariant}] {self.subject}: {self.message}"


@dataclass(frozen=True)
class Invariant:
    """A registered check: metadata plus the evaluating function."""

    name: str
    scope: Scope
    description: str
    paper_ref: str
    fn: Callable[..., "list[Violation] | None"] = field(repr=False)


#: name -> Invariant, in registration order.
REGISTRY: dict[str, Invariant] = {}


def invariant(
    name: str, *, scope: Scope, description: str, paper_ref: str
) -> Callable[[Callable], Callable]:
    """Register a checking function under ``name``."""

    def register(fn: Callable) -> Callable:
        if name in REGISTRY:
            raise ValueError(f"invariant {name!r} already registered")
        REGISTRY[name] = Invariant(
            name=name,
            scope=scope,
            description=description,
            paper_ref=paper_ref,
            fn=fn,
        )
        return fn

    return register


def unregister(name: str) -> None:
    """Remove an invariant (tests registering temporary ones)."""
    del REGISTRY[name]


# -- contexts -----------------------------------------------------------------


@dataclass(frozen=True)
class RunContext:
    """Everything a run-scope invariant may inspect."""

    machine: KNLMachine
    memory: MemorySystem
    workload: Workload
    config: SystemConfig
    num_threads: int
    record: RunRecord
    #: The workload's profile; None when the record is infeasible.
    profile: MemoryProfile | None
    #: Per-run metric deltas; None when checking a bare record.
    window: "object | None"

    def subject(self) -> str:
        gb = self.workload.footprint_bytes / 1e9
        return (
            f"{self.workload.spec.name}[{gb:g} GB] "
            f"{self.config.name.value} t={self.num_threads}"
        )


@dataclass(frozen=True)
class SweepEntry:
    """One cell of a sweep: inputs plus the resulting record."""

    workload: Workload
    config: SystemConfig
    num_threads: int
    record: RunRecord


@dataclass(frozen=True)
class SweepContext:
    """A completed sweep batch."""

    machine: KNLMachine
    #: "size" or "threads" — which axis the sweep varied.
    axis: str
    entries: tuple[SweepEntry, ...]


@dataclass(frozen=True)
class ExhibitContext:
    """One rendered exhibit (``.data`` carries the raw series)."""

    exhibit: "object"


# -- helpers ------------------------------------------------------------------


def _close(a: float, b: float, rel: float = REL_TOL) -> bool:
    return abs(a - b) <= rel * max(abs(a), abs(b), 1.0)


def _line_bytes(phase: Phase) -> float:
    """Bytes the memory system moves for one phase (full 64 B lines)."""
    if phase.pattern is AccessPattern.SEQUENTIAL:
        return float(phase.traffic_bytes)
    return phase.accesses * CACHE_LINE


def _cached_fraction(record: RunRecord) -> float:
    assert record.run_result is not None
    return record.run_result.placement.fraction(Location.DRAM_CACHED)


# -- run-scope invariants -----------------------------------------------------


@invariant(
    "byte-conservation",
    scope=Scope.RUN,
    description=(
        "Per-device bytes moved equal the placement-weighted line traffic: "
        "MCDRAM sees the HBM plus cached fractions, DRAM sees the direct "
        "fraction plus exactly the cache-miss fill bytes, and together they "
        "cover every requested byte."
    ),
    paper_ref="Section II (MCDRAM cache organization), docs/MODEL.md traffic split",
)
def _byte_conservation(ctx: RunContext) -> list[Violation] | None:
    record = ctx.record
    if record.run_result is None or ctx.window is None or ctx.profile is None:
        return None
    mix = record.run_result.placement
    direct_dram = expected_mcdram = total = 0.0
    for phase in ctx.profile.phases:
        lb = _line_bytes(phase)
        total += lb
        direct_dram += lb * mix.fraction(Location.DRAM)
        expected_mcdram += lb * (
            mix.fraction(Location.HBM) + mix.fraction(Location.DRAM_CACHED)
        )
    if total == 0.0:
        return []
    d_dram = ctx.window.delta("model.bytes_moved", {"device": "dram"})
    d_mcdram = ctx.window.delta("model.bytes_moved", {"device": "mcdram"})
    miss_bytes = CACHE_LINE * sum(
        ctx.window.delta("mcdram_cache.misses", {"pattern": p}) for p in _PATTERNS
    )
    subject = ctx.subject()
    out = []
    if not _close(d_mcdram, expected_mcdram):
        out.append(
            Violation(
                "byte-conservation",
                subject,
                f"MCDRAM moved {d_mcdram:.6g} B, expected {expected_mcdram:.6g} B "
                "(HBM + cached fractions of line traffic)",
            )
        )
    if not _close(d_dram, direct_dram + miss_bytes):
        out.append(
            Violation(
                "byte-conservation",
                subject,
                f"DRAM moved {d_dram:.6g} B, expected {direct_dram:.6g} B direct "
                f"+ {miss_bytes:.6g} B cache-miss fills",
            )
        )
    if d_dram + d_mcdram < total * (1.0 - REL_TOL) - 1.0:
        out.append(
            Violation(
                "byte-conservation",
                subject,
                f"devices moved {d_dram + d_mcdram:.6g} B total but the run "
                f"requested {total:.6g} B — bytes went unaccounted",
            )
        )
    return out


@invariant(
    "mcdram-cache-accounting",
    scope=Scope.RUN,
    description=(
        "Cache events conserve: hits + misses = accesses per pattern, "
        "0 <= conflict misses <= misses, hit rate in [0, 1], the aggregate "
        "hit rate never exceeds the capacity bound min(1, C/F), and it "
        "collapses once the footprint is far past the 16 GB capacity."
    ),
    paper_ref="Section IV-A (STREAM in cache mode, direct-mapped MCDRAM cache)",
)
def _mcdram_cache_accounting(ctx: RunContext) -> list[Violation] | None:
    cache = ctx.memory.cache_model
    if cache is None or ctx.record.run_result is None or ctx.window is None:
        return None
    if ctx.profile is None or _cached_fraction(ctx.record) == 0.0:
        return None
    subject = ctx.subject()
    out = []
    total_accesses = total_hits = 0.0
    for pattern in _PATTERNS:
        labels = {"pattern": pattern}
        accesses = ctx.window.delta("mcdram_cache.accesses", labels)
        hits = ctx.window.delta("mcdram_cache.hits", labels)
        misses = ctx.window.delta("mcdram_cache.misses", labels)
        conflicts = ctx.window.delta("mcdram_cache.conflict_misses", labels)
        total_accesses += accesses
        total_hits += hits
        if accesses == 0.0:
            continue
        if not _close(hits + misses, accesses):
            out.append(
                Violation(
                    "mcdram-cache-accounting",
                    subject,
                    f"{pattern}: hits {hits:.6g} + misses {misses:.6g} != "
                    f"accesses {accesses:.6g}",
                )
            )
        if min(hits, misses) < -REL_TOL * accesses:
            out.append(
                Violation(
                    "mcdram-cache-accounting",
                    subject,
                    f"{pattern}: negative event count "
                    f"(hits {hits:.6g}, misses {misses:.6g})",
                )
            )
        if not -REL_TOL * accesses <= conflicts <= misses * (1 + REL_TOL):
            out.append(
                Violation(
                    "mcdram-cache-accounting",
                    subject,
                    f"{pattern}: conflict misses {conflicts:.6g} outside "
                    f"[0, misses={misses:.6g}]",
                )
            )
        gauge = ctx.window.gauge("mcdram_cache.hit_rate", labels)
        if gauge is not None and not -REL_TOL <= gauge <= 1.0 + REL_TOL:
            out.append(
                Violation(
                    "mcdram-cache-accounting",
                    subject,
                    f"{pattern}: hit-rate gauge {gauge:.6g} outside [0, 1]",
                )
            )
    if total_accesses <= 0.0:
        return out
    # Capacity bound + far-over-capacity collapse (the paper's cache-mode
    # degradation): the aggregate hit rate can never beat the best phase's
    # residency bound, and with every cached footprint at >= 2x capacity
    # no organization keeps a high hit rate.
    cached = [
        p
        for p in ctx.profile.phases
        if _line_bytes(p) > 0 and p.footprint_bytes > 0
    ]
    aggregate = total_hits / total_accesses
    if cached:
        bound = max(
            min(1.0, cache.capacity_bytes / p.footprint_bytes) for p in cached
        )
        if aggregate > bound + REL_TOL:
            out.append(
                Violation(
                    "mcdram-cache-accounting",
                    subject,
                    f"aggregate hit rate {aggregate:.4f} exceeds the capacity "
                    f"bound min(1, C/F) = {bound:.4f}",
                )
            )
        ratio = min(p.footprint_bytes / cache.capacity_bytes for p in cached)
        if ratio >= 2.0 and aggregate > 0.6:
            out.append(
                Violation(
                    "mcdram-cache-accounting",
                    subject,
                    f"hit rate {aggregate:.4f} has not collapsed although every "
                    f"cached footprint is >= {ratio:.1f}x the cache capacity",
                )
            )
    return out


@invariant(
    "tlb-accounting",
    scope=Scope.RUN,
    description=(
        "Translation events conserve: page walks <= L1-TLB misses <= random "
        "accesses, both match the TLB model's miss rates exactly, and the "
        "walk-depth gauge stays within [0, walk_levels]."
    ),
    paper_ref="Fig. 3 (latency growth beyond 128 MB: TLB misses and page walks)",
)
def _tlb_accounting(ctx: RunContext) -> list[Violation] | None:
    if ctx.record.run_result is None or ctx.window is None or ctx.profile is None:
        return None
    random_phases = [
        p
        for p in ctx.profile.phases
        if p.pattern is AccessPattern.RANDOM and p.traffic_bytes > 0
    ]
    if not random_phases:
        return None
    tlb = TLBModel()
    total = sum(p.accesses for p in random_phases)
    expected_l1 = sum(
        tlb.l1_miss_rate(p.footprint_bytes) * p.accesses for p in random_phases
    )
    expected_walks = sum(
        tlb.l2_miss_rate(p.footprint_bytes) * p.accesses for p in random_phases
    )
    l1 = ctx.window.delta("tlb.l1_misses")
    walks = ctx.window.delta("tlb.walks")
    subject = ctx.subject()
    out = []
    if not walks <= l1 * (1 + REL_TOL) + REL_TOL:
        out.append(
            Violation(
                "tlb-accounting",
                subject,
                f"page walks {walks:.6g} exceed L1-TLB misses {l1:.6g}",
            )
        )
    if not l1 <= total * (1 + REL_TOL):
        out.append(
            Violation(
                "tlb-accounting",
                subject,
                f"L1-TLB misses {l1:.6g} exceed random accesses {total:.6g}",
            )
        )
    if not _close(l1, expected_l1):
        out.append(
            Violation(
                "tlb-accounting",
                subject,
                f"L1-TLB misses {l1:.6g} != model expectation {expected_l1:.6g}",
            )
        )
    if not _close(walks, expected_walks):
        out.append(
            Violation(
                "tlb-accounting",
                subject,
                f"page walks {walks:.6g} != model expectation "
                f"{expected_walks:.6g}",
            )
        )
    depth = ctx.window.gauge("tlb.walk_depth")
    if depth is not None and not -REL_TOL <= depth <= tlb.walk_levels + REL_TOL:
        out.append(
            Violation(
                "tlb-accounting",
                subject,
                f"walk-depth gauge {depth:.6g} outside [0, {tlb.walk_levels}]",
            )
        )
    return out


@invariant(
    "littles-law-concurrency",
    scope=Scope.RUN,
    description=(
        "Every location's served rate obeys Little's law: it never exceeds "
        "min(outstanding x fraction / latency, device capacity); the stored "
        "achieved bandwidth and effective latency are consistent with the "
        "phase's traffic and the placement-weighted location latencies."
    ),
    paper_ref="Section IV (Little's law), Section IV-D (concurrency scaling)",
)
def _littles_law_concurrency(ctx: RunContext) -> list[Violation] | None:
    run = ctx.record.run_result
    if run is None or ctx.profile is None:
        return None
    subject = ctx.subject()
    model = PerformanceModel(ctx.machine, ctx.memory)
    env = OpenMPEnvironment(ctx.machine, ctx.num_threads)
    mix = run.placement
    out = []
    for phase, result in zip(ctx.profile.phases, run.phase_results):
        if phase.traffic_bytes <= 0 or result.memory_time_ns <= 0:
            continue
        outstanding = model.threading.outstanding_requests(phase, env)
        seconds = result.memory_time_ns / NS_PER_S
        sequential = phase.pattern is AccessPattern.SEQUENTIAL
        weighted_latency = 0.0
        for location, fraction in mix.fractions:
            if fraction == 0.0:
                continue
            try:
                if sequential:
                    served = phase.traffic_bytes * fraction / seconds
                    latency = model.sequential_latency_ns(
                        location, phase.footprint_bytes
                    )
                    demand = littles_law_bandwidth(
                        outstanding * fraction, latency
                    )
                    limit = min(
                        demand,
                        model.sequential_bandwidth(
                            location,
                            phase.footprint_bytes,
                            env.threads_per_core,
                            phase.write_fraction,
                        ),
                    )
                    unit = "B/s"
                else:
                    served = phase.accesses * fraction / seconds
                    latency = model.random_latency_ns(
                        location, phase.footprint_bytes
                    )
                    demand = outstanding * fraction / (latency / NS_PER_S)
                    limit = min(
                        demand,
                        model.random_capacity_lines(
                            location,
                            phase.footprint_bytes,
                            phase.write_fraction,
                        ),
                    )
                    unit = "lines/s"
            except ValueError as exc:
                out.append(
                    Violation(
                        "littles-law-concurrency",
                        subject,
                        f"{phase.name}: placement location {location.value} "
                        f"is invalid for this memory mode ({exc})",
                    )
                )
                continue
            weighted_latency += fraction * latency
            if served > limit * (1 + REL_TOL):
                out.append(
                    Violation(
                        "littles-law-concurrency",
                        subject,
                        f"{phase.name}@{location.value}: served "
                        f"{served:.6g} {unit} exceeds the Little's-law/"
                        f"capacity limit {limit:.6g} {unit}",
                    )
                )
        expected_bw = (
            phase.traffic_bytes if sequential else phase.accesses * CACHE_LINE
        ) / seconds
        if not _close(result.achieved_bandwidth, expected_bw):
            out.append(
                Violation(
                    "littles-law-concurrency",
                    subject,
                    f"{phase.name}: achieved bandwidth "
                    f"{result.achieved_bandwidth:.6g} B/s inconsistent with "
                    f"traffic/time = {expected_bw:.6g} B/s",
                )
            )
        if not _close(result.effective_latency_ns, weighted_latency):
            out.append(
                Violation(
                    "littles-law-concurrency",
                    subject,
                    f"{phase.name}: effective latency "
                    f"{result.effective_latency_ns:.6g} ns != placement-"
                    f"weighted location latency {weighted_latency:.6g} ns",
                )
            )
    return out


#: numactl policies that hard-bind all data to one NUMA node.
_BOUND_NODE_CAPACITY: dict[str, Callable[[MemorySystem], int]] = {
    "--membind=0": lambda memory: memory.dram.capacity_bytes,
    "--membind=1": lambda memory: memory.flat_hbm_bytes,
}


@invariant(
    "capacity-feasibility",
    scope=Scope.RUN,
    description=(
        "A footprint over the bound node's capacity (e.g. HBM membind "
        "beyond 16 GB) must yield an infeasible record, never a silent "
        "spill; a footprint within capacity must not fail for capacity "
        "reasons; nothing larger than total memory ever reports a metric."
    ),
    paper_ref="Section III-C (membind=1 fails over 16 GB), Table II capacities",
)
def _capacity_feasibility(ctx: RunContext) -> list[Violation] | None:
    footprint = ctx.workload.footprint_bytes
    subject = ctx.subject()
    out = []
    total = ctx.memory.dram.capacity_bytes + ctx.memory.flat_hbm_bytes
    if ctx.record.metric is not None and footprint > total:
        out.append(
            Violation(
                "capacity-feasibility",
                subject,
                f"footprint {footprint:.6g} B exceeds total memory "
                f"{total:.6g} B yet the run reported a metric",
            )
        )
    capacity_of = _BOUND_NODE_CAPACITY.get(ctx.config.numactl)
    if capacity_of is not None:
        capacity = capacity_of(ctx.memory)
        if footprint > capacity and ctx.record.metric is not None:
            out.append(
                Violation(
                    "capacity-feasibility",
                    subject,
                    f"footprint {footprint:.6g} B exceeds the bound node's "
                    f"{capacity:.6g} B ({ctx.config.numactl}) yet the run "
                    "reported a metric — the allocation silently spilled",
                )
            )
        if (
            footprint <= capacity
            and ctx.record.metric is None
            and ctx.record.infeasible_reason is not None
            and "does not fit" in ctx.record.infeasible_reason
        ):
            out.append(
                Violation(
                    "capacity-feasibility",
                    subject,
                    f"footprint {footprint:.6g} B fits the bound node's "
                    f"{capacity:.6g} B yet the run failed with: "
                    f"{ctx.record.infeasible_reason}",
                )
            )
    return out


@invariant(
    "timing-composition",
    scope=Scope.RUN,
    description=(
        "Per phase, time = max(memory, compute) x sync with sync >= 1 and "
        "non-negative components; phase results align one-to-one with the "
        "profile's phases; a feasible run's metric is finite and positive."
    ),
    paper_ref="roofline overlap assumption (docs/MODEL.md), Section IV-D sync",
)
def _timing_composition(ctx: RunContext) -> list[Violation] | None:
    run = ctx.record.run_result
    if run is None or ctx.profile is None:
        return None
    subject = ctx.subject()
    out = []
    if len(run.phase_results) != len(ctx.profile.phases) or any(
        p.name != r.name for p, r in zip(ctx.profile.phases, run.phase_results)
    ):
        out.append(
            Violation(
                "timing-composition",
                subject,
                "phase results do not align with the workload profile "
                f"({[r.name for r in run.phase_results]} vs "
                f"{[p.name for p in ctx.profile.phases]})",
            )
        )
        return out
    for result in run.phase_results:
        if result.sync_factor < 1.0 - REL_TOL:
            out.append(
                Violation(
                    "timing-composition",
                    subject,
                    f"{result.name}: sync factor {result.sync_factor:.6g} < 1",
                )
            )
        if result.memory_time_ns < 0 or result.compute_time_ns < 0:
            out.append(
                Violation(
                    "timing-composition",
                    subject,
                    f"{result.name}: negative component time",
                )
            )
        expected = (
            max(result.memory_time_ns, result.compute_time_ns)
            * result.sync_factor
        )
        if not _close(result.time_ns, expected):
            out.append(
                Violation(
                    "timing-composition",
                    subject,
                    f"{result.name}: time {result.time_ns:.6g} ns != "
                    f"max(memory, compute) x sync = {expected:.6g} ns",
                )
            )
    if run.time_ns <= 0:
        out.append(
            Violation(
                "timing-composition", subject, "run total time is not positive"
            )
        )
    metric = ctx.record.metric
    if metric is not None and (not math.isfinite(metric) or metric <= 0):
        out.append(
            Violation(
                "timing-composition",
                subject,
                f"feasible run reported a non-positive/non-finite metric "
                f"{metric!r}",
            )
        )
    return out


# -- sweep-scope invariants ---------------------------------------------------


def _grouped_metrics(
    entries: Sequence[SweepEntry], pattern: str
) -> "dict[tuple, dict[ConfigName, tuple[SweepEntry, float]]]":
    """Feasible metrics grouped by identical (workload, threads) cell."""
    groups: dict[tuple, dict[ConfigName, tuple[SweepEntry, float]]] = {}
    for entry in entries:
        if entry.workload.spec.pattern != pattern:
            continue
        if entry.record.metric is None:
            continue
        key = (
            entry.workload.spec.name,
            json.dumps(entry.workload.params(), sort_keys=True, default=str),
            entry.num_threads,
        )
        groups.setdefault(key, {})[entry.config.name] = (
            entry,
            entry.record.metric,
        )
    return groups


@invariant(
    "streaming-config-ordering",
    scope=Scope.SWEEP,
    description=(
        "For bandwidth-bound (Sequential) workloads at one thread per core "
        "or more, flat HBM is at least as fast as DRAM and as cache mode at "
        "the same size and thread count whenever it fits.  Below a thread "
        "per core a single-threaded stream is latency- not bandwidth-bound, "
        "so the lower-latency tier can win (DDR on KNL and Xeon Max)."
    ),
    paper_ref="Figs. 2, 4 top, 6a/6b (STREAM ~4x; cache mode between)",
)
def _streaming_config_ordering(ctx: SweepContext) -> list[Violation] | None:
    groups = _grouped_metrics(ctx.entries, "Sequential")
    if not groups:
        return None
    out = []
    for by_config in groups.values():
        hbm = by_config.get(ConfigName.HBM)
        if hbm is None:
            continue
        entry, hbm_metric = hbm
        if entry.num_threads < ctx.machine.num_cores:
            continue  # below 1 thread/core the stream is latency-bound
        subject = (
            f"{entry.workload.spec.name}"
            f"[{entry.workload.footprint_bytes / 1e9:g} GB] "
            f"t={entry.num_threads}"
        )
        for other in (ConfigName.DRAM, ConfigName.CACHE):
            pair = by_config.get(other)
            if pair is None:
                continue
            _, other_metric = pair
            if hbm_metric < other_metric * (1 - REL_TOL):
                out.append(
                    Violation(
                        "streaming-config-ordering",
                        subject,
                        f"streaming HBM metric {hbm_metric:.6g} below "
                        f"{other.value} metric {other_metric:.6g}",
                    )
                )
    return out


@invariant(
    "random-dram-preference",
    scope=Scope.SWEEP,
    description=(
        "For latency-bound (Random) workloads at one thread per core, the "
        "configuration bound to the lower-idle-latency tier is at least as "
        "fast as the other bound config and as cache mode.  On KNL that is "
        "DRAM — MCDRAM's higher idle latency only pays off once extra "
        "hardware threads supply the concurrency; on a DRAM+NVM node it is "
        "the near (DRAM) tier."
    ),
    paper_ref="Fig. 4 bottom (HBM 15-20% slower), Fig. 6d crossover beyond 64t",
)
def _random_dram_preference(ctx: SweepContext) -> list[Violation] | None:
    groups = _grouped_metrics(ctx.entries, "Random")
    # The winner at low concurrency is whichever tier answers a dependent
    # load sooner.  Ties go to the far tier (the KNL situation never ties,
    # but a symmetric-latency machine should keep the historical reading).
    if ctx.machine.far_device().idle_latency_ns <= (
        ctx.machine.near_device().idle_latency_ns
    ):
        preferred = ConfigName.DRAM
        others = (ConfigName.HBM, ConfigName.CACHE)
    else:
        preferred = ConfigName.HBM
        others = (ConfigName.DRAM, ConfigName.CACHE)
    applicable = False
    out = []
    for by_config in groups.values():
        best = by_config.get(preferred)
        if best is None:
            continue
        entry, preferred_metric = best
        if entry.num_threads > ctx.machine.num_cores:
            continue  # past 1 thread/core the paper's crossover kicks in
        applicable = True
        subject = (
            f"{entry.workload.spec.name}"
            f"[{entry.workload.footprint_bytes / 1e9:g} GB] "
            f"t={entry.num_threads}"
        )
        for other in others:
            pair = by_config.get(other)
            if pair is None:
                continue
            _, other_metric = pair
            if preferred_metric < other_metric * (1 - REL_TOL):
                out.append(
                    Violation(
                        "random-dram-preference",
                        subject,
                        f"random-access {preferred.value} metric "
                        f"{preferred_metric:.6g} below {other.value} metric "
                        f"{other_metric:.6g} at {entry.num_threads} threads",
                    )
                )
    return out if applicable else None


@invariant(
    "thread-scaling-unimodal",
    scope=Scope.SWEEP,
    description=(
        "Along a thread axis, each configuration's metric rises "
        "monotonically up to its peak and only then declines — more "
        "hardware threads help until the model's saturation point, never "
        "in a zig-zag."
    ),
    paper_ref="Figs. 5, 6 (gains to 256t on HBM, saturation/decline elsewhere)",
)
def _thread_scaling_unimodal(ctx: SweepContext) -> list[Violation] | None:
    if ctx.axis != "threads":
        return None
    series: dict[tuple, list[tuple[int, SweepEntry]]] = {}
    for entry in ctx.entries:
        if entry.record.metric is None:
            continue
        key = (
            entry.workload.spec.name,
            json.dumps(entry.workload.params(), sort_keys=True, default=str),
            entry.config.name,
        )
        series.setdefault(key, []).append((entry.num_threads, entry))
    out = []
    for (name, _, config), points in series.items():
        points.sort(key=lambda pair: pair[0])
        metrics = [entry.record.metric for _, entry in points]
        assert all(m is not None for m in metrics)
        peak = max(range(len(metrics)), key=metrics.__getitem__)
        for i in range(peak):
            if metrics[i] > metrics[i + 1] * (1 + REL_TOL):
                threads = [t for t, _ in points]
                out.append(
                    Violation(
                        "thread-scaling-unimodal",
                        f"{name} {config.value}",
                        f"metric dips from {metrics[i]:.6g} at "
                        f"{threads[i]}t to {metrics[i + 1]:.6g} at "
                        f"{threads[i + 1]}t before the peak at "
                        f"{threads[peak]}t",
                    )
                )
    return out


# -- exhibit-scope invariants -------------------------------------------------


@invariant(
    "latency-device-ordering",
    scope=Scope.EXHIBIT,
    description=(
        "In the idle-latency exhibit, HBM is never faster than DRAM at any "
        "block size, both latency curves are monotone non-decreasing in "
        "block size, and the reported gap matches the two curves."
    ),
    paper_ref="Fig. 3 (dual random read latency, DRAM 15-20% faster)",
)
def _latency_device_ordering(ctx: ExhibitContext) -> list[Violation] | None:
    data = getattr(ctx.exhibit, "data", None) or {}
    if not {"blocks", "dram_ns", "hbm_ns"} <= set(data):
        return None
    subject = getattr(ctx.exhibit, "exhibit_id", "exhibit")
    blocks = data["blocks"]
    dram = data["dram_ns"]
    hbm = data["hbm_ns"]
    out = []
    for block, d, h in zip(blocks, dram, hbm):
        if h < d * (1 - REL_TOL):
            out.append(
                Violation(
                    "latency-device-ordering",
                    subject,
                    f"HBM latency {h:.6g} ns below DRAM {d:.6g} ns at "
                    f"block {block}",
                )
            )
    for label, curve in (("DRAM", dram), ("HBM", hbm)):
        for i in range(len(curve) - 1):
            if curve[i] > curve[i + 1] * (1 + REL_TOL):
                out.append(
                    Violation(
                        "latency-device-ordering",
                        subject,
                        f"{label} latency falls from {curve[i]:.6g} ns to "
                        f"{curve[i + 1]:.6g} ns as the block grows "
                        f"({blocks[i]} -> {blocks[i + 1]})",
                    )
                )
    for block, d, h, gap in zip(blocks, dram, hbm, data.get("gap_percent", ())):
        expected = (h / d - 1.0) * 100.0
        if abs(gap - expected) > 1e-6:
            out.append(
                Violation(
                    "latency-device-ordering",
                    subject,
                    f"gap {gap:.6g}% at block {block} inconsistent with the "
                    f"latency curves ({expected:.6g}%)",
                )
            )
    return out


def _walk_numbers(value: "object") -> "list[float]":
    if isinstance(value, bool):
        return []
    if isinstance(value, (int, float)):
        return [float(value)]
    if isinstance(value, dict):
        return [n for v in value.values() for n in _walk_numbers(v)]
    if isinstance(value, (list, tuple)):
        return [n for v in value for n in _walk_numbers(v)]
    return []


@invariant(
    "exhibit-data-sanity",
    scope=Scope.EXHIBIT,
    description=(
        "Every numeric leaf of an exhibit's data is finite (no NaN/inf "
        "reaches a table or chart) and the exhibit renders to non-empty "
        "text."
    ),
    paper_ref="all exhibits (Tables I-II, Figs. 1-6)",
)
def _exhibit_data_sanity(ctx: ExhibitContext) -> list[Violation] | None:
    subject = getattr(ctx.exhibit, "exhibit_id", "exhibit")
    out = []
    bad = [
        n
        for n in _walk_numbers(getattr(ctx.exhibit, "data", {}))
        if not math.isfinite(n)
    ]
    if bad:
        out.append(
            Violation(
                "exhibit-data-sanity",
                subject,
                f"{len(bad)} non-finite numeric value(s) in exhibit data",
            )
        )
    rendered = ctx.exhibit.render() if hasattr(ctx.exhibit, "render") else ""
    if not str(rendered).strip():
        out.append(
            Violation(
                "exhibit-data-sanity", subject, "exhibit renders to empty text"
            )
        )
    return out
