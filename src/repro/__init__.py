"""knl-hybridmem: hybrid-memory (MCDRAM + DDR4) performance study toolkit.

A full reproduction of Peng et al., "Exploring the Performance Benefit of
Hybrid Memory System on HPC Environments" (2017), built as a library:

* :mod:`repro.machine` — the KNL compute model (cores, tiles, mesh, caches),
* :mod:`repro.memory` — DDR4/MCDRAM devices, flat/cache/hybrid modes,
  NUMA, numactl/memkind emulation, the direct-mapped MCDRAM cache model,
* :mod:`repro.runtime` — the simulated OS (numactl, OpenMP environment),
* :mod:`repro.engine` — the Little's-law analytic performance engine,
* :mod:`repro.workloads` — STREAM, TinyMemBench, DGEMM, MiniFE, GUPS,
  Graph500 and XSBench, each functional *and* profiled,
* :mod:`repro.core` — configurations, the experiment runner, sweeps,
  results and the Section-VI placement advisor,
* :mod:`repro.figures` — generators for every table/figure in the paper,
* :mod:`repro.obs` — structured observability: span tracing, a metrics
  registry surfacing the model internals (bytes moved, cache hit/conflict
  counts, TLB walks, concurrency), and per-cell sweep profiling hooks,
* :mod:`repro.api` — the unified typed prediction API: frozen
  :class:`~repro.api.types.Query` / :class:`~repro.api.types.QueryGrid` /
  :class:`~repro.api.types.PredictionResult` wire types, the typed error
  taxonomy, and the :class:`~repro.api.facade.Predictor` facade every
  entry point routes through,
* :mod:`repro.serve` — the asyncio prediction service: request
  coalescing into dense batches, TTL result caching, admission control,
  an HTTP front end plus a stdlib client (see ``docs/SERVING.md``).

Quickstart::

    from repro import ExperimentRunner, ConfigName
    from repro.workloads import MiniFE

    runner = ExperimentRunner()
    for config in ConfigName.paper_trio():
        record = runner.run(MiniFE.from_matrix_gb(7.2), config, 64)
        print(config.value, record.metric)
"""

from repro.core import (
    ConfigName,
    ExecutionStrategy,
    ExperimentRunner,
    PlacementAdvisor,
    ResultSet,
    RunRecord,
    SweepExecutor,
    SystemConfig,
    make_config,
    size_sweep,
    standard_configs,
    thread_sweep,
)
from repro.engine import (
    AccessPattern,
    Location,
    MemoryProfile,
    PerformanceModel,
    Phase,
    PlacementMix,
)
from repro import api, obs
from repro.api import PredictionResult, Predictor, Query, QueryGrid
from repro.machine import KNLMachine, knl7210, knl7250
from repro.memory import MCDRAMConfig, MemoryMode, MemorySystem
from repro.obs import Observation, observe
from repro.runtime import SimulatedOS

__version__ = "1.1.0"

__all__ = [
    "ConfigName",
    "ExecutionStrategy",
    "ExperimentRunner",
    "SweepExecutor",
    "PlacementAdvisor",
    "ResultSet",
    "RunRecord",
    "SystemConfig",
    "make_config",
    "size_sweep",
    "standard_configs",
    "thread_sweep",
    "AccessPattern",
    "Location",
    "MemoryProfile",
    "PerformanceModel",
    "Phase",
    "PlacementMix",
    "KNLMachine",
    "knl7210",
    "knl7250",
    "MCDRAMConfig",
    "MemoryMode",
    "MemorySystem",
    "SimulatedOS",
    "api",
    "Query",
    "QueryGrid",
    "PredictionResult",
    "Predictor",
    "obs",
    "Observation",
    "observe",
    "__version__",
]
