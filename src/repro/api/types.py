"""The typed wire/Python contract of the prediction API.

Every consumer — the asyncio service (:mod:`repro.serve`), its stdlib
client, the CLI and the batch engine — speaks these four frozen
dataclasses and nothing else:

* :class:`Query` — one what-if point: workload, problem size, memory
  configuration, thread count, machine preset;
* :class:`QueryGrid` — the dense cross-product form (the natural unit
  for the columnar :class:`~repro.engine.batch.BatchEvaluator`);
* :class:`PredictionResult` — the answer for one query, either a metric
  or a structured :class:`ErrorInfo` (modelled infeasibility is data,
  never an exception across the wire);
* :class:`ErrorInfo` — the wire form of the
  :mod:`repro.api.errors` taxonomy.

``to_dict``/``from_dict`` are exact inverses and the dictionaries are
JSON-ready; :data:`SCHEMA_VERSION` stamps every envelope so clients and
servers can negotiate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.api.errors import SchemaVersionError, ValidationError
from repro.machine.registry import names as _registry_names

#: Version of the wire schema.  Bump on any incompatible change to the
#: dataclasses below or to the service envelopes built from them.
#: Version 2 added registry machines beyond the two KNL presets; version
#: 3 added the capacity-planner surface (:mod:`repro.api.plan` and
#: ``/v1/plan``).  Both were pure additions — earlier payloads remain
#: valid — so all three versions are negotiable.
SCHEMA_VERSION = 3

#: Versions this build accepts on incoming payloads.
SUPPORTED_SCHEMA_VERSIONS = (1, 2, 3)

#: Machine presets a query may name — every key in the machine registry
#: (:mod:`repro.machine.registry`).
MACHINE_NAMES = _registry_names()

__all__ = [
    "SCHEMA_VERSION",
    "SUPPORTED_SCHEMA_VERSIONS",
    "MACHINE_NAMES",
    "ErrorInfo",
    "Query",
    "QueryGrid",
    "PredictionResult",
    "check_schema_version",
]


def check_schema_version(value: Any) -> int:
    """Validate a declared schema version (missing -> current).

    Any member of :data:`SUPPORTED_SCHEMA_VERSIONS` is accepted, so a
    version-1 client keeps working against a version-2 build.
    """
    if value is None:
        return SCHEMA_VERSION
    if not isinstance(value, int) or isinstance(value, bool):
        raise ValidationError(
            f"schema_version must be an integer, got {value!r}"
        )
    if value not in SUPPORTED_SCHEMA_VERSIONS:
        raise SchemaVersionError(
            f"unsupported schema_version {value}; this build speaks "
            f"{SCHEMA_VERSION}",
            details={"supported": list(SUPPORTED_SCHEMA_VERSIONS)},
        )
    return value


def _require_keys(
    data: Mapping[str, Any], *, required: tuple[str, ...], optional: tuple[str, ...]
) -> None:
    if not isinstance(data, Mapping):
        raise ValidationError(f"expected a mapping, got {type(data).__name__}")
    missing = [k for k in required if k not in data]
    if missing:
        raise ValidationError(f"missing required field(s): {', '.join(missing)}")
    unknown = sorted(set(data) - set(required) - set(optional))
    if unknown:
        raise ValidationError(f"unknown field(s): {', '.join(unknown)}")


def _check_str(name: str, value: Any) -> str:
    if not isinstance(value, str) or not value:
        raise ValidationError(f"{name} must be a non-empty string, got {value!r}")
    return value


def _check_size(name: str, value: Any) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ValidationError(f"{name} must be a number, got {value!r}")
    size = float(value)
    if not size > 0 or size != size or size == float("inf"):
        raise ValidationError(f"{name} must be positive and finite, got {value!r}")
    return size


def _check_threads(name: str, value: Any) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise ValidationError(f"{name} must be an integer, got {value!r}")
    if value < 1:
        raise ValidationError(f"{name} must be >= 1, got {value}")
    return value


def _canonical_config(value: Any) -> str:
    """Canonicalize a configuration name to the ``ConfigName`` value.

    Accepts the enum member name (``"CACHE"``) or its value
    (``"Cache Mode"``), case-insensitively, so wire clients never need
    the Python enum.
    """
    from repro.core.configs import ConfigName

    text = _check_str("config", value)
    for name in ConfigName:
        if text.lower() in (name.name.lower(), name.value.lower()):
            return name.value
    options = ", ".join(n.value for n in ConfigName)
    raise ValidationError(f"unknown config {value!r}; expected one of {options}")


def _canonical_machine(value: Any) -> str:
    text = _check_str("machine", value).lower()
    if text not in MACHINE_NAMES:
        raise ValidationError(
            f"unknown machine {value!r}; expected one of "
            f"{', '.join(MACHINE_NAMES)}"
        )
    return text


@dataclass(frozen=True)
class ErrorInfo:
    """Structured wire form of one API error.

    ``code`` is a stable identifier from :mod:`repro.api.errors`
    (e.g. ``"infeasible_config"`` for the paper's Fig. 4 missing bars);
    ``message`` is human-readable; ``details`` carries optional
    machine-readable context.
    """

    code: str
    message: str
    details: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        _check_str("code", self.code)
        _check_str("message", self.message)

    def to_dict(self) -> dict[str, Any]:
        data: dict[str, Any] = {"code": self.code, "message": self.message}
        if self.details:
            data["details"] = dict(self.details)
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ErrorInfo":
        _require_keys(
            data, required=("code", "message"), optional=("details",)
        )
        details = data.get("details", {})
        if not isinstance(details, Mapping):
            raise ValidationError(
                f"details must be a mapping, got {type(details).__name__}"
            )
        return cls(
            code=_check_str("code", data["code"]),
            message=_check_str("message", data["message"]),
            details=dict(details),
        )


@dataclass(frozen=True)
class Query:
    """One what-if question: *how fast is this workload, at this size,
    under this memory configuration, with this many threads, on this
    machine?*

    Fields are canonicalized at construction (workload and machine
    lowercased, config normalized to the
    :class:`~repro.core.configs.ConfigName` value), so two queries that
    mean the same thing compare and hash equal — which is what the
    serving layer's coalescer and result cache key on.
    """

    workload: str
    size_gb: float
    config: str
    num_threads: int = 64
    machine: str = "knl7210"

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "workload", _check_str("workload", self.workload).lower()
        )
        object.__setattr__(self, "size_gb", _check_size("size_gb", self.size_gb))
        object.__setattr__(self, "config", _canonical_config(self.config))
        object.__setattr__(
            self, "num_threads", _check_threads("num_threads", self.num_threads)
        )
        object.__setattr__(self, "machine", _canonical_machine(self.machine))

    def to_dict(self) -> dict[str, Any]:
        return {
            "workload": self.workload,
            "size_gb": self.size_gb,
            "config": self.config,
            "num_threads": self.num_threads,
            "machine": self.machine,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Query":
        _require_keys(
            data,
            required=("workload", "size_gb", "config"),
            optional=("num_threads", "machine"),
        )
        return cls(
            workload=data["workload"],
            size_gb=data["size_gb"],
            config=data["config"],
            num_threads=data.get("num_threads", 64),
            machine=data.get("machine", "knl7210"),
        )


def _check_tuple(name: str, values: Any, check: Any) -> tuple[Any, ...]:
    if isinstance(values, (str, bytes)) or not isinstance(values, (list, tuple)):
        raise ValidationError(f"{name} must be a list, got {values!r}")
    if not values:
        raise ValidationError(f"{name} must not be empty")
    return tuple(check(f"{name}[{i}]", v) for i, v in enumerate(values))


@dataclass(frozen=True)
class QueryGrid:
    """A dense cross-product of queries — the batch engine's native unit.

    :meth:`expand` enumerates the grid in a fixed nested order
    (workload, size, config, threads), which is also the order of the
    results the service returns for a grid request.
    """

    workloads: tuple[str, ...]
    sizes_gb: tuple[float, ...]
    configs: tuple[str, ...]
    num_threads: tuple[int, ...] = (64,)
    machine: str = "knl7210"

    def __post_init__(self) -> None:
        object.__setattr__(
            self,
            "workloads",
            _check_tuple(
                "workloads",
                self.workloads,
                lambda n, v: _check_str(n, v).lower(),
            ),
        )
        object.__setattr__(
            self, "sizes_gb", _check_tuple("sizes_gb", self.sizes_gb, _check_size)
        )
        object.__setattr__(
            self,
            "configs",
            _check_tuple(
                "configs", self.configs, lambda n, v: _canonical_config(v)
            ),
        )
        object.__setattr__(
            self,
            "num_threads",
            _check_tuple("num_threads", self.num_threads, _check_threads),
        )
        object.__setattr__(self, "machine", _canonical_machine(self.machine))

    def __len__(self) -> int:
        return (
            len(self.workloads)
            * len(self.sizes_gb)
            * len(self.configs)
            * len(self.num_threads)
        )

    def expand(self) -> tuple[Query, ...]:
        """All grid points, workload-major (workload, size, config,
        threads)."""
        return tuple(
            Query(
                workload=w,
                size_gb=s,
                config=c,
                num_threads=t,
                machine=self.machine,
            )
            for w in self.workloads
            for s in self.sizes_gb
            for c in self.configs
            for t in self.num_threads
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "workloads": list(self.workloads),
            "sizes_gb": list(self.sizes_gb),
            "configs": list(self.configs),
            "num_threads": list(self.num_threads),
            "machine": self.machine,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "QueryGrid":
        _require_keys(
            data,
            required=("workloads", "sizes_gb", "configs"),
            optional=("num_threads", "machine"),
        )
        return cls(
            workloads=data["workloads"],
            sizes_gb=data["sizes_gb"],
            configs=data["configs"],
            num_threads=data.get("num_threads", (64,)),
            machine=data.get("machine", "knl7210"),
        )


@dataclass(frozen=True)
class PredictionResult:
    """The answer for one :class:`Query`.

    Exactly one of ``metric`` / ``error`` is set.  A feasible prediction
    carries the workload's paper metric (``metric_name`` in
    ``metric_unit``) and the modelled wall time ``time_ns``; an
    infeasible cell carries a structured :class:`ErrorInfo` instead —
    the wire twin of :attr:`repro.core.runner.RunRecord.infeasible_reason`.
    """

    query: Query
    metric: float | None
    metric_name: str
    metric_unit: str
    time_ns: float | None = None
    error: ErrorInfo | None = None
    schema_version: int = SCHEMA_VERSION

    @property
    def feasible(self) -> bool:
        return self.metric is not None

    def to_dict(self) -> dict[str, Any]:
        data: dict[str, Any] = {
            "schema_version": self.schema_version,
            "query": self.query.to_dict(),
            "metric": self.metric,
            "metric_name": self.metric_name,
            "metric_unit": self.metric_unit,
            "time_ns": self.time_ns,
        }
        if self.error is not None:
            data["error"] = self.error.to_dict()
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "PredictionResult":
        _require_keys(
            data,
            required=("query", "metric", "metric_name", "metric_unit"),
            optional=("time_ns", "error", "schema_version"),
        )
        version = check_schema_version(data.get("schema_version"))
        metric = data["metric"]
        if metric is not None and (
            isinstance(metric, bool) or not isinstance(metric, (int, float))
        ):
            raise ValidationError(f"metric must be a number or null, got {metric!r}")
        error = data.get("error")
        return cls(
            query=Query.from_dict(data["query"]),
            metric=None if metric is None else float(metric),
            metric_name=_check_str("metric_name", data["metric_name"]),
            metric_unit=_check_str("metric_unit", data["metric_unit"]),
            time_ns=data.get("time_ns"),
            error=None if error is None else ErrorInfo.from_dict(error),
            schema_version=version,
        )

    @classmethod
    def from_record(cls, query: Query, record: Any) -> "PredictionResult":
        """Build the wire result from a scalar
        :class:`~repro.core.runner.RunRecord` (or a batch record, which
        is bit-identical by the PR-4 contract)."""
        error = None
        if record.infeasible_reason is not None:
            error = ErrorInfo(
                code="infeasible_config",
                message=record.infeasible_reason,
            )
        run = record.run_result
        return cls(
            query=query,
            metric=record.metric,
            metric_name=record.metric_name,
            metric_unit=record.metric_unit,
            time_ns=None if run is None else run.time_ns,
            error=error,
        )
