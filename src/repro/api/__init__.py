"""`repro.api` — the unified typed prediction API.

The single wire/Python contract every consumer speaks: the service and
its client (:mod:`repro.serve`), the CLI, the advisor, the placement
optimizer and the batch engine all route through the types
(:mod:`repro.api.types`), errors (:mod:`repro.api.errors`) and facade
(:mod:`repro.api.facade`) re-exported here.
"""

from repro.api.envelope import error_envelope, success_envelope
from repro.api.errors import (
    ApiError,
    CapacityError,
    DeadlineExceededError,
    EmptyMixError,
    InfeasibleConfigError,
    InfeasiblePlanError,
    PlanError,
    SchemaVersionError,
    UnknownMachineError,
    UnknownWorkloadError,
    ValidationError,
    error_from_info,
)
from repro.api.facade import (
    Predictor,
    compare_configs,
    default_predictor,
    evaluate_placements,
    machine_preset,
    predict,
    predict_grid,
    predict_many,
    query_cache_key,
    sized_workload,
)
from repro.api.plan import (
    OBJECTIVES,
    MachineLoad,
    PlanAssignment,
    PlanRequest,
    PlanResult,
    PoolEntry,
    TrafficItem,
)
from repro.api.types import (
    MACHINE_NAMES,
    SCHEMA_VERSION,
    SUPPORTED_SCHEMA_VERSIONS,
    ErrorInfo,
    PredictionResult,
    Query,
    QueryGrid,
    check_schema_version,
)

__all__ = [
    "SCHEMA_VERSION",
    "SUPPORTED_SCHEMA_VERSIONS",
    "MACHINE_NAMES",
    "OBJECTIVES",
    "Query",
    "QueryGrid",
    "PredictionResult",
    "ErrorInfo",
    "TrafficItem",
    "PoolEntry",
    "PlanRequest",
    "PlanAssignment",
    "MachineLoad",
    "PlanResult",
    "check_schema_version",
    "success_envelope",
    "error_envelope",
    "ApiError",
    "ValidationError",
    "SchemaVersionError",
    "UnknownWorkloadError",
    "InfeasibleConfigError",
    "CapacityError",
    "DeadlineExceededError",
    "PlanError",
    "EmptyMixError",
    "UnknownMachineError",
    "InfeasiblePlanError",
    "error_from_info",
    "Predictor",
    "default_predictor",
    "predict",
    "predict_many",
    "predict_grid",
    "compare_configs",
    "evaluate_placements",
    "query_cache_key",
    "sized_workload",
    "machine_preset",
]
