"""Wire types of the fleet-scale capacity planner (:mod:`repro.plan`).

The planner speaks the same contract discipline as the prediction
surface (:mod:`repro.api.types`): frozen canonicalizing dataclasses
whose ``to_dict``/``from_dict`` are exact inverses over JSON-ready
dictionaries.

* :class:`TrafficItem` — one slice of fleet traffic: a workload at a
  size and thread count, weighted by its arrival rate (jobs per
  second, or any consistent rate unit);
* :class:`PoolEntry` — one machine type in the fleet: a registry
  machine, how many nodes of it exist, and which memory configurations
  it may be asked to run (empty = the paper trio, filtered to what the
  machine supports);
* :class:`PlanRequest` — the declarative spec: a traffic mix, a
  machine pool, and an objective (``runtime`` or ``energy``);
* :class:`PlanAssignment` — one item's placement: the chosen
  (machine, config), the engine's bit-identical prediction for it, the
  average node load it induces, and its energy price;
* :class:`MachineLoad` — one pool machine's aggregate load in the
  solved plan;
* :class:`PlanResult` — the answer: assignments in mix order, the
  objective value, and per-machine loads.

The load model is Little's law: an item arriving ``weight`` times per
second, each arrival running ``time_s`` seconds on one node, keeps
``weight * time_s`` nodes busy on average.  The planner packs those
loads into the pool's node counts (docs/PLANNING.md).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Mapping

from repro.api.errors import (
    EmptyMixError,
    UnknownMachineError,
    ValidationError,
)
from repro.api.types import (
    MACHINE_NAMES,
    SCHEMA_VERSION,
    _canonical_config,
    _check_size,
    _check_str,
    _check_threads,
    _require_keys,
    check_schema_version,
)

__all__ = [
    "OBJECTIVES",
    "TrafficItem",
    "PoolEntry",
    "PlanRequest",
    "PlanAssignment",
    "MachineLoad",
    "PlanResult",
]

#: Objectives a plan may minimize.
OBJECTIVES = ("runtime", "energy")


def _canonical_objective(value: Any) -> str:
    text = _check_str("objective", value).lower()
    if text not in OBJECTIVES:
        raise ValidationError(
            f"unknown objective {value!r}; expected one of "
            f"{', '.join(OBJECTIVES)}"
        )
    return text


def _canonical_pool_machine(value: Any) -> str:
    """Like the query types' machine canonicalization, but an unknown
    name is the planner-taxonomy :class:`UnknownMachineError` (404) —
    the pool naming a machine the registry lacks is the request asking
    about hardware this build does not model."""
    text = _check_str("machine", value).lower()
    if text not in MACHINE_NAMES:
        raise UnknownMachineError(
            f"unknown machine {value!r}; expected one of "
            f"{', '.join(MACHINE_NAMES)}",
            details={"available": list(MACHINE_NAMES)},
        )
    return text


def _check_finite(name: str, value: Any) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ValidationError(f"{name} must be a number, got {value!r}")
    number = float(value)
    if number != number or number in (float("inf"), float("-inf")):
        raise ValidationError(f"{name} must be finite, got {value!r}")
    return number


def _check_non_negative(name: str, value: Any) -> float:
    number = _check_finite(name, value)
    if number < 0:
        raise ValidationError(f"{name} must be >= 0, got {value!r}")
    return number


@dataclass(frozen=True)
class TrafficItem:
    """One slice of fleet traffic.

    ``weight`` is the item's arrival rate (jobs/second, or any rate
    unit used consistently across the mix); by Little's law the item
    keeps ``weight * predicted_time_s`` nodes busy on average wherever
    it is placed.
    """

    workload: str
    size_gb: float
    num_threads: int = 64
    weight: float = 1.0

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "workload", _check_str("workload", self.workload).lower()
        )
        object.__setattr__(self, "size_gb", _check_size("size_gb", self.size_gb))
        object.__setattr__(
            self, "num_threads", _check_threads("num_threads", self.num_threads)
        )
        object.__setattr__(self, "weight", _check_size("weight", self.weight))

    def to_dict(self) -> dict[str, Any]:
        return {
            "workload": self.workload,
            "size_gb": self.size_gb,
            "num_threads": self.num_threads,
            "weight": self.weight,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TrafficItem":
        _require_keys(
            data,
            required=("workload", "size_gb"),
            optional=("num_threads", "weight"),
        )
        return cls(
            workload=data["workload"],
            size_gb=data["size_gb"],
            num_threads=data.get("num_threads", 64),
            weight=data.get("weight", 1.0),
        )


@dataclass(frozen=True)
class PoolEntry:
    """One machine type in the fleet pool.

    ``configs`` constrains which memory modes the planner may assign on
    this machine; empty means the paper trio (DRAM / HBM / Cache Mode),
    silently narrowed to the modes the machine's spec supports.
    """

    machine: str
    nodes: int
    configs: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "machine", _canonical_pool_machine(self.machine)
        )
        object.__setattr__(self, "nodes", _check_threads("nodes", self.nodes))
        configs = self.configs
        if isinstance(configs, (str, bytes)) or not isinstance(
            configs, (list, tuple)
        ):
            raise ValidationError(f"configs must be a list, got {configs!r}")
        canonical = tuple(_canonical_config(c) for c in configs)
        if len(set(canonical)) != len(canonical):
            raise ValidationError(f"duplicate configs in {list(configs)!r}")
        object.__setattr__(self, "configs", canonical)

    def effective_configs(self) -> tuple[str, ...]:
        """The configs the planner enumerates: the explicit list, or the
        paper trio when none was given."""
        if self.configs:
            return self.configs
        from repro.core.configs import ConfigName

        return tuple(c.value for c in ConfigName.paper_trio())

    def to_dict(self) -> dict[str, Any]:
        return {
            "machine": self.machine,
            "nodes": self.nodes,
            "configs": list(self.configs),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "PoolEntry":
        _require_keys(
            data, required=("machine", "nodes"), optional=("configs",)
        )
        return cls(
            machine=data["machine"],
            nodes=data["nodes"],
            configs=data.get("configs", ()),
        )


@dataclass(frozen=True)
class PlanRequest:
    """The declarative capacity-planning spec."""

    mix: tuple[TrafficItem, ...]
    pool: tuple[PoolEntry, ...]
    objective: str = "runtime"

    def __post_init__(self) -> None:
        mix = self.mix
        if isinstance(mix, (str, bytes)) or not isinstance(mix, (list, tuple)):
            raise ValidationError(f"mix must be a list, got {mix!r}")
        if not mix:
            raise EmptyMixError("the traffic mix is empty: nothing to place")
        for i, item in enumerate(mix):
            if not isinstance(item, TrafficItem):
                raise ValidationError(
                    f"mix[{i}] must be a TrafficItem, got {type(item).__name__}"
                )
        object.__setattr__(self, "mix", tuple(mix))
        pool = self.pool
        if isinstance(pool, (str, bytes)) or not isinstance(
            pool, (list, tuple)
        ):
            raise ValidationError(f"pool must be a list, got {pool!r}")
        if not pool:
            raise EmptyMixError("the machine pool is empty: nowhere to place")
        for i, entry in enumerate(pool):
            if not isinstance(entry, PoolEntry):
                raise ValidationError(
                    f"pool[{i}] must be a PoolEntry, got {type(entry).__name__}"
                )
        machines = [entry.machine for entry in pool]
        if len(set(machines)) != len(machines):
            raise ValidationError(f"duplicate pool machines in {machines}")
        object.__setattr__(self, "pool", tuple(pool))
        object.__setattr__(
            self, "objective", _canonical_objective(self.objective)
        )

    def candidate_count(self) -> int:
        """How many (item, machine, config) predictions the planner must
        make — the admission-control unit, mirroring how a grid request
        counts its expanded queries."""
        per_item = sum(len(entry.effective_configs()) for entry in self.pool)
        return len(self.mix) * per_item

    def canonical_key(self) -> str:
        """A stable string identity of this request (the shard router's
        ring key) — canonicalized fields, sorted keys."""
        return json.dumps(self.to_dict(), sort_keys=True)

    def to_dict(self) -> dict[str, Any]:
        return {
            "mix": [item.to_dict() for item in self.mix],
            "pool": [entry.to_dict() for entry in self.pool],
            "objective": self.objective,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "PlanRequest":
        _require_keys(
            data, required=("mix", "pool"), optional=("objective",)
        )
        mix = data["mix"]
        if isinstance(mix, (str, bytes)) or not isinstance(mix, (list, tuple)):
            raise ValidationError(f"mix must be a list, got {mix!r}")
        pool = data["pool"]
        if isinstance(pool, (str, bytes)) or not isinstance(
            pool, (list, tuple)
        ):
            raise ValidationError(f"pool must be a list, got {pool!r}")
        return cls(
            mix=tuple(TrafficItem.from_dict(i) for i in mix),
            pool=tuple(PoolEntry.from_dict(e) for e in pool),
            objective=data.get("objective", "runtime"),
        )


@dataclass(frozen=True)
class PlanAssignment:
    """One mix item's solved placement.

    ``time_ns`` and ``metric`` are the engine's prediction for the
    chosen (machine, config) — bit-identical to a direct
    :meth:`repro.api.facade.Predictor.predict` of the same query.
    ``load_nodes`` is ``weight * time_s`` (the busy-node average the
    capacity constraint packs); ``energy_j`` prices one arrival through
    :class:`repro.engine.energy.EnergyModel`.
    """

    item: TrafficItem
    machine: str
    config: str
    time_ns: float
    metric: float
    metric_name: str
    metric_unit: str
    load_nodes: float
    energy_j: float

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "machine", _canonical_pool_machine(self.machine)
        )
        object.__setattr__(self, "config", _canonical_config(self.config))
        object.__setattr__(self, "time_ns", _check_size("time_ns", self.time_ns))
        object.__setattr__(self, "metric", _check_finite("metric", self.metric))
        _check_str("metric_name", self.metric_name)
        _check_str("metric_unit", self.metric_unit)
        object.__setattr__(
            self, "load_nodes", _check_non_negative("load_nodes", self.load_nodes)
        )
        object.__setattr__(
            self, "energy_j", _check_non_negative("energy_j", self.energy_j)
        )

    @property
    def time_s(self) -> float:
        return self.time_ns * 1e-9

    def to_dict(self) -> dict[str, Any]:
        return {
            "item": self.item.to_dict(),
            "machine": self.machine,
            "config": self.config,
            "time_ns": self.time_ns,
            "metric": self.metric,
            "metric_name": self.metric_name,
            "metric_unit": self.metric_unit,
            "load_nodes": self.load_nodes,
            "energy_j": self.energy_j,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "PlanAssignment":
        _require_keys(
            data,
            required=(
                "item",
                "machine",
                "config",
                "time_ns",
                "metric",
                "metric_name",
                "metric_unit",
                "load_nodes",
                "energy_j",
            ),
            optional=(),
        )
        return cls(
            item=TrafficItem.from_dict(data["item"]),
            machine=data["machine"],
            config=data["config"],
            time_ns=data["time_ns"],
            metric=data["metric"],
            metric_name=_check_str("metric_name", data["metric_name"]),
            metric_unit=_check_str("metric_unit", data["metric_unit"]),
            load_nodes=data["load_nodes"],
            energy_j=data["energy_j"],
        )


@dataclass(frozen=True)
class MachineLoad:
    """One pool machine's aggregate load in the solved plan."""

    machine: str
    nodes: int
    load_nodes: float

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "machine", _canonical_pool_machine(self.machine)
        )
        object.__setattr__(self, "nodes", _check_threads("nodes", self.nodes))
        object.__setattr__(
            self, "load_nodes", _check_non_negative("load_nodes", self.load_nodes)
        )

    @property
    def utilization(self) -> float:
        return self.load_nodes / self.nodes

    def to_dict(self) -> dict[str, Any]:
        return {
            "machine": self.machine,
            "nodes": self.nodes,
            "load_nodes": self.load_nodes,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "MachineLoad":
        _require_keys(
            data, required=("machine", "nodes", "load_nodes"), optional=()
        )
        return cls(
            machine=data["machine"],
            nodes=data["nodes"],
            load_nodes=data["load_nodes"],
        )


@dataclass(frozen=True)
class PlanResult:
    """The planner's answer: one assignment per mix item, in mix order.

    Deliberately carries **no** timestamps or elapsed times — the same
    spec planned through the CLI and through ``/v1/plan`` must produce
    byte-identical dictionaries (timing lives in the service envelope's
    ``meta``, outside this object).
    """

    assignments: tuple[PlanAssignment, ...]
    objective: str
    objective_value: float
    loads: tuple[MachineLoad, ...]
    schema_version: int = SCHEMA_VERSION

    def __post_init__(self) -> None:
        assignments = self.assignments
        if isinstance(assignments, (str, bytes)) or not isinstance(
            assignments, (list, tuple)
        ):
            raise ValidationError(
                f"assignments must be a list, got {assignments!r}"
            )
        for i, assignment in enumerate(assignments):
            if not isinstance(assignment, PlanAssignment):
                raise ValidationError(
                    f"assignments[{i}] must be a PlanAssignment, got "
                    f"{type(assignment).__name__}"
                )
        object.__setattr__(self, "assignments", tuple(assignments))
        object.__setattr__(
            self, "objective", _canonical_objective(self.objective)
        )
        object.__setattr__(
            self,
            "objective_value",
            _check_non_negative("objective_value", self.objective_value),
        )
        loads = self.loads
        if isinstance(loads, (str, bytes)) or not isinstance(
            loads, (list, tuple)
        ):
            raise ValidationError(f"loads must be a list, got {loads!r}")
        for i, load in enumerate(loads):
            if not isinstance(load, MachineLoad):
                raise ValidationError(
                    f"loads[{i}] must be a MachineLoad, got "
                    f"{type(load).__name__}"
                )
        object.__setattr__(self, "loads", tuple(loads))

    def to_dict(self) -> dict[str, Any]:
        return {
            "schema_version": self.schema_version,
            "assignments": [a.to_dict() for a in self.assignments],
            "objective": self.objective,
            "objective_value": self.objective_value,
            "loads": [m.to_dict() for m in self.loads],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "PlanResult":
        _require_keys(
            data,
            required=("assignments", "objective", "objective_value", "loads"),
            optional=("schema_version",),
        )
        version = check_schema_version(data.get("schema_version"))
        assignments = data["assignments"]
        if isinstance(assignments, (str, bytes)) or not isinstance(
            assignments, (list, tuple)
        ):
            raise ValidationError(
                f"assignments must be a list, got {assignments!r}"
            )
        loads = data["loads"]
        if isinstance(loads, (str, bytes)) or not isinstance(
            loads, (list, tuple)
        ):
            raise ValidationError(f"loads must be a list, got {loads!r}")
        return cls(
            assignments=tuple(
                PlanAssignment.from_dict(a) for a in assignments
            ),
            objective=data["objective"],
            objective_value=data["objective_value"],
            loads=tuple(MachineLoad.from_dict(m) for m in loads),
            schema_version=version,
        )
