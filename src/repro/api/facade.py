"""The unified prediction facade.

One entry point behind which every consumer — CLI, service, advisor,
placement optimizer, sweeps — evaluates the performance model.  The
facade speaks two levels:

* **wire level** — :class:`~repro.api.types.Query` /
  :class:`~repro.api.types.QueryGrid` in,
  :class:`~repro.api.types.PredictionResult` out
  (:meth:`Predictor.predict`, :meth:`Predictor.predict_many`,
  :meth:`Predictor.predict_grid`); names are resolved, validated and
  canonicalized here, so typed :mod:`repro.api.errors` are raised at the
  boundary and never from deep inside a coalesced batch;
* **object level** — :class:`~repro.workloads.base.Workload` /
  :class:`~repro.core.configs.SystemConfig` instances in,
  :class:`~repro.core.runner.RunRecord` out (:meth:`Predictor.run`,
  :meth:`Predictor.run_cells`, :func:`compare_configs`,
  :func:`evaluate_placements`) — the shapes the in-process consumers
  already hold.

Both levels route through one :class:`~repro.core.executor.SweepExecutor`
per machine preset, so every path shares the content-addressed run cache
and the columnar batch engine, and batch results stay bit-identical to
scalar evaluation (the PR-4 contract).

Thread-safety: a :class:`Predictor` is **not** thread-safe — the batch
evaluator it drives mutates a shared simulated-OS allocator.  The serving
layer gives each worker thread its own predictor; in-process callers
share the module-level default from a single thread.
"""

from __future__ import annotations

import functools
import threading
from collections.abc import Sequence
from typing import TYPE_CHECKING, Any

from repro.api.errors import UnknownWorkloadError, ValidationError
from repro.api.types import MACHINE_NAMES, PredictionResult, Query, QueryGrid

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.executor import ExecutorStats, SweepCell, SweepExecutor
    from repro.core.runner import RunRecord
    from repro.engine.batch import ModelTables
    from repro.engine.perfmodel import RunResult
    from repro.engine.profilephase import MemoryProfile
    from repro.machine.topology import KNLMachine
    from repro.workloads.base import Workload

__all__ = [
    "Predictor",
    "default_predictor",
    "predict",
    "predict_many",
    "predict_grid",
    "compare_configs",
    "evaluate_placements",
    "query_cache_key",
    "sized_workload",
    "machine_preset",
]


def machine_preset(name: str) -> "KNLMachine":
    """Build the named machine preset (:data:`~repro.api.types.MACHINE_NAMES`).

    Every name resolves through the declarative machine registry
    (:mod:`repro.machine.registry`); the KNL entries build bit-identical
    twins of the historical hand-coded presets.
    """
    from repro.machine import registry

    try:
        return registry.build(name.lower())
    except KeyError:
        raise ValidationError(
            f"unknown machine {name!r}; expected one of {', '.join(MACHINE_NAMES)}"
        ) from None


@functools.lru_cache(maxsize=1024)
def sized_workload(name: str, size_gb: float) -> "Workload":
    """A workload instance at the paper's size axis (memoized).

    Raises :class:`UnknownWorkloadError` for names without a size
    constructor and :class:`ValidationError` for sizes the constructor
    rejects.  Instances are immutable after construction, so sharing the
    memoized object across predictors is safe.
    """
    from repro.workloads.registry import FROM_GB

    ctor = FROM_GB.get(name.lower())
    if ctor is None:
        raise UnknownWorkloadError(
            f"workload {name!r} is not queryable by size; available: "
            f"{', '.join(sorted(FROM_GB))}",
            details={"available": sorted(FROM_GB)},
        )
    try:
        return ctor(float(size_gb))
    except (ValueError, TypeError) as exc:
        raise ValidationError(
            f"cannot size {name} at {size_gb} GB: {exc}"
        ) from exc


class Predictor:
    """The facade object: queries in, predictions out, one executor per
    machine preset.

    ``runner`` (an :class:`~repro.core.runner.ExperimentRunner`,
    :class:`~repro.checks.checker.CheckingRunner` or an existing
    :class:`~repro.core.executor.SweepExecutor`) seeds the executor for
    its own machine preset; other presets get a fresh serial executor on
    first use.  Serial executors dispatch multi-cell misses through the
    columnar batch engine automatically.
    """

    def __init__(
        self,
        runner: Any = None,
        *,
        machine: str = "knl7210",
        cache_size: int = 4096,
        cache_dir: Any = None,
        table_cache_dir: Any = None,
    ) -> None:
        if machine.lower() not in MACHINE_NAMES:
            raise ValidationError(
                f"unknown machine {machine!r}; expected one of "
                f"{', '.join(MACHINE_NAMES)}"
            )
        self.default_machine = machine.lower()
        self.cache_size = cache_size
        self.cache_dir = cache_dir
        self.table_cache_dir = table_cache_dir
        # Guards the executor table only.  Evaluation stays single-thread
        # by contract, but stats()/close() legitimately read the table
        # from *other* threads (the service's /metrics path aggregates
        # worker predictors), and an unguarded dict being grown by
        # executor() mid-iteration raises "dictionary changed size
        # during iteration".
        self._executors_lock = threading.Lock()
        self._executors: dict[str, "SweepExecutor"] = {}
        self._tables: dict[str, "ModelTables"] = {}
        if runner is not None:
            from repro.core.executor import as_executor

            self._executors[self.default_machine] = as_executor(runner)

    # -- executors ------------------------------------------------------------
    def executor(self, machine: str | None = None) -> "SweepExecutor":
        """The (lazily created) executor for a machine preset."""
        name = (machine or self.default_machine).lower()
        with self._executors_lock:
            executor = self._executors.get(name)
        if executor is None:
            from repro.core.executor import SweepExecutor
            from repro.core.runner import ExperimentRunner

            executor = SweepExecutor(
                ExperimentRunner(machine_preset(name)),
                cache_size=self.cache_size,
                cache_dir=self.cache_dir,
                table_cache_dir=self.table_cache_dir,
            )
            with self._executors_lock:
                # Another caller may have built the same preset while we
                # did; keep the first one so stats stay on one object.
                executor = self._executors.setdefault(name, executor)
        return executor

    def _executor_snapshot(self) -> list["SweepExecutor"]:
        with self._executors_lock:
            return list(self._executors.values())

    def machine(self, name: str | None = None) -> "KNLMachine":
        """The machine model behind a preset name."""
        return self.executor(name).machine

    # -- wire level -----------------------------------------------------------
    def resolve(self, query: Query) -> "SweepCell":
        """Turn a wire query into an executable sweep cell.

        All name/range validation happens here — typed errors surface at
        the API boundary instead of poisoning a coalesced batch half-way
        through.  Modelled infeasibility (footprint over HBM capacity,
        DGEMM's failed 256-thread runs) is *not* an error: the cell
        evaluates to a record with ``infeasible_reason`` set.
        """
        from repro.core.configs import ConfigName, make_config
        from repro.core.executor import SweepCell
        from repro.runtime.simos import ensure_mode_supported

        workload = sized_workload(query.workload, query.size_gb)
        config = make_config(ConfigName(query.config))
        machine = self.machine(query.machine)
        try:
            machine.place_threads(query.num_threads)
            ensure_mode_supported(machine, config.mcdram)
        except ValueError as exc:
            raise ValidationError(str(exc)) from exc
        return SweepCell(workload, config, query.num_threads)

    def cache_key(self, query: Query) -> str:
        """The PR-1 content-addressed key of a query's sweep cell."""
        cell = self.resolve(query)
        return self.executor(query.machine).cache_key(cell)

    def predict(self, query: Query) -> PredictionResult:
        """Answer one query (the scalar path — the identity oracle every
        batched or cached response must match bit-for-bit)."""
        cell = self.resolve(query)
        record = self.executor(query.machine).run_cells([cell])[0]
        return PredictionResult.from_record(query, record)

    def predict_many(
        self, queries: Sequence[Query]
    ) -> list[PredictionResult]:
        """Answer many queries as dense per-machine batches.

        Results come back in submission order; each machine preset's
        cells go through its executor as one batch, so misses take the
        columnar engine and duplicates inside the batch are evaluated
        once.
        """
        cells = [self.resolve(q) for q in queries]
        by_machine: dict[str, list[int]] = {}
        for i, query in enumerate(queries):
            by_machine.setdefault(query.machine, []).append(i)
        results: list[PredictionResult | None] = [None] * len(queries)
        for machine, indices in by_machine.items():
            records = self.executor(machine).run_cells(
                [cells[i] for i in indices]
            )
            for i, record in zip(indices, records):
                results[i] = PredictionResult.from_record(queries[i], record)
        assert all(r is not None for r in results)
        return results  # type: ignore[return-value]

    def predict_grid(self, grid: QueryGrid) -> list[PredictionResult]:
        """Answer a dense grid (workload-major order, see
        :meth:`QueryGrid.expand`)."""
        return self.predict_many(grid.expand())

    # -- object level ---------------------------------------------------------
    def run(
        self, workload: "Workload", config: Any, num_threads: int = 64
    ) -> "RunRecord":
        """One cached evaluation (drop-in for
        :meth:`repro.core.runner.ExperimentRunner.run`)."""
        return self.executor().run(workload, config, num_threads)

    def run_cells(self, cells: Sequence["SweepCell"]) -> list["RunRecord"]:
        """A batch of cells through the default machine's executor."""
        return self.executor().run_cells(cells)

    def compare_configs(
        self,
        workload: "Workload",
        configs: Sequence[Any] | None = None,
        num_threads: int = 64,
    ) -> list["RunRecord"]:
        """The workload under several configurations (default: the
        paper's trio), in the given order."""
        return compare_configs(
            workload, configs, num_threads, runner=self.executor()
        )

    # -- bookkeeping ----------------------------------------------------------
    def stats(self) -> "ExecutorStats":
        """One aggregate over every machine preset's executor.

        Safe to call from any thread (the /metrics aggregation path
        does) — the executor table is snapshotted under its lock.
        """
        from repro.core.executor import ExecutorStats

        totals = [ex.stats() for ex in self._executor_snapshot()]
        return ExecutorStats(
            hits=sum(s.hits for s in totals),
            misses=sum(s.misses for s in totals),
            disk_hits=sum(s.disk_hits for s in totals),
            executed=sum(s.executed for s in totals),
            batches=sum(s.batches for s in totals),
            batched_cells=sum(s.batched_cells for s in totals),
            table_cache_hits=sum(s.table_cache_hits for s in totals),
            table_cache_misses=sum(s.table_cache_misses for s in totals),
            table_cache_stores=sum(s.table_cache_stores for s in totals),
        )

    def close(self) -> None:
        for executor in self._executor_snapshot():
            executor.close()


def compare_configs(
    workload: "Workload",
    configs: Sequence[Any] | None = None,
    num_threads: int = 64,
    *,
    runner: Any = None,
) -> list["RunRecord"]:
    """Run a workload under several configurations, in order.

    ``configs`` accepts :class:`~repro.core.configs.ConfigName` members
    or resolved :class:`~repro.core.configs.SystemConfig` objects and
    defaults to the paper's trio.  With no ``runner`` the module-level
    default predictor serves the records (cached, batch-evaluated);
    with one, evaluation preserves the caller's dispatch semantics —
    a :class:`~repro.core.executor.SweepExecutor` takes the cells as one
    batch, a plain runner (or a checking runner) runs them in sequence,
    exactly like the historical per-config loop.
    """
    from repro.core.configs import ConfigName, make_config
    from repro.core.executor import SweepCell, SweepExecutor

    if configs is None:
        configs = ConfigName.paper_trio()
    resolved = [
        make_config(c) if isinstance(c, ConfigName) else c for c in configs
    ]
    if runner is None:
        runner = default_predictor().executor()
    if isinstance(runner, SweepExecutor):
        return runner.run_cells(
            [SweepCell(workload, c, num_threads) for c in resolved]
        )
    return [runner.run(workload, c, num_threads) for c in resolved]


def evaluate_placements(
    profile: "MemoryProfile",
    placements: Sequence[Any],
    num_threads: int = 64,
    *,
    tables: "ModelTables | None" = None,
    machine: "KNLMachine | None" = None,
    memory: Any = None,
) -> list["RunResult"]:
    """Evaluate one profile under many placements as a single columnar
    batch (bit-identical to per-placement ``PerformanceModel.evaluate``).

    ``placements`` holds :class:`~repro.engine.placement.PlacementMix`
    objects or phase-name->mix dicts (the fine-grained form the placement
    optimizer searches).  Pass ``tables`` to reuse a caller's memoized
    :class:`~repro.engine.batch.ModelTables`; otherwise one is built
    from ``machine``/``memory`` (defaulting to the paper's testbed in
    flat mode).
    """
    if tables is None:
        from repro.engine.batch import ModelTables
        from repro.memory.modes import MCDRAMConfig, MemorySystem

        if machine is None:
            machine = machine_preset("knl7210")
        if memory is None:
            memory = MemorySystem(MCDRAMConfig.flat())
        tables = ModelTables(machine, memory)
    return tables.evaluate_batch(
        [(profile, placement, num_threads) for placement in placements]
    )


# -- module-level default ------------------------------------------------------

_default: Predictor | None = None
_default_lock = threading.Lock()


def default_predictor() -> Predictor:
    """The process-wide default predictor (created on first use)."""
    global _default
    with _default_lock:
        if _default is None:
            _default = Predictor()
        return _default


def predict(query: Query) -> PredictionResult:
    """One query through the default predictor."""
    return default_predictor().predict(query)


def predict_many(queries: Sequence[Query]) -> list[PredictionResult]:
    """Many queries through the default predictor, as dense batches."""
    return default_predictor().predict_many(queries)


def predict_grid(grid: QueryGrid) -> list[PredictionResult]:
    """A dense grid through the default predictor."""
    return default_predictor().predict_grid(grid)


def query_cache_key(query: Query) -> str:
    """The content-addressed cache key of a query (default machine set)."""
    return default_predictor().cache_key(query)
