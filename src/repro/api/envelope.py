"""The versioned wire envelope, built in exactly one place.

Every body the service emits — success or error, single service or
shard router — is stamped with :data:`~repro.api.types.SCHEMA_VERSION`.
Historically each emitting site built its own dict literal (three in
``serve/service.py``, three in ``serve/shard.py``, plus the HTTP
layer's error path); this module is the single construction point so a
schema bump cannot leave a stale stamp behind.

* :func:`success_envelope` — ``{"schema_version": ..., **fields}``;
* :func:`error_envelope` — ``{"schema_version": ..., "error": {...}}``
  from a typed :class:`~repro.api.errors.ApiError` or a bare
  ``(code, message)`` pair.
"""

from __future__ import annotations

from typing import Any

from repro.api.errors import ApiError

__all__ = ["success_envelope", "error_envelope"]


def success_envelope(**fields: Any) -> dict[str, Any]:
    """A versioned success body carrying ``fields``.

    ``fields`` must not spell ``schema_version`` — the stamp is this
    function's job.
    """
    from repro.api.types import SCHEMA_VERSION

    if "schema_version" in fields:
        raise ValueError("success_envelope stamps schema_version itself")
    return {"schema_version": SCHEMA_VERSION, **fields}


def error_envelope(
    error: ApiError | str, message: str | None = None
) -> dict[str, Any]:
    """A versioned error body.

    Pass a typed :class:`~repro.api.errors.ApiError` (its wire
    ``ErrorInfo`` is serialized, details included), or a bare
    ``(code, message)`` pair for errors that never existed as
    exceptions (HTTP framing problems, unknown routes).
    """
    from repro.api.types import SCHEMA_VERSION

    if isinstance(error, ApiError):
        info = error.to_info().to_dict()
    else:
        if message is None:
            raise ValueError("a bare error code needs a message")
        info = {"code": error, "message": message}
    return {"schema_version": SCHEMA_VERSION, "error": info}
