"""The unified error taxonomy of the prediction API.

One hierarchy replaces the historical mix of bare ``ValueError``,
``KeyError``, ``RuntimeError`` and string-status results that the
fragmented entry points grew independently:

* :class:`ValidationError` — the request itself is malformed (bad types,
  out-of-range sizes, impossible thread counts).  Subclasses
  ``ValueError`` so legacy ``except ValueError`` call sites keep working.
* :class:`UnknownWorkloadError` — the workload name is not in the
  queryable registry.  Subclasses ``LookupError`` for the same reason.
* :class:`InfeasibleConfigError` — no *feasible* evaluation exists (the
  advisor's "nothing fits" case).  Subclasses ``RuntimeError``, which is
  what the advisor historically raised.  Note that a single infeasible
  cell (HBM membind over 16 GB — the paper's Fig. 4 missing bars) is
  **not** an exception: it serializes as a structured
  :class:`~repro.api.types.ErrorInfo` inside the result, exactly like
  the scalar runner's ``infeasible_reason`` records.
* :class:`CapacityError` — the serving layer refused admission
  (bounded queue full, oversized grid, draining server): the 429 of the
  wire protocol.
* :class:`DeadlineExceededError` — the per-request deadline elapsed
  before the coalesced batch completed: the 504 of the wire protocol.
* :class:`PlanError` and its subclasses — the capacity planner
  (:mod:`repro.plan`) could not produce a plan:
  :class:`EmptyMixError` (nothing to place),
  :class:`UnknownMachineError` (the pool names a machine outside the
  registry) and :class:`InfeasiblePlanError` (no feasible placement
  satisfies the node-capacity constraints).

Every class carries a stable wire ``code`` and an HTTP status; errors
cross the wire only as :class:`~repro.api.types.ErrorInfo` payloads and
are rehydrated client-side by :func:`error_from_info`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, ClassVar, Mapping

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (types imports us)
    from repro.api.types import ErrorInfo

__all__ = [
    "ApiError",
    "ValidationError",
    "SchemaVersionError",
    "UnknownWorkloadError",
    "InfeasibleConfigError",
    "CapacityError",
    "DeadlineExceededError",
    "PlanError",
    "EmptyMixError",
    "UnknownMachineError",
    "InfeasiblePlanError",
    "error_from_info",
    "error_types",
]


class ApiError(Exception):
    """Base of the prediction-API error taxonomy."""

    #: Stable wire identifier (``ErrorInfo.code``).
    code: ClassVar[str] = "internal"
    #: Status the HTTP protocol layer maps this error to.
    http_status: ClassVar[int] = 500

    def __init__(
        self, message: str, *, details: Mapping[str, Any] | None = None
    ) -> None:
        super().__init__(message)
        self.message = message
        self.details: dict[str, Any] = dict(details) if details else {}

    def to_info(self) -> "ErrorInfo":
        """The wire form of this error."""
        from repro.api.types import ErrorInfo

        return ErrorInfo(
            code=self.code, message=self.message, details=dict(self.details)
        )


class ValidationError(ApiError, ValueError):
    """The request is malformed (types, ranges, unknown fields)."""

    code = "validation"
    http_status = 400


class SchemaVersionError(ValidationError):
    """The request speaks a schema version this service does not."""

    code = "unsupported_schema"
    http_status = 400


class UnknownWorkloadError(ApiError, LookupError):
    """The named workload is not queryable."""

    code = "unknown_workload"
    http_status = 404


class InfeasibleConfigError(ApiError, RuntimeError):
    """No feasible configuration exists for the request at all.

    Raised process-locally (e.g. the advisor finding nothing that fits);
    per-cell infeasibility serializes as ``ErrorInfo`` in the result
    instead.
    """

    code = "infeasible_config"
    http_status = 409


class CapacityError(ApiError):
    """The service refused admission (queue full, grid too large,
    draining)."""

    code = "capacity"
    http_status = 429


class DeadlineExceededError(ApiError):
    """The per-request deadline elapsed before evaluation completed."""

    code = "deadline_exceeded"
    http_status = 504


class PlanError(ApiError):
    """Base of the capacity-planner failures (:mod:`repro.plan`)."""

    code = "plan"
    http_status = 400


class EmptyMixError(PlanError, ValueError):
    """The traffic mix (or the machine pool) has nothing in it."""

    code = "empty_mix"
    http_status = 400


class UnknownMachineError(PlanError, LookupError):
    """The pool names a machine outside the registry."""

    code = "unknown_machine"
    http_status = 404


class InfeasiblePlanError(PlanError, RuntimeError):
    """No feasible placement satisfies the capacity constraints.

    Either some mix item has no feasible (machine, config) candidate at
    all, or the aggregate load cannot be packed into the pool's node
    counts.  The paper's per-cell infeasibility (HBM membind over
    capacity) merely *excludes a candidate*; this error means the whole
    request has no answer.
    """

    code = "infeasible_plan"
    http_status = 409


def error_types() -> dict[str, type[ApiError]]:
    """Wire ``code`` -> exception class, for client-side rehydration."""
    return {
        cls.code: cls
        for cls in (
            ApiError,
            ValidationError,
            SchemaVersionError,
            UnknownWorkloadError,
            InfeasibleConfigError,
            CapacityError,
            DeadlineExceededError,
            PlanError,
            EmptyMixError,
            UnknownMachineError,
            InfeasiblePlanError,
        )
    }


def error_from_info(info: "ErrorInfo") -> ApiError:
    """Rehydrate a wire :class:`ErrorInfo` into the matching exception.

    Unknown codes fall back to the :class:`ApiError` base so a newer
    server cannot crash an older client.
    """
    cls = error_types().get(info.code, ApiError)
    error = cls(info.message, details=dict(info.details))
    if cls is ApiError and info.code != ApiError.code:
        error.details.setdefault("wire_code", info.code)
    return error
