"""Sharded multi-replica deployment of the prediction service.

One :class:`ShardDeployment` runs N independent
:class:`~repro.serve.service.PredictionService` replicas behind a
:class:`ShardRouter` that places every query on a replica by its
**content-addressed run key** over a consistent-hash ring
(:mod:`repro.serve.ring`).  Key affinity is the whole design: a key
always lands on the same replica while that replica is healthy, so each
replica's private TTL result cache becomes one shard of a fleet-wide
cache with no cross-replica coordination, and the replicas additionally
share one persistent ModelTables directory
(:mod:`repro.engine.table_cache`) so the first replica to build a
machine's tables warms every other replica's cold start.

Data planes — two, both deriving the same ring:

* :class:`ShardRouter` — a single HTTP entry point speaking the exact
  ``repro.serve`` wire protocol (it is hosted by the unmodified
  :class:`~repro.serve.http.HttpServer` via duck typing).  It keeps a
  router-level result cache as a shared tier above the per-replica
  caches, splits each request's misses into per-owner groups, forwards
  the groups concurrently on a thread pool, and fails over along the
  ring's preference order when a replica dies mid-request.
* :class:`ShardClient` — client-side routing for benchmark-scale
  concurrency: each client thread hashes its own keys and talks to the
  owning replica directly, so the router is not a serialization point.
  Both planes derive the identical preference order from the ring, so
  they fail over to the same secondary.

Failure semantics (proved by ``tests/serve/test_faults.py``):

* deterministic request errors (validation, unknown workload,
  deadline) are **never** retried — they are properties of the request,
  not the replica;
* transport failures and poisoned answers fail over to the next ring
  preference and charge the replica's health streak
  (:class:`~repro.serve.registry.ReplicaSet`);
* :class:`~repro.api.errors.CapacityError` (a 429) spills to the next
  preference *without* a health penalty — the replica is alive, just
  full — so a hotspot overflows onto the fleet instead of failing;
* every request either completes with the bit-identical answer
  (:meth:`~repro.api.facade.Predictor.predict` is the oracle) or
  surfaces a typed :mod:`repro.api.errors` error — never a hang, never
  a malformed envelope.

Replica backends: ``thread`` (a :class:`~repro.serve.threadserver.ServerThread`
per replica in this process — what the tests and the fault harness use,
since a :class:`~repro.serve.faults.FaultInjector` can reach in-process
hooks) and ``process`` (one ``repro serve`` subprocess per replica —
what ``repro serve --replicas N`` runs; kill is a real SIGKILL).
"""

from __future__ import annotations

import asyncio
import os
import shutil
import signal
import subprocess
import sys
import tempfile
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Mapping, Sequence

import repro
from repro.api.envelope import success_envelope
from repro.api.errors import (
    ApiError,
    CapacityError,
    DeadlineExceededError,
    InfeasibleConfigError,
    PlanError,
    UnknownWorkloadError,
    ValidationError,
)
from repro.api.facade import Predictor
from repro.api.plan import PlanRequest, PlanResult
from repro.api.types import PredictionResult, Query
from repro.obs.metrics import MetricsRegistry, merge_exports
from repro.serve.cache import TTLCache
from repro.serve.client import ServeClient
from repro.serve.faults import FaultInjector
from repro.serve.registry import ReplicaSet
from repro.serve.ring import DEFAULT_VNODES
from repro.serve.service import PredictionService, ServiceConfig
from repro.serve.threadserver import ServerThread

__all__ = [
    "ShardConfig",
    "ShardRouter",
    "ShardClient",
    "ShardDeployment",
    "ThreadReplica",
    "ProcessReplica",
]

#: Errors that are properties of the *request* (or of the global
#: deadline), not of the replica that reported them — retrying them on
#: another replica would only re-derive the same answer.
_FATAL_ERRORS = (
    ValidationError,
    UnknownWorkloadError,
    InfeasibleConfigError,
    DeadlineExceededError,
    # The whole planning taxonomy (empty mix, unknown machine,
    # infeasible plan): deterministic functions of the spec.
    PlanError,
)


@dataclass(frozen=True)
class ShardConfig:
    """Shape and behaviour of one sharded deployment."""

    #: Number of replicas to boot.
    replicas: int = 2
    #: ``thread`` (in-process ServerThreads; supports fault injection)
    #: or ``process`` (one ``repro serve`` subprocess per replica).
    backend: str = "thread"
    #: Per-replica service configuration (every replica gets a copy with
    #: its own ``replica_id``).
    service: ServiceConfig = field(default_factory=ServiceConfig)
    #: Router bind address (port 0 = ephemeral).
    host: str = "127.0.0.1"
    port: int = 0
    #: Ring layout (virtual nodes per replica).
    vnodes: int = DEFAULT_VNODES
    #: Consecutive forwarding failures before a replica is marked down.
    fail_after: int = 2
    #: Active ``/healthz`` probe period; ``0`` disables active probing
    #: (passive failure detection still runs).
    probe_interval_s: float = 0.5
    #: Router forwarding pool size (each in-flight replica group holds
    #: one thread for the duration of its round trip).
    router_workers: int = 8
    #: Shared router-tier result cache (a second tier above the
    #: per-replica caches; 0 disables).
    router_cache_entries: int = 8192
    router_cache_ttl_s: float | None = 300.0
    #: Maximum replicas tried per group (ring preference order).
    max_attempts: int = 3
    #: Per-attempt time budget; ``None`` spends the full remaining
    #: request deadline on the first replica (no failover on stalls).
    attempt_timeout_s: float | None = None
    #: Share one persistent table-cache directory across all replicas
    #: when the service config does not already name one.
    share_table_cache: bool = True

    def __post_init__(self) -> None:
        if self.backend not in ("thread", "process"):
            raise ValidationError(
                f"backend must be 'thread' or 'process', got {self.backend!r}"
            )
        for name in ("replicas", "vnodes", "fail_after", "router_workers",
                     "max_attempts"):
            if getattr(self, name) < 1:
                raise ValidationError(
                    f"{name} must be >= 1, got {getattr(self, name)}"
                )
        if self.probe_interval_s < 0:
            raise ValidationError(
                f"probe_interval_s must be >= 0, got {self.probe_interval_s}"
            )
        if self.attempt_timeout_s is not None and self.attempt_timeout_s <= 0:
            raise ValidationError(
                f"attempt_timeout_s must be positive or None, got "
                f"{self.attempt_timeout_s}"
            )
        if self.router_cache_entries < 0:
            raise ValidationError(
                f"router_cache_entries must be >= 0, got "
                f"{self.router_cache_entries}"
            )


class ShardRouter:
    """Routing front end with the PredictionService protocol surface.

    Duck-types what :class:`~repro.serve.http.HttpServer` and
    :class:`~repro.serve.threadserver.ServerThread` need — ``metrics``,
    ``running``, async ``start``/``stop``, ``handle_predict``,
    ``handle_plan``, ``healthz``/``version``/``metrics_snapshot`` — so
    the whole HTTP layer is reused unchanged.
    """

    def __init__(self, config: ShardConfig, replicas: ReplicaSet) -> None:
        self.config = config
        self.replicas = replicas
        self.metrics = MetricsRegistry()
        self.cache: TTLCache[PredictionResult] = TTLCache(
            config.router_cache_entries, config.router_cache_ttl_s
        )
        # Keying only (never evaluates) — event-loop use is safe.
        self._resolver = Predictor(machine=config.service.machine)
        self._pool: ThreadPoolExecutor | None = None
        self._probe_task: asyncio.Task[None] | None = None
        self._tls = threading.local()
        self._all_clients: list[ServeClient] = []
        self._clients_lock = threading.Lock()
        self._state = "created"
        self._started_monotonic: float | None = None

    # -- lifecycle ------------------------------------------------------------
    @property
    def state(self) -> str:
        return self._state

    @property
    def running(self) -> bool:
        return self._state == "running"

    def uptime_s(self) -> float:
        if self._started_monotonic is None:
            return 0.0
        return time.monotonic() - self._started_monotonic

    async def start(self) -> None:
        if self._state not in ("created", "stopped"):
            raise RuntimeError(f"cannot start a router in state {self._state}")
        self._pool = ThreadPoolExecutor(
            max_workers=self.config.router_workers,
            thread_name_prefix="shard-route",
        )
        self._state = "running"
        self._started_monotonic = time.monotonic()
        if self.config.probe_interval_s > 0:
            self._probe_task = asyncio.get_running_loop().create_task(
                self._probe_loop()
            )

    async def stop(self, *, drain: bool = True) -> None:
        if self._state in ("created", "stopped"):
            self._state = "stopped"
            return
        self._state = "draining"
        if self._probe_task is not None:
            self._probe_task.cancel()
            try:
                await self._probe_task
            except asyncio.CancelledError:
                pass
            self._probe_task = None
        pool = self._pool
        if pool is not None:
            # drain=True waits for in-flight forwards to finish their
            # round trips; drain=False abandons them (their sockets die
            # with the replicas).
            await asyncio.get_running_loop().run_in_executor(
                None, lambda: pool.shutdown(wait=drain)
            )
            self._pool = None
        with self._clients_lock:
            clients, self._all_clients = self._all_clients, []
        for client in clients:
            client.close()
        self._state = "stopped"

    # -- health probing ---------------------------------------------------------
    async def _probe_loop(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            await asyncio.sleep(self.config.probe_interval_s)
            pool = self._pool
            if pool is None:
                return
            for replica_id in self.replicas.ids():
                try:
                    healthy = await loop.run_in_executor(
                        pool, self._probe_one, replica_id
                    )
                except RuntimeError:  # pool shut down mid-probe
                    return
                self.replicas.mark_probe(replica_id, healthy)
                self.metrics.add("router.probes")

    def _probe_one(self, replica_id: str) -> bool:
        try:
            host, port = self.replicas.address(replica_id)
        except KeyError:
            return False
        timeout = max(0.25, min(2.0, self.config.probe_interval_s * 2))
        try:
            with ServeClient(host, port, timeout=timeout) as client:
                return client.healthz().get("status") == "ok"
        except Exception:
            return False

    # -- per-thread replica clients ---------------------------------------------
    def _client(self, replica_id: str) -> ServeClient:
        """This pool thread's client to ``replica_id`` (generation-keyed
        so a restarted replica never inherits a socket to its dead
        twin)."""
        cache: dict[str, tuple[int, ServeClient]] | None = getattr(
            self._tls, "clients", None
        )
        if cache is None:
            cache = self._tls.clients = {}
        generation = self.replicas.generation(replica_id)  # KeyError if gone
        entry = cache.get(replica_id)
        if entry is None or entry[0] != generation:
            if entry is not None:
                entry[1].close()
            host, port = self.replicas.address(replica_id)
            client = ServeClient(host, port, timeout=60.0)
            cache[replica_id] = (generation, client)
            with self._clients_lock:
                self._all_clients.append(client)
        return cache[replica_id][1]

    def _drop_client(self, replica_id: str) -> None:
        cache = getattr(self._tls, "clients", None)
        if cache is None:
            return
        entry = cache.pop(replica_id, None)
        if entry is not None:
            entry[1].close()

    # -- request handling (event loop) ----------------------------------------
    def _deadline_s(self, payload: Mapping[str, Any]) -> float:
        value = payload.get(
            "deadline_s", self.config.service.default_deadline_s
        )
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise ValidationError(f"deadline_s must be a number, got {value!r}")
        if value <= 0:
            raise ValidationError(f"deadline_s must be positive, got {value}")
        return float(value)

    async def handle_predict(self, payload: Mapping[str, Any]) -> dict[str, Any]:
        """Answer one ``/v1/predict`` body with the standard envelope."""
        started = time.perf_counter()
        queries = PredictionService.parse_queries(payload)
        deadline_s = self._deadline_s(payload)
        limit = self.config.service.max_request_queries
        if len(queries) > limit:
            self.metrics.add("router.rejected")
            raise CapacityError(
                f"request expands to {len(queries)} queries; the router "
                f"caps requests at {limit}",
                details={"max_request_queries": limit},
            )
        if self._state != "running":
            raise CapacityError(f"router is {self._state}")
        keys = [self._resolver.cache_key(q) for q in queries]
        results: list[PredictionResult | None] = [None] * len(queries)
        miss_indices: list[int] = []
        for i, key in enumerate(keys):
            cached = self.cache.get(key) if self.cache.enabled else None
            if cached is not None:
                results[i] = cached
            else:
                miss_indices.append(i)
        hits = len(queries) - len(miss_indices)
        self.metrics.add("router.cache_hits", float(hits))
        self.metrics.add("router.cache_misses", float(len(miss_indices)))
        if miss_indices:
            await self._forward_misses(
                queries, keys, results, miss_indices, deadline_s
            )
        self.metrics.add("router.queries", float(len(queries)))
        self.metrics.set_gauge("router.cache_hit_rate", self.cache.hit_rate)
        elapsed_ms = (time.perf_counter() - started) * 1e3
        assert all(r is not None for r in results)
        return success_envelope(
            results=[r.to_dict() for r in results],  # type: ignore[union-attr]
            meta={
                "queries": len(queries),
                "cached": hits,
                "computed": len(miss_indices),
                "elapsed_ms": elapsed_ms,
            },
        )

    async def handle_plan(self, payload: Mapping[str, Any]) -> dict[str, Any]:
        """Answer one ``/v1/plan`` body by forwarding the whole solve to
        one replica (chosen by the request's canonical key, so repeated
        identical specs keep landing where the candidate evaluations are
        already cached), failing over along the ring preference order."""
        started = time.perf_counter()
        request = PredictionService.parse_plan(payload)
        deadline_s = self._deadline_s(payload)
        limit = self.config.service.max_request_queries
        candidates = request.candidate_count()
        if candidates > limit:
            self.metrics.add("router.rejected")
            raise CapacityError(
                f"plan expands to {candidates} candidate queries; the "
                f"router caps requests at {limit}",
                details={"max_request_queries": limit},
            )
        if self._state != "running":
            raise CapacityError(f"router is {self._state}")
        assert self._pool is not None
        ring = self.replicas.ring()
        if not len(ring):
            self.metrics.add("router.rejected")
            raise CapacityError(
                "no routable replicas (all down or draining)",
                details={"replicas": self.replicas.as_dict()["replicas"]},
            )
        preferences = ring.preferences(
            request.canonical_key(), self.config.max_attempts
        )
        deadline_at = time.monotonic() + deadline_s
        future = asyncio.get_running_loop().run_in_executor(
            self._pool, self._forward_plan, preferences, request, deadline_at
        )
        try:
            result = await asyncio.wait_for(future, timeout=deadline_s + 1.0)
        except asyncio.TimeoutError:
            self.metrics.add("router.deadline_exceeded")
            raise DeadlineExceededError(
                f"deadline of {deadline_s:g}s exceeded at the router "
                "(plan still solving)",
                details={"deadline_s": deadline_s},
            ) from None
        elapsed_ms = (time.perf_counter() - started) * 1e3
        self.metrics.add("router.plans")
        return success_envelope(
            plan=result.to_dict(),
            meta={
                "items": len(request.mix),
                "pool": len(request.pool),
                "candidates": candidates,
                "elapsed_ms": elapsed_ms,
            },
        )

    def _forward_plan(
        self,
        preferences: Sequence[str],
        request: PlanRequest,
        deadline_at: float,
    ) -> PlanResult:
        """One plan's round trip with failover (pool thread) — the same
        error classification as :meth:`_forward_group`."""
        last_error: Exception | None = None
        for replica_id in preferences:
            remaining = deadline_at - time.monotonic()
            if remaining <= 0:
                break
            budget = remaining
            if self.config.attempt_timeout_s is not None:
                budget = min(budget, self.config.attempt_timeout_s)
            try:
                client = self._client(replica_id)
            except KeyError:  # deregistered while we routed
                continue
            client.set_timeout(budget + 0.5)
            try:
                result = client.plan(request, deadline_s=remaining)
            except _FATAL_ERRORS:
                raise
            except CapacityError as exc:
                last_error = exc
                self.metrics.add(
                    "router.replica_busy", labels={"replica": replica_id}
                )
                continue
            except (OSError, ApiError) as exc:
                last_error = exc
                self._drop_client(replica_id)
                self.replicas.mark_failure(replica_id)
                self.metrics.add(
                    "router.failovers", labels={"replica": replica_id}
                )
                continue
            self.replicas.mark_success(replica_id)
            self.metrics.add(
                "router.forwards", labels={"replica": replica_id}
            )
            return result
        if time.monotonic() >= deadline_at:
            self.metrics.add("router.deadline_exceeded")
            raise DeadlineExceededError(
                "deadline exceeded while failing over "
                f"(tried {list(preferences)})",
            ) from last_error
        if isinstance(last_error, ApiError):
            raise last_error
        self.metrics.add("router.rejected")
        raise CapacityError(
            f"no replica answered (tried {list(preferences)})",
        ) from last_error

    async def _forward_misses(
        self,
        queries: Sequence[Query],
        keys: Sequence[str],
        results: list[PredictionResult | None],
        miss_indices: Sequence[int],
        deadline_s: float,
    ) -> None:
        """Group misses by ring owner, forward the groups concurrently,
        scatter the answers back in place."""
        assert self._pool is not None
        ring = self.replicas.ring()
        if not len(ring):
            self.metrics.add("router.rejected")
            raise CapacityError(
                "no routable replicas (all down or draining)",
                details={"replicas": self.replicas.as_dict()["replicas"]},
            )
        groups: dict[str, list[int]] = {}
        for index in miss_indices:
            groups.setdefault(ring.assign(keys[index]), []).append(index)
        deadline_at = time.monotonic() + deadline_s
        loop = asyncio.get_running_loop()
        futures = [
            loop.run_in_executor(
                self._pool,
                self._forward_group,
                ring.preferences(keys[indices[0]], self.config.max_attempts),
                [queries[i] for i in indices],
                deadline_at,
            )
            for indices in groups.values()
        ]
        try:
            answered = await asyncio.wait_for(
                asyncio.gather(*futures), timeout=deadline_s + 1.0
            )
        except asyncio.TimeoutError:
            self.metrics.add("router.deadline_exceeded")
            raise DeadlineExceededError(
                f"deadline of {deadline_s:g}s exceeded at the router "
                f"({len(miss_indices)} queries pending)",
                details={"deadline_s": deadline_s},
            ) from None
        for indices, group_results in zip(groups.values(), answered):
            for index, result in zip(indices, group_results):
                results[index] = result
                self.cache.put(keys[index], result)

    def _forward_group(
        self,
        preferences: Sequence[str],
        queries: list[Query],
        deadline_at: float,
    ) -> list[PredictionResult]:
        """One owner group's round trip with failover (pool thread)."""
        last_error: Exception | None = None
        for replica_id in preferences:
            remaining = deadline_at - time.monotonic()
            if remaining <= 0:
                break
            budget = remaining
            if self.config.attempt_timeout_s is not None:
                budget = min(budget, self.config.attempt_timeout_s)
            try:
                client = self._client(replica_id)
            except KeyError:  # deregistered while we routed
                continue
            client.set_timeout(budget + 0.5)
            try:
                answers = client.predict_many(queries, deadline_s=remaining)
            except _FATAL_ERRORS:
                raise
            except CapacityError as exc:
                # Alive but full (or draining): spill to the successor
                # without a health penalty.
                last_error = exc
                self.metrics.add(
                    "router.replica_busy", labels={"replica": replica_id}
                )
                continue
            except (OSError, ApiError) as exc:
                # Transport death or a poisoned answer: charge the
                # replica and fail over.
                last_error = exc
                self._drop_client(replica_id)
                self.replicas.mark_failure(replica_id)
                self.metrics.add(
                    "router.failovers", labels={"replica": replica_id}
                )
                continue
            self.replicas.mark_success(replica_id)
            self.metrics.add(
                "router.forwards", labels={"replica": replica_id}
            )
            return answers
        if time.monotonic() >= deadline_at:
            self.metrics.add("router.deadline_exceeded")
            raise DeadlineExceededError(
                "deadline exceeded while failing over "
                f"(tried {list(preferences)})",
            ) from last_error
        if isinstance(last_error, ApiError):
            raise last_error
        self.metrics.add("router.rejected")
        raise CapacityError(
            f"no replica answered (tried {list(preferences)})",
        ) from last_error

    # -- introspection endpoints ------------------------------------------------
    def healthz(self) -> dict[str, Any]:
        routable = self.replicas.routable_ids()
        status = "ok" if self.running else self._state
        if self.running and not routable:
            status = "degraded"
        return {
            "status": status,
            "state": self._state,
            "role": "router",
            "uptime_s": self.uptime_s(),
            "routable": routable,
            "replica_set": self.replicas.as_dict(),
        }

    def version(self) -> dict[str, Any]:
        return success_envelope(
            service="repro.serve.shard",
            version=repro.__version__,
            machine=self.config.service.machine,
            replicas=len(self.replicas.ids()),
            coalesce=self.config.service.coalesce,
        )

    def _fetch_replica_metrics(self, replica_id: str) -> dict[str, Any]:
        host, port = self.replicas.address(replica_id)
        with ServeClient(host, port, timeout=5.0) as client:
            return client.metrics()

    async def metrics_snapshot(self) -> dict[str, Any]:
        """The ``/metrics`` document: router registry + router cache +
        per-replica snapshots + the cross-replica aggregate.

        Each replica counts its own events exactly once, so fleet totals
        are **sums over snapshots taken in this single pass** — never a
        read of one replica's registry (the stats race this design
        fixes: see :func:`repro.obs.metrics.merge_exports`).
        """
        pool = self._pool
        loop = asyncio.get_running_loop()

        async def fetch(replica_id: str) -> tuple[str, dict[str, Any]]:
            if pool is None:
                return replica_id, {"error": "router stopped"}
            try:
                snapshot = await loop.run_in_executor(
                    pool, self._fetch_replica_metrics, replica_id
                )
            except Exception as exc:
                return replica_id, {
                    "error": f"{type(exc).__name__}: {exc}"
                }
            return replica_id, snapshot

        pairs = await asyncio.gather(
            *(fetch(rid) for rid in self.replicas.ids())
        )
        per_replica = dict(pairs)
        reachable = [s for s in per_replica.values() if "error" not in s]
        executor_total: dict[str, Any] = {}
        for snapshot in reachable:
            for name, value in snapshot.get("executor", {}).items():
                if name == "hit_rate":
                    continue
                executor_total[name] = executor_total.get(name, 0) + value
        lookups = executor_total.get("hits", 0) + executor_total.get("misses", 0)
        executor_total["hit_rate"] = (
            executor_total.get("hits", 0) / lookups if lookups else 0.0
        )
        cache_total: dict[str, Any] = {}
        for snapshot in reachable:
            for name, value in snapshot.get("cache", {}).items():
                if name in ("hit_rate", "ttl_s"):
                    continue
                cache_total[name] = cache_total.get(name, 0) + value
        cache_lookups = cache_total.get("hits", 0) + cache_total.get("misses", 0)
        cache_total["hit_rate"] = (
            cache_total.get("hits", 0) / cache_lookups if cache_lookups else 0.0
        )
        return success_envelope(
            service=self.metrics.as_dict(),
            cache=self.cache.stats(),
            replica_set=self.replicas.as_dict(),
            replicas=per_replica,
            aggregate={
                "service": merge_exports(
                    s.get("service", {}) for s in reachable
                ),
                "executor": executor_total,
                "cache": cache_total,
                "reachable": len(reachable),
            },
        )


class ThreadReplica:
    """One in-process replica: a PredictionService on a ServerThread.

    The test backend — a :class:`~repro.serve.faults.FaultInjector` can
    reach the service's evaluation hook, and :meth:`kill` aborts the
    listener and every connection exactly like a SIGKILL looks from
    outside.
    """

    backend = "thread"

    def __init__(
        self,
        replica_id: str,
        config: ServiceConfig,
        *,
        faults: FaultInjector | None = None,
    ) -> None:
        self.replica_id = replica_id
        self.service = PredictionService(config)
        if faults is not None:
            self.service.fault_hook = faults.hook_for(replica_id)
        self.thread = ServerThread(service=self.service)

    def start(self) -> tuple[str, int]:
        return self.thread.start()

    def stop(self, *, drain: bool = True) -> None:
        self.thread.stop(drain=drain)

    def kill(self) -> None:
        self.thread.kill()


class ProcessReplica:
    """One out-of-process replica: a ``repro serve`` subprocess.

    The production-shaped backend behind ``repro serve --replicas N``:
    the child binds an ephemeral port and reports it through
    ``--port-file``; :meth:`kill` is a real ``SIGKILL``, :meth:`stop`
    a ``SIGINT`` (the CLI's graceful drain path).
    """

    backend = "process"

    def __init__(self, replica_id: str, config: ServiceConfig) -> None:
        self.replica_id = replica_id
        self.config = config
        self.proc: subprocess.Popen[bytes] | None = None
        self._port_dir: str | None = None

    def _argv(self, port_file: str) -> list[str]:
        cfg = self.config
        argv = [sys.executable, "-m", "repro"]
        if cfg.table_cache_dir:
            argv += ["--table-cache", cfg.table_cache_dir]
        argv += [
            "serve",
            "--host", "127.0.0.1",
            "--port", "0",
            "--port-file", port_file,
            "--replica-id", self.replica_id,
            "--machine", cfg.machine,
            "--workers", str(cfg.workers),
            "--max-batch", str(cfg.max_batch),
            "--max-queue", str(cfg.max_queue),
            "--batch-window-ms", str(cfg.batch_window_s * 1e3),
            "--cache-entries", str(cfg.cache_entries),
            "--cache-ttl",
            "0" if cfg.cache_ttl_s is None else str(cfg.cache_ttl_s),
            "--deadline", str(cfg.default_deadline_s),
        ]
        if not cfg.coalesce:
            argv.append("--no-coalesce")
        return argv

    def start(self, *, timeout_s: float = 90.0) -> tuple[str, int]:
        if self.proc is not None:
            raise RuntimeError(f"replica {self.replica_id} already started")
        self._port_dir = tempfile.mkdtemp(
            prefix=f"repro-shard-{self.replica_id}-"
        )
        port_file = os.path.join(self._port_dir, "address")
        env = dict(os.environ)
        src_root = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (
            src_root if not existing else src_root + os.pathsep + existing
        )
        self.proc = subprocess.Popen(
            self._argv(port_file),
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
            env=env,
        )
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            if self.proc.poll() is not None:
                raise RuntimeError(
                    f"replica {self.replica_id} exited with code "
                    f"{self.proc.returncode} during startup"
                )
            try:
                text = open(port_file, encoding="utf-8").read()
            except FileNotFoundError:
                text = ""
            if text.endswith("\n"):  # the CLI writes "host port\n" atomically
                host, port = text.split()
                return host, int(port)
            time.sleep(0.02)
        raise RuntimeError(
            f"replica {self.replica_id} did not report a port within "
            f"{timeout_s:g}s"
        )

    def stop(self, *, drain: bool = True) -> None:
        proc = self.proc
        if proc is None:
            return
        if proc.poll() is None:
            proc.send_signal(signal.SIGINT if drain else signal.SIGTERM)
            try:
                proc.wait(timeout=30.0)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait(timeout=10.0)
        self._cleanup()

    def kill(self) -> None:
        proc = self.proc
        if proc is not None and proc.poll() is None:
            proc.kill()
            proc.wait(timeout=10.0)

    def _cleanup(self) -> None:
        if self._port_dir is not None:
            shutil.rmtree(self._port_dir, ignore_errors=True)
            self._port_dir = None


class ShardDeployment:
    """Boot, route to, fault, and tear down a replica fleet.

    The one-stop harness: ``with ShardDeployment(cfg) as (host, port):``
    boots N replicas plus the router front end and yields the router's
    address (the standard :class:`~repro.serve.client.ServeClient`
    talks to it unmodified).  :meth:`kill_replica`,
    :meth:`drain_replica` and :meth:`restart_replica` are the fault
    harness's verbs; :meth:`stop` releases any injected faults first so
    stalled worker threads can never block interpreter exit.
    """

    def __init__(
        self,
        config: ShardConfig | None = None,
        *,
        faults: FaultInjector | None = None,
    ) -> None:
        self.config = config if config is not None else ShardConfig()
        if faults is not None and self.config.backend != "thread":
            raise ValidationError(
                "fault injection requires the 'thread' backend (hooks are "
                "in-process)"
            )
        self.faults = faults
        self.replicas = ReplicaSet(
            fail_after=self.config.fail_after, vnodes=self.config.vnodes
        )
        self.router = ShardRouter(self.config, self.replicas)
        self._router_thread = ServerThread(
            service=self.router, host=self.config.host, port=self.config.port
        )
        self._handles: dict[str, ThreadReplica | ProcessReplica] = {}
        self._tmp_table_dir: tempfile.TemporaryDirectory[str] | None = None
        self._service_config: ServiceConfig | None = None

    # -- lifecycle ------------------------------------------------------------
    def start(self) -> tuple[str, int]:
        """Boot every replica and the router; returns the router
        address."""
        if self._handles:
            raise RuntimeError("deployment already started")
        service_config = self.config.service
        if service_config.table_cache_dir is None and self.config.share_table_cache:
            # One persistent-table directory for the whole fleet: the
            # first replica to build a machine's tables warms the rest.
            self._tmp_table_dir = tempfile.TemporaryDirectory(
                prefix="repro-shard-tables-"
            )
            service_config = replace(
                service_config, table_cache_dir=self._tmp_table_dir.name
            )
        self._service_config = service_config
        for index in range(self.config.replicas):
            self._boot_replica(f"r{index}")
        return self._router_thread.start()

    def _boot_replica(self, replica_id: str) -> None:
        assert self._service_config is not None
        config = replace(self._service_config, replica_id=replica_id)
        handle: ThreadReplica | ProcessReplica
        if self.config.backend == "thread":
            handle = ThreadReplica(replica_id, config, faults=self.faults)
        else:
            handle = ProcessReplica(replica_id, config)
        host, port = handle.start()
        self._handles[replica_id] = handle
        self.replicas.register(replica_id, host, port)

    def stop(self) -> None:
        """Tear everything down (safe to call twice, or after kills)."""
        if self.faults is not None:
            self.faults.release_all()
        try:
            self._router_thread.stop()
        except Exception:
            pass
        for handle in self._handles.values():
            try:
                handle.stop(drain=False)
            except Exception:
                pass
        self._handles.clear()
        if self._tmp_table_dir is not None:
            self._tmp_table_dir.cleanup()
            self._tmp_table_dir = None

    def __enter__(self) -> tuple[str, int]:
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # -- addresses --------------------------------------------------------------
    @property
    def router_address(self) -> tuple[str, int]:
        return self._router_thread.host, self._router_thread.port

    def addresses(self) -> dict[str, tuple[str, int]]:
        return {rid: self.replicas.address(rid) for rid in self.replicas.ids()}

    def handle(self, replica_id: str) -> ThreadReplica | ProcessReplica:
        return self._handles[replica_id]

    # -- fault-harness verbs ------------------------------------------------------
    def kill_replica(self, replica_id: str) -> None:
        """Crash-stop a replica (connections reset mid-flight).

        Deliberately does *not* touch the registry: discovering the
        death — passively through forwarding failures or actively
        through the probe loop — is exactly the behaviour under test.
        """
        self._handles[replica_id].kill()

    def drain_replica(self, replica_id: str) -> None:
        """Administratively drain: out of the ring immediately, then a
        graceful in-flight-respecting shutdown."""
        self.replicas.start_drain(replica_id)
        self._handles[replica_id].stop(drain=True)

    def restart_replica(self, replica_id: str) -> tuple[str, int]:
        """Boot a fresh instance under the same id (generation bumps, so
        pooled connections to the dead twin are discarded)."""
        handle = self._handles.pop(replica_id, None)
        if handle is not None:
            try:
                handle.kill()
            except Exception:
                pass
        self._boot_replica(replica_id)
        return self.replicas.address(replica_id)

    # -- client-side routing -------------------------------------------------------
    def shard_client(
        self,
        *,
        keyer: "Callable[[Query], str] | None" = None,
        timeout: float = 60.0,
        max_attempts: int | None = None,
    ) -> "ShardClient":
        """A routing-aware client over this deployment's live replica
        set (one per thread — clients hold sockets)."""
        return ShardClient(
            self.replicas,
            keyer=keyer,
            timeout=timeout,
            max_attempts=(
                self.config.max_attempts
                if max_attempts is None
                else max_attempts
            ),
        )


class ShardClient:
    """Client-side consistent-hash routing (no router hop).

    Benchmark-scale concurrency routes here: each client thread hashes
    its own keys against the shared :class:`~repro.serve.registry.ReplicaSet`
    and talks straight to the owning replica, failing over along the
    same ring preference order the router derives.  Not thread-safe —
    one instance per thread (it owns one socket per replica).

    ``keyer`` maps a query to its content-addressed run key; pass
    ``key=`` per call instead when keys are precomputed (the loadgen
    pool already carries them — building one keying predictor per
    client thread would dwarf the serving cost being measured).
    """

    def __init__(
        self,
        replicas: ReplicaSet,
        *,
        keyer: "Callable[[Query], str] | None" = None,
        timeout: float = 60.0,
        max_attempts: int = 3,
    ) -> None:
        if max_attempts < 1:
            raise ValidationError(
                f"max_attempts must be >= 1, got {max_attempts}"
            )
        self.replicas = replicas
        self.timeout = timeout
        self.max_attempts = max_attempts
        self._keyer = keyer
        self._clients: dict[str, tuple[int, ServeClient]] = {}

    # -- connections ------------------------------------------------------------
    def _client(self, replica_id: str) -> ServeClient:
        generation = self.replicas.generation(replica_id)
        entry = self._clients.get(replica_id)
        if entry is None or entry[0] != generation:
            if entry is not None:
                entry[1].close()
            host, port = self.replicas.address(replica_id)
            entry = (generation, ServeClient(host, port, timeout=self.timeout))
            self._clients[replica_id] = entry
        return entry[1]

    def _drop(self, replica_id: str) -> None:
        entry = self._clients.pop(replica_id, None)
        if entry is not None:
            entry[1].close()

    def close(self) -> None:
        for _, client in self._clients.values():
            client.close()
        self._clients.clear()

    def __enter__(self) -> "ShardClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- prediction --------------------------------------------------------------
    def key_for(self, query: Query) -> str:
        if self._keyer is None:
            raise ValidationError(
                "no keyer configured; pass key= per call or construct the "
                "client with keyer="
            )
        return self._keyer(query)

    def predict(
        self,
        query: Query,
        *,
        key: str | None = None,
        deadline_s: float | None = None,
    ) -> PredictionResult:
        """Answer one query on its owning replica, failing over along
        the ring preference order."""
        run_key = key if key is not None else self.key_for(query)
        preferences = self.replicas.preferences(run_key, self.max_attempts)
        if not preferences:
            raise CapacityError("no routable replicas (all down or draining)")
        last_error: Exception | None = None
        for replica_id in preferences:
            try:
                client = self._client(replica_id)
            except KeyError:
                continue
            try:
                result = client.predict(query, deadline_s=deadline_s)
            except _FATAL_ERRORS:
                raise
            except CapacityError as exc:
                last_error = exc  # alive but full: spill, no health mark
                continue
            except (OSError, ApiError) as exc:
                last_error = exc
                self._drop(replica_id)
                self.replicas.mark_failure(replica_id)
                continue
            self.replicas.mark_success(replica_id)
            return result
        if isinstance(last_error, ApiError):
            raise last_error
        raise CapacityError(
            f"no replica answered (tried {preferences})"
        ) from last_error
