"""Request coalescing: many concurrent queries, few dense batches.

Concurrent requests land individual queries in one bounded queue; a
small set of dispatcher tasks drains the queue in arrival order and
ships each drained slice as **one** dense batch to an evaluation
callable on a worker pool (where it reaches the columnar
:class:`~repro.engine.batch.BatchEvaluator` — the PR-4 engine whose
per-point cost is two orders of magnitude below the scalar path).  The
result is the classic serving trade: a little queueing latency buys a
large throughput multiple, while per-query results stay bit-identical
to scalar evaluation.

Backpressure is explicit: a full queue (or a draining coalescer)
rejects at submission time with
:class:`~repro.api.errors.CapacityError` — the wire 429 — instead of
building unbounded latency.  Deadline cancellation is cooperative:
entries whose futures were cancelled (the request timed out while
queued) are skipped when a batch is drained, so expired work is never
evaluated.
"""

from __future__ import annotations

import asyncio
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro.api.errors import CapacityError
from repro.api.types import PredictionResult, Query
from repro.obs.metrics import MetricsRegistry

__all__ = ["Coalescer"]


@dataclass
class _Pending:
    """One queued query and the future its requests await."""

    query: Query
    key: str
    future: "asyncio.Future[PredictionResult]" = field(repr=False, kw_only=True)


class Coalescer:
    """Queue + dispatcher tasks turning concurrent queries into batches.

    Parameters
    ----------
    evaluate:
        ``(list[Query]) -> list[PredictionResult]``, executed on
        ``pool`` (a ``concurrent.futures`` executor) — must be safe to
        call from pool threads (the service hands out thread-local
        predictors).
    pool:
        The bounded worker pool batches are dispatched to.
    max_batch:
        Largest slice one dispatch drains (queue order is preserved).
    max_queue:
        Admission bound; :meth:`submit` raises
        :class:`~repro.api.errors.CapacityError` beyond it.
    dispatchers:
        Number of concurrent dispatcher tasks — the effective number of
        batches in flight (match the pool width).
    batch_window_s:
        How long a dispatcher lingers after waking before it drains, so
        concurrent arrivals pile into one dense batch.  Small batches
        re-pay the per-configuration table setup the columnar engine
        amortizes, so a few milliseconds of window buys a visibly
        cheaper per-query cost; ``0`` dispatches immediately.  The
        window is skipped once ``max_batch`` queries are already queued.
    metrics:
        Optional registry receiving ``serve.batch_size`` /
        ``serve.queue_depth`` / ``serve.batches``.
    """

    def __init__(
        self,
        evaluate: Callable[[list[Query]], Sequence[PredictionResult]],
        *,
        pool: Any,
        max_batch: int = 256,
        max_queue: int = 1024,
        dispatchers: int = 2,
        batch_window_s: float = 0.0,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {max_queue}")
        if dispatchers < 1:
            raise ValueError(f"dispatchers must be >= 1, got {dispatchers}")
        if batch_window_s < 0:
            raise ValueError(
                f"batch_window_s must be >= 0, got {batch_window_s}"
            )
        self._evaluate = evaluate
        self._pool = pool
        self.max_batch = max_batch
        self.max_queue = max_queue
        self.dispatchers = dispatchers
        self.batch_window_s = batch_window_s
        self.metrics = metrics
        self._queue: deque[_Pending] = deque()
        self._wakeup: asyncio.Event | None = None
        self._tasks: list[asyncio.Task[None]] = []
        self._closing = False
        self._inflight = 0
        self.submitted = 0
        self.rejected = 0
        self.dispatched_batches = 0
        self.dispatched_queries = 0

    # -- lifecycle ------------------------------------------------------------
    def start(self) -> None:
        """Spawn the dispatcher tasks on the running event loop."""
        if self._tasks:
            raise RuntimeError("coalescer already started")
        self._closing = False
        self._wakeup = asyncio.Event()
        self._tasks = [
            asyncio.create_task(self._dispatch_loop(), name=f"coalescer-{i}")
            for i in range(self.dispatchers)
        ]

    async def drain(self, timeout: float | None = None) -> bool:
        """Wait until queued and in-flight work is finished.

        Returns ``True`` when the queue emptied inside ``timeout``
        (``None`` = wait forever); pending futures are not cancelled
        either way — the caller decides what to do with stragglers.
        """
        loop = asyncio.get_running_loop()
        deadline = None if timeout is None else loop.time() + timeout
        while True:
            queued = any(not p.future.done() for p in self._queue)
            if not queued and self._inflight == 0:
                return True
            if deadline is not None and loop.time() >= deadline:
                return False
            await asyncio.sleep(0.005)

    async def stop(self) -> None:
        """Reject new work, let dispatchers exit, cancel stragglers."""
        self._closing = True
        if self._wakeup is not None:
            self._wakeup.set()
        if self._tasks:
            await asyncio.gather(*self._tasks, return_exceptions=True)
        self._tasks = []
        for pending in self._queue:
            if not pending.future.done():
                pending.future.set_exception(
                    CapacityError("service shut down before evaluation")
                )
        self._queue.clear()

    # -- admission ------------------------------------------------------------
    def submit(self, query: Query, key: str) -> "asyncio.Future[PredictionResult]":
        """Enqueue one query; the returned future resolves when its batch
        has been evaluated.

        Raises :class:`~repro.api.errors.CapacityError` when the queue
        is full or the coalescer is shutting down.
        """
        if self._wakeup is None or self._closing:
            self.rejected += 1
            raise CapacityError("service is not accepting work (draining)")
        if len(self._queue) >= self.max_queue:
            self.rejected += 1
            if self.metrics is not None:
                self.metrics.add("serve.rejected")
            raise CapacityError(
                f"admission queue full ({self.max_queue} queries queued)",
                details={"max_queue": self.max_queue},
            )
        future: "asyncio.Future[PredictionResult]" = (
            asyncio.get_running_loop().create_future()
        )
        self._queue.append(_Pending(query, key, future=future))
        self.submitted += 1
        if self.metrics is not None:
            self.metrics.set_gauge("serve.queue_depth", float(len(self._queue)))
        self._wakeup.set()
        return future

    @property
    def queue_depth(self) -> int:
        return len(self._queue)

    # -- dispatch -------------------------------------------------------------
    async def _dispatch_loop(self) -> None:
        assert self._wakeup is not None
        loop = asyncio.get_running_loop()
        while True:
            await self._wakeup.wait()
            if (
                self.batch_window_s > 0
                and not self._closing
                and 0 < len(self._queue) < self.max_batch
            ):
                await asyncio.sleep(self.batch_window_s)
            batch: list[_Pending] = []
            while self._queue and len(batch) < self.max_batch:
                pending = self._queue.popleft()
                if pending.future.done():  # deadline hit while queued
                    continue
                batch.append(pending)
            if not self._queue:
                if self._closing:
                    # Evaluate what was drained, then exit — leaving the
                    # event set so sibling dispatchers wake and exit too
                    # (clearing it here would strand them in wait()).
                    if batch:
                        await self._dispatch(loop, batch)
                    self._wakeup.set()
                    return
                self._wakeup.clear()
            if batch:
                await self._dispatch(loop, batch)

    async def _dispatch(
        self, loop: asyncio.AbstractEventLoop, batch: list[_Pending]
    ) -> None:
        """Evaluate one drained batch on the pool, resolving its futures."""
        if self.metrics is not None:
            self.metrics.observe("serve.batch_size", float(len(batch)))
            self.metrics.add("serve.batches")
            self.metrics.set_gauge(
                "serve.queue_depth", float(len(self._queue))
            )
        self.dispatched_batches += 1
        self.dispatched_queries += len(batch)
        self._inflight += 1
        try:
            results = await loop.run_in_executor(
                self._pool, self._evaluate_list, [p.query for p in batch]
            )
            for pending, result in zip(batch, results):
                if not pending.future.done():
                    pending.future.set_result(result)
        except Exception as exc:  # pragma: no cover - defensive
            for pending in batch:
                if not pending.future.done():
                    pending.future.set_exception(exc)
        finally:
            self._inflight -= 1

    def _evaluate_list(self, queries: list[Query]) -> list[PredictionResult]:
        return list(self._evaluate(queries))
