"""Zero-dependency asyncio HTTP/1.1 front end for the prediction service.

A deliberately small server — persistent connections, JSON bodies,
five routes:

* ``GET /healthz`` — liveness/readiness (503 while draining/stopped);
* ``GET /metrics`` — the service metrics snapshot;
* ``GET /version`` — schema + build identity;
* ``POST /v1/predict`` — the prediction endpoint;
* ``POST /v1/plan`` — the capacity-planning endpoint.

Errors cross the wire only as the versioned error envelope
``{"schema_version": ..., "error": {code, message, ...}}`` with the
status from the :mod:`repro.api.errors` taxonomy; per-query modelled
infeasibility is *inside* results, not an error envelope.  Every request
is timed into the service registry's per-endpoint latency histogram
(``serve.request_ms{endpoint=...}``).
"""

from __future__ import annotations

import asyncio
import inspect
import json
import time
from typing import Any

from repro.api.envelope import error_envelope
from repro.api.errors import ApiError, ValidationError
from repro.serve.service import PredictionService

__all__ = ["HttpServer", "DEFAULT_PORT"]

#: Default TCP port of ``repro serve``.
DEFAULT_PORT = 8713

_MAX_HEADER_BYTES = 64 * 1024
_MAX_BODY_BYTES = 16 * 1024 * 1024


class _BadRequest(Exception):
    """Malformed HTTP framing (connection closes after the response)."""


class HttpServer:
    """Asyncio streams server wrapping one :class:`PredictionService`."""

    def __init__(
        self,
        service: PredictionService,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
    ) -> None:
        self.service = service
        self.host = host
        self.port = port
        self._server: asyncio.base_events.Server | None = None
        # Live connection writers, tracked so abort() can reset them —
        # the fault harness's "SIGKILL as seen by peers" primitive.
        self._writers: set[asyncio.StreamWriter] = set()

    # -- lifecycle ------------------------------------------------------------
    async def start(self) -> tuple[str, int]:
        """Bind and start accepting; returns the bound (host, port) —
        useful with ``port=0``."""
        if self._server is not None:
            raise RuntimeError("server already started")
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        sockname = self._server.sockets[0].getsockname()
        self.host, self.port = sockname[0], sockname[1]
        return self.host, self.port

    async def serve_forever(self) -> None:
        assert self._server is not None
        await self._server.serve_forever()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def abort(self) -> None:
        """Crash-stop: close the listener and reset every connection.

        In-flight requests are cut mid-body — peers see exactly what a
        killed process produces (``ECONNRESET`` / truncated reads), which
        is what the fault-injection suite (:mod:`repro.serve.faults`)
        needs to prove failover behaviour.  No draining, no goodbye.
        """
        if self._server is not None:
            self._server.close()
            self._server = None
        for writer in list(self._writers):
            transport = writer.transport
            if transport is not None:
                transport.abort()
        self._writers.clear()

    # -- connection handling ----------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._writers.add(writer)
        try:
            while True:
                try:
                    request = await self._read_request(reader)
                except (
                    asyncio.IncompleteReadError,
                    ConnectionResetError,
                ):
                    break
                if request is None:  # clean EOF between requests
                    break
                method, path, headers, body = request
                keep_alive = (
                    headers.get("connection", "keep-alive").lower() != "close"
                )
                status, payload = await self._route(method, path, body)
                await self._write_response(
                    writer, status, payload, keep_alive=keep_alive
                )
                if not keep_alive:
                    break
        except _BadRequest as exc:
            try:
                await self._write_response(
                    writer,
                    400,
                    _error_envelope("validation", str(exc)),
                    keep_alive=False,
                )
            except (ConnectionResetError, BrokenPipeError):
                pass
        finally:
            self._writers.discard(writer)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> tuple[str, str, dict[str, str], bytes] | None:
        """One request off the wire, or ``None`` on clean EOF."""
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except asyncio.IncompleteReadError as exc:
            if not exc.partial:
                return None
            raise
        except asyncio.LimitOverrunError:
            raise _BadRequest("request head too large") from None
        if len(head) > _MAX_HEADER_BYTES:
            raise _BadRequest("request head too large")
        lines = head.decode("latin-1").split("\r\n")
        parts = lines[0].split(" ")
        if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
            raise _BadRequest(f"malformed request line {lines[0]!r}")
        method, path = parts[0].upper(), parts[1]
        headers: dict[str, str] = {}
        for line in lines[1:]:
            if not line:
                continue
            name, sep, value = line.partition(":")
            if not sep:
                raise _BadRequest(f"malformed header {line!r}")
            headers[name.strip().lower()] = value.strip()
        length_text = headers.get("content-length", "0")
        try:
            length = int(length_text)
        except ValueError:
            raise _BadRequest(
                f"bad Content-Length {length_text!r}"
            ) from None
        if length < 0 or length > _MAX_BODY_BYTES:
            raise _BadRequest(f"unacceptable Content-Length {length}")
        body = await reader.readexactly(length) if length else b""
        return method, path, headers, body

    # -- routing ----------------------------------------------------------------
    async def _route(
        self, method: str, path: str, body: bytes
    ) -> tuple[int, dict[str, Any]]:
        started = time.perf_counter()
        endpoint = path.split("?", 1)[0]
        try:
            status, payload = await self._dispatch(method, endpoint, body)
        except ApiError as exc:
            status = exc.http_status
            payload = error_envelope(exc)
        except Exception as exc:  # pragma: no cover - defensive
            status = 500
            payload = _error_envelope("internal", f"{type(exc).__name__}: {exc}")
        self.service.metrics.observe(
            "serve.request_ms",
            (time.perf_counter() - started) * 1e3,
            {"endpoint": endpoint},
        )
        self.service.metrics.add(
            "serve.requests", 1.0, {"endpoint": endpoint, "status": status}
        )
        return status, payload

    async def _dispatch(
        self, method: str, endpoint: str, body: bytes
    ) -> tuple[int, dict[str, Any]]:
        if endpoint == "/healthz":
            if method != "GET":
                return 405, _error_envelope("validation", "use GET /healthz")
            health = self.service.healthz()
            return (200 if self.service.running else 503), health
        if endpoint == "/metrics":
            if method != "GET":
                return 405, _error_envelope("validation", "use GET /metrics")
            snapshot = self.service.metrics_snapshot()
            # The shard router's snapshot scatters to its replicas off
            # the event loop, so it is a coroutine; the plain service
            # answers synchronously.
            if inspect.isawaitable(snapshot):
                snapshot = await snapshot
            return 200, snapshot
        if endpoint == "/version":
            if method != "GET":
                return 405, _error_envelope("validation", "use GET /version")
            return 200, self.service.version()
        if endpoint == "/v1/predict":
            if method != "POST":
                return 405, _error_envelope(
                    "validation", "use POST /v1/predict"
                )
            try:
                payload = json.loads(body.decode("utf-8")) if body else {}
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                raise ValidationError(f"request body is not JSON: {exc}") from exc
            return 200, await self.service.handle_predict(payload)
        if endpoint == "/v1/plan":
            if method != "POST":
                return 405, _error_envelope("validation", "use POST /v1/plan")
            try:
                payload = json.loads(body.decode("utf-8")) if body else {}
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                raise ValidationError(f"request body is not JSON: {exc}") from exc
            return 200, await self.service.handle_plan(payload)
        return 404, _error_envelope("not_found", f"no route {endpoint!r}")

    # -- responses --------------------------------------------------------------
    async def _write_response(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: dict[str, Any],
        *,
        keep_alive: bool,
    ) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        reason = _REASONS.get(status, "Unknown")
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
            f"\r\n"
        ).encode("latin-1")
        writer.write(head + body)
        await writer.drain()


_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


def _error_envelope(code: str, message: str) -> dict[str, Any]:
    # Thin shim kept for callers predating repro.api.envelope.
    return error_envelope(code, message)
