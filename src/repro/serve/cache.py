"""TTL + LRU result cache for the prediction service.

Keys are the PR-1 content-addressed run keys
(:func:`repro.core.executor.cache_key` via
:meth:`repro.api.facade.Predictor.cache_key`), so an entry is valid for
exactly as long as the model is deterministic — forever — and the TTL
exists purely to bound staleness against *code* changes in a long-lived
process and to keep the working set honest.  Values are whole
:class:`~repro.api.types.PredictionResult` objects (feasible and
infeasible alike: both are deterministic answers).

The cache is lock-protected; the service reads and writes it from the
event loop, while tests and the stats endpoints may probe it from other
threads.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import Any, Callable, Generic, TypeVar

V = TypeVar("V")

__all__ = ["TTLCache"]


class TTLCache(Generic[V]):
    """LRU-bounded mapping whose entries expire after ``ttl_s`` seconds.

    ``max_entries == 0`` disables the cache entirely (every ``get`` is a
    miss, ``put`` is a no-op) — the naive-server baseline.  ``ttl_s``
    of ``None`` disables expiry (pure LRU).
    """

    def __init__(
        self,
        max_entries: int = 4096,
        ttl_s: float | None = 300.0,
        *,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if max_entries < 0:
            raise ValueError(f"max_entries must be >= 0, got {max_entries}")
        if ttl_s is not None and ttl_s <= 0:
            raise ValueError(f"ttl_s must be positive or None, got {ttl_s}")
        self.max_entries = max_entries
        self.ttl_s = ttl_s
        self._clock = clock
        self._lock = threading.Lock()
        self._entries: OrderedDict[str, tuple[float | None, V]] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.expirations = 0
        self.evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def enabled(self) -> bool:
        return self.max_entries > 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        lookups = self.lookups
        return self.hits / lookups if lookups else 0.0

    def get(self, key: str) -> V | None:
        """The live entry for ``key``, refreshing its recency; ``None``
        on miss or expiry."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            expires_at, value = entry
            if expires_at is not None and self._clock() >= expires_at:
                del self._entries[key]
                self.expirations += 1
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return value

    def put(self, key: str, value: V) -> None:
        if self.max_entries == 0:
            return
        expires_at = None if self.ttl_s is None else self._clock() + self.ttl_s
        with self._lock:
            self._entries[key] = (expires_at, value)
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.evictions += 1

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def stats(self) -> dict[str, Any]:
        """JSON-ready counter snapshot."""
        with self._lock:
            size = len(self._entries)
        return {
            "entries": size,
            "max_entries": self.max_entries,
            "ttl_s": self.ttl_s,
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
            "expirations": self.expirations,
            "evictions": self.evictions,
        }
