"""Closed-loop load generator and benchmark for the prediction service.

Boots two in-process servers — the real coalescing service and the naive
one-request-one-eval baseline (``coalesce=False``, cache disabled) —
drives each with the same population of **distinct** what-if queries
from N concurrent clients, and reports throughput and latency
percentiles per phase:

* ``coalesced`` — cold keys against the coalescing server: every query
  is a model evaluation, but concurrent requests merge into dense
  columnar batches;
* ``hot_cache`` — the same keys again: served from the TTL result cache
  on the event loop, no evaluation at all;
* ``naive`` — the same cold keys against the baseline server: one
  scalar evaluation per request, the pre-serve cost model.

The measurement-hygiene decision that matters most: **the pool is
shaped like real what-if traffic.**  Queries share a small basis of
(workload, size) profiles and fan out across memory configs and thread
counts — the shape of "how should *my* app be placed?" exploration.
Keys are still pairwise distinct (verified by content-addressed run
key, with quantizing size constructors deduplicated), so no result
cache can hide evaluation cost in the cold phases; warmup uses a
key-disjoint slice of the same generator.  Clients are keep-alive
threads in this process, one connection each, released together by a
barrier.

Every phase's responses are checked bit-identical against direct scalar
:mod:`repro.api` evaluation (and, in the smoke harness, against a
:class:`~repro.checks.checker.CheckingRunner` in ``raise`` mode), which
is the acceptance bar: coalescing and caching may only change *when*
work happens, never the answer.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass
from typing import Any, Sequence

from repro.api.facade import Predictor
from repro.api.types import PredictionResult, Query
from repro.serve.client import ServeClient
from repro.serve.service import ServiceConfig
from repro.serve.threadserver import ServerThread

__all__ = [
    "LoadPhase",
    "ShardPhase",
    "build_query_pool",
    "build_keyed_pool",
    "run_phase",
    "run_shard_phase",
    "measure_serve",
    "measure_serve_sharded",
    "run_smoke",
    "write_bench_json",
]

#: (workload, base size) profile basis — few profiles, shared by many
#: queries, exactly like a user sweeping placements for their own app.
_POOL_BASIS = (
    ("dgemm", 2.0),
    ("dgemm", 4.0),
    ("dgemm", 8.0),
    ("minife", 3.0),
    ("minife", 6.0),
    ("minife", 9.0),
    ("xsbench", 2.5),
    ("xsbench", 5.0),
)
_POOL_CONFIGS = ("DRAM", "HBM", "Cache Mode", "Interleave")
_POOL_THREADS = tuple(range(8, 257, 8))
_POOL_CYCLE = len(_POOL_BASIS) * len(_POOL_CONFIGS) * len(_POOL_THREADS)


@dataclass(frozen=True)
class LoadPhase:
    """Measured outcome of one load phase."""

    name: str
    requests: int
    errors: int
    seconds: float
    throughput_rps: float
    p50_ms: float
    p99_ms: float
    max_ms: float

    def as_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "requests": self.requests,
            "errors": self.errors,
            "seconds": self.seconds,
            "throughput_rps": self.throughput_rps,
            "p50_ms": self.p50_ms,
            "p99_ms": self.p99_ms,
            "max_ms": self.max_ms,
        }

    def describe(self) -> str:
        return (
            f"{self.name}: {self.requests} requests in {self.seconds:.2f}s "
            f"= {self.throughput_rps:.0f} rps "
            f"(p50 {self.p50_ms:.1f} ms, p99 {self.p99_ms:.1f} ms)"
        )


def _percentile(sorted_values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of an ascending sequence."""
    if not sorted_values:
        return 0.0
    rank = max(0, min(len(sorted_values) - 1, round(q * (len(sorted_values) - 1))))
    return sorted_values[rank]


def build_keyed_pool(
    count: int, *, predictor: Predictor | None = None
) -> list[tuple[Query, str]]:
    """``count`` ``(query, run_key)`` pairs with pairwise-distinct
    content-addressed keys.

    The sweep walks the profile basis fastest, then configs, then thread
    counts, then (past one full cycle) shifts the size axis — so a
    prefix of the pool covers every (profile, config) pair early, which
    is what warmup slicing relies on.  Candidates whose size quantizes
    onto an already-used key (MiniFE rounds to a mesh dimension, XSBench
    to a gridpoint count) are skipped.

    The keys are what the dedup already computes; carrying them out lets
    the sharded loadgen route client-side without building a keying
    predictor per client thread.
    """
    predictor = predictor if predictor is not None else Predictor()
    pairs: list[tuple[Query, str]] = []
    seen: set[str] = set()
    index = 0
    while len(pairs) < count:
        workload, base_size = _POOL_BASIS[index % len(_POOL_BASIS)]
        config = _POOL_CONFIGS[(index // len(_POOL_BASIS)) % len(_POOL_CONFIGS)]
        threads = _POOL_THREADS[
            (index // (len(_POOL_BASIS) * len(_POOL_CONFIGS)))
            % len(_POOL_THREADS)
        ]
        size_gb = round(base_size + 0.37 * (index // _POOL_CYCLE), 4)
        index += 1
        query = Query(
            workload=workload,
            size_gb=size_gb,
            config=config,
            num_threads=threads,
        )
        key = predictor.cache_key(query)
        if key in seen:
            continue
        seen.add(key)
        pairs.append((query, key))
    return pairs


def build_query_pool(
    count: int, *, predictor: Predictor | None = None
) -> list[Query]:
    """``count`` queries with pairwise-distinct content-addressed keys
    (see :func:`build_keyed_pool`)."""
    return [query for query, _ in build_keyed_pool(count, predictor=predictor)]


def _partition(queries: Sequence[Query], clients: int) -> list[list[Query]]:
    """Deal queries round-robin over ``clients`` slots."""
    partitions: list[list[Query]] = [[] for _ in range(clients)]
    for i, query in enumerate(queries):
        partitions[i % clients].append(query)
    return [p for p in partitions if p]


def run_phase(
    name: str,
    host: str,
    port: int,
    partitions: Sequence[Sequence[Query]],
    *,
    deadline_s: float = 120.0,
) -> tuple[LoadPhase, list[PredictionResult]]:
    """One closed loop: one client thread per partition, one request per
    query.  Threads connect first, then a barrier releases them all.

    Returns the phase summary plus every response (thread-major, in
    request order) for identity verification.
    """
    barrier = threading.Barrier(len(partitions) + 1)
    latencies_ms: list[list[float]] = [[] for _ in partitions]
    responses: list[list[PredictionResult]] = [[] for _ in partitions]
    errors = [0] * len(partitions)

    def client_loop(slot: int, queries: Sequence[Query]) -> None:
        with ServeClient(host, port, timeout=deadline_s + 30.0) as client:
            client.healthz()  # establish the keep-alive connection
            barrier.wait()
            for query in queries:
                started = time.perf_counter()
                try:
                    result = client.predict(query, deadline_s=deadline_s)
                except Exception:
                    errors[slot] += 1
                    continue
                latencies_ms[slot].append((time.perf_counter() - started) * 1e3)
                responses[slot].append(result)

    threads = [
        threading.Thread(
            target=client_loop, args=(i, partition), name=f"loadgen-{i}"
        )
        for i, partition in enumerate(partitions)
    ]
    for thread in threads:
        thread.start()
    barrier.wait()
    started = time.perf_counter()
    for thread in threads:
        thread.join()
    seconds = time.perf_counter() - started
    flat = sorted(lat for bucket in latencies_ms for lat in bucket)
    requests = sum(len(p) for p in partitions)
    phase = LoadPhase(
        name=name,
        requests=requests,
        errors=sum(errors),
        seconds=seconds,
        throughput_rps=requests / seconds if seconds else 0.0,
        p50_ms=_percentile(flat, 0.50),
        p99_ms=_percentile(flat, 0.99),
        max_ms=flat[-1] if flat else 0.0,
    )
    return phase, [r for bucket in responses for r in bucket]


def _warmup(host: str, port: int, queries: Sequence[Query], clients: int) -> None:
    """Boot profiles and per-thread model tables on the target server."""
    run_phase("warmup", host, port, _partition(queries, clients))


def _verify_identity(
    responses: Sequence[PredictionResult], sample: int
) -> dict[str, Any]:
    """Served results vs direct scalar facade evaluation, bit for bit."""
    oracle = Predictor()
    step = max(1, len(responses) // sample) if responses else 1
    checked = 0
    mismatches = 0
    for response in list(responses)[::step][:sample]:
        direct = oracle.predict(response.query)
        checked += 1
        if direct != response:
            mismatches += 1
    return {
        "checked": checked,
        "mismatches": mismatches,
        "bit_identical": mismatches == 0,
    }


def _best(phases: Sequence[LoadPhase]) -> LoadPhase:
    return max(phases, key=lambda p: p.throughput_rps)


def measure_serve(
    *,
    clients: int = 64,
    requests_per_client: int = 8,
    workers: int = 2,
    max_batch: int = 256,
    repeats: int = 3,
    identity_sample: int = 64,
) -> dict[str, Any]:
    """The serve benchmark: coalesced vs hot-cache vs naive.

    Returns the ``BENCH_serve.json`` document (see module docstring for
    the phases).  ``clients`` is the closed-loop concurrency; every
    client issues ``requests_per_client`` single-query requests.
    Warmup and measurement are key-disjoint slices of one deduplicated
    pool, and each cold repeat gets its own slice, so cold phases
    evaluate every query.  Every phase runs ``repeats`` times and the
    best run is reported (the usual guard against interference noise on
    a shared box); the naive server replays the same slices, so both
    sides see identical traffic.
    """
    repeats = max(1, repeats)
    total = clients * requests_per_client
    warm_count = 2 * len(_POOL_BASIS) * len(_POOL_CONFIGS)
    pool = build_query_pool(warm_count + repeats * total)
    warmup = pool[:warm_count]
    slices = [
        pool[warm_count + i * total : warm_count + (i + 1) * total]
        for i in range(repeats)
    ]
    partition_sets = [_partition(s, clients) for s in slices]

    coalesced_config = ServiceConfig(
        workers=workers, max_batch=max_batch, max_queue=max(1024, 4 * total)
    )
    naive_config = ServiceConfig(
        workers=workers,
        max_queue=max(1024, 4 * total),
        coalesce=False,
        cache_entries=0,
    )

    responses: list[PredictionResult] = []
    coalesced_runs: list[LoadPhase] = []
    hot_runs: list[LoadPhase] = []
    naive_runs: list[LoadPhase] = []
    with ServerThread(coalesced_config) as server:
        _warmup(server.host, server.port, warmup, clients)
        for partitions in partition_sets:
            phase, run_responses = run_phase(
                "coalesced", server.host, server.port, partitions
            )
            coalesced_runs.append(phase)
            responses.extend(run_responses)
        for _ in range(repeats):  # repeated keys: served from the TTL cache
            phase, run_responses = run_phase(
                "hot_cache", server.host, server.port, partition_sets[-1]
            )
            hot_runs.append(phase)
        responses.extend(run_responses)
        snapshot = server.service.metrics_snapshot()
    with ServerThread(naive_config) as server:
        _warmup(server.host, server.port, warmup, clients)
        for partitions in partition_sets:
            phase, _ = run_phase(
                "naive", server.host, server.port, partitions
            )
            naive_runs.append(phase)

    coalesced, hot, naive = _best(coalesced_runs), _best(hot_runs), _best(naive_runs)
    batches = snapshot["coalescer"]["batches"]
    batched = snapshot["coalescer"]["batched_queries"]
    identity = _verify_identity(responses, identity_sample)
    return {
        "concurrency": clients,
        "requests_per_client": requests_per_client,
        "total_requests": total,
        "unique_queries": repeats * total,
        "workers": workers,
        "max_batch": max_batch,
        "repeats": repeats,
        "coalesced": coalesced.as_dict(),
        "hot_cache": hot.as_dict(),
        "naive": naive.as_dict(),
        "coalesced_runs_rps": [round(p.throughput_rps, 1) for p in coalesced_runs],
        "naive_runs_rps": [round(p.throughput_rps, 1) for p in naive_runs],
        "speedup_coalesced_vs_naive": (
            coalesced.throughput_rps / naive.throughput_rps
            if naive.throughput_rps
            else 0.0
        ),
        "speedup_hot_vs_naive": (
            hot.throughput_rps / naive.throughput_rps
            if naive.throughput_rps
            else 0.0
        ),
        "coalescing": {
            "batches": batches,
            "batched_queries": batched,
            "mean_batch_size": batched / batches if batches else 0.0,
        },
        "identity": identity,
    }


def run_smoke(
    *,
    clients: int = 50,
    requests_per_client: int = 4,
    workers: int = 2,
    p99_bound_ms: float = 5000.0,
    check_sample: int = 16,
) -> dict[str, Any]:
    """The CI smoke: boot, drive concurrent queries, bound p99, audit
    served results against the invariant checker.

    Raises ``AssertionError`` on any failure (errors, p99 over bound,
    non-identical results, invariant violations).
    """
    from repro.api.facade import sized_workload
    from repro.checks.checker import CheckingRunner
    from repro.core.configs import ConfigName

    total = clients * requests_per_client
    pool = build_query_pool(total)
    with ServerThread(ServiceConfig(workers=workers)) as server:
        phase, responses = run_phase(
            "smoke", server.host, server.port, _partition(pool, clients)
        )
        health = server.service.healthz()
    assert phase.errors == 0, f"{phase.errors} failed requests"
    assert phase.requests == total, f"served {phase.requests}/{total}"
    assert (
        phase.p99_ms <= p99_bound_ms
    ), f"p99 {phase.p99_ms:.0f} ms over bound {p99_bound_ms:.0f} ms"
    identity = _verify_identity(responses, check_sample)
    assert identity["bit_identical"], f"identity mismatches: {identity}"
    # Invariant audit: re-evaluate a sample under CheckingRunner(raise) —
    # it throws on any violated invariant — and pin the served metric to
    # the audited record's, bit for bit.
    checker = CheckingRunner(mode="raise")
    step = max(1, len(responses) // check_sample)
    audited = 0
    for response in responses[::step][:check_sample]:
        query = response.query
        record = checker.run(
            sized_workload(query.workload, query.size_gb),
            ConfigName(query.config),
            query.num_threads,
        )
        assert record.metric == response.metric, (
            f"served metric {response.metric!r} != checked {record.metric!r} "
            f"for {query}"
        )
        audited += 1
    return {
        "phase": phase.as_dict(),
        "health_after": health,
        "identity": identity,
        "invariant_audited": audited,
        "checked_runs": checker.runs_checked,
        "violations": checker.violation_count,
    }


# -- sharded deployment benchmark ------------------------------------------------


@dataclass(frozen=True)
class ShardPhase:
    """Measured outcome of one sharded closed-loop phase.

    The headline number is **goodput** — successfully answered requests
    per second of wall clock — because the sharded benchmark runs the
    fleet *into overload*: clients that draw a 429 back off and retry
    until their request deadline, so a deployment whose admission
    capacity is below the offered concurrency spends wall clock in
    reject/backoff churn that goodput (unlike raw request throughput)
    refuses to count.
    """

    name: str
    replicas: int
    concurrency: int
    offered: int
    succeeded: int
    failed: int
    #: 429-driven re-submissions (each is one extra round trip).
    retries: int
    seconds: float
    goodput_rps: float
    p50_ms: float
    p99_ms: float
    max_ms: float

    @property
    def success_rate(self) -> float:
        return self.succeeded / self.offered if self.offered else 0.0

    def as_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "replicas": self.replicas,
            "concurrency": self.concurrency,
            "offered": self.offered,
            "succeeded": self.succeeded,
            "failed": self.failed,
            "retries": self.retries,
            "seconds": self.seconds,
            "goodput_rps": self.goodput_rps,
            "success_rate": self.success_rate,
            "p50_ms": self.p50_ms,
            "p99_ms": self.p99_ms,
            "max_ms": self.max_ms,
        }

    def describe(self) -> str:
        return (
            f"{self.name} x{self.replicas}: {self.succeeded}/{self.offered} "
            f"ok (+{self.retries} retries) in {self.seconds:.2f}s = "
            f"{self.goodput_rps:.0f} rps goodput "
            f"(p50 {self.p50_ms:.1f} ms, p99 {self.p99_ms:.1f} ms)"
        )


def run_shard_phase(
    name: str,
    replicas: "Any",
    partitions: Sequence[Sequence[tuple[Query, str]]],
    *,
    deadline_s: float = 60.0,
    request_deadline_s: float = 120.0,
    backoff_base_s: float = 0.05,
    backoff_cap_s: float = 0.8,
    max_attempts: int = 4,
    timeout_s: float = 90.0,
) -> tuple[ShardPhase, list[PredictionResult]]:
    """One sharded closed loop: each client thread routes its keyed
    queries client-side (:class:`~repro.serve.shard.ShardClient` over a
    shared :class:`~repro.serve.registry.ReplicaSet`), retrying 429s
    with jittered exponential backoff until success or
    ``request_deadline_s``.

    ``replicas`` is the deployment's live replica set, so routing and
    failover see health transitions mid-phase.  Latency is measured per
    *request* including retries — the closed-loop cost a caller pays.
    """
    import random

    from repro.api.errors import ApiError, CapacityError
    from repro.serve.shard import ShardClient

    barrier = threading.Barrier(len(partitions) + 1)
    latencies_ms: list[list[float]] = [[] for _ in partitions]
    responses: list[list[PredictionResult]] = [[] for _ in partitions]
    succeeded = [0] * len(partitions)
    failed = [0] * len(partitions)
    retries = [0] * len(partitions)

    def client_loop(slot: int, pairs: Sequence[tuple[Query, str]]) -> None:
        rng = random.Random(0xC0FFEE + slot)  # deterministic jitter
        with ShardClient(
            replicas, timeout=timeout_s, max_attempts=max_attempts
        ) as client:
            barrier.wait()
            for query, key in pairs:
                started = time.perf_counter()
                give_up_at = time.monotonic() + request_deadline_s
                attempt = 0
                while True:
                    try:
                        result = client.predict(
                            query, key=key, deadline_s=deadline_s
                        )
                    except CapacityError:
                        if time.monotonic() >= give_up_at:
                            failed[slot] += 1
                            break
                        retries[slot] += 1
                        pause = min(
                            backoff_cap_s, backoff_base_s * (2.0 ** attempt)
                        ) * (0.5 + rng.random())
                        attempt += 1
                        time.sleep(pause)
                        continue
                    except (ApiError, OSError):
                        failed[slot] += 1
                        break
                    succeeded[slot] += 1
                    latencies_ms[slot].append(
                        (time.perf_counter() - started) * 1e3
                    )
                    responses[slot].append(result)
                    break

    threads = [
        threading.Thread(
            target=client_loop, args=(i, pairs), name=f"shardgen-{i}"
        )
        for i, pairs in enumerate(partitions)
    ]
    for thread in threads:
        thread.start()
    barrier.wait()
    started = time.perf_counter()
    for thread in threads:
        thread.join()
    seconds = time.perf_counter() - started
    flat = sorted(lat for bucket in latencies_ms for lat in bucket)
    offered = sum(len(p) for p in partitions)
    ok = sum(succeeded)
    phase = ShardPhase(
        name=name,
        replicas=len(replicas.routable_ids()),
        concurrency=len(partitions),
        offered=offered,
        succeeded=ok,
        failed=sum(failed),
        retries=sum(retries),
        seconds=seconds,
        goodput_rps=ok / seconds if seconds else 0.0,
        p50_ms=_percentile(flat, 0.50),
        p99_ms=_percentile(flat, 0.99),
        max_ms=flat[-1] if flat else 0.0,
    )
    return phase, [r for bucket in responses for r in bucket]


def measure_serve_sharded(
    *,
    replica_counts: Sequence[int] = (1, 2, 4),
    concurrency: int = 1024,
    requests_per_client: int = 4,
    workers: int = 1,
    max_queue: int = 256,
    backend: str = "process",
    machine: str = "knl7210",
    identity_sample: int = 64,
    backoff_base_s: float = 0.05,
    backoff_cap_s: float = 0.8,
    request_deadline_s: float = 120.0,
) -> dict[str, Any]:
    """The sharded-deployment benchmark: the replica scaling curve under
    overload, plus the hot cache-affinity phase.

    Measurement framing (documented because it is the honest part): the
    replicas share the host's cores, so aggregate *goodput* scales with
    N only up to ``os.cpu_count()`` — beyond that the closed-loop
    clients self-stabilize at the shared compute ceiling and the curve
    goes flat.  What sharding buys at high concurrency regardless of
    core count is **admission capacity**: each replica carries a fixed
    bounded queue (``max_queue``), so a fleet whose aggregate queue
    covers the offered concurrency admits every request outright, while
    a single replica bounces the excess into 429/backoff churn.  The
    recorded curve therefore carries three metrics per replica count —
    goodput, p99 latency, and 429 retries — and the scaling section
    reports both the goodput ratio and the tail-latency ratio.  On a
    host with fewer cores than replicas the admission curve (retries
    collapsing to zero once the aggregate queue covers the offered
    concurrency) is the signal that survives: goodput pins at the
    compute ceiling and p99 is scheduler-noise dominated, which is why
    ``host_cpu_count`` is recorded alongside.  The ``hot_cache`` phase
    replays the same keys to show key-affinity turning the per-replica
    caches into one fleet-wide cache (every replica serves only its
    ring share).

    Every replica count replays the *same* keyed pool against a fresh
    deployment (cold caches each time); all deployments share one
    persistent table-cache directory, so model-table construction is
    paid once by the first fleet, not per replica.  Results from the
    largest fleet are audited bit-identical against direct scalar
    evaluation.
    """
    import os
    import tempfile

    from repro.cluster.multinode import scaling_efficiency
    from repro.serve.shard import ShardConfig, ShardDeployment

    if not replica_counts:
        raise ValueError("replica_counts must be non-empty")
    total = concurrency * requests_per_client
    predictor = Predictor(machine=machine)
    pool = build_keyed_pool(total, predictor=predictor)
    partitions: list[list[tuple[Query, str]]] = [
        [] for _ in range(concurrency)
    ]
    for i, pair in enumerate(pool):
        partitions[i % concurrency].append(pair)
    partitions = [p for p in partitions if p]

    overload: dict[int, ShardPhase] = {}
    hot: dict[int, ShardPhase] = {}
    identity: dict[str, Any] = {}
    with tempfile.TemporaryDirectory(prefix="repro-bench-tables-") as tables:
        service = ServiceConfig(
            machine=machine,
            workers=workers,
            max_queue=max_queue,
            cache_entries=2 * total,
            cache_ttl_s=None,
            default_deadline_s=max(60.0, request_deadline_s),
            table_cache_dir=tables,
        )
        for count in replica_counts:
            config = ShardConfig(
                replicas=count,
                backend=backend,
                service=service,
                probe_interval_s=1.0,
                fail_after=3,
            )
            deployment = ShardDeployment(config)
            with deployment:
                phase, responses = run_shard_phase(
                    "overload",
                    deployment.replicas,
                    partitions,
                    backoff_base_s=backoff_base_s,
                    backoff_cap_s=backoff_cap_s,
                    request_deadline_s=request_deadline_s,
                )
                overload[count] = phase
                hot_phase, _ = run_shard_phase(
                    "hot_cache",
                    deployment.replicas,
                    partitions,
                    backoff_base_s=backoff_base_s,
                    backoff_cap_s=backoff_cap_s,
                    request_deadline_s=request_deadline_s,
                )
                hot[count] = hot_phase
                if count == max(replica_counts):
                    identity = _verify_identity(responses, identity_sample)

    goodput = {n: p.goodput_rps for n, p in overload.items()}
    base_n = min(goodput)
    speedup = {
        n: (goodput[n] / goodput[base_n] if goodput[base_n] else 0.0)
        for n in sorted(goodput)
    }
    base_p99 = overload[base_n].p99_ms
    tail_speedup = {
        n: (base_p99 / overload[n].p99_ms if overload[n].p99_ms else 0.0)
        for n in sorted(overload)
    }
    return {
        "backend": backend,
        "concurrency": concurrency,
        "requests_per_client": requests_per_client,
        "unique_queries": total,
        "workers_per_replica": workers,
        "max_queue_per_replica": max_queue,
        "host_cpu_count": os.cpu_count(),
        "replica_counts": sorted(overload),
        "overload": {str(n): overload[n].as_dict() for n in sorted(overload)},
        "hot_cache": {str(n): hot[n].as_dict() for n in sorted(hot)},
        "scaling": {
            "metric": "overload goodput_rps / p99_ms / retries",
            "goodput_rps": {str(n): round(goodput[n], 1) for n in sorted(goodput)},
            "speedup_vs_min": {str(n): round(s, 3) for n, s in speedup.items()},
            "p99_ms": {
                str(n): round(overload[n].p99_ms, 1) for n in sorted(overload)
            },
            "tail_p99_speedup_vs_min": {
                str(n): round(s, 3) for n, s in tail_speedup.items()
            },
            "retries": {str(n): overload[n].retries for n in sorted(overload)},
            "parallel_efficiency": {
                str(n): round(e, 3)
                for n, e in scaling_efficiency(goodput).items()
            },
        },
        "identity": identity,
        "note": (
            "Replicas share the host's cores (host_cpu_count above): "
            "goodput scales with N only up to the core count, then pins at "
            "the shared compute ceiling, and p99 turns scheduler-noisy.  "
            "The host-independent scaling signal is admission: 429 retries "
            "collapse to zero once the fleet's aggregate queue covers the "
            "offered concurrency.  See docs/SERVING.md, 'The sharded "
            "benchmark'."
        ),
    }


def _bench_history_entry(document: dict[str, Any]) -> dict[str, Any]:
    """Compact trajectory row for the serve benchmark's ``history`` list.

    Picks whichever headline numbers the document carries — the
    single-replica bench reports coalesced/naive phase throughputs, the
    sharded bench a goodput-scaling curve — so one history schema serves
    both ``bench serve`` and ``bench serve --sharded``.
    """
    entry: dict[str, Any] = {
        "at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())
    }
    for key in (
        "speedup_coalesced_vs_naive",
        "speedup_hot_vs_naive",
        "backend",
        "concurrency",
    ):
        if key in document and not isinstance(document[key], dict):
            entry[key] = document[key]
    scaling = document.get("scaling")
    if isinstance(scaling, dict):
        for key in ("goodput_rps", "speedup_vs_min", "parallel_efficiency"):
            if key in scaling:
                entry[key] = scaling[key]
    planner = document.get("planner")
    if isinstance(planner, dict):
        latency = planner.get("latency_ms")
        if isinstance(latency, dict):
            entry["plan_latency_ms"] = dict(latency)
    return entry


def write_bench_json(document: dict[str, Any], path: str) -> str:
    """Write a bench document, accumulating a ``history`` list.

    Each regeneration replaces the headline document but appends one
    compact timestamped row to ``history`` carried over from the
    existing file, so the trajectory across runs is preserved in-band.
    """
    history: list[Any] = []
    try:
        with open(path, encoding="utf-8") as handle:
            previous = json.load(handle)
        carried = previous.get("history")
        if isinstance(carried, list):
            history = carried
    except (OSError, ValueError):
        history = []
    history.append(_bench_history_entry(document))
    document = dict(document)
    document["history"] = history
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2)
        handle.write("\n")
    return path
