"""The prediction service: admission, caching, coalescing, lifecycle.

:class:`PredictionService` is the protocol-independent core behind the
HTTP layer (:mod:`repro.serve.http`): it owns the TTL result cache, the
coalescer, the worker pool and the per-service metrics registry, and it
implements the request flow:

1. schema negotiation (:func:`~repro.api.types.check_schema_version`);
2. parsing — a request carries exactly one of ``query`` (one point),
   ``queries`` (a list) or ``grid`` (a dense
   :class:`~repro.api.types.QueryGrid`);
3. per-query resolution + content-addressed keying at the boundary
   (typed :mod:`repro.api.errors` surface here, never mid-batch);
4. TTL-cache lookups — hits are answered on the event loop; **each**
   constituent query counts one hit or miss, a grid of N is N lookups;
5. misses go to the coalescer (or, in the naive baseline configuration,
   one evaluation call per request) under a per-request deadline whose
   expiry cancels still-queued work;
6. results are cached and returned in submission order.

Evaluation happens on pool threads through **thread-local**
:class:`~repro.api.facade.Predictor` instances — the batch evaluator
mutates a shared simulated-OS allocator, so predictors must never be
shared across threads; the service tracks every predictor it created
and aggregates their executor stats for ``/metrics``.
"""

from __future__ import annotations

import asyncio
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, Mapping, Sequence

import repro
from repro.api.envelope import success_envelope
from repro.api.errors import (
    CapacityError,
    DeadlineExceededError,
    ValidationError,
)
from repro.api.facade import Predictor
from repro.api.plan import PlanRequest, PlanResult
from repro.api.types import (
    MACHINE_NAMES,
    PredictionResult,
    Query,
    QueryGrid,
    check_schema_version,
)
from repro.plan.planner import CapacityPlanner
from repro.obs.metrics import MetricsRegistry
from repro.serve.cache import TTLCache
from repro.serve.coalescer import Coalescer

__all__ = ["ServiceConfig", "PredictionService"]


@dataclass(frozen=True)
class ServiceConfig:
    """Capacity and behaviour knobs of one service instance.

    The defaults suit an interactive what-if service; ``docs/SERVING.md``
    discusses how to tune them.  ``coalesce=False`` turns the service
    into the naive one-request-one-eval baseline the serve benchmark
    measures against (usually combined with ``cache_entries=0``).
    """

    machine: str = "knl7210"
    #: Identity of this instance inside a sharded deployment
    #: (:mod:`repro.serve.shard`); surfaces on ``/healthz`` and
    #: ``/version`` so operators can tell replicas apart.  Empty for a
    #: standalone service.
    replica_id: str = ""
    #: Directory of the persistent ModelTables cache
    #: (:mod:`repro.engine.table_cache`).  When set, every worker
    #: predictor loads prebuilt tables on first touch, so a restarted
    #: service answers its first queries at steady-state speed instead of
    #: paying table construction (docs/SERVING.md, "warm starts").
    table_cache_dir: str | None = None
    max_batch: int = 256
    max_queue: int = 1024
    batch_window_s: float = 0.002
    workers: int = 2
    cache_entries: int = 4096
    cache_ttl_s: float | None = 300.0
    default_deadline_s: float = 10.0
    max_request_queries: int = 4096
    coalesce: bool = True
    drain_timeout_s: float = 5.0

    def __post_init__(self) -> None:
        if self.machine.lower() not in MACHINE_NAMES:
            raise ValidationError(
                f"unknown machine {self.machine!r}; expected one of "
                f"{', '.join(MACHINE_NAMES)}"
            )
        for name in ("max_batch", "max_queue", "workers", "max_request_queries"):
            if getattr(self, name) < 1:
                raise ValidationError(
                    f"{name} must be >= 1, got {getattr(self, name)}"
                )
        if self.batch_window_s < 0:
            raise ValidationError(
                f"batch_window_s must be >= 0, got {self.batch_window_s}"
            )
        if self.cache_entries < 0:
            raise ValidationError(
                f"cache_entries must be >= 0, got {self.cache_entries}"
            )
        if self.default_deadline_s <= 0:
            raise ValidationError(
                f"default_deadline_s must be positive, got "
                f"{self.default_deadline_s}"
            )


class PredictionService:
    """The coalescing what-if prediction service (protocol-independent)."""

    def __init__(self, config: ServiceConfig | None = None) -> None:
        self.config = config if config is not None else ServiceConfig()
        self.metrics = MetricsRegistry()
        self.cache: TTLCache[PredictionResult] = TTLCache(
            self.config.cache_entries, self.config.cache_ttl_s
        )
        # Resolution/keying only — never evaluates, so event-loop-only use
        # is safe alongside the pool threads' evaluating predictors.
        self._resolver = Predictor(machine=self.config.machine)
        self._tls = threading.local()
        self._predictors: list[Predictor] = []
        self._predictors_lock = threading.Lock()
        self._pool: ThreadPoolExecutor | None = None
        self._coalescer: Coalescer | None = None
        self._state = "created"
        self._started_monotonic: float | None = None
        #: Test seam for deterministic fault injection
        #: (:mod:`repro.serve.faults`): called on the worker thread
        #: before every evaluation.  ``None`` (production) costs one
        #: attribute read per batch.
        self.fault_hook: "Callable[[], None] | None" = None

    # -- lifecycle ------------------------------------------------------------
    @property
    def state(self) -> str:
        """``created`` -> ``running`` -> ``draining`` -> ``stopped``."""
        return self._state

    @property
    def running(self) -> bool:
        return self._state == "running"

    def uptime_s(self) -> float:
        if self._started_monotonic is None:
            return 0.0
        return time.monotonic() - self._started_monotonic

    async def start(self) -> None:
        """Bring up the worker pool and the coalescer dispatchers."""
        if self._state not in ("created", "stopped"):
            raise RuntimeError(f"cannot start a service in state {self._state}")
        self._pool = ThreadPoolExecutor(
            max_workers=self.config.workers, thread_name_prefix="serve-eval"
        )
        self._coalescer = Coalescer(
            self._evaluate_batch,
            pool=self._pool,
            max_batch=self.config.max_batch,
            max_queue=self.config.max_queue,
            dispatchers=self.config.workers,
            batch_window_s=self.config.batch_window_s,
            metrics=self.metrics,
        )
        self._coalescer.start()
        self._state = "running"
        self._started_monotonic = time.monotonic()

    async def stop(self, *, drain: bool = True) -> None:
        """Graceful shutdown: stop admitting, drain, tear down the pool.

        With ``drain=True`` (the default), queued and in-flight requests
        are given ``drain_timeout_s`` to finish before the coalescer is
        stopped; new submissions are rejected with
        :class:`~repro.api.errors.CapacityError` the moment draining
        starts.
        """
        if self._state in ("created", "stopped"):
            self._state = "stopped"
            return
        self._state = "draining"
        assert self._coalescer is not None and self._pool is not None
        if drain:
            await self._coalescer.drain(self.config.drain_timeout_s)
        await self._coalescer.stop()
        self._pool.shutdown(wait=True)
        for predictor in self._tracked_predictors():
            predictor.close()
        self._pool = None
        self._state = "stopped"

    # -- evaluation (pool threads) ---------------------------------------------
    def _worker_predictor(self) -> Predictor:
        """This thread's predictor (created and tracked on first use)."""
        predictor = getattr(self._tls, "predictor", None)
        if predictor is None:
            predictor = Predictor(
                machine=self.config.machine,
                table_cache_dir=self.config.table_cache_dir,
            )
            self._tls.predictor = predictor
            with self._predictors_lock:
                self._predictors.append(predictor)
        return predictor

    def _tracked_predictors(self) -> list[Predictor]:
        with self._predictors_lock:
            return list(self._predictors)

    def _evaluate_batch(self, queries: list[Query]) -> list[PredictionResult]:
        """One dense batch through this pool thread's predictor."""
        hook = self.fault_hook
        if hook is not None:
            hook()
        return self._worker_predictor().predict_many(queries)

    def _evaluate_one(self, query: Query) -> PredictionResult:
        """The naive baseline: one scalar evaluation per call."""
        hook = self.fault_hook
        if hook is not None:
            hook()
        return self._worker_predictor().predict(query)

    # -- request handling (event loop) ----------------------------------------
    @staticmethod
    def parse_queries(payload: Mapping[str, Any]) -> list[Query]:
        """Queries of one request body (exactly one form present)."""
        if not isinstance(payload, Mapping):
            raise ValidationError("request body must be a JSON object")
        check_schema_version(payload.get("schema_version"))
        forms = [k for k in ("query", "queries", "grid") if k in payload]
        if len(forms) != 1:
            raise ValidationError(
                "request must carry exactly one of 'query', 'queries' or "
                f"'grid' (got {forms or 'none'})"
            )
        unknown = sorted(
            set(payload) - {"schema_version", "deadline_s", forms[0]}
        )
        if unknown:
            raise ValidationError(f"unknown field(s): {', '.join(unknown)}")
        if "query" in payload:
            return [Query.from_dict(payload["query"])]
        if "queries" in payload:
            entries = payload["queries"]
            if not isinstance(entries, Sequence) or isinstance(
                entries, (str, bytes)
            ):
                raise ValidationError("'queries' must be a list")
            if not entries:
                raise ValidationError("'queries' must not be empty")
            return [Query.from_dict(q) for q in entries]
        return list(QueryGrid.from_dict(payload["grid"]).expand())

    def _deadline_s(self, payload: Mapping[str, Any]) -> float:
        value = payload.get("deadline_s", self.config.default_deadline_s)
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise ValidationError(f"deadline_s must be a number, got {value!r}")
        if value <= 0:
            raise ValidationError(f"deadline_s must be positive, got {value}")
        return float(value)

    async def handle_predict(self, payload: Mapping[str, Any]) -> dict[str, Any]:
        """Answer one ``/v1/predict`` body with the versioned envelope."""
        started = time.perf_counter()
        queries = self.parse_queries(payload)
        deadline_s = self._deadline_s(payload)
        if len(queries) > self.config.max_request_queries:
            self.metrics.add("serve.rejected")
            raise CapacityError(
                f"request expands to {len(queries)} queries; the service "
                f"caps requests at {self.config.max_request_queries}",
                details={"max_request_queries": self.config.max_request_queries},
            )
        results, cached = await self._predict_queries(queries, deadline_s)
        self.metrics.add("serve.queries", float(len(queries)))
        self.metrics.set_gauge("serve.cache_hit_rate", self.cache.hit_rate)
        elapsed_ms = (time.perf_counter() - started) * 1e3
        return success_envelope(
            results=[r.to_dict() for r in results],
            meta={
                "queries": len(queries),
                "cached": cached,
                "computed": len(queries) - cached,
                "elapsed_ms": elapsed_ms,
            },
        )

    async def _predict_queries(
        self, queries: Sequence[Query], deadline_s: float
    ) -> tuple[list[PredictionResult], int]:
        if self._state != "running":
            raise CapacityError(f"service is {self._state}")
        assert self._coalescer is not None and self._pool is not None
        # Content-addressed keys exist to serve the result cache; with the
        # cache disabled (the naive baseline) computing them would charge
        # that configuration for work it cannot use.
        if self.cache.enabled:
            keys = [self._resolver.cache_key(q) for q in queries]
        else:
            if self.config.coalesce:
                # Still validate at the boundary: one malformed query must
                # not fail the shared batch it would be coalesced into.
                for query in queries:
                    self._resolver.resolve(query)
            keys = [""] * len(queries)
        results: list[PredictionResult | None] = [None] * len(queries)
        miss_indices: list[int] = []
        for i, key in enumerate(keys):
            if self.cache.enabled:
                cached = self.cache.get(key)
                if cached is not None:
                    results[i] = cached
                    continue
            miss_indices.append(i)
        hits = len(queries) - len(miss_indices)
        self.metrics.add("serve.cache_hits", float(hits))
        self.metrics.add("serve.cache_misses", float(len(miss_indices)))
        if miss_indices:
            loop = asyncio.get_running_loop()
            if self.config.coalesce:
                futures = [
                    self._coalescer.submit(queries[i], keys[i])
                    for i in miss_indices
                ]
            else:
                futures = [
                    loop.run_in_executor(
                        self._pool, self._evaluate_one, queries[i]
                    )
                    for i in miss_indices
                ]
            # One future per miss; the single-query request is the hot
            # path, so skip the gather layer for it.
            awaitable = (
                futures[0] if len(futures) == 1 else asyncio.gather(*futures)
            )
            try:
                computed = await asyncio.wait_for(awaitable, timeout=deadline_s)
            except asyncio.TimeoutError:
                for future in futures:
                    future.cancel()
                self.metrics.add("serve.deadline_exceeded")
                raise DeadlineExceededError(
                    f"deadline of {deadline_s:g}s exceeded "
                    f"({len(miss_indices)} queries pending)",
                    details={"deadline_s": deadline_s},
                ) from None
            if len(futures) == 1:
                computed = [computed]
            for i, result in zip(miss_indices, computed):
                results[i] = result
                self.cache.put(keys[i], result)
        assert all(r is not None for r in results)
        return results, hits  # type: ignore[return-value]

    # -- capacity planning (event loop + pool threads) --------------------------
    @staticmethod
    def parse_plan(payload: Mapping[str, Any]) -> PlanRequest:
        """The :class:`~repro.api.plan.PlanRequest` of one ``/v1/plan``
        body (``{"plan": {...}}`` plus the shared envelope fields)."""
        if not isinstance(payload, Mapping):
            raise ValidationError("request body must be a JSON object")
        check_schema_version(payload.get("schema_version"))
        if "plan" not in payload:
            raise ValidationError("request must carry a 'plan' object")
        unknown = sorted(set(payload) - {"schema_version", "deadline_s", "plan"})
        if unknown:
            raise ValidationError(f"unknown field(s): {', '.join(unknown)}")
        return PlanRequest.from_dict(payload["plan"])

    def _solve_plan(self, request: PlanRequest) -> PlanResult:
        """One plan solve on a pool thread, over that thread's predictor
        (so candidate evaluation shares the run/table caches every
        ``/v1/predict`` batch already warmed)."""
        hook = self.fault_hook
        if hook is not None:
            hook()
        return CapacityPlanner(self._worker_predictor()).plan(request)

    async def handle_plan(self, payload: Mapping[str, Any]) -> dict[str, Any]:
        """Answer one ``/v1/plan`` body with the versioned envelope."""
        started = time.perf_counter()
        request = self.parse_plan(payload)
        deadline_s = self._deadline_s(payload)
        if self._state != "running":
            raise CapacityError(f"service is {self._state}")
        assert self._pool is not None
        candidates = request.candidate_count()
        if candidates > self.config.max_request_queries:
            self.metrics.add("serve.rejected")
            raise CapacityError(
                f"plan expands to {candidates} candidate queries; the "
                f"service caps requests at {self.config.max_request_queries}",
                details={"max_request_queries": self.config.max_request_queries},
            )
        loop = asyncio.get_running_loop()
        future = loop.run_in_executor(self._pool, self._solve_plan, request)
        try:
            result = await asyncio.wait_for(future, timeout=deadline_s)
        except asyncio.TimeoutError:
            self.metrics.add("serve.deadline_exceeded")
            raise DeadlineExceededError(
                f"deadline of {deadline_s:g}s exceeded (plan still solving)",
                details={"deadline_s": deadline_s},
            ) from None
        elapsed_ms = (time.perf_counter() - started) * 1e3
        self.metrics.add("serve.plans")
        self.metrics.observe("serve.plan_ms", elapsed_ms)
        return success_envelope(
            plan=result.to_dict(),
            meta={
                "items": len(request.mix),
                "pool": len(request.pool),
                "candidates": candidates,
                "elapsed_ms": elapsed_ms,
            },
        )

    # -- introspection endpoints ------------------------------------------------
    def healthz(self) -> dict[str, Any]:
        health = {
            "status": "ok" if self.running else self._state,
            "state": self._state,
            "uptime_s": self.uptime_s(),
            "queue_depth": (
                0 if self._coalescer is None else self._coalescer.queue_depth
            ),
        }
        if self.config.replica_id:
            health["replica_id"] = self.config.replica_id
        return health

    def version(self) -> dict[str, Any]:
        document = success_envelope(
            service="repro.serve",
            version=repro.__version__,
            machine=self.config.machine,
            coalesce=self.config.coalesce,
        )
        if self.config.replica_id:
            document["replica_id"] = self.config.replica_id
        return document

    def executor_stats(self) -> dict[str, Any]:
        """Aggregated sweep-executor counters across every predictor the
        service created (resolver included — it never evaluates, but its
        counters prove that)."""
        predictors = self._tracked_predictors() + [self._resolver]
        stats = [p.stats() for p in predictors]
        total = {
            "hits": sum(s.hits for s in stats),
            "misses": sum(s.misses for s in stats),
            "disk_hits": sum(s.disk_hits for s in stats),
            "executed": sum(s.executed for s in stats),
            "batches": sum(s.batches for s in stats),
            "batched_cells": sum(s.batched_cells for s in stats),
            "table_cache_hits": sum(s.table_cache_hits for s in stats),
            "table_cache_misses": sum(s.table_cache_misses for s in stats),
            "table_cache_stores": sum(s.table_cache_stores for s in stats),
        }
        lookups = total["hits"] + total["misses"]
        total["hit_rate"] = total["hits"] / lookups if lookups else 0.0
        return total

    def metrics_snapshot(self) -> dict[str, Any]:
        """The ``/metrics`` document: service registry + cache +
        coalescer + executor counters."""
        coalescer = self._coalescer
        return success_envelope(
            service=self.metrics.as_dict(),
            cache=self.cache.stats(),
            coalescer={
                "enabled": self.config.coalesce,
                "submitted": 0 if coalescer is None else coalescer.submitted,
                "rejected": 0 if coalescer is None else coalescer.rejected,
                "batches": (
                    0 if coalescer is None else coalescer.dispatched_batches
                ),
                "batched_queries": (
                    0 if coalescer is None else coalescer.dispatched_queries
                ),
                "queue_depth": (
                    0 if coalescer is None else coalescer.queue_depth
                ),
            },
            executor=self.executor_stats(),
        )
