"""Replica membership, health tracking and routing state.

:class:`ReplicaSet` is the control-plane table of one sharded
deployment: every replica's address, lifecycle state and failure
accounting, plus the consistent-hash ring (:mod:`repro.serve.ring`)
rebuilt atomically from the replicas that are currently **routable**.

Health is tracked two ways, both deterministic:

* **passively** — every forwarding failure calls :meth:`mark_failure`;
  ``fail_after`` consecutive failures transition the replica to
  ``down`` and drop it from the ring (its keyspace share moves to the
  ring successors, nothing else remaps — the minimal-remapping
  property).  Any success resets the streak and revives the replica.
* **actively** — the router's probe loop calls :meth:`mark_probe` with
  the replica's ``/healthz`` verdict, so a replica that was killed
  outright (nobody routing to it, hence no passive signal) is still
  discovered, and a recovered or restarted one rejoins the ring.

Draining is an explicit administrative state: a ``draining`` replica
leaves the ring immediately (no new work) while its in-flight requests
finish on the replica itself — the service's own graceful ``stop()``
handles that side (:mod:`repro.serve.service`).

All methods are thread-safe; routing reads take a snapshot of the
current ring, so a rebuild never tears an in-progress preference walk.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any

from repro.serve.ring import DEFAULT_VNODES, HashRing

__all__ = ["ReplicaInfo", "ReplicaSet", "ReplicaState"]


class ReplicaState:
    """Replica lifecycle states (plain strings on the wire)."""

    UP = "up"
    DRAINING = "draining"
    DOWN = "down"


@dataclass
class ReplicaInfo:
    """One replica's control-plane entry."""

    replica_id: str
    host: str
    port: int
    state: str = ReplicaState.UP
    consecutive_failures: int = 0
    #: Total forwarding failures ever charged to this replica.
    failures: int = 0
    #: Bumped on every (re)registration, so connection pools keyed on
    #: ``(replica_id, generation)`` never reuse a socket to a dead twin.
    generation: int = 0
    last_transition: float = field(default_factory=time.monotonic)

    @property
    def address(self) -> tuple[str, int]:
        return self.host, self.port

    @property
    def routable(self) -> bool:
        return self.state == ReplicaState.UP

    def as_dict(self) -> dict[str, Any]:
        return {
            "state": self.state,
            "host": self.host,
            "port": self.port,
            "consecutive_failures": self.consecutive_failures,
            "failures": self.failures,
            "generation": self.generation,
        }


class ReplicaSet:
    """Thread-safe replica table + the ring over its routable members."""

    def __init__(
        self, *, fail_after: int = 3, vnodes: int = DEFAULT_VNODES
    ) -> None:
        if fail_after < 1:
            raise ValueError(f"fail_after must be >= 1, got {fail_after}")
        self.fail_after = fail_after
        self.vnodes = vnodes
        self._lock = threading.Lock()
        self._replicas: dict[str, ReplicaInfo] = {}
        self._ring = HashRing(vnodes=vnodes)
        self.transitions = 0

    # -- membership -----------------------------------------------------------
    def register(self, replica_id: str, host: str, port: int) -> ReplicaInfo:
        """Add a replica (or re-register a restarted one) as ``up``."""
        with self._lock:
            existing = self._replicas.get(replica_id)
            generation = existing.generation + 1 if existing is not None else 0
            info = ReplicaInfo(
                replica_id=replica_id,
                host=host,
                port=port,
                generation=generation,
            )
            self._replicas[replica_id] = info
            self._rebuild_ring()
            return info

    def deregister(self, replica_id: str) -> None:
        with self._lock:
            if self._replicas.pop(replica_id, None) is not None:
                self._rebuild_ring()

    def _rebuild_ring(self) -> None:
        """Swap in a fresh ring over the routable replicas (lock held)."""
        self._ring = HashRing(
            (r.replica_id for r in self._replicas.values() if r.routable),
            vnodes=self.vnodes,
        )

    # -- health transitions ------------------------------------------------------
    def _transition(self, info: ReplicaInfo, state: str) -> None:
        if info.state == state:
            return
        info.state = state
        info.last_transition = time.monotonic()
        self.transitions += 1
        self._rebuild_ring()

    def mark_failure(self, replica_id: str) -> None:
        """Charge one forwarding failure; ``fail_after`` in a row downs
        the replica."""
        with self._lock:
            info = self._replicas.get(replica_id)
            if info is None:
                return
            info.failures += 1
            info.consecutive_failures += 1
            if (
                info.state == ReplicaState.UP
                and info.consecutive_failures >= self.fail_after
            ):
                self._transition(info, ReplicaState.DOWN)

    def mark_success(self, replica_id: str) -> None:
        """A successful round trip: reset the streak, revive if down."""
        with self._lock:
            info = self._replicas.get(replica_id)
            if info is None:
                return
            info.consecutive_failures = 0
            if info.state == ReplicaState.DOWN:
                self._transition(info, ReplicaState.UP)

    def mark_probe(self, replica_id: str, healthy: bool) -> None:
        """Fold one active ``/healthz`` probe into the health state.

        A probe is authoritative in both directions: a healthy answer
        revives a ``down`` replica, an unhealthy one (connection refused
        or a non-``ok`` status, e.g. ``draining``) downs an ``up`` one
        immediately — probes are deliberate, so they skip the
        ``fail_after`` streak that guards against one-off socket drops.
        """
        with self._lock:
            info = self._replicas.get(replica_id)
            if info is None:
                return
            if healthy:
                info.consecutive_failures = 0
                if info.state == ReplicaState.DOWN:
                    self._transition(info, ReplicaState.UP)
            elif info.state == ReplicaState.UP:
                self._transition(info, ReplicaState.DOWN)

    def start_drain(self, replica_id: str) -> ReplicaInfo:
        """Administratively drain: leave the ring now, finish in-flight
        work on the replica."""
        with self._lock:
            info = self._replicas[replica_id]
            self._transition(info, ReplicaState.DRAINING)
            return info

    # -- routing reads ---------------------------------------------------------
    def ring(self) -> HashRing:
        """The current ring snapshot (immutable once handed out)."""
        with self._lock:
            return self._ring

    def preferences(self, key: str, limit: int | None = None) -> list[str]:
        """Failover-ordered routable replicas for ``key``."""
        return self.ring().preferences(key, limit)

    def info(self, replica_id: str) -> ReplicaInfo:
        with self._lock:
            return self._replicas[replica_id]

    def address(self, replica_id: str) -> tuple[str, int]:
        with self._lock:
            return self._replicas[replica_id].address

    def generation(self, replica_id: str) -> int:
        with self._lock:
            return self._replicas[replica_id].generation

    def ids(self) -> list[str]:
        with self._lock:
            return sorted(self._replicas)

    def routable_ids(self) -> list[str]:
        with self._lock:
            return sorted(
                r.replica_id for r in self._replicas.values() if r.routable
            )

    def as_dict(self) -> dict[str, Any]:
        """JSON-ready control-plane snapshot for ``/healthz``."""
        with self._lock:
            return {
                "replicas": {
                    rid: info.as_dict()
                    for rid, info in sorted(self._replicas.items())
                },
                "ring": self._ring.describe(),
                "transitions": self.transitions,
            }
