"""Consistent-hash ring routing content-addressed run keys to replicas.

The sharded deployment (:mod:`repro.serve.shard`) places every query on
a replica by its **content-addressed run key** (the same PR-1 key the
result caches use), so a key always lands on the same replica while
that replica is alive — which turns each replica's private TTL result
cache into one slice of a fleet-wide cache with no coordination at all.

Design constraints, each load-bearing:

* **Process-stable hashing.**  Points come from SHA-256 over
  ``b"replica:vnode"`` / the raw key bytes, never from :func:`hash` —
  Python randomizes string hashing per process (PYTHONHASHSEED), and a
  ring that moved between the router process and a restarted replica
  would silently empty every cache.  ``tests/serve/test_ring.py`` pins
  assignments across subprocesses with different hash seeds.
* **Virtual nodes.**  Each replica owns ``vnodes`` points; with tens of
  points per replica the keyspace shares concentrate near ``1/N``
  (balance is property-tested within a tolerance bound).
* **Minimal remapping.**  Adding or removing a replica only moves the
  keys adjacent to that replica's points: the property suite proves
  keys whose owner survives a membership change keep their owner.

The ring itself is immutable-by-convention and not thread-safe; the
:class:`~repro.serve.registry.ReplicaSet` rebuilds one atomically on
every membership or health transition.
"""

from __future__ import annotations

import bisect
import hashlib
from collections.abc import Iterable, Sequence

__all__ = ["HashRing", "DEFAULT_VNODES", "stable_point"]

#: Virtual nodes per replica.  64 keeps the largest/smallest keyspace
#: share within ~2x of each other for small fleets, at a few KiB of ring.
DEFAULT_VNODES = 64

_SPACE = 2**64


def stable_point(data: str) -> int:
    """A 64-bit ring position derived only from ``data``'s bytes.

    SHA-256 truncated to 64 bits: identical in every process regardless
    of ``PYTHONHASHSEED``, which is the property the whole deployment
    rests on (router, replicas and clients must agree on ownership).
    """
    digest = hashlib.sha256(data.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class HashRing:
    """Consistent-hash ring mapping string keys to replica ids.

    Parameters
    ----------
    replicas:
        Initial replica ids (order-insensitive: the ring layout depends
        only on the id *strings*).
    vnodes:
        Points per replica.
    """

    def __init__(
        self,
        replicas: Iterable[str] = (),
        *,
        vnodes: int = DEFAULT_VNODES,
    ) -> None:
        if vnodes < 1:
            raise ValueError(f"vnodes must be >= 1, got {vnodes}")
        self.vnodes = vnodes
        self._points: list[int] = []
        self._owners: list[str] = []  # parallel to _points
        self._replicas: set[str] = set()
        for replica in replicas:
            self.add(replica)

    # -- membership -----------------------------------------------------------
    def __len__(self) -> int:
        return len(self._replicas)

    def __contains__(self, replica: str) -> bool:
        return replica in self._replicas

    @property
    def replicas(self) -> frozenset[str]:
        return frozenset(self._replicas)

    def add(self, replica: str) -> None:
        """Insert a replica's virtual points (idempotent)."""
        if not replica:
            raise ValueError("replica id must be non-empty")
        if replica in self._replicas:
            return
        self._replicas.add(replica)
        for v in range(self.vnodes):
            point = stable_point(f"{replica}:{v}")
            index = bisect.bisect_left(self._points, point)
            # SHA-256 collisions at 64 bits are astronomically unlikely
            # for fleet-sized rings; ties break by owner id so that even
            # then every process agrees on the layout.
            while (
                index < len(self._points)
                and self._points[index] == point
                and self._owners[index] < replica
            ):
                index += 1
            self._points.insert(index, point)
            self._owners.insert(index, replica)

    def remove(self, replica: str) -> None:
        """Drop a replica's points (idempotent)."""
        if replica not in self._replicas:
            return
        self._replicas.discard(replica)
        keep = [
            (p, o)
            for p, o in zip(self._points, self._owners)
            if o != replica
        ]
        self._points = [p for p, _ in keep]
        self._owners = [o for _, o in keep]

    # -- assignment -----------------------------------------------------------
    def assign(self, key: str) -> str:
        """The replica owning ``key`` (first point clockwise)."""
        if not self._points:
            raise LookupError("hash ring is empty (no replicas)")
        index = bisect.bisect_right(self._points, stable_point(key))
        if index == len(self._points):
            index = 0
        return self._owners[index]

    def preferences(self, key: str, limit: int | None = None) -> list[str]:
        """Distinct replicas in ring order starting at ``key``'s owner.

        The failover order: the first entry is :meth:`assign`'s answer,
        later entries are the replicas whose points follow clockwise —
        the same succession every process derives, so a client and the
        router fail over to the *same* secondary.
        """
        if not self._points:
            return []
        want = len(self._replicas) if limit is None else min(limit, len(self._replicas))
        start = bisect.bisect_right(self._points, stable_point(key))
        order: list[str] = []
        seen: set[str] = set()
        for offset in range(len(self._points)):
            owner = self._owners[(start + offset) % len(self._points)]
            if owner not in seen:
                seen.add(owner)
                order.append(owner)
                if len(order) >= want:
                    break
        return order

    # -- introspection --------------------------------------------------------
    def shares(self) -> dict[str, float]:
        """Fraction of the keyspace each replica owns (sums to 1.0)."""
        if not self._points:
            return {}
        shares = {replica: 0 for replica in self._replicas}
        previous = self._points[-1]
        for point, owner in zip(self._points, self._owners):
            shares[owner] += (point - previous) % _SPACE or _SPACE
            previous = point
        return {replica: arc / _SPACE for replica, arc in shares.items()}

    def describe(self) -> dict[str, object]:
        """JSON-ready layout summary for ``/healthz``."""
        return {
            "replicas": sorted(self._replicas),
            "vnodes": self.vnodes,
            "points": len(self._points),
            "shares": {r: round(s, 4) for r, s in sorted(self.shares().items())},
        }

    def remapped_keys(self, other: "HashRing", keys: Sequence[str]) -> list[str]:
        """Keys whose owner differs between this ring and ``other``
        (test/diagnostic helper for the minimal-remapping property)."""
        return [k for k in keys if self.assign(k) != other.assign(k)]
