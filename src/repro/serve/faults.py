"""Deterministic fault injection for the sharded prediction service.

The [test]-archetype contract of the sharding PR: the router's failure
behaviour is *proved*, not assumed.  :class:`FaultInjector` gives the
test harness (and ``tests/serve/test_faults.py``) precise, repeatable
control over replica misbehaviour — no randomness, no timing dice:

* **kill** — handled at the deployment layer
  (:meth:`repro.serve.shard.ShardDeployment.kill_replica`): the
  replica's listener and every open connection are aborted mid-flight,
  exactly what a SIGKILL'd process looks like to its peers;
* **stall** — the replica's evaluation threads block on an event until
  :meth:`clear`/:meth:`release_all`; the replica still *accepts* work
  and answers ``/healthz`` (a sick-but-alive replica), so only
  per-request deadlines and failover protect callers;
* **slow** — every evaluation pays a fixed extra delay first (a
  degraded replica: correct answers, late);
* **fail** — every evaluation raises (a poisoned replica: connections
  live, answers broken).

Faults key on the **replica id** and reach the service through the
evaluation hook (:attr:`repro.serve.service.PredictionService.fault_hook`),
which runs on the worker pool threads — the event loop, and with it
``/healthz`` and cache hits, stay responsive, matching how a wedged
evaluation path behaves in production.

Always :meth:`release_all` in teardown: a stalled worker thread would
otherwise block interpreter exit (thread-pool threads are joined at
shutdown).  The deployment's ``stop()`` does this automatically for the
injector it was given.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable

__all__ = ["FaultInjector", "FaultError"]


class FaultError(RuntimeError):
    """Raised inside a replica whose evaluation was poisoned with
    :meth:`FaultInjector.fail` (surfaces to callers as an ``internal``
    error envelope — *not* a valid prediction)."""


@dataclass
class _Fault:
    """Active fault state for one replica."""

    kind: str  # "stall" | "slow" | "fail"
    delay_s: float = 0.0
    release: threading.Event = field(default_factory=threading.Event)
    #: How many evaluations hit this fault (test observability).
    triggered: int = 0


class FaultInjector:
    """Shared, thread-safe fault table consulted by replica eval hooks."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._faults: dict[str, _Fault] = {}
        #: Threads currently blocked in a stall (gauge, test hook).
        self.stalled_now = 0

    # -- fault control (test side) ---------------------------------------------
    def stall(self, replica_id: str) -> None:
        """Block every evaluation on ``replica_id`` until cleared."""
        self._set(replica_id, _Fault("stall"))

    def slow(self, replica_id: str, delay_s: float) -> None:
        """Delay every evaluation on ``replica_id`` by ``delay_s``."""
        if delay_s < 0:
            raise ValueError(f"delay_s must be >= 0, got {delay_s}")
        self._set(replica_id, _Fault("slow", delay_s=delay_s))

    def fail(self, replica_id: str) -> None:
        """Make every evaluation on ``replica_id`` raise
        :class:`FaultError`."""
        self._set(replica_id, _Fault("fail"))

    def _set(self, replica_id: str, fault: _Fault) -> None:
        with self._lock:
            old = self._faults.get(replica_id)
            if old is not None:
                old.release.set()
            self._faults[replica_id] = fault

    def clear(self, replica_id: str) -> None:
        """Remove ``replica_id``'s fault, releasing stalled threads."""
        with self._lock:
            fault = self._faults.pop(replica_id, None)
        if fault is not None:
            fault.release.set()

    def release_all(self) -> None:
        """Clear every fault (mandatory in teardown paths)."""
        with self._lock:
            faults = list(self._faults.values())
            self._faults.clear()
        for fault in faults:
            fault.release.set()

    def triggered(self, replica_id: str) -> int:
        """How many evaluations hit ``replica_id``'s current fault."""
        with self._lock:
            fault = self._faults.get(replica_id)
            return fault.triggered if fault is not None else 0

    def active(self) -> dict[str, str]:
        """``replica_id -> fault kind`` snapshot."""
        with self._lock:
            return {rid: f.kind for rid, f in self._faults.items()}

    # -- service side -----------------------------------------------------------
    def hook_for(self, replica_id: str) -> Callable[[], None]:
        """The evaluation hook to install on ``replica_id``'s service
        (:attr:`~repro.serve.service.PredictionService.fault_hook`)."""

        def hook() -> None:
            self._apply(replica_id)

        return hook

    def _apply(self, replica_id: str) -> None:
        with self._lock:
            fault = self._faults.get(replica_id)
            if fault is None:
                return
            fault.triggered += 1
        if fault.kind == "slow":
            time.sleep(fault.delay_s)
        elif fault.kind == "fail":
            raise FaultError(
                f"injected evaluation failure on replica {replica_id!r}"
            )
        elif fault.kind == "stall":
            with self._lock:
                self.stalled_now += 1
            try:
                fault.release.wait()
            finally:
                with self._lock:
                    self.stalled_now -= 1

    def as_dict(self) -> dict[str, Any]:
        with self._lock:
            return {
                "active": {rid: f.kind for rid, f in self._faults.items()},
                "stalled_now": self.stalled_now,
            }
