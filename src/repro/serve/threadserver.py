"""Run a prediction service on a background thread (tests, benches, CLI).

:class:`ServerThread` owns a private event loop on a daemon thread,
boots the service + HTTP front end there, and exposes the bound address
to the caller.  ``stop()`` performs the same graceful drain the CLI
server does on SIGINT.
"""

from __future__ import annotations

import asyncio
import threading
from typing import Any

from repro.serve.http import HttpServer
from repro.serve.service import PredictionService, ServiceConfig

__all__ = ["ServerThread"]


class ServerThread:
    """A fully-booted server on its own thread and event loop."""

    def __init__(
        self,
        config: ServiceConfig | None = None,
        *,
        service: Any = None,
        host: str = "127.0.0.1",
        port: int = 0,
        startup_timeout_s: float = 30.0,
    ) -> None:
        # Any object with the PredictionService protocol surface (async
        # start/stop, healthz/metrics/version/handle_predict, a
        # ``metrics`` registry) can be hosted — the shard router
        # (:mod:`repro.serve.shard`) rides the same harness.
        if service is not None and config is not None:
            raise ValueError("pass either a config or a prebuilt service")
        self.service = (
            service if service is not None else PredictionService(config)
        )
        self.server = HttpServer(self.service, host=host, port=port)
        self.startup_timeout_s = startup_timeout_s
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._ready = threading.Event()
        self._startup_error: BaseException | None = None

    @property
    def host(self) -> str:
        return self.server.host

    @property
    def port(self) -> int:
        return self.server.port

    # -- lifecycle ------------------------------------------------------------
    def start(self) -> tuple[str, int]:
        """Boot the loop, service and listener; returns the bound
        address."""
        if self._thread is not None:
            raise RuntimeError("server thread already started")
        self._thread = threading.Thread(
            target=self._run, name="repro-serve", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(self.startup_timeout_s):
            raise RuntimeError("server failed to start in time")
        if self._startup_error is not None:
            raise RuntimeError("server failed to start") from self._startup_error
        return self.host, self.port

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            loop.run_until_complete(self._boot())
        except BaseException as exc:  # startup failed: surface to caller
            self._startup_error = exc
            self._ready.set()
            loop.close()
            return
        self._ready.set()
        try:
            loop.run_forever()
        finally:
            # After a graceful stop there is nothing left; after kill()
            # the coalescer dispatchers are still pending — cancel them
            # locally (the crash already happened as far as peers are
            # concerned) so loop.close() does not warn.
            pending = asyncio.all_tasks(loop)
            for task in pending:
                task.cancel()
            if pending:
                loop.run_until_complete(
                    asyncio.wait(pending, timeout=5.0)
                )
            loop.close()

    async def _boot(self) -> None:
        await self.service.start()
        await self.server.start()

    def stop(self, *, drain: bool = True) -> None:
        """Graceful shutdown from any thread; joins the loop thread."""
        loop, thread = self._loop, self._thread
        if loop is None or thread is None:
            return
        future = asyncio.run_coroutine_threadsafe(
            self._shutdown(drain=drain), loop
        )
        future.result(timeout=60.0)
        loop.call_soon_threadsafe(loop.stop)
        thread.join(timeout=30.0)
        self._loop = None
        self._thread = None

    def kill(self) -> None:
        """Crash-stop from any thread: abort the listener and every live
        connection, then stop the loop — **no** drain, no service
        shutdown, exactly the wreckage a SIGKILL leaves behind.  The
        fault-injection harness uses this to prove failover; production
        code wants :meth:`stop`.
        """
        loop, thread = self._loop, self._thread
        if loop is None or thread is None:
            return
        asyncio.run_coroutine_threadsafe(self.server.abort(), loop).result(
            timeout=10.0
        )
        loop.call_soon_threadsafe(loop.stop)
        thread.join(timeout=10.0)
        self._loop = None
        self._thread = None

    async def _shutdown(self, *, drain: bool) -> None:
        await self.server.stop()
        await self.service.stop(drain=drain)

    def run_coroutine(self, coro: Any) -> Any:
        """Execute a coroutine on the server loop (test hook)."""
        assert self._loop is not None
        return asyncio.run_coroutine_threadsafe(coro, self._loop).result(
            timeout=60.0
        )

    def __enter__(self) -> "ServerThread":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
