"""Prediction service layer: coalescing what-if serving over repro.api.

The package splits along the request path:

* :mod:`repro.serve.cache` — TTL+LRU result cache keyed by the
  content-addressed run key;
* :mod:`repro.serve.coalescer` — admission queue + dispatchers that
  merge concurrent queries into dense batches;
* :mod:`repro.serve.service` — the protocol-independent service core
  (lifecycle, deadlines, metrics, endpoints);
* :mod:`repro.serve.http` — the zero-dependency asyncio HTTP front end;
* :mod:`repro.serve.client` — the stdlib client;
* :mod:`repro.serve.threadserver` — a background-thread server harness;
* :mod:`repro.serve.loadgen` — the closed-loop benchmark behind
  ``repro bench serve`` and the CI smoke.

See ``docs/SERVING.md`` for the wire protocol and capacity tuning.
"""

from repro.serve.cache import TTLCache
from repro.serve.client import ServeClient
from repro.serve.coalescer import Coalescer
from repro.serve.http import DEFAULT_PORT, HttpServer
from repro.serve.loadgen import measure_serve, run_smoke, write_bench_json
from repro.serve.service import PredictionService, ServiceConfig
from repro.serve.threadserver import ServerThread

__all__ = [
    "TTLCache",
    "Coalescer",
    "ServiceConfig",
    "PredictionService",
    "HttpServer",
    "DEFAULT_PORT",
    "ServeClient",
    "ServerThread",
    "measure_serve",
    "run_smoke",
    "write_bench_json",
]
