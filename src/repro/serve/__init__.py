"""Prediction service layer: coalescing what-if serving over repro.api.

The package splits along the request path:

* :mod:`repro.serve.cache` — TTL+LRU result cache keyed by the
  content-addressed run key;
* :mod:`repro.serve.coalescer` — admission queue + dispatchers that
  merge concurrent queries into dense batches;
* :mod:`repro.serve.service` — the protocol-independent service core
  (lifecycle, deadlines, metrics, endpoints);
* :mod:`repro.serve.http` — the zero-dependency asyncio HTTP front end;
* :mod:`repro.serve.client` — the stdlib client;
* :mod:`repro.serve.threadserver` — a background-thread server harness;
* :mod:`repro.serve.loadgen` — the closed-loop benchmark behind
  ``repro bench serve`` and the CI smoke;

and, for the sharded multi-replica deployment:

* :mod:`repro.serve.ring` — the consistent-hash ring over
  content-addressed run keys;
* :mod:`repro.serve.registry` — replica membership + health tracking;
* :mod:`repro.serve.shard` — the router, replica backends, deployment
  harness and routing-aware client;
* :mod:`repro.serve.faults` — deterministic fault injection for the
  test harness.

See ``docs/SERVING.md`` for the wire protocol, capacity tuning and the
sharded-deployment design.
"""

from repro.serve.cache import TTLCache
from repro.serve.client import ServeClient
from repro.serve.coalescer import Coalescer
from repro.serve.faults import FaultError, FaultInjector
from repro.serve.http import DEFAULT_PORT, HttpServer
from repro.serve.loadgen import (
    measure_serve,
    measure_serve_sharded,
    run_smoke,
    write_bench_json,
)
from repro.serve.registry import ReplicaInfo, ReplicaSet, ReplicaState
from repro.serve.ring import DEFAULT_VNODES, HashRing, stable_point
from repro.serve.service import PredictionService, ServiceConfig
from repro.serve.shard import (
    ProcessReplica,
    ShardClient,
    ShardConfig,
    ShardDeployment,
    ShardRouter,
    ThreadReplica,
)
from repro.serve.threadserver import ServerThread

__all__ = [
    "TTLCache",
    "Coalescer",
    "ServiceConfig",
    "PredictionService",
    "HttpServer",
    "DEFAULT_PORT",
    "ServeClient",
    "ServerThread",
    "measure_serve",
    "measure_serve_sharded",
    "run_smoke",
    "write_bench_json",
    "HashRing",
    "DEFAULT_VNODES",
    "stable_point",
    "ReplicaInfo",
    "ReplicaSet",
    "ReplicaState",
    "FaultError",
    "FaultInjector",
    "ShardConfig",
    "ShardRouter",
    "ShardClient",
    "ShardDeployment",
    "ThreadReplica",
    "ProcessReplica",
]
