"""Zero-dependency stdlib client for the prediction service.

Speaks the same :mod:`repro.api` contract as the server: queries go out
as ``to_dict`` JSON, results come back as
:class:`~repro.api.types.PredictionResult` objects, and error envelopes
are rehydrated into the typed :mod:`repro.api.errors` exceptions
(:class:`~repro.api.errors.CapacityError` for a 429,
:class:`~repro.api.errors.DeadlineExceededError` for a 504, ...).

The transport is a deliberately small HTTP/1.1 implementation over a
raw keep-alive socket rather than :mod:`http.client` — the service
always answers with a ``Content-Length`` JSON body, so the general
parser (and its per-response header-object construction) would roughly
double the client-side cost per call, which matters for the closed-loop
benchmark driving thousands of requests.  A dropped keep-alive socket
is retried transparently once.  One client drives one connection — use
one client per thread.
"""

from __future__ import annotations

import json
import socket
from typing import Any, Mapping, Sequence

from repro.api.errors import ApiError, ValidationError, error_from_info
from repro.api.plan import PlanRequest, PlanResult
from repro.api.types import (
    SCHEMA_VERSION,
    SUPPORTED_SCHEMA_VERSIONS,
    ErrorInfo,
    PredictionResult,
    Query,
    QueryGrid,
)

__all__ = ["ServeClient"]

_MAX_HEADER_BYTES = 64 * 1024


class ServeClient:
    """Thin persistent-connection client for one service endpoint."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8713,
        *,
        timeout: float = 60.0,
        schema_version: int | None = None,
    ) -> None:
        """``schema_version`` pins the envelope version this client
        stamps on requests (downlevel interop / negotiation tests);
        ``None`` speaks the current version.  Unsupported pins fail
        here, not on the wire."""
        self.host = host
        self.port = port
        self.timeout = timeout
        if schema_version is None:
            schema_version = SCHEMA_VERSION
        elif schema_version not in SUPPORTED_SCHEMA_VERSIONS:
            raise ValidationError(
                f"cannot pin schema_version={schema_version!r}; this "
                f"client supports {SUPPORTED_SCHEMA_VERSIONS}"
            )
        self.schema_version = schema_version
        self._sock: socket.socket | None = None
        self._reader: Any = None  # buffered binary file over the socket

    # -- transport ------------------------------------------------------------
    def _connect(self) -> None:
        if self._sock is None:
            self._sock = socket.create_connection(
                (self.host, self.port), timeout=self.timeout
            )
            self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            self._reader = self._sock.makefile("rb")

    def set_timeout(self, timeout: float) -> None:
        """Adjust the socket timeout, including on a live connection —
        the shard router re-budgets each failover attempt from the
        request's remaining deadline."""
        self.timeout = timeout
        if self._sock is not None:
            self._sock.settimeout(timeout)

    def close(self) -> None:
        if self._reader is not None:
            self._reader.close()
            self._reader = None
        if self._sock is not None:
            self._sock.close()
            self._sock = None

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _round_trip(self, request: bytes) -> tuple[int, bytes]:
        """Send one serialized request, parse one response."""
        self._connect()
        assert self._sock is not None
        self._sock.sendall(request)
        status_line = self._reader.readline(_MAX_HEADER_BYTES)
        if not status_line:
            raise ConnectionError("server closed the connection")
        parts = status_line.split(None, 2)
        if len(parts) < 2 or not parts[0].startswith(b"HTTP/1."):
            raise ApiError(f"malformed status line {status_line!r}")
        status = int(parts[1])
        length = 0
        while True:
            line = self._reader.readline(_MAX_HEADER_BYTES)
            if line in (b"\r\n", b"\n", b""):
                break
            name, sep, value = line.partition(b":")
            if sep and name.strip().lower() == b"content-length":
                length = int(value.strip())
        body = self._reader.read(length) if length else b""
        if length and len(body) != length:
            raise ConnectionError("server closed mid-body")
        return status, body

    def request(
        self,
        method: str,
        path: str,
        payload: Mapping[str, Any] | None = None,
    ) -> tuple[int, dict[str, Any]]:
        """One round trip; returns ``(status, decoded_body)``.

        Retries exactly once on a dropped keep-alive socket (the server
        may close an idle connection between requests).
        """
        body = (
            b""
            if payload is None
            else json.dumps(payload, sort_keys=True).encode("utf-8")
        )
        request = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {self.host}:{self.port}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: keep-alive\r\n"
            f"\r\n"
        ).encode("latin-1") + body
        for attempt in (0, 1):
            try:
                status, raw = self._round_trip(request)
                break
            except socket.timeout:
                # A timeout is the server being slow, not the socket
                # being stale — retrying would double the wait against a
                # stalled replica; let the caller's failover policy act.
                self.close()
                raise
            except (ConnectionError, OSError):
                self.close()
                if attempt:
                    raise
        try:
            decoded = json.loads(raw.decode("utf-8")) if raw else {}
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ApiError(
                f"service returned non-JSON body (status {status}): {exc}"
            ) from exc
        return status, decoded

    def _call(
        self,
        method: str,
        path: str,
        payload: Mapping[str, Any] | None = None,
    ) -> dict[str, Any]:
        """A round trip that raises the typed error for error envelopes."""
        status, decoded = self.request(method, path, payload)
        error = decoded.get("error") if isinstance(decoded, Mapping) else None
        if error is not None:
            raise error_from_info(ErrorInfo.from_dict(error))
        if status >= 400:
            raise ApiError(f"HTTP {status} from {path} without error envelope")
        return decoded

    # -- endpoints --------------------------------------------------------------
    def healthz(self) -> dict[str, Any]:
        """The health document (raises nothing on 503 — inspect
        ``status``)."""
        _, decoded = self.request("GET", "/healthz")
        return decoded

    def metrics(self) -> dict[str, Any]:
        return self._call("GET", "/metrics")

    def version(self) -> dict[str, Any]:
        return self._call("GET", "/version")

    # -- prediction --------------------------------------------------------------
    def _predict_call(
        self, payload: dict[str, Any], deadline_s: float | None
    ) -> list[PredictionResult]:
        payload["schema_version"] = self.schema_version
        if deadline_s is not None:
            payload["deadline_s"] = deadline_s
        envelope = self._call("POST", "/v1/predict", payload)
        results = envelope.get("results")
        if not isinstance(results, list):
            raise ValidationError("response envelope missing 'results'")
        return [PredictionResult.from_dict(r) for r in results]

    def predict(
        self, query: Query, *, deadline_s: float | None = None
    ) -> PredictionResult:
        """Answer one query."""
        return self._predict_call({"query": query.to_dict()}, deadline_s)[0]

    def predict_many(
        self, queries: Sequence[Query], *, deadline_s: float | None = None
    ) -> list[PredictionResult]:
        """Answer a list of queries (results in submission order)."""
        return self._predict_call(
            {"queries": [q.to_dict() for q in queries]}, deadline_s
        )

    def predict_grid(
        self, grid: QueryGrid, *, deadline_s: float | None = None
    ) -> list[PredictionResult]:
        """Answer a dense grid (workload-major order)."""
        return self._predict_call({"grid": grid.to_dict()}, deadline_s)

    # -- planning ----------------------------------------------------------------
    def plan(
        self, request: PlanRequest, *, deadline_s: float | None = None
    ) -> PlanResult:
        """Solve one capacity plan on the service (``POST /v1/plan``)."""
        payload: dict[str, Any] = {
            "plan": request.to_dict(),
            "schema_version": self.schema_version,
        }
        if deadline_s is not None:
            payload["deadline_s"] = deadline_s
        envelope = self._call("POST", "/v1/plan", payload)
        plan = envelope.get("plan")
        if not isinstance(plan, Mapping):
            raise ValidationError("response envelope missing 'plan'")
        return PlanResult.from_dict(plan)
