"""The fleet-scale capacity planner.

Given a declarative traffic mix and a machine pool
(:class:`~repro.api.plan.PlanRequest`), the planner:

1. **fans out** every (item, machine, config) candidate into queries
   and evaluates them as dense per-machine batches through the
   :class:`~repro.api.facade.Predictor`'s executors — literally the
   :meth:`~repro.api.facade.Predictor.predict_many` path, so each
   candidate's prediction is bit-identical to a direct
   :meth:`~repro.api.facade.Predictor.predict` of the same query and
   shares the run cache and the persistent table cache (a prewarmed
   deployment plans with **zero** table builds);
2. **prices** each candidate: its busy-node load by Little's law
   (``weight * time_s``) and its energy per arrival through
   :class:`~repro.engine.energy.EnergyModel`;
3. **solves** the placement: deterministic greedy best-fit-decreasing
   (hardest items first) followed by a bounded best-improvement local
   search, minimizing aggregate runtime load or aggregate energy under
   the pool's node-count capacity constraints;
4. **validates** the answer against the plan invariants
   (:mod:`repro.plan.invariants`) before returning it.

Candidates a machine cannot run at all — an unsupported memory mode,
a thread count over the machine's limit, a footprint the model calls
infeasible (the paper's Fig. 4 missing bars) — are silently excluded;
an item left with *no* candidate anywhere raises
:class:`~repro.api.errors.InfeasiblePlanError`, as does a mix whose
loads cannot be packed into the pool.

Everything is deterministic: no randomness, no wall-clock inputs, and
stable tie-breaking (item order, then machine and config names), so
the same request always produces the same
:class:`~repro.api.plan.PlanResult` — the property the CLI-vs-service
identity test pins.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.api.errors import InfeasiblePlanError, PlanError, ValidationError
from repro.api.facade import Predictor, sized_workload
from repro.api.plan import (
    MachineLoad,
    PlanAssignment,
    PlanRequest,
    PlanResult,
)
from repro.api.types import PredictionResult, Query
from repro.engine.energy import EnergyModel, EnergyParameters
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.plan.invariants import check_plan

__all__ = ["CapacityPlanner", "plan_request"]

#: Relative capacity slack for float sums of loads.
_REL_TOL = 1e-9

#: Hard ceiling on local-search improvement rounds (each round applies
#: the single best improving move; convergence is usually a handful).
_MAX_SEARCH_ROUNDS = 256


@dataclass(frozen=True)
class _Candidate:
    """One evaluated (item, machine, config) placement option."""

    item_index: int
    query: Query
    result: PredictionResult
    load_nodes: float
    energy_j: float
    cost: float

    @property
    def machine(self) -> str:
        return self.query.machine

    @property
    def config(self) -> str:
        return self.query.config


class CapacityPlanner:
    """Solves :class:`PlanRequest` specs over a shared predictor.

    Like the predictor it wraps, a planner is **not** thread-safe; the
    serving layer builds one per worker thread on top of that thread's
    predictor (so plans share the service's executors and caches).
    """

    def __init__(
        self,
        predictor: Predictor | None = None,
        *,
        energy_params: EnergyParameters | None = None,
    ) -> None:
        self.predictor = predictor if predictor is not None else Predictor()
        self.energy_model = EnergyModel(energy_params)

    # -- evaluation -----------------------------------------------------------
    def _candidates(self, request: PlanRequest) -> list[list[_Candidate]]:
        """Per-item feasible candidates, evaluated as dense per-machine
        batches (the bit-identity path)."""
        # Machine-independent problems (unknown workload, a size the
        # constructor rejects) are typed request errors, not "infeasible
        # everywhere" — surface them before any fan-out.
        for item in request.mix:
            sized_workload(item.workload, item.size_gb)
        pending: list[tuple[int, Query]] = []
        for index, item in enumerate(request.mix):
            for entry in request.pool:
                for config in entry.effective_configs():
                    pending.append(
                        (
                            index,
                            Query(
                                workload=item.workload,
                                size_gb=item.size_gb,
                                config=config,
                                num_threads=item.num_threads,
                                machine=entry.machine,
                            ),
                        )
                    )
        kept: list[tuple[int, Query]] = []
        cells = []
        for index, query in pending:
            try:
                cell = self.predictor.resolve(query)
            except ValidationError:
                # Machine-dependent rejection (unsupported memory mode,
                # thread count over the machine's limit): this machine
                # simply offers no such candidate.
                continue
            kept.append((index, query))
            cells.append(cell)
        by_machine: dict[str, list[int]] = {}
        for i, (_, query) in enumerate(kept):
            by_machine.setdefault(query.machine, []).append(i)
        candidates_flat: list[_Candidate] = []
        for machine, indices in by_machine.items():
            records = self.predictor.executor(machine).run_cells(
                [cells[i] for i in indices]
            )
            for i, record in zip(indices, records):
                item_index, query = kept[i]
                result = PredictionResult.from_record(query, record)
                if result.error is not None or result.time_ns is None:
                    continue  # modelled infeasibility: not a candidate
                item = request.mix[item_index]
                load = item.weight * result.time_ns * 1e-9
                estimate = self.energy_model.estimate_record(
                    sized_workload(query.workload, query.size_gb), record
                )
                assert estimate is not None  # feasible => run_result set
                cost = (
                    item.weight * estimate.total_j
                    if request.objective == "energy"
                    else load
                )
                candidates_flat.append(
                    _Candidate(
                        item_index=item_index,
                        query=query,
                        result=result,
                        load_nodes=load,
                        energy_j=estimate.total_j,
                        cost=cost,
                    )
                )
        per_item: list[list[_Candidate]] = [[] for _ in request.mix]
        for candidate in candidates_flat:
            per_item[candidate.item_index].append(candidate)
        # Deterministic candidate order regardless of batch scheduling.
        for options in per_item:
            options.sort(key=lambda c: (c.cost, c.machine, c.config))
        return per_item

    # -- solving --------------------------------------------------------------
    @staticmethod
    def _fits(load: float, remaining: float) -> bool:
        return load <= remaining + abs(remaining) * _REL_TOL + 1e-12

    def _greedy(
        self,
        request: PlanRequest,
        per_item: Sequence[Sequence[_Candidate]],
    ) -> list[_Candidate]:
        missing = [
            request.mix[i].workload
            for i, options in enumerate(per_item)
            if not options
        ]
        if missing:
            raise InfeasiblePlanError(
                "no feasible (machine, config) candidate for mix item(s): "
                + ", ".join(missing),
                details={"items": missing},
            )
        remaining = {entry.machine: float(entry.nodes) for entry in request.pool}
        # Best-fit decreasing: place the hardest items (largest best-case
        # cost) first, while capacity is still fungible.
        order = sorted(
            range(len(per_item)),
            key=lambda i: (-per_item[i][0].cost, i),
        )
        chosen: list[_Candidate | None] = [None] * len(per_item)
        for index in order:
            placed = None
            for candidate in per_item[index]:
                if self._fits(candidate.load_nodes, remaining[candidate.machine]):
                    placed = candidate
                    break
            if placed is None:
                item = request.mix[index]
                raise InfeasiblePlanError(
                    f"mix item {index} ({item.workload}, "
                    f"{item.size_gb:g} GB, weight {item.weight:g}) does not "
                    "fit the remaining node capacity on any machine",
                    details={
                        "item": item.to_dict(),
                        "remaining_nodes": dict(remaining),
                    },
                )
            chosen[index] = placed
            remaining[placed.machine] -= placed.load_nodes
        assert all(c is not None for c in chosen)
        return chosen  # type: ignore[return-value]

    def _local_search(
        self,
        request: PlanRequest,
        per_item: Sequence[Sequence[_Candidate]],
        chosen: list[_Candidate],
    ) -> list[_Candidate]:
        """Bounded best-improvement search: repeatedly apply the single
        move (reassign one item to another candidate) that most reduces
        the objective while staying capacity-feasible."""
        remaining = {entry.machine: float(entry.nodes) for entry in request.pool}
        for candidate in chosen:
            remaining[candidate.machine] -= candidate.load_nodes
        for _ in range(_MAX_SEARCH_ROUNDS):
            best_delta = 0.0
            best_move: tuple[int, _Candidate] | None = None
            for index, current in enumerate(chosen):
                for candidate in per_item[index]:
                    if candidate is current:
                        continue
                    delta = candidate.cost - current.cost
                    if delta >= best_delta:
                        continue
                    free = remaining[candidate.machine]
                    if candidate.machine == current.machine:
                        free += current.load_nodes
                    if not self._fits(candidate.load_nodes, free):
                        continue
                    best_delta = delta
                    best_move = (index, candidate)
            if best_move is None:
                return chosen
            index, candidate = best_move
            current = chosen[index]
            remaining[current.machine] += current.load_nodes
            remaining[candidate.machine] -= candidate.load_nodes
            chosen[index] = candidate
        return chosen

    # -- entry point ----------------------------------------------------------
    def plan(self, request: PlanRequest) -> PlanResult:
        """Solve one request; raises the typed :mod:`repro.api.errors`
        on malformed or infeasible specs."""
        tags = {
            "items": len(request.mix),
            "pool": len(request.pool),
            "objective": request.objective,
        }
        with obs_trace.span("plan.solve", tags=tags):
            per_item = self._candidates(request)
            obs_metrics.add(
                "plan.candidates",
                float(sum(len(options) for options in per_item)),
            )
            chosen = self._greedy(request, per_item)
            chosen = self._local_search(request, per_item, chosen)
            assignments = tuple(
                PlanAssignment(
                    item=request.mix[candidate.item_index],
                    machine=candidate.machine,
                    config=candidate.config,
                    time_ns=candidate.result.time_ns,  # type: ignore[arg-type]
                    metric=candidate.result.metric,  # type: ignore[arg-type]
                    metric_name=candidate.result.metric_name,
                    metric_unit=candidate.result.metric_unit,
                    load_nodes=candidate.load_nodes,
                    energy_j=candidate.energy_j,
                )
                for candidate in chosen
            )
            totals = {entry.machine: 0.0 for entry in request.pool}
            for assignment in assignments:
                totals[assignment.machine] += assignment.load_nodes
            loads = tuple(
                MachineLoad(
                    machine=entry.machine,
                    nodes=entry.nodes,
                    load_nodes=totals[entry.machine],
                )
                for entry in request.pool
            )
            result = PlanResult(
                assignments=assignments,
                objective=request.objective,
                objective_value=sum(c.cost for c in chosen),
                loads=loads,
            )
            violations = check_plan(request, result)
            if violations:  # pragma: no cover - solver bug guard
                raise PlanError(
                    "solver produced an invalid plan: "
                    + "; ".join(violations),
                    details={"violations": violations},
                )
            obs_metrics.add("plan.solved")
            obs_metrics.add("plan.assignments", float(len(assignments)))
        return result


def plan_request(
    request: PlanRequest, *, predictor: Predictor | None = None
) -> PlanResult:
    """One-shot convenience: solve ``request`` on a fresh (or given)
    predictor."""
    return CapacityPlanner(predictor).plan(request)
