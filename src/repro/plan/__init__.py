"""`repro.plan` — the fleet-scale capacity planner.

Solves declarative traffic-mix specs (:class:`~repro.api.plan.PlanRequest`)
into placement + memory-mode assignments over a machine pool, pricing
every candidate through the shared :mod:`repro.api` prediction engine.
Exposed as :class:`CapacityPlanner` here, as the ``repro plan`` CLI
subcommand, and as ``POST /v1/plan`` on the serving layer.
"""

from repro.plan.invariants import (
    PLAN_REGISTRY,
    PlanInvariant,
    check_plan,
    plan_invariant,
)
from repro.plan.planner import CapacityPlanner, plan_request

__all__ = [
    "CapacityPlanner",
    "plan_request",
    "PlanInvariant",
    "PLAN_REGISTRY",
    "plan_invariant",
    "check_plan",
]
