"""Planner latency benchmark (``repro bench plan``).

Measures how long :class:`~repro.plan.planner.CapacityPlanner` takes to
solve deterministic synthetic fleets of growing size (default 10, 100
and 1000 mix items) and records the curve into ``BENCH_plan.json``
through the same history-carrying writer the serve benchmarks use, so
re-runs accumulate a trajectory instead of overwriting it.

Honesty rules:

* every fleet size gets a **fresh** predictor — otherwise the run cache
  warmed by fleet N makes fleet 10N artificially fast;
* the synthetic mix is a pure function of the item index (no
  randomness), so the measured problem is identical across runs and
  machines;
* if a fleet does not fit the starting pool, the pool's node counts are
  escalated deterministically until it does, and only the successful
  solve is timed (the escalation count is recorded).
"""

from __future__ import annotations

import time
from typing import Any, Sequence

from repro.api.errors import InfeasiblePlanError
from repro.api.facade import Predictor
from repro.api.plan import PlanRequest, PoolEntry, TrafficItem
from repro.plan.planner import CapacityPlanner

__all__ = ["DEFAULT_FLEET_SIZES", "synthetic_request", "measure_plan"]

DEFAULT_FLEET_SIZES = (10, 100, 1000)

#: The deterministic item template cycle: (workload, size_gb, threads).
_ITEM_CYCLE = (
    ("dgemm", 12.0, 64),
    ("minife", 20.0, 64),
    ("gups", 8.0, 32),
    ("graph500", 16.0, 64),
    ("xsbench", 24.0, 128),
    ("minife", 48.0, 64),
    ("dgemm", 30.0, 128),
    ("gups", 4.0, 16),
)

_POOL_MACHINES = ("knl7210", "xeonmax9480")

#: Pool escalation: multiply node counts by this until the mix fits.
_ESCALATION = 8
_MAX_ESCALATIONS = 8


def synthetic_request(
    fleet_size: int,
    *,
    nodes_per_machine: int,
    objective: str = "runtime",
) -> PlanRequest:
    """A deterministic ``fleet_size``-item mix over the two-machine
    benchmark pool."""
    mix = []
    for i in range(fleet_size):
        workload, size_gb, threads = _ITEM_CYCLE[i % len(_ITEM_CYCLE)]
        mix.append(
            TrafficItem(
                workload=workload,
                size_gb=size_gb,
                num_threads=threads,
                # Per-item arrival weight in (0.0005, 0.004]: spread so
                # the packing is non-trivial but bounded.
                weight=0.0005 * (1 + i % 8),
            )
        )
    pool = [
        PoolEntry(machine=machine, nodes=nodes_per_machine)
        for machine in _POOL_MACHINES
    ]
    return PlanRequest(mix=tuple(mix), pool=tuple(pool), objective=objective)


def _solve_timed(
    planner: CapacityPlanner, fleet_size: int
) -> dict[str, Any]:
    """Solve one synthetic fleet, escalating the pool until feasible;
    time only the successful solve."""
    nodes = max(4, fleet_size // 4)
    for escalations in range(_MAX_ESCALATIONS):
        request = synthetic_request(fleet_size, nodes_per_machine=nodes)
        try:
            started = time.perf_counter()
            result = planner.plan(request)
            elapsed = time.perf_counter() - started
        except InfeasiblePlanError:
            nodes *= _ESCALATION
            continue
        return {
            "latency_ms": elapsed * 1e3,
            "nodes_per_machine": nodes,
            "escalations": escalations,
            "candidates": request.candidate_count(),
            "objective_value": result.objective_value,
            "assignments": len(result.assignments),
        }
    raise InfeasiblePlanError(
        f"synthetic fleet of {fleet_size} never became feasible after "
        f"{_MAX_ESCALATIONS} pool escalations"
    )


def measure_plan(
    fleet_sizes: Sequence[int] = DEFAULT_FLEET_SIZES,
    *,
    table_cache_dir: Any = None,
) -> dict[str, Any]:
    """The ``repro bench plan`` document: planner latency vs fleet size."""
    latency_ms: dict[str, float] = {}
    details: dict[str, Any] = {}
    for fleet_size in fleet_sizes:
        predictor = Predictor(table_cache_dir=table_cache_dir)
        try:
            row = _solve_timed(CapacityPlanner(predictor), fleet_size)
        finally:
            predictor.close()
        latency_ms[str(fleet_size)] = row["latency_ms"]
        details[str(fleet_size)] = row
    return {
        "benchmark": "plan",
        "fleet_sizes": list(fleet_sizes),
        "pool_machines": list(_POOL_MACHINES),
        "planner": {
            "latency_ms": latency_ms,
            "details": details,
        },
        "note": (
            "Latency of CapacityPlanner.plan on deterministic synthetic "
            "mixes; each fleet size runs on a fresh predictor so the run "
            "cache never flatters larger fleets.  Candidate evaluation "
            "dominates: latency scales with candidate_count = items x "
            "sum(configs per pool entry)."
        ),
    }
