"""Declarative invariants over solved capacity plans.

The same discipline as the physical-law registry in
:mod:`repro.checks.invariants` — named checks with descriptions,
evaluated over a (request, result) pair — but kept in a **plan-local**
registry: the ``repro.checks`` registry is coupled to run/sweep/exhibit
metric contexts (and its coverage test asserts every registered
invariant is exercised by those contexts), while these checks take wire
objects.

Every :meth:`repro.plan.planner.CapacityPlanner.plan` answer passes
:func:`check_plan` before it is returned; the tamper tests construct
deliberately broken results and assert each invariant catches its
violation class.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable

from repro.api.plan import PlanRequest, PlanResult

__all__ = [
    "PlanInvariant",
    "PLAN_REGISTRY",
    "plan_invariant",
    "check_plan",
]

#: Relative slack for floating-point comparisons (loads and objective
#: values are sums of products the checker recomputes independently).
_REL_TOL = 1e-9


@dataclass(frozen=True)
class PlanInvariant:
    """One registered plan check: metadata plus the evaluating
    function, which returns a list of violation messages (empty =
    holds)."""

    name: str
    description: str
    fn: Callable[[PlanRequest, PlanResult], "list[str]"] = field(repr=False)


#: name -> PlanInvariant, in registration order.
PLAN_REGISTRY: dict[str, PlanInvariant] = {}


def plan_invariant(name: str, *, description: str) -> Callable:
    """Register a plan-checking function under ``name``."""

    def register(fn: Callable) -> Callable:
        if name in PLAN_REGISTRY:
            raise ValueError(f"plan invariant {name!r} already registered")
        PLAN_REGISTRY[name] = PlanInvariant(
            name=name, description=description, fn=fn
        )
        return fn

    return register


def check_plan(request: PlanRequest, result: PlanResult) -> list[str]:
    """Evaluate every registered invariant; returns all violations."""
    violations: list[str] = []
    for inv in PLAN_REGISTRY.values():
        for message in inv.fn(request, result):
            violations.append(f"[{inv.name}] {message}")
    return violations


def _close(a: float, b: float) -> bool:
    return math.isclose(a, b, rel_tol=_REL_TOL, abs_tol=1e-12)


@plan_invariant(
    "plan.weight_conserved",
    description=(
        "every mix item is assigned exactly once, in mix order, with "
        "its weight intact — no traffic is dropped, duplicated or "
        "reweighted by the solver"
    ),
)
def _weight_conserved(request: PlanRequest, result: PlanResult) -> list[str]:
    violations: list[str] = []
    if len(result.assignments) != len(request.mix):
        violations.append(
            f"{len(request.mix)} mix items but "
            f"{len(result.assignments)} assignments"
        )
        return violations
    for i, (item, assignment) in enumerate(
        zip(request.mix, result.assignments)
    ):
        if assignment.item != item:
            violations.append(
                f"assignment {i} carries {assignment.item}, mix has {item}"
            )
    return violations


@plan_invariant(
    "plan.assignments_valid",
    description=(
        "every assignment places its item on a pool machine, under a "
        "config that pool entry allows, with load_nodes == "
        "weight * time_s (Little's law)"
    ),
)
def _assignments_valid(request: PlanRequest, result: PlanResult) -> list[str]:
    violations: list[str] = []
    pool = {entry.machine: entry for entry in request.pool}
    for i, assignment in enumerate(result.assignments):
        entry = pool.get(assignment.machine)
        if entry is None:
            violations.append(
                f"assignment {i} on {assignment.machine!r}, not in the pool"
            )
            continue
        if assignment.config not in entry.effective_configs():
            violations.append(
                f"assignment {i} uses config {assignment.config!r}, which "
                f"{assignment.machine} does not allow "
                f"({', '.join(entry.effective_configs())})"
            )
        expected = assignment.item.weight * assignment.time_ns * 1e-9
        if not _close(assignment.load_nodes, expected):
            violations.append(
                f"assignment {i} load_nodes {assignment.load_nodes!r} != "
                f"weight * time_s = {expected!r}"
            )
    return violations


@plan_invariant(
    "plan.capacity_feasible",
    description=(
        "per machine, the sum of assigned busy-node loads fits the "
        "pool's node count, and the reported MachineLoad rows match "
        "the assignments"
    ),
)
def _capacity_feasible(request: PlanRequest, result: PlanResult) -> list[str]:
    violations: list[str] = []
    pool = {entry.machine: entry for entry in request.pool}
    totals = {entry.machine: 0.0 for entry in request.pool}
    for assignment in result.assignments:
        if assignment.machine in totals:
            totals[assignment.machine] += assignment.load_nodes
    reported = {load.machine: load for load in result.loads}
    if set(reported) != set(pool):
        violations.append(
            f"loads cover {sorted(reported)}, pool is {sorted(pool)}"
        )
    for machine, total in totals.items():
        entry = pool[machine]
        if total > entry.nodes * (1.0 + _REL_TOL):
            violations.append(
                f"{machine} is over capacity: load {total!r} > "
                f"{entry.nodes} nodes"
            )
        load = reported.get(machine)
        if load is None:
            continue
        if load.nodes != entry.nodes:
            violations.append(
                f"{machine} load row reports {load.nodes} nodes, pool has "
                f"{entry.nodes}"
            )
        if not _close(load.load_nodes, total):
            violations.append(
                f"{machine} load row reports {load.load_nodes!r}, "
                f"assignments sum to {total!r}"
            )
    return violations


@plan_invariant(
    "plan.objective_consistent",
    description=(
        "the reported objective value equals the objective recomputed "
        "from the assignments (runtime: sum of weight * time_s; "
        "energy: sum of weight * energy_j)"
    ),
)
def _objective_consistent(
    request: PlanRequest, result: PlanResult
) -> list[str]:
    if result.objective != request.objective:
        return [
            f"result objective {result.objective!r} != requested "
            f"{request.objective!r}"
        ]
    if result.objective == "energy":
        recomputed = sum(
            a.item.weight * a.energy_j for a in result.assignments
        )
    else:
        recomputed = sum(a.load_nodes for a in result.assignments)
    if not _close(result.objective_value, recomputed):
        return [
            f"objective_value {result.objective_value!r} != recomputed "
            f"{recomputed!r}"
        ]
    return []
