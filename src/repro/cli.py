"""Command-line interface: regenerate any paper exhibit.

Usage::

    knl-hybridmem list
    knl-hybridmem fig2
    knl-hybridmem --jobs 4 --cache-dir ~/.cache/knl-hybridmem all
    knl-hybridmem advisor minife --size-gb 7.2 --threads 128
    knl-hybridmem describe
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

from repro.core.advisor import PlacementAdvisor
from repro.core.executor import ExecutionStrategy, SweepExecutor
from repro.core.runner import ExperimentRunner
from repro.figures import EXHIBITS
from repro.memory.modes import MCDRAMConfig
from repro.runtime.simos import SimulatedOS
from repro.workloads.registry import FROM_GB


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="knl-hybridmem",
        description=(
            "Reproduce the tables and figures of 'Exploring the Performance "
            "Benefit of Hybrid Memory System on HPC Environments'"
        ),
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker count for sweep execution (default 1: serial)",
    )
    parser.add_argument(
        "--executor",
        choices=[s.value for s in ExecutionStrategy],
        default=None,
        help="sweep strategy (default: serial, or threads when --jobs > 1)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="persist run records as JSON under DIR and reuse them",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available exhibits")
    sub.add_parser("all", help="generate every exhibit")
    sub.add_parser("describe", help="describe the modelled node")
    for exhibit_id in EXHIBITS:
        sub.add_parser(exhibit_id, help=f"generate {exhibit_id}")
    advisor = sub.add_parser(
        "advisor", help="recommend a memory configuration for a workload"
    )
    advisor.add_argument("workload", choices=sorted(FROM_GB))
    advisor.add_argument("--size-gb", type=float, required=True)
    advisor.add_argument("--threads", type=int, default=64)
    decompose = sub.add_parser(
        "decompose", help="size a multi-node decomposition (Section IV-C)"
    )
    decompose.add_argument("workload", choices=sorted(FROM_GB))
    decompose.add_argument("--total-gb", type=float, required=True)
    decompose.add_argument(
        "--nodes", type=int, nargs="+", default=[2, 4, 8, 12, 16]
    )
    energy = sub.add_parser(
        "energy", help="time/energy/EDP comparison across configurations"
    )
    energy.add_argument("workload", choices=sorted(FROM_GB))
    energy.add_argument("--size-gb", type=float, required=True)
    energy.add_argument("--threads", type=int, default=64)
    optimize = sub.add_parser(
        "optimize",
        help="per-structure DRAM/HBM placement search (future-work study)",
    )
    optimize.add_argument("workload", choices=["minife", "graph500"])
    optimize.add_argument("--size-gb", type=float, required=True)
    optimize.add_argument("--threads", type=int, default=64)
    sub.add_parser("report", help="full study report (all exhibits)")
    return parser


def _build_executor(args: argparse.Namespace) -> SweepExecutor:
    return SweepExecutor(
        ExperimentRunner(),
        jobs=args.jobs,
        strategy=args.executor,
        cache_dir=args.cache_dir,
    )


def _report_stats(executor: SweepExecutor) -> None:
    """Cache/parallelism accounting on stderr (stdout carries exhibits)."""
    if executor.jobs > 1 or executor.cache.cache_dir is not None:
        print(f"[executor] {executor.stats().describe()}", file=sys.stderr)


def main(argv: Sequence[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    command = args.command
    if command == "list":
        for exhibit_id in EXHIBITS:
            print(exhibit_id)
        return 0
    if command == "describe":
        print(SimulatedOS(MCDRAMConfig.flat()).describe())
        return 0
    if command == "advisor":
        workload = FROM_GB[args.workload](args.size_gb)
        recommendation = PlacementAdvisor().recommend(workload, args.threads)
        print(recommendation.describe())
        return 0
    if command == "decompose":
        from repro.cluster.multinode import MultiNodeModel

        model = MultiNodeModel()
        print(
            f"{args.workload}: {args.total_gb:g} GB total over N nodes "
            f"(per-node compute + Aries communication)"
        )
        for nodes in args.nodes:
            try:
                result = model.run(
                    FROM_GB[args.workload], args.total_gb, nodes
                )
            except RuntimeError as exc:
                print(f"  {nodes:>3} nodes: {exc}")
                continue
            print(
                f"  {nodes:>3} nodes: {result.per_node_gb:6.1f} GB/node -> "
                f"{result.config.value:<11} aggregate "
                f"{result.aggregate_metric:.4g} "
                f"(efficiency {result.parallel_efficiency:.1%})"
            )
        return 0
    if command == "energy":
        from repro.core.report import energy_comparison_by_name

        print(
            energy_comparison_by_name(
                args.workload, args.size_gb, num_threads=args.threads
            ).render()
        )
        return 0
    if command == "optimize":
        from repro.core.configs import ConfigName
        from repro.core.placement_optimizer import PlacementOptimizer

        workload = FROM_GB[args.workload](args.size_gb)
        with _build_executor(args) as executor:
            print("coarse configurations:")
            for config in ConfigName.paper_trio():
                record = executor.run(workload, config, args.threads)
                value = "-" if record.metric is None else f"{record.metric:.4g}"
                print(f"  {config.value:<12} {value}")
            _report_stats(executor)
        best = PlacementOptimizer().optimize(workload, num_threads=args.threads)
        print(f"optimized per-structure placement: {best.metric:.4g}")
        print(f"  {best.describe()}")
        return 0
    if command == "report":
        from repro.core.report import generate_report

        with _build_executor(args) as executor:
            print(generate_report(executor).render())
            _report_stats(executor)
        return 0
    if command == "all":
        with _build_executor(args) as executor:
            for exhibit_id, generate in EXHIBITS.items():
                try:
                    exhibit = generate(executor)  # type: ignore[call-arg]
                except TypeError:
                    exhibit = generate()  # table generators take no runner
                print(exhibit.render())
                print()
            _report_stats(executor)
        return 0
    generate = EXHIBITS[command]
    with _build_executor(args) as executor:
        try:
            exhibit = generate(executor)  # type: ignore[call-arg]
        except TypeError:
            exhibit = generate()
        print(exhibit.render())
        _report_stats(executor)
    return 0


if __name__ == "__main__":
    sys.exit(main())
