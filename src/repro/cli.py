"""Command-line interface: regenerate any paper exhibit.

Usage::

    knl-hybridmem list
    knl-hybridmem fig2
    knl-hybridmem --jobs 4 --cache-dir ~/.cache/knl-hybridmem all
    knl-hybridmem --trace-out fig4c.trace.json --metrics-out fig4c.json fig4c
    knl-hybridmem advisor minife --size-gb 7.2 --threads 128
    knl-hybridmem describe
    knl-hybridmem serve --port 8713
    knl-hybridmem bench serve --clients 64

Observability: ``--trace-out`` / ``--metrics-out`` (or ``REPRO_TRACE=1``,
with optional ``REPRO_TRACE_OUT`` / ``REPRO_METRICS_OUT`` paths) wrap the
command in an observation session (:mod:`repro.obs`).  Exhibits on stdout
are byte-identical with or without it; the trace (Chrome ``trace_event``
JSON for ``chrome://tracing``), the metrics JSON (including a per-cell
sweep breakdown) and a one-line summary go to the given files / stderr.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from collections.abc import Sequence
from typing import Any

from repro import obs
from repro.checks.checker import InvariantViolation, check_mode_from_env
from repro.core.advisor import PlacementAdvisor
from repro.core.executor import ExecutionStrategy, SweepExecutor
from repro.core.runner import ExperimentRunner
from repro.figures import EXHIBITS
from repro.machine import registry
from repro.memory.modes import MCDRAMConfig
from repro.runtime.simos import SimulatedOS
from repro.workloads.registry import FROM_GB


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="knl-hybridmem",
        description=(
            "Reproduce the tables and figures of 'Exploring the Performance "
            "Benefit of Hybrid Memory System on HPC Environments'"
        ),
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker count for sweep execution (default 1: serial)",
    )
    parser.add_argument(
        "--executor",
        choices=[s.value for s in ExecutionStrategy],
        default=None,
        help="sweep strategy (default: serial, or threads when --jobs > 1)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="persist run records as JSON under DIR and reuse them",
    )
    parser.add_argument(
        "--table-cache",
        default=None,
        metavar="DIR",
        help=(
            "persist built batch-engine model tables under DIR and warm "
            "from them (defaults to CACHE_DIR/tables when --cache-dir is "
            "set; the REPRO_TABLE_CACHE environment variable does the "
            "same; see docs/ENGINE.md)"
        ),
    )
    parser.add_argument(
        "--machine",
        choices=list(registry.names()),
        default="knl7210",
        help=(
            "machine model from the registry to evaluate on "
            "(default: knl7210; see docs/MACHINES.md)"
        ),
    )
    parser.add_argument(
        "--check",
        choices=["warn", "raise"],
        default=None,
        metavar="MODE",
        help=(
            "validate every run against the model-invariant registry "
            "(MODE: warn or raise; the REPRO_CHECK environment variable "
            "does the same, e.g. REPRO_CHECK=1 for raise)"
        ),
    )
    parser.add_argument(
        "--trace-out",
        default=None,
        metavar="FILE",
        help=(
            "enable observability and write a Chrome trace_event JSON "
            "(open in chrome://tracing or ui.perfetto.dev)"
        ),
    )
    parser.add_argument(
        "--metrics-out",
        default=None,
        metavar="FILE",
        help=(
            "enable observability and write the metrics registry "
            "(counters/gauges/histograms + per-cell sweep breakdown) as JSON"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available exhibits")
    sub.add_parser("all", help="generate every exhibit")
    sub.add_parser("describe", help="describe the modelled node")
    for exhibit_id in EXHIBITS:
        sub.add_parser(exhibit_id, help=f"generate {exhibit_id}")
    advisor = sub.add_parser(
        "advisor", help="recommend a memory configuration for a workload"
    )
    advisor.add_argument("workload", choices=sorted(FROM_GB))
    advisor.add_argument("--size-gb", type=float, required=True)
    advisor.add_argument("--threads", type=int, default=64)
    decompose = sub.add_parser(
        "decompose", help="size a multi-node decomposition (Section IV-C)"
    )
    decompose.add_argument("workload", choices=sorted(FROM_GB))
    decompose.add_argument("--total-gb", type=float, required=True)
    decompose.add_argument(
        "--nodes", type=int, nargs="+", default=[2, 4, 8, 12, 16]
    )
    energy = sub.add_parser(
        "energy", help="time/energy/EDP comparison across configurations"
    )
    energy.add_argument("workload", choices=sorted(FROM_GB))
    energy.add_argument("--size-gb", type=float, required=True)
    energy.add_argument("--threads", type=int, default=64)
    optimize = sub.add_parser(
        "optimize",
        help="per-structure DRAM/HBM placement search (future-work study)",
    )
    optimize.add_argument("workload", choices=["minife", "graph500"])
    optimize.add_argument("--size-gb", type=float, required=True)
    optimize.add_argument("--threads", type=int, default=64)
    sub.add_parser("report", help="full study report (all exhibits)")
    sub.add_parser(
        "check",
        help="regenerate every exhibit under full invariant checking",
    )
    plan = sub.add_parser(
        "plan",
        help=(
            "solve a fleet capacity plan: place a traffic mix onto a "
            "machine pool, choosing memory modes (see docs/PLANNING.md)"
        ),
    )
    plan.add_argument(
        "--spec",
        default=None,
        metavar="FILE",
        help=(
            "JSON plan spec ({'mix': [...], 'pool': [...], 'objective': "
            "...}; same shape as the /v1/plan 'plan' object); '-' reads "
            "stdin; exclusive with --mix/--pool"
        ),
    )
    plan.add_argument(
        "--mix",
        action="append",
        default=None,
        metavar="WORKLOAD:SIZE_GB[:THREADS[:WEIGHT]]",
        help=(
            "one traffic item (repeatable), e.g. 'minife:20' or "
            "'dgemm:12:128:0.5'; THREADS defaults to 64, WEIGHT "
            "(arrivals/s) to 1"
        ),
    )
    plan.add_argument(
        "--pool",
        action="append",
        default=None,
        metavar="MACHINE:NODES[:CONFIG,...]",
        help=(
            "one machine pool entry (repeatable), e.g. 'knl7210:16' or "
            "'xeonmax9480:8:HBM,DRAM'; CONFIG list defaults to the paper "
            "trio (DRAM, HBM, Cache Mode)"
        ),
    )
    plan.add_argument(
        "--objective",
        choices=["runtime", "energy"],
        default="runtime",
        help="what the solver minimizes (default: runtime)",
    )
    plan.add_argument(
        "--json",
        action="store_true",
        help="print the PlanResult as JSON instead of tables (exactly "
        "the 'plan' object a /v1/plan response carries)",
    )
    plan.add_argument(
        "--table-cache",
        default=argparse.SUPPRESS,
        metavar="DIR",
        help="table-cache directory (same as the global flag, accepted "
        "after the verb for convenience)",
    )
    bench = sub.add_parser(
        "bench",
        help=(
            "measure throughput: 'engine' (scalar vs batch, "
            "BENCH_engine.json), 'serve' (coalesced vs naive serving, "
            "BENCH_serve.json) or 'plan' (planner latency vs fleet size, "
            "BENCH_plan.json)"
        ),
    )
    bench.add_argument(
        "target",
        nargs="?",
        choices=["engine", "serve", "plan"],
        default="engine",
        help="what to benchmark (default: engine)",
    )
    bench.add_argument(
        "--fleet-sizes",
        type=int,
        nargs="+",
        default=[10, 100, 1000],
        metavar="N",
        help="plan: traffic-mix sizes to time (default: 10 100 1000)",
    )
    bench.add_argument(
        "--points",
        type=int,
        default=10_080,
        help="engine: minimum grid size to evaluate (default: 10080)",
    )
    bench.add_argument(
        "--clients",
        type=int,
        default=None,
        help="serve: concurrent closed-loop clients (default: 64, or "
        "1024 for the sharded bench)",
    )
    bench.add_argument(
        "--replicas",
        type=int,
        default=1,
        help="serve: benchmark a sharded deployment, scaling the replica "
        "count up to N and reporting goodput under overload (default: 1 "
        "= the classic coalesced-vs-naive bench)",
    )
    bench.add_argument(
        "--requests-per-client",
        type=int,
        default=8,
        help="serve: requests each client issues per phase (default: 8)",
    )
    bench.add_argument(
        "--repeats",
        type=int,
        default=3,
        help="serve: runs per phase, best reported (default: 3)",
    )
    bench.add_argument(
        "--serve-workers",
        type=int,
        default=2,
        help="serve: evaluation worker threads in the server (default: 2)",
    )
    bench.add_argument(
        "--out",
        default=None,
        metavar="FILE",
        help=(
            "where to write the measurement JSON (default: "
            "BENCH_engine.json or BENCH_serve.json by target)"
        ),
    )
    warmup = sub.add_parser(
        "warmup",
        help=(
            "prewarm the persistent model-table cache: build and store "
            "ModelTables for registered machines x the paper config trio "
            "(see docs/ENGINE.md, 'Prewarming')"
        ),
    )
    warmup.add_argument(
        "--machines",
        nargs="+",
        choices=list(registry.names()),
        default=None,
        metavar="KEY",
        help="machines to prewarm (default: every registered machine)",
    )
    warmup.add_argument(
        "--points",
        type=int,
        default=2_520,
        help="minimum grid cells per machine (default: 2520)",
    )
    # Accept the global --table-cache after the verb too (`repro warmup
    # --table-cache DIR`); SUPPRESS keeps the subparser from clobbering
    # a value given in the global position.
    warmup.add_argument(
        "--table-cache",
        default=argparse.SUPPRESS,
        metavar="DIR",
        help="table-cache directory to prewarm (same as the global flag)",
    )
    serve = sub.add_parser(
        "serve",
        help="run the coalescing prediction service (see docs/SERVING.md)",
    )
    serve.add_argument(
        "--host", default="127.0.0.1", help="bind address (default: 127.0.0.1)"
    )
    serve.add_argument(
        "--port",
        type=int,
        default=8713,
        help="TCP port; 0 picks a free one (default: 8713)",
    )
    serve.add_argument(
        "--machine",
        choices=list(registry.names()),
        default="knl7210",
        help="machine preset answering the queries (default: knl7210)",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=2,
        help="evaluation worker threads (default: 2)",
    )
    serve.add_argument(
        "--max-batch",
        type=int,
        default=256,
        help="largest coalesced batch per dispatch (default: 256)",
    )
    serve.add_argument(
        "--max-queue",
        type=int,
        default=1024,
        help="admission queue bound; beyond it requests get 429 "
        "(default: 1024)",
    )
    serve.add_argument(
        "--batch-window-ms",
        type=float,
        default=2.0,
        help="how long a dispatcher waits for a batch to fill "
        "(default: 2.0; 0 dispatches immediately)",
    )
    serve.add_argument(
        "--cache-entries",
        type=int,
        default=4096,
        help="result-cache capacity; 0 disables caching (default: 4096)",
    )
    serve.add_argument(
        "--cache-ttl",
        type=float,
        default=300.0,
        help="result-cache TTL in seconds; 0 or less means no expiry "
        "(default: 300)",
    )
    serve.add_argument(
        "--deadline",
        type=float,
        default=10.0,
        help="default per-request deadline in seconds (default: 10)",
    )
    serve.add_argument(
        "--no-coalesce",
        action="store_true",
        help="serve one-evaluation-per-request (the naive baseline)",
    )
    serve.add_argument(
        "--replicas",
        type=int,
        default=1,
        help="run a sharded deployment: N service subprocesses behind a "
        "consistent-hash router (default: 1 = single service)",
    )
    serve.add_argument(
        "--port-file",
        default=None,
        metavar="FILE",
        help="after binding, write 'host port' to FILE (for ephemeral "
        "--port 0 supervision; the shard deployment uses this)",
    )
    serve.add_argument(
        "--replica-id",
        default="",
        help="identity of this instance inside a sharded deployment "
        "(surfaces on /healthz and /version)",
    )
    serve.add_argument(
        "--prewarm",
        action="store_true",
        help="before accepting traffic, prewarm the shared model-table "
        "cache for every registered machine (requires a table cache "
        "directory: --table-cache, --cache-dir or REPRO_TABLE_CACHE; "
        "sharded deployments prewarm once at the router, replicas warm "
        "from disk)",
    )
    serve.add_argument(
        "--table-cache",
        default=argparse.SUPPRESS,
        metavar="DIR",
        help="table-cache directory (same as the global flag, accepted "
        "after the verb for convenience)",
    )
    return parser


def _check_mode(args: argparse.Namespace) -> "str | None":
    """The effective check mode: --check wins, REPRO_CHECK is fallback."""
    if args.check is not None:
        return args.check
    return check_mode_from_env()


def _machine(args: argparse.Namespace) -> "object":
    """Build the registry machine the global ``--machine`` flag names."""
    return registry.build(getattr(args, "machine", "knl7210"))


def _table_cache_dir(args: argparse.Namespace) -> "str | None":
    """The effective table-cache directory, mirroring the executor's
    resolution: ``--table-cache`` wins, then ``REPRO_TABLE_CACHE``, then
    ``CACHE_DIR/tables`` when ``--cache-dir`` is set."""
    if args.table_cache:
        return str(args.table_cache)
    env = os.environ.get("REPRO_TABLE_CACHE", "").strip()
    if env:
        return env
    if args.cache_dir:
        return os.path.join(args.cache_dir, "tables")
    return None


def _run_warmup(args: argparse.Namespace, *, machines=None) -> int:
    """Prewarm the shared table cache; exit 2 without a directory."""
    from repro.engine.warmup import prewarm_tables

    directory = _table_cache_dir(args)
    if directory is None:
        print(
            "[warmup] no table cache directory to prewarm: pass "
            "--table-cache DIR (or --cache-dir DIR, or set "
            "REPRO_TABLE_CACHE)",
            file=sys.stderr,
        )
        return 2
    if machines is None:
        machines = getattr(args, "machines", None)
    report = prewarm_tables(
        directory, machines=machines, points=getattr(args, "points", 2_520)
    )
    print(report.describe())
    return 0


def _build_executor(args: argparse.Namespace) -> SweepExecutor:
    return SweepExecutor(
        ExperimentRunner(_machine(args)),
        jobs=args.jobs,
        strategy=args.executor,
        cache_dir=args.cache_dir,
        table_cache_dir=args.table_cache,
        profile_hooks=getattr(args, "profile_hooks", ()),
        check=_check_mode(args),
    )


def _report_stats(executor: SweepExecutor) -> None:
    """Cache/parallelism accounting on stderr (stdout carries exhibits)."""
    if executor.jobs > 1 or executor.cache.cache_dir is not None:
        print(f"[executor] {executor.stats().describe()}", file=sys.stderr)


def _observation_for(
    args: argparse.Namespace, env: "dict[str, str] | None" = None
) -> "obs.Observation | None":
    """Start an observation session when the flags or REPRO_TRACE ask.

    ``--trace-out`` / ``--metrics-out`` imply enabling; so does a truthy
    ``REPRO_TRACE``, whose output paths come from ``REPRO_TRACE_OUT`` /
    ``REPRO_METRICS_OUT`` (either may be unset: the summary still goes to
    stderr).  Returns ``None`` — the zero-overhead path — otherwise.
    """
    environ = env if env is not None else os.environ
    if args.trace_out is None:
        args.trace_out = environ.get("REPRO_TRACE_OUT") or None
    if args.metrics_out is None:
        args.metrics_out = environ.get("REPRO_METRICS_OUT") or None
    wanted = (
        args.trace_out is not None
        or args.metrics_out is not None
        or obs.env_truthy(environ.get("REPRO_TRACE"))
    )
    if not wanted:
        return None
    args.profile_hooks = [obs.CellProfileCollector()]
    return obs.Observation().start()


def _write_observability(
    session: "obs.Observation", args: argparse.Namespace
) -> None:
    """Export the session (after stop()); summary to stderr."""
    collector = args.profile_hooks[0]
    if args.trace_out is not None:
        session.write(trace_out=args.trace_out)
    if args.metrics_out is not None:
        exported = session.metrics_dict()
        exported["cells"] = collector.as_list()
        with open(args.metrics_out, "w") as handle:
            json.dump(exported, handle, indent=1, sort_keys=True)
    written = [p for p in (args.trace_out, args.metrics_out) if p is not None]
    destination = f" -> {', '.join(written)}" if written else ""
    print(f"[obs] {session.summary()}{destination}", file=sys.stderr)


def main(argv: Sequence[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    session = _observation_for(args)
    if session is None:
        return _dispatch_checked(args)
    try:
        return _dispatch_checked(args)
    finally:
        session.stop()
        _write_observability(session, args)


def _dispatch_checked(args: argparse.Namespace) -> int:
    """Dispatch, turning raise-mode violations into a clean exit 1."""
    try:
        return _dispatch(args)
    except InvariantViolation as exc:
        print(f"[check] {exc}", file=sys.stderr)
        return 1


def _write_port_file(path: str, host: str, port: int) -> None:
    """Atomically publish the bound address (write-then-rename; readers
    treat a trailing newline as the completeness marker)."""
    import os

    tmp = f"{path}.tmp"
    with open(tmp, "w", encoding="utf-8") as handle:
        handle.write(f"{host} {port}\n")
    os.replace(tmp, path)


def _run_serve(args: argparse.Namespace) -> int:
    """Run the prediction service in the foreground until interrupted."""
    import asyncio

    from repro.api.errors import ValidationError
    from repro.serve.http import HttpServer
    from repro.serve.service import PredictionService, ServiceConfig

    table_cache_dir = _table_cache_dir(args)
    if args.prewarm:
        if table_cache_dir is None:
            print(
                "[serve] --prewarm needs a table cache directory: pass "
                "--table-cache DIR (or --cache-dir DIR, or set "
                "REPRO_TABLE_CACHE)",
                file=sys.stderr,
            )
            return 2
        from repro.engine.warmup import prewarm_tables

        report = prewarm_tables(table_cache_dir)
        for line in report.describe().splitlines():
            print(f"[serve] {line}", file=sys.stderr)
    try:
        config = ServiceConfig(
            machine=args.machine,
            replica_id=args.replica_id,
            table_cache_dir=table_cache_dir,
            max_batch=args.max_batch,
            max_queue=args.max_queue,
            batch_window_s=args.batch_window_ms / 1e3,
            workers=args.workers,
            cache_entries=args.cache_entries,
            cache_ttl_s=args.cache_ttl if args.cache_ttl > 0 else None,
            default_deadline_s=args.deadline,
            coalesce=not args.no_coalesce,
        )
    except ValidationError as exc:
        print(f"[serve] {exc}", file=sys.stderr)
        return 2
    if args.replicas > 1:
        return _run_serve_sharded(args, config)

    async def _serve() -> None:
        service = PredictionService(config)
        server = HttpServer(service, host=args.host, port=args.port)
        await service.start()
        host, port = await server.start()
        if args.port_file:
            _write_port_file(args.port_file, host, port)
        mode = "coalescing" if config.coalesce else "naive (no coalescing)"
        name = f" {config.replica_id}" if config.replica_id else ""
        print(
            f"[serve{name}] listening on http://{host}:{port} "
            f"({config.machine}, {mode}, {config.workers} workers) — "
            f"Ctrl-C drains and exits",
            file=sys.stderr,
        )
        try:
            await server.serve_forever()
        except asyncio.CancelledError:
            pass
        finally:
            print(f"[serve{name}] draining...", file=sys.stderr)
            await server.stop()
            await service.stop()
            print(f"[serve{name}] stopped", file=sys.stderr)

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        pass
    return 0


def _run_serve_sharded(args: argparse.Namespace, service_config: Any) -> int:
    """Run N service subprocesses behind the shard router (foreground)."""
    import time as _time

    from repro.api.errors import ValidationError
    from repro.serve.shard import ShardConfig, ShardDeployment

    try:
        config = ShardConfig(
            replicas=args.replicas,
            backend="process",
            service=service_config,
            host=args.host,
            port=args.port,
        )
    except ValidationError as exc:
        print(f"[serve] {exc}", file=sys.stderr)
        return 2
    deployment = ShardDeployment(config)
    try:
        host, port = deployment.start()
        if args.port_file:
            _write_port_file(args.port_file, host, port)
        replicas = ", ".join(
            f"{rid}@{h}:{p}" for rid, (h, p) in deployment.addresses().items()
        )
        print(
            f"[serve] router listening on http://{host}:{port} "
            f"({service_config.machine}, {args.replicas} replicas: "
            f"{replicas}) — Ctrl-C stops the fleet",
            file=sys.stderr,
        )
        while True:
            _time.sleep(3600.0)
    except KeyboardInterrupt:
        pass
    finally:
        print("[serve] stopping fleet...", file=sys.stderr)
        deployment.stop()
        print("[serve] stopped", file=sys.stderr)
    return 0


def _parse_mix_flag(text: str) -> "dict[str, Any]":
    """One ``--mix WORKLOAD:SIZE_GB[:THREADS[:WEIGHT]]`` value."""
    parts = text.split(":")
    if not 2 <= len(parts) <= 4:
        raise ValueError(
            f"--mix expects WORKLOAD:SIZE_GB[:THREADS[:WEIGHT]], got {text!r}"
        )
    item: dict[str, Any] = {
        "workload": parts[0],
        "size_gb": float(parts[1]),
    }
    if len(parts) >= 3:
        item["num_threads"] = int(parts[2])
    if len(parts) == 4:
        item["weight"] = float(parts[3])
    return item


def _parse_pool_flag(text: str) -> "dict[str, Any]":
    """One ``--pool MACHINE:NODES[:CONFIG,...]`` value."""
    parts = text.split(":")
    if not 2 <= len(parts) <= 3:
        raise ValueError(
            f"--pool expects MACHINE:NODES[:CONFIG,...], got {text!r}"
        )
    entry: dict[str, Any] = {
        "machine": parts[0],
        "nodes": int(parts[1]),
    }
    if len(parts) == 3:
        entry["configs"] = [c.strip() for c in parts[2].split(",") if c.strip()]
    return entry


def _plan_request(args: argparse.Namespace) -> "Any":
    """Build the PlanRequest from ``--spec`` or ``--mix``/``--pool``."""
    from repro.api.plan import PlanRequest

    if args.spec is not None:
        if args.mix or args.pool:
            raise ValueError("--spec is exclusive with --mix/--pool")
        if args.spec == "-":
            spec = json.load(sys.stdin)
        else:
            with open(args.spec, encoding="utf-8") as handle:
                spec = json.load(handle)
        if "objective" not in spec:
            spec = dict(spec, objective=args.objective)
        return PlanRequest.from_dict(spec)
    if not args.mix or not args.pool:
        raise ValueError(
            "pass --spec FILE, or at least one --mix and one --pool"
        )
    return PlanRequest.from_dict(
        {
            "mix": [_parse_mix_flag(text) for text in args.mix],
            "pool": [_parse_pool_flag(text) for text in args.pool],
            "objective": args.objective,
        }
    )


def _run_plan(args: argparse.Namespace) -> int:
    """Solve a capacity plan and print it (tables, or --json)."""
    from repro.api.errors import ApiError
    from repro.api.facade import Predictor
    from repro.plan.planner import CapacityPlanner
    from repro.util.tables import TextTable

    try:
        request = _plan_request(args)
    except ValueError as exc:
        print(f"[plan] {exc}", file=sys.stderr)
        return 2
    predictor = Predictor(
        cache_dir=args.cache_dir, table_cache_dir=_table_cache_dir(args)
    )
    try:
        result = CapacityPlanner(predictor).plan(request)
    except ApiError as exc:
        print(f"[plan] {exc.code}: {exc}", file=sys.stderr)
        return 1
    finally:
        predictor.close()
    if args.json:
        print(json.dumps(result.to_dict(), indent=2, sort_keys=True))
        return 0
    unit = "node-s/s" if result.objective == "runtime" else "J/s"
    assignments = TextTable(
        ["workload", "size GB", "threads", "weight", "machine", "config",
         "time s", "load nodes", "energy J"],
        title=f"Plan ({result.objective}: {result.objective_value:.4g} {unit})",
    )
    for a in result.assignments:
        assignments.add_row(
            [
                a.item.workload,
                f"{a.item.size_gb:g}",
                a.item.num_threads,
                f"{a.item.weight:g}",
                a.machine,
                a.config,
                f"{a.time_s:.4g}",
                f"{a.load_nodes:.4g}",
                f"{a.energy_j:.4g}",
            ]
        )
    print(assignments.render())
    print()
    loads = TextTable(
        ["machine", "nodes", "load nodes", "utilization"],
        title="Machine loads",
    )
    for load in result.loads:
        loads.add_row(
            [
                load.machine,
                load.nodes,
                f"{load.load_nodes:.4g}",
                f"{load.utilization:.1%}",
            ]
        )
    print(loads.render())
    return 0


def _bench_serve_sharded(args: argparse.Namespace) -> int:
    """Benchmark the sharded deployment and merge a ``sharded`` section
    into the serve benchmark document (baseline sections are kept)."""
    from repro.serve.loadgen import measure_serve_sharded, write_bench_json

    counts = [1]
    while counts[-1] * 2 < args.replicas:
        counts.append(counts[-1] * 2)
    if counts[-1] != args.replicas:
        counts.append(args.replicas)
    clients = args.clients if args.clients is not None else 1024
    sharded = measure_serve_sharded(
        replica_counts=tuple(counts),
        concurrency=clients,
        requests_per_client=args.requests_per_client,
        workers=args.serve_workers,
        machine=getattr(args, "machine", "knl7210"),
    )
    path = args.out or "BENCH_serve.json"
    document: dict[str, Any] = {}
    if os.path.exists(path):
        with open(path, encoding="utf-8") as handle:
            document = json.load(handle)
    document["sharded"] = sharded
    path = write_bench_json(document, path)
    scaling = sharded["scaling"]
    for n in counts:
        phase = sharded["overload"][str(n)]
        print(
            f"replicas {n:>2}  goodput {phase['goodput_rps']:8.1f} rps  "
            f"ok {phase['succeeded']}/{phase['offered']}  "
            f"retries {phase['retries']}  "
            f"p99 {phase['p99_ms']:.1f} ms  "
            f"goodput x{scaling['speedup_vs_min'][str(n)]:.2f}  "
            f"tail x{scaling['tail_p99_speedup_vs_min'][str(n)]:.2f}"
        )
    print(
        f"host cores: {sharded['host_cpu_count']} "
        "(goodput pins at the shared compute ceiling once replicas "
        "outnumber cores; the host-independent signal is admission — "
        "429 retries collapse to zero)"
    )
    identity = sharded["identity"]
    print(
        f"identity audit: {identity['checked']} responses checked, "
        f"{identity['mismatches']} mismatches"
    )
    print(f"[bench] wrote {path}", file=sys.stderr)
    return 0


def _dispatch(args: argparse.Namespace) -> int:
    command = args.command
    if command == "list":
        for exhibit_id in EXHIBITS:
            print(exhibit_id)
        return 0
    if command == "describe":
        print(SimulatedOS(MCDRAMConfig.flat(), machine=_machine(args)).describe())
        return 0
    if command == "advisor":
        workload = FROM_GB[args.workload](args.size_gb)
        advisor = PlacementAdvisor(ExperimentRunner(_machine(args)))
        recommendation = advisor.recommend(workload, args.threads)
        print(recommendation.describe())
        return 0
    if command == "decompose":
        from repro.cluster.multinode import MultiNodeModel

        model = MultiNodeModel()
        print(
            f"{args.workload}: {args.total_gb:g} GB total over N nodes "
            f"(per-node compute + Aries communication)"
        )
        for nodes in args.nodes:
            try:
                result = model.run(
                    FROM_GB[args.workload], args.total_gb, nodes
                )
            except RuntimeError as exc:
                print(f"  {nodes:>3} nodes: {exc}")
                continue
            print(
                f"  {nodes:>3} nodes: {result.per_node_gb:6.1f} GB/node -> "
                f"{result.config.value:<11} aggregate "
                f"{result.aggregate_metric:.4g} "
                f"(efficiency {result.parallel_efficiency:.1%})"
            )
        return 0
    if command == "energy":
        from repro.core.report import energy_comparison_by_name

        print(
            energy_comparison_by_name(
                args.workload, args.size_gb, num_threads=args.threads
            ).render()
        )
        return 0
    if command == "optimize":
        from repro.core.configs import ConfigName
        from repro.core.placement_optimizer import PlacementOptimizer

        workload = FROM_GB[args.workload](args.size_gb)
        with _build_executor(args) as executor:
            print("coarse configurations:")
            for config in ConfigName.paper_trio():
                record = executor.run(workload, config, args.threads)
                value = "-" if record.metric is None else f"{record.metric:.4g}"
                print(f"  {config.value:<12} {value}")
            _report_stats(executor)
        best = PlacementOptimizer().optimize(workload, num_threads=args.threads)
        print(f"optimized per-structure placement: {best.metric:.4g}")
        print(f"  {best.describe()}")
        return 0
    if command == "plan":
        return _run_plan(args)
    if command == "bench":
        if args.target == "plan":
            from repro.plan.bench import measure_plan
            from repro.serve.loadgen import write_bench_json

            document = measure_plan(
                tuple(args.fleet_sizes),
                table_cache_dir=_table_cache_dir(args),
            )
            path = write_bench_json(document, args.out or "BENCH_plan.json")
            for size in args.fleet_sizes:
                row = document["planner"]["details"][str(size)]
                print(
                    f"fleet {size:>5}  solve {row['latency_ms']:9.1f} ms  "
                    f"candidates {row['candidates']:>5}  "
                    f"nodes/machine {row['nodes_per_machine']}"
                )
            print(f"[bench] wrote {path}", file=sys.stderr)
            return 0
        if args.target == "serve" and args.replicas > 1:
            return _bench_serve_sharded(args)
        if args.target == "serve":
            from repro.serve.loadgen import measure_serve, write_bench_json

            document = measure_serve(
                clients=args.clients if args.clients is not None else 64,
                requests_per_client=args.requests_per_client,
                workers=args.serve_workers,
                repeats=args.repeats,
            )
            path = write_bench_json(
                document, args.out or "BENCH_serve.json"
            )
            for phase in ("coalesced", "hot_cache", "naive"):
                stats = document[phase]
                print(
                    f"{phase:<10} {stats['throughput_rps']:8.1f} rps  "
                    f"p50 {stats['p50_ms']:.2f} ms  "
                    f"p99 {stats['p99_ms']:.2f} ms"
                )
            print(
                "speedup coalesced/naive "
                f"{document['speedup_coalesced_vs_naive']:.2f}x, "
                f"hot/naive {document['speedup_hot_vs_naive']:.2f}x"
            )
            print(f"[bench] wrote {path}", file=sys.stderr)
            return 0
        from repro.core.perfbench import measure_engine, write_bench_json

        result = measure_engine(args.points, machine=_machine(args))
        path = write_bench_json(result, args.out or "BENCH_engine.json")
        print(result.describe())
        print(f"[bench] wrote {path}", file=sys.stderr)
        return 0
    if command == "warmup":
        return _run_warmup(args)
    if command == "serve":
        return _run_serve(args)
    if command == "check":
        from repro.checks.batch import check_exhibits

        report = check_exhibits(
            jobs=args.jobs,
            strategy=args.executor,
            cache_dir=args.cache_dir,
        )
        print(report.render())
        return 0 if report.ok else 1
    if command == "report":
        from repro.core.report import generate_report

        with _build_executor(args) as executor:
            print(generate_report(executor).render())
            _report_stats(executor)
        return 0
    if command == "all":
        with _build_executor(args) as executor:
            for exhibit_id, generate in EXHIBITS.items():
                try:
                    exhibit = generate(executor)  # type: ignore[call-arg]
                except TypeError:
                    exhibit = generate()  # table generators take no runner
                print(exhibit.render())
                print()
            _report_stats(executor)
        return 0
    generate = EXHIBITS[command]
    with _build_executor(args) as executor:
        try:
            exhibit = generate(executor)  # type: ignore[call-arg]
        except TypeError:
            exhibit = generate()
        print(exhibit.render())
        _report_stats(executor)
    return 0


if __name__ == "__main__":
    sys.exit(main())
