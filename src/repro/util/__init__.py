"""Shared utilities for the knl-hybridmem reproduction.

This subpackage carries the small, dependency-free helpers used across the
machine model, the memory subsystem, the performance engine and the
experiment harness:

* :mod:`repro.util.units` — byte/time/rate unit constants and parsing
  (``GiB``, ``ns``, ``GB/s`` ...).  The paper mixes decimal GB (rates) and
  binary GiB (capacities); the conventions are pinned down here once.
* :mod:`repro.util.formatting` — human-readable quantity formatting used by
  the result tables and the CLI.
* :mod:`repro.util.tables` — plain-text table rendering for the benchmark
  harness output (the "same rows the paper reports").
* :mod:`repro.util.ascii_plot` — terminal line/bar plots so figure shapes
  can be eyeballed without matplotlib.
* :mod:`repro.util.prng` — seeded random-stream construction, so every
  simulated experiment is reproducible.
* :mod:`repro.util.validation` — argument checking helpers with consistent
  error messages.
"""

from repro.util.units import (
    KiB,
    MiB,
    GiB,
    TiB,
    KB,
    MB,
    GB,
    NS_PER_S,
    US_PER_S,
    MS_PER_S,
    CACHE_LINE,
    parse_size,
    format_size,
    bytes_to_gib,
    gib_to_bytes,
    bytes_to_gb,
    gb_to_bytes,
)
from repro.util.formatting import (
    format_quantity,
    format_rate,
    format_time_ns,
    format_ratio,
    si_prefix,
)
from repro.util.tables import TextTable
from repro.util.ascii_plot import AsciiChart
from repro.util.prng import make_rng, derive_seed
from repro.util.validation import (
    check_positive,
    check_non_negative,
    check_in,
    check_type,
    check_fraction,
)

__all__ = [
    "KiB",
    "MiB",
    "GiB",
    "TiB",
    "KB",
    "MB",
    "GB",
    "NS_PER_S",
    "US_PER_S",
    "MS_PER_S",
    "CACHE_LINE",
    "parse_size",
    "format_size",
    "bytes_to_gib",
    "gib_to_bytes",
    "bytes_to_gb",
    "gb_to_bytes",
    "format_quantity",
    "format_rate",
    "format_time_ns",
    "format_ratio",
    "si_prefix",
    "TextTable",
    "AsciiChart",
    "make_rng",
    "derive_seed",
    "check_positive",
    "check_non_negative",
    "check_in",
    "check_type",
    "check_fraction",
]
