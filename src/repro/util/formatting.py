"""Human-readable quantity formatting for harness and CLI output."""

from __future__ import annotations

import math

_SI_PREFIXES = [
    (1e12, "T"),
    (1e9, "G"),
    (1e6, "M"),
    (1e3, "k"),
    (1.0, ""),
    (1e-3, "m"),
    (1e-6, "µ"),
    (1e-9, "n"),
]


def si_prefix(value: float) -> tuple[float, str]:
    """Return ``(scaled_value, prefix)`` for an SI-scaled rendering.

    Zero maps to ``(0.0, "")``; values below 1e-9 keep the nano prefix.
    """
    if value == 0:
        return 0.0, ""
    magnitude = abs(value)
    for factor, prefix in _SI_PREFIXES:
        if magnitude >= factor:
            return value / factor, prefix
    return value / 1e-9, "n"


def format_quantity(value: float, unit: str = "", *, precision: int = 3) -> str:
    """Format ``value`` with an SI prefix, e.g. ``format_quantity(2.5e8, "TEPS")
    -> '250 MTEPS'``."""
    if math.isnan(value):
        return "nan"
    scaled, prefix = si_prefix(value)
    text = f"{scaled:.{precision}g}"
    suffix = f" {prefix}{unit}".rstrip()
    return f"{text}{suffix}" if suffix else text


def format_rate(bytes_per_s: float, *, precision: int = 1) -> str:
    """Format a bandwidth in decimal GB/s, the unit used by every figure."""
    return f"{bytes_per_s / 1e9:.{precision}f} GB/s"


def format_time_ns(ns: float, *, precision: int = 1) -> str:
    """Format a duration given in nanoseconds, choosing ns/µs/ms/s."""
    if math.isnan(ns):
        return "nan"
    if ns < 1e3:
        return f"{ns:.{precision}f} ns"
    if ns < 1e6:
        return f"{ns / 1e3:.{precision}f} µs"
    if ns < 1e9:
        return f"{ns / 1e6:.{precision}f} ms"
    return f"{ns / 1e9:.{precision}f} s"


def format_ratio(ratio: float, *, precision: int = 2) -> str:
    """Format a speedup/improvement factor the way the paper writes it (3.8x)."""
    return f"{ratio:.{precision}f}x"
