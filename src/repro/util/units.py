"""Unit conventions and conversions.

Conventions used throughout the package (documented once, here):

* **Capacities and footprints** are binary: ``GiB = 2**30`` bytes.  The
  paper writes "16 GB MCDRAM" and "96 GB DDR"; those are device capacities
  and are treated as GiB (the KNL 7210 really ships 16 GiB of MCDRAM).
* **Bandwidths** are decimal: ``GB/s = 1e9`` bytes per second, matching how
  STREAM and vendor datasheets report them (77 GB/s, 330 GB/s, ...).
* **Time** is kept in nanoseconds (floats) inside the performance engine;
  seconds only appear at the reporting boundary.
* **Cache lines** are 64 bytes everywhere on KNL.

These choices make the paper's numbers round-trip exactly: a 16 GiB MCDRAM
footprint ratio of 0.5 corresponds to the paper's "8 GB" STREAM point.
"""

from __future__ import annotations

import re

# Binary byte units (capacities).
KiB: int = 1 << 10
MiB: int = 1 << 20
GiB: int = 1 << 30
TiB: int = 1 << 40

# Decimal byte units (rates, sizes quoted decimally).
KB: int = 10**3
MB: int = 10**6
GB: int = 10**9

# Time conversion factors.
NS_PER_S: float = 1e9
US_PER_S: float = 1e6
MS_PER_S: float = 1e3

# KNL cache-line size in bytes (L1, L2 and the MCDRAM cache all use 64 B).
CACHE_LINE: int = 64

_SIZE_RE = re.compile(
    r"^\s*(?P<num>[0-9]*\.?[0-9]+)\s*(?P<unit>[KMGT]i?B|B)?\s*$",
    re.IGNORECASE,
)

_UNIT_FACTORS = {
    "b": 1,
    "kb": KB,
    "mb": MB,
    "gb": GB,
    "tb": 10**12,
    "kib": KiB,
    "mib": MiB,
    "gib": GiB,
    "tib": TiB,
}


def parse_size(text: str | int | float) -> int:
    """Parse a human-readable size like ``"11.4 GiB"`` or ``"256KB"`` to bytes.

    Integers/floats pass through unchanged (interpreted as bytes).  A bare
    number with no unit is taken as bytes.  Raises :class:`ValueError` for
    malformed strings or negative values.
    """
    if isinstance(text, (int, float)):
        if text < 0:
            raise ValueError(f"size must be non-negative, got {text!r}")
        return int(text)
    match = _SIZE_RE.match(text)
    if match is None:
        raise ValueError(f"unparseable size: {text!r}")
    value = float(match.group("num"))
    unit = (match.group("unit") or "B").lower()
    return int(round(value * _UNIT_FACTORS[unit]))


def format_size(num_bytes: float, *, binary: bool = True, precision: int = 1) -> str:
    """Render a byte count with the largest sensible unit.

    ``binary=True`` (default) renders KiB/MiB/GiB; ``binary=False`` renders
    decimal KB/MB/GB, which matches how the paper labels figure axes.
    """
    if num_bytes < 0:
        raise ValueError(f"size must be non-negative, got {num_bytes!r}")
    step = 1024.0 if binary else 1000.0
    units = ["B", "KiB", "MiB", "GiB", "TiB"] if binary else ["B", "KB", "MB", "GB", "TB"]
    value = float(num_bytes)
    for unit in units[:-1]:
        if value < step:
            return f"{value:.{precision}f} {unit}" if unit != "B" else f"{int(value)} B"
        value /= step
    return f"{value:.{precision}f} {units[-1]}"


def bytes_to_gib(num_bytes: float) -> float:
    """Convert bytes to binary gibibytes."""
    return float(num_bytes) / GiB


def gib_to_bytes(gib: float) -> int:
    """Convert binary gibibytes to bytes (rounded to the nearest byte)."""
    if gib < 0:
        raise ValueError(f"size must be non-negative, got {gib!r}")
    return int(round(gib * GiB))


def bytes_to_gb(num_bytes: float) -> float:
    """Convert bytes to decimal gigabytes (figure-axis units)."""
    return float(num_bytes) / GB


def gb_to_bytes(gb: float) -> int:
    """Convert decimal gigabytes to bytes (rounded to the nearest byte)."""
    if gb < 0:
        raise ValueError(f"size must be non-negative, got {gb!r}")
    return int(round(gb * GB))
