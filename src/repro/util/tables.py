"""Plain-text table rendering.

The benchmark harness prints the same rows the paper's tables/figures report;
:class:`TextTable` is the single rendering path so all exhibits share a
format.  No third-party dependency (tabulate etc. is not available offline).
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from typing import Any


class TextTable:
    """A minimal monospace table builder.

    >>> t = TextTable(["size", "DRAM", "HBM"], title="Fig. 2")
    >>> t.add_row(["2 GiB", "77.0", "330.0"])
    >>> print(t.render())  # doctest: +SKIP
    """

    def __init__(
        self,
        columns: Sequence[str],
        *,
        title: str | None = None,
        align: Sequence[str] | None = None,
    ) -> None:
        if not columns:
            raise ValueError("a table needs at least one column")
        self.columns = [str(c) for c in columns]
        self.title = title
        if align is None:
            align = ["l"] + ["r"] * (len(columns) - 1)
        if len(align) != len(columns):
            raise ValueError(
                f"align has {len(align)} entries for {len(columns)} columns"
            )
        for a in align:
            if a not in ("l", "r", "c"):
                raise ValueError(f"alignment must be l/r/c, got {a!r}")
        self.align = list(align)
        self._rows: list[list[str]] = []

    def add_row(self, row: Iterable[Any]) -> None:
        """Append a row; cells are str()-ified, None renders as '-'."""
        cells = ["-" if cell is None else str(cell) for cell in row]
        if len(cells) != len(self.columns):
            raise ValueError(
                f"row has {len(cells)} cells for {len(self.columns)} columns"
            )
        self._rows.append(cells)

    def add_rows(self, rows: Iterable[Iterable[Any]]) -> None:
        for row in rows:
            self.add_row(row)

    @property
    def nrows(self) -> int:
        return len(self._rows)

    def _pad(self, text: str, width: int, align: str) -> str:
        if align == "l":
            return text.ljust(width)
        if align == "r":
            return text.rjust(width)
        return text.center(width)

    def render(self) -> str:
        """Render the table as a string (no trailing newline)."""
        widths = [len(c) for c in self.columns]
        for row in self._rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        sep = "+".join("-" * (w + 2) for w in widths)
        header = " | ".join(
            self._pad(c, w, "c") for c, w in zip(self.columns, widths)
        )
        lines: list[str] = []
        if self.title:
            lines.append(self.title)
        lines.append(header)
        lines.append(sep)
        for row in self._rows:
            lines.append(
                " | ".join(
                    self._pad(cell, w, a)
                    for cell, w, a in zip(row, widths, self.align)
                )
            )
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()
