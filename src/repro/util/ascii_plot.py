"""Terminal line charts.

The figure generators can render their series as ASCII charts so the shape
of each reproduced exhibit (crossover points, saturation, who-wins ordering)
is visible directly in benchmark output without matplotlib.
"""

from __future__ import annotations

import math
from collections.abc import Sequence


class AsciiChart:
    """Plot one or more (x, y) series on a shared character grid.

    Series are drawn with distinct glyphs; overlapping points show the glyph
    of the *last* series added (documented, deterministic).  X positions are
    mapped onto the column grid by nearest-column; this is a sketch, not a
    plotting library.
    """

    GLYPHS = "*o+x#@%&"

    def __init__(
        self,
        *,
        width: int = 72,
        height: int = 18,
        title: str | None = None,
        ylabel: str = "",
        xlabel: str = "",
        logx: bool = False,
    ) -> None:
        if width < 16 or height < 4:
            raise ValueError("chart must be at least 16x4 characters")
        self.width = width
        self.height = height
        self.title = title
        self.ylabel = ylabel
        self.xlabel = xlabel
        self.logx = logx
        self._series: list[tuple[str, list[float], list[float]]] = []

    def add_series(
        self, name: str, xs: Sequence[float], ys: Sequence[float]
    ) -> None:
        """Add a named series; NaN y-values are skipped when drawing."""
        if len(xs) != len(ys):
            raise ValueError("xs and ys must have the same length")
        if not xs:
            raise ValueError("series must be non-empty")
        if len(self._series) >= len(self.GLYPHS):
            raise ValueError("too many series for distinct glyphs")
        self._series.append((name, [float(x) for x in xs], [float(y) for y in ys]))

    def _xpos(self, x: float, xmin: float, xmax: float) -> int:
        if self.logx:
            x, xmin, xmax = math.log10(x), math.log10(xmin), math.log10(xmax)
        if xmax == xmin:
            return 0
        frac = (x - xmin) / (xmax - xmin)
        return min(self.width - 1, max(0, int(round(frac * (self.width - 1)))))

    def render(self) -> str:
        """Render the chart; raises if no series were added."""
        if not self._series:
            raise ValueError("nothing to plot")
        all_x = [x for _, xs, _ in self._series for x in xs]
        all_y = [
            y for _, _, ys in self._series for y in ys if not math.isnan(y)
        ]
        if not all_y:
            raise ValueError("all points are NaN")
        xmin, xmax = min(all_x), max(all_x)
        ymin, ymax = min(all_y), max(all_y)
        if ymax == ymin:
            ymax = ymin + 1.0
        grid = [[" "] * self.width for _ in range(self.height)]
        for idx, (_, xs, ys) in enumerate(self._series):
            glyph = self.GLYPHS[idx]
            for x, y in zip(xs, ys):
                if math.isnan(y):
                    continue
                col = self._xpos(x, xmin, xmax)
                frac = (y - ymin) / (ymax - ymin)
                row = self.height - 1 - int(round(frac * (self.height - 1)))
                grid[row][col] = glyph
        lines: list[str] = []
        if self.title:
            lines.append(self.title)
        legend = "  ".join(
            f"{self.GLYPHS[i]}={name}" for i, (name, _, _) in enumerate(self._series)
        )
        lines.append(legend)
        ytop = f"{ymax:.3g}"
        ybot = f"{ymin:.3g}"
        label_w = max(len(ytop), len(ybot), len(self.ylabel)) + 1
        for r, row in enumerate(grid):
            if r == 0:
                prefix = ytop.rjust(label_w)
            elif r == self.height - 1:
                prefix = ybot.rjust(label_w)
            elif r == self.height // 2 and self.ylabel:
                prefix = self.ylabel.rjust(label_w)
            else:
                prefix = " " * label_w
            lines.append(f"{prefix}|{''.join(row)}")
        lines.append(" " * label_w + "+" + "-" * self.width)
        xleft = f"{xmin:.3g}"
        xright = f"{xmax:.3g}"
        gap = self.width - len(xleft) - len(xright)
        xaxis = " " * (label_w + 1) + xleft + " " * max(1, gap) + xright
        lines.append(xaxis)
        if self.xlabel:
            lines.append(" " * (label_w + 1) + self.xlabel.center(self.width))
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()
