"""Seeded random-stream construction.

Every stochastic element in the reproduction (Kronecker edge generation,
GUPS update streams, XSBench lookup energies, page-placement scatter) draws
from a :class:`numpy.random.Generator` built here, so a top-level seed fully
determines an experiment.  Independent subsystem streams are derived with
:func:`derive_seed` rather than by offsetting, to avoid correlated streams.
"""

from __future__ import annotations

import hashlib

import numpy as np

DEFAULT_SEED = 0x5EED_C0DE


def derive_seed(base_seed: int, *labels: object) -> int:
    """Derive an independent 63-bit seed from ``base_seed`` and labels.

    Uses SHA-256 over the seed and the repr of each label, so streams for
    ("gups", table_size) and ("graph500", scale) never collide even when the
    numeric parameters do.
    """
    hasher = hashlib.sha256()
    hasher.update(int(base_seed).to_bytes(16, "little", signed=True))
    for label in labels:
        hasher.update(repr(label).encode())
        hasher.update(b"\x00")
    return int.from_bytes(hasher.digest()[:8], "little") & (2**63 - 1)


def make_rng(seed: int | None = None, *labels: object) -> np.random.Generator:
    """Build a Generator from ``seed`` (default :data:`DEFAULT_SEED`) and labels."""
    if seed is None:
        seed = DEFAULT_SEED
    return np.random.default_rng(derive_seed(seed, *labels))
