"""Argument-validation helpers with uniform error messages."""

from __future__ import annotations

from collections.abc import Container
from typing import Any, TypeVar

T = TypeVar("T")


def check_positive(name: str, value: float) -> float:
    """Require ``value > 0``; returns the value for inline use."""
    if not value > 0:
        raise ValueError(f"{name} must be positive, got {value!r}")
    return value


def check_non_negative(name: str, value: float) -> float:
    """Require ``value >= 0``."""
    if value < 0:
        raise ValueError(f"{name} must be non-negative, got {value!r}")
    return value


def check_fraction(name: str, value: float) -> float:
    """Require ``0 <= value <= 1``."""
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value!r}")
    return value


def check_in(name: str, value: T, allowed: Container[T]) -> T:
    """Require membership in ``allowed``."""
    if value not in allowed:
        raise ValueError(f"{name} must be one of {allowed!r}, got {value!r}")
    return value


def check_type(name: str, value: Any, types: type | tuple[type, ...]) -> Any:
    """Require ``isinstance(value, types)``."""
    if not isinstance(value, types):
        raise TypeError(
            f"{name} must be {types!r}, got {type(value).__name__} ({value!r})"
        )
    return value
