"""Loaded-latency model.

Memory latency rises when the device is driven close to its bandwidth
limit: requests queue at the controllers.  The performance engine uses
this when computing latency-bound throughput at high thread counts — it is
the mechanism that makes hyper-threading gains taper (Figs. 6c/6d) before
the raw MLP scaling would predict.

The model is the standard open-queue inflation ``idle * (1 + k * rho /
(1 - rho))`` with utilization clamped below 1; it is deliberately simple
(the paper never measures loaded latency directly, only its consequences).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.validation import check_non_negative, check_positive


@dataclass(frozen=True)
class LoadedLatencyModel:
    """Latency inflation as a function of device utilization.

    Parameters
    ----------
    queue_factor:
        Strength of the queueing term; 0 disables inflation.
    max_utilization:
        Utilization at which inflation is evaluated at most (keeps the
        model finite when demand exceeds the device limit).
    """

    queue_factor: float = 0.35
    max_utilization: float = 0.95

    def __post_init__(self) -> None:
        check_non_negative("queue_factor", self.queue_factor)
        if not 0.0 < self.max_utilization < 1.0:
            raise ValueError(
                f"max_utilization must be in (0, 1), got {self.max_utilization}"
            )

    def effective_latency_ns(
        self, idle_latency_ns: float, demand_bandwidth: float, device_bandwidth: float
    ) -> float:
        """Latency (ns) at a given bandwidth demand against a device limit."""
        check_positive("idle_latency_ns", idle_latency_ns)
        check_non_negative("demand_bandwidth", demand_bandwidth)
        check_positive("device_bandwidth", device_bandwidth)
        rho = min(self.max_utilization, demand_bandwidth / device_bandwidth)
        return idle_latency_ns * (1.0 + self.queue_factor * rho / (1.0 - rho))
