"""memkind-style heap allocator over the simulated NUMA topology.

The paper (Section II, flat mode) points at the memkind library for
fine-grained data placement; its future-work section proposes placing
*individual data structures* by access pattern.  This allocator provides
that capability for the simulation:

* :class:`Kind` mirrors memkind's kinds (``DEFAULT``, ``HBW``,
  ``HBW_PREFERRED``, ``HBW_INTERLEAVE``, ``INTERLEAVE``).
* :class:`HeapAllocator` tracks named allocations, enforces node
  capacities, and reports where every structure landed — the ablation
  bench `bench_ablation_finegrained_placement` drives exactly this API.

The allocator is bookkeeping-only: no real memory moves, but the
capacity/placement semantics (including failures) match numactl/memkind.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass

from repro.memory.numa import NUMATopology
from repro.memory.policy import (
    DefaultLocal,
    Interleave,
    Membind,
    PlacementPolicy,
    Preferred,
)
from repro.util.validation import check_positive


class AllocationError(MemoryError):
    """Raised when an allocation cannot be satisfied by its kind."""


class Kind(enum.Enum):
    """memkind allocation kinds relevant to a two-node KNL."""

    DEFAULT = "memkind_default"
    HBW = "memkind_hbw"
    HBW_PREFERRED = "memkind_hbw_preferred"
    HBW_INTERLEAVE = "memkind_hbw_interleave"
    INTERLEAVE = "memkind_interleave"

    def policy(self, topology: NUMATopology) -> PlacementPolicy:
        """Resolve this kind to a placement policy on ``topology``.

        Strict HBW kinds require an HBM node (node 1 in flat mode); in
        cache mode — where the OS sees one node — ``HBW`` fails exactly
        like memkind does on a cache-mode machine, while ``HBW_PREFERRED``
        degrades to the DDR node.
        """
        has_hbm = topology.num_nodes > 1
        if self is Kind.DEFAULT:
            return DefaultLocal()
        if self is Kind.HBW:
            if not has_hbm:
                raise AllocationError(
                    "memkind_hbw: no high-bandwidth node exposed "
                    "(MCDRAM is not in flat/hybrid mode)"
                )
            return Membind(1)
        if self is Kind.HBW_PREFERRED:
            return Preferred(1) if has_hbm else DefaultLocal()
        if self is Kind.HBW_INTERLEAVE:
            if not has_hbm:
                raise AllocationError(
                    "memkind_hbw_interleave: no high-bandwidth node exposed"
                )
            return Interleave((1,))
        if self is Kind.INTERLEAVE:
            return Interleave(tuple(n.node_id for n in topology.nodes))
        raise AssertionError(f"unhandled kind {self!r}")


@dataclass(frozen=True)
class Allocation:
    """A named, placed allocation."""

    alloc_id: int
    name: str
    num_bytes: int
    split: dict[int, int]
    kind: Kind | None = None

    @property
    def nodes(self) -> tuple[int, ...]:
        return tuple(sorted(self.split))

    def fraction_on(self, node_id: int) -> float:
        """Share of this allocation's bytes living on ``node_id``."""
        if self.num_bytes == 0:
            return 0.0
        return self.split.get(node_id, 0) / self.num_bytes


class HeapAllocator:
    """Tracks live allocations against a NUMA topology."""

    def __init__(self, topology: NUMATopology) -> None:
        self.topology = topology
        self._live: dict[int, Allocation] = {}
        self._ids = itertools.count(1)

    # -- allocation -----------------------------------------------------------
    def malloc(
        self,
        name: str,
        num_bytes: int,
        *,
        kind: Kind | None = None,
        policy: PlacementPolicy | None = None,
    ) -> Allocation:
        """Allocate ``num_bytes`` under a kind or an explicit policy.

        Exactly one of ``kind``/``policy`` may be given; omitting both uses
        ``Kind.DEFAULT``.  Raises :class:`AllocationError` (kind cannot be
        resolved) or :class:`OutOfNodeMemory` (capacity).
        """
        check_positive("num_bytes", num_bytes)
        if kind is not None and policy is not None:
            raise ValueError("pass either kind or policy, not both")
        if policy is None:
            policy = (kind or Kind.DEFAULT).policy(self.topology)
        split = policy.split(self.topology, num_bytes)
        assert sum(split.values()) == num_bytes
        for node_id, amount in split.items():
            self.topology.node(node_id).reserve(amount)
        allocation = Allocation(
            alloc_id=next(self._ids),
            name=name,
            num_bytes=num_bytes,
            split=dict(split),
            kind=kind,
        )
        self._live[allocation.alloc_id] = allocation
        return allocation

    def free(self, allocation: Allocation) -> None:
        """Release an allocation; double frees raise."""
        if allocation.alloc_id not in self._live:
            raise ValueError(f"allocation {allocation.alloc_id} is not live")
        for node_id, amount in allocation.split.items():
            self.topology.node(node_id).release(amount)
        del self._live[allocation.alloc_id]

    def free_all(self) -> None:
        """Release every live allocation."""
        for allocation in list(self._live.values()):
            self.free(allocation)

    # -- introspection ----------------------------------------------------------
    @property
    def live_allocations(self) -> list[Allocation]:
        return list(self._live.values())

    def used_bytes(self, node_id: int | None = None) -> int:
        """Bytes used by live allocations, optionally for one node."""
        if node_id is None:
            return sum(a.num_bytes for a in self._live.values())
        self.topology.node(node_id)
        return sum(a.split.get(node_id, 0) for a in self._live.values())

    def hbm_fraction(self) -> float:
        """Overall share of live bytes on the HBM node (node 1), if any."""
        total = self.used_bytes()
        if total == 0 or self.topology.num_nodes < 2:
            return 0.0
        return self.used_bytes(1) / total
