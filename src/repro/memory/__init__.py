"""Hybrid memory subsystem model.

Models the two memory technologies of the KNL node and everything the paper
configures around them:

* :mod:`repro.memory.device` / :mod:`dram` / :mod:`mcdram` — the DDR4 and
  MCDRAM devices with their measured bandwidth and latency characteristics.
* :mod:`repro.memory.modes` — flat / cache / hybrid MCDRAM modes and the
  NUMA topology each one exposes.
* :mod:`repro.memory.numa` — NUMA nodes, distance matrices and capacity
  accounting (`numactl --hardware` view).
* :mod:`repro.memory.policy` — placement policies (membind / preferred /
  interleave / default-local), mirroring numactl semantics.
* :mod:`repro.memory.allocator` — a memkind-style heap allocator over the
  NUMA topology, used for the fine-grained-placement extension study.
* :mod:`repro.memory.mcdram_cache` — the direct-mapped memory-side cache
  model responsible for the cache-mode behaviour of Figs. 2 and 4.
* :mod:`repro.memory.latency` / :mod:`tlb` — loaded-latency and TLB/page
  walk models behind the Fig. 3 latency tiers.
"""

from repro.memory.device import MemoryDevice
from repro.memory.dram import ddr4_archer
from repro.memory.mcdram import mcdram_archer
from repro.memory.modes import MemoryMode, MCDRAMConfig, MemorySystem
from repro.memory.numa import NUMANode, NUMATopology, OutOfNodeMemory
from repro.memory.policy import (
    PlacementPolicy,
    Membind,
    Preferred,
    Interleave,
    DefaultLocal,
)
from repro.memory.allocator import Kind, Allocation, HeapAllocator, AllocationError
from repro.memory.mcdram_cache import MCDRAMCacheModel
from repro.memory.latency import LoadedLatencyModel
from repro.memory.migration import (
    MigrationOutcome,
    MigrationPolicy,
    simulate_migration,
    uniform_page_weights,
    zipfian_page_weights,
)
from repro.memory.tlb import TLBModel

__all__ = [
    "MemoryDevice",
    "ddr4_archer",
    "mcdram_archer",
    "MemoryMode",
    "MCDRAMConfig",
    "MemorySystem",
    "NUMANode",
    "NUMATopology",
    "OutOfNodeMemory",
    "PlacementPolicy",
    "Membind",
    "Preferred",
    "Interleave",
    "DefaultLocal",
    "Kind",
    "Allocation",
    "HeapAllocator",
    "AllocationError",
    "MCDRAMCacheModel",
    "LoadedLatencyModel",
    "MigrationOutcome",
    "MigrationPolicy",
    "simulate_migration",
    "uniform_page_weights",
    "zipfian_page_weights",
    "TLBModel",
]
