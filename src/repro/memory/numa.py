"""NUMA nodes, distances and capacity accounting.

This is the layer `numactl --hardware` reads on the real machine: when
MCDRAM is in flat mode the OS exposes two NUMA nodes (node 0 = 96 GB DDR,
node 1 = 16 GB MCDRAM, distance 10 local / 31 remote — Table II); in cache
mode only node 0 exists.

:class:`NUMATopology` also does *capacity accounting*: every simulated
allocation reserves bytes on a node, and over-subscription raises
:class:`OutOfNodeMemory`.  This mechanically reproduces the missing
HBM bars of Fig. 4 ("No measurements for HBM in flat mode when the problem
size exceeds its capacity").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.memory.device import MemoryDevice
from repro.util.units import GiB
from repro.util.validation import check_non_negative


class OutOfNodeMemory(MemoryError):
    """An allocation exceeded a NUMA node's remaining capacity."""

    def __init__(self, node_id: int, requested: int, available: int) -> None:
        super().__init__(
            f"NUMA node {node_id}: requested {requested} bytes but only "
            f"{available} available"
        )
        self.node_id = node_id
        self.requested = requested
        self.available = available


@dataclass
class NUMANode:
    """One OS-visible memory node backed by a device (or a slice of one)."""

    node_id: int
    device: MemoryDevice
    capacity_bytes: int
    used_bytes: int = 0

    def __post_init__(self) -> None:
        check_non_negative("capacity_bytes", self.capacity_bytes)
        check_non_negative("used_bytes", self.used_bytes)
        if self.node_id < 0:
            raise ValueError(f"node_id must be >= 0, got {self.node_id}")
        if self.capacity_bytes > self.device.capacity_bytes:
            raise ValueError(
                f"node capacity {self.capacity_bytes} exceeds device capacity "
                f"{self.device.capacity_bytes}"
            )

    @property
    def free_bytes(self) -> int:
        return self.capacity_bytes - self.used_bytes

    def reserve(self, num_bytes: int) -> None:
        """Account an allocation; raises :class:`OutOfNodeMemory` on overflow."""
        check_non_negative("num_bytes", num_bytes)
        if num_bytes > self.free_bytes:
            raise OutOfNodeMemory(self.node_id, num_bytes, self.free_bytes)
        self.used_bytes += num_bytes

    def release(self, num_bytes: int) -> None:
        """Return bytes to the node; raises on underflow (double free)."""
        check_non_negative("num_bytes", num_bytes)
        if num_bytes > self.used_bytes:
            raise ValueError(
                f"NUMA node {self.node_id}: releasing {num_bytes} bytes but "
                f"only {self.used_bytes} in use"
            )
        self.used_bytes -= num_bytes


# numactl reports these two constants on KNL: 10 within a node, 31 between
# the DDR node and the MCDRAM node (Table II of the paper).
LOCAL_DISTANCE = 10
KNL_REMOTE_DISTANCE = 31


class NUMATopology:
    """A set of NUMA nodes plus the numactl distance matrix."""

    def __init__(
        self,
        nodes: list[NUMANode],
        distances: list[list[int]] | None = None,
    ) -> None:
        if not nodes:
            raise ValueError("topology needs at least one node")
        ids = [n.node_id for n in nodes]
        if ids != list(range(len(nodes))):
            raise ValueError(f"node ids must be 0..{len(nodes) - 1}, got {ids}")
        self.nodes = list(nodes)
        n = len(nodes)
        if distances is None:
            distances = [
                [
                    LOCAL_DISTANCE if i == j else KNL_REMOTE_DISTANCE
                    for j in range(n)
                ]
                for i in range(n)
            ]
        if len(distances) != n or any(len(row) != n for row in distances):
            raise ValueError("distance matrix shape must match node count")
        for i in range(n):
            if distances[i][i] != LOCAL_DISTANCE:
                raise ValueError("self-distance must be 10 (numactl convention)")
            for j in range(n):
                if distances[i][j] != distances[j][i]:
                    raise ValueError("distance matrix must be symmetric")
                if distances[i][j] < LOCAL_DISTANCE:
                    raise ValueError("distances must be >= 10")
        self.distances = [row[:] for row in distances]

    # -- queries --------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    def node(self, node_id: int) -> NUMANode:
        if not 0 <= node_id < len(self.nodes):
            raise ValueError(
                f"no NUMA node {node_id}; topology has nodes "
                f"0..{len(self.nodes) - 1}"
            )
        return self.nodes[node_id]

    def distance(self, a: int, b: int) -> int:
        self.node(a), self.node(b)
        return self.distances[a][b]

    def total_capacity_bytes(self) -> int:
        return sum(n.capacity_bytes for n in self.nodes)

    def total_free_bytes(self) -> int:
        return sum(n.free_bytes for n in self.nodes)

    def describe_hardware(self) -> str:
        """Render the `numactl --hardware` style distance table (Table II)."""
        header = ["Distances:"] + [
            f"{n.node_id} ({n.capacity_bytes // GiB} GB)" for n in self.nodes
        ]
        widths = [len(h) for h in header]
        lines = ["  ".join(h.ljust(w) for h, w in zip(header, widths))]
        for i, row in enumerate(self.distances):
            cells = [str(i).ljust(widths[0])] + [
                str(d).ljust(w) for d, w in zip(row, widths[1:])
            ]
            lines.append("  ".join(cells))
        return "\n".join(lines)
