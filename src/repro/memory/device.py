"""Memory device model.

A :class:`MemoryDevice` carries the *measured* characteristics the paper's
analysis rests on rather than datasheet peaks:

* ``stream_bandwidth(threads_per_core)`` — sustained sequential (STREAM
  triad) bandwidth as a function of hardware threading.  For DDR4 the six
  channels saturate with one thread per core (the four overlapping red
  lines of Fig. 5); for MCDRAM one thread per core is concurrency-limited
  at ~330 GB/s and two threads per core reach the ~420 GB/s device limit
  (the 1.27x of Section IV-D).
* ``random_bandwidth_cap`` — the sustained rate for independent random
  64 B accesses, limited by bank/row behaviour.  It is much lower than the
  sequential rate on both devices and higher on MCDRAM (more channels and
  banks), which is what lets XSBench flip from DRAM-best at 64 threads to
  HBM-best at 256 threads (Fig. 6d).
* ``idle_latency_ns`` — unloaded access latency (130.4 ns DDR4, 154.0 ns
  MCDRAM; Section IV-A).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.units import GB
from repro.util.validation import check_positive


@dataclass(frozen=True)
class MemoryDevice:
    """Static description of one memory technology on the node.

    Parameters
    ----------
    name:
        "DDR4" or "MCDRAM".
    capacity_bytes:
        Installed capacity (96 GiB / 16 GiB on the testbed).
    channels:
        Memory channels (6 DDR4 channels / 8 MCDRAM modules).
    idle_latency_ns:
        Unloaded random-read latency.
    peak_bandwidth:
        Aggregate device limit in bytes/s, reached only with enough request
        concurrency.
    stream_efficiency_1t:
        Fraction of :attr:`peak_bandwidth` achieved by the STREAM triad with
        one hardware thread per core.
    smt_bandwidth_gain:
        Multiplier on the 1-thread STREAM bandwidth when two or more
        hardware threads per core are used (bounded by ``peak_bandwidth``).
    random_bandwidth_cap:
        Sustained bandwidth for independent 64 B random accesses.
    random_write_penalty:
        Fractional capacity loss per unit write share of a random stream.
        Scattered read-modify-writes are expensive on MCDRAM (the EDCs
        serialize partial-line updates), which is why GUPS never profits
        from HBM even though HBM's random *read* capacity is higher.
    stream_write_penalty:
        Fractional *sequential* bandwidth loss per unit write share.
        Zero on DRAM-class devices (STREAM triad writes cost the same as
        reads), substantial on NVM whose write path streams at a fraction
        of the read rate (the asymmetric-bandwidth behaviour the NVM
        emulation literature measures).
    """

    name: str
    capacity_bytes: int
    channels: int
    idle_latency_ns: float
    peak_bandwidth: float
    stream_efficiency_1t: float
    smt_bandwidth_gain: float
    random_bandwidth_cap: float
    random_write_penalty: float = 0.0
    stream_write_penalty: float = 0.0

    def __post_init__(self) -> None:
        check_positive("capacity_bytes", self.capacity_bytes)
        check_positive("channels", self.channels)
        check_positive("idle_latency_ns", self.idle_latency_ns)
        check_positive("peak_bandwidth", self.peak_bandwidth)
        check_positive("random_bandwidth_cap", self.random_bandwidth_cap)
        if not 0.0 < self.stream_efficiency_1t <= 1.0:
            raise ValueError(
                f"stream_efficiency_1t must be in (0, 1], got "
                f"{self.stream_efficiency_1t}"
            )
        if self.smt_bandwidth_gain < 1.0:
            raise ValueError(
                f"smt_bandwidth_gain must be >= 1, got {self.smt_bandwidth_gain}"
            )
        if not 0.0 <= self.random_write_penalty <= 1.0:
            raise ValueError(
                f"random_write_penalty must be in [0, 1], got "
                f"{self.random_write_penalty}"
            )
        if not 0.0 <= self.stream_write_penalty <= 1.0:
            raise ValueError(
                f"stream_write_penalty must be in [0, 1], got "
                f"{self.stream_write_penalty}"
            )

    # -- bandwidth ------------------------------------------------------------
    def stream_bandwidth(
        self, threads_per_core: int = 1, write_fraction: float = 0.0
    ) -> float:
        """Sustained sequential bandwidth (bytes/s) at a threading level.

        One thread per core achieves ``peak * stream_efficiency_1t``; two or
        more threads per core recover the concurrency shortfall up to
        ``smt_bandwidth_gain`` (clamped to the device peak).  The gain ramps
        with the second thread and stays flat after (Fig. 5: ht=2..4 cluster
        together on MCDRAM).  ``write_fraction`` applies the sequential
        write-asymmetry penalty (zero on DRAM-class devices).
        """
        check_positive("threads_per_core", threads_per_core)
        if not 0.0 <= write_fraction <= 1.0:
            raise ValueError(
                f"write_fraction must be in [0, 1], got {write_fraction}"
            )
        base = self.peak_bandwidth * self.stream_efficiency_1t
        if threads_per_core > 1:
            base = min(self.peak_bandwidth, base * self.smt_bandwidth_gain)
        if self.stream_write_penalty > 0.0:
            base *= 1.0 - write_fraction * self.stream_write_penalty
        return base

    def random_bandwidth(
        self, threads_per_core: int = 1, write_fraction: float = 0.0
    ) -> float:
        """Sustained random-access bandwidth cap (bytes/s).

        The cap is a device property (bank-level parallelism); threading
        affects how much of it the cores can *demand*, which is the
        engine's job, so the cap itself is threading-independent.
        ``threads_per_core`` is accepted for interface symmetry.
        ``write_fraction`` applies the scattered-write penalty.
        """
        check_positive("threads_per_core", threads_per_core)
        if not 0.0 <= write_fraction <= 1.0:
            raise ValueError(
                f"write_fraction must be in [0, 1], got {write_fraction}"
            )
        return self.random_bandwidth_cap * (
            1.0 - write_fraction * self.random_write_penalty
        )

    # -- convenience ----------------------------------------------------------
    @property
    def peak_bandwidth_gbs(self) -> float:
        return self.peak_bandwidth / GB

    def fits(self, footprint_bytes: int) -> bool:
        """True if ``footprint_bytes`` fits in this device."""
        if footprint_bytes < 0:
            raise ValueError("footprint must be non-negative")
        return footprint_bytes <= self.capacity_bytes

    def describe(self) -> str:
        return (
            f"{self.name}: {self.capacity_bytes / (1 << 30):.0f} GiB, "
            f"{self.channels} channels, idle latency {self.idle_latency_ns:.1f} ns, "
            f"stream {self.stream_bandwidth(1) / GB:.0f}-"
            f"{self.stream_bandwidth(2) / GB:.0f} GB/s, "
            f"random cap {self.random_bandwidth_cap / GB:.0f} GB/s"
        )
