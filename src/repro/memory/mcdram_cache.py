"""MCDRAM memory-side cache model (cache and hybrid modes).

On KNL, cache mode turns MCDRAM into a *direct-mapped*, 64 B-line,
memory-side last-level cache in front of DDR4.  The paper attributes the
cache-mode behaviour of Figs. 2 and 4 to this organization:

* near-MCDRAM bandwidth while the working set stays well inside 16 GB,
* a steep bandwidth drop as the footprint approaches capacity (physical
  pages scatter across the direct-mapped sets, so conflict misses appear
  *before* 16 GB — 260 GB/s at 8 GB vs 125 GB/s at 11.4 GB),
* below-DRAM bandwidth once the footprint exceeds ~1.5x capacity (every
  access pays the tag probe and the DRAM fill), and
* for random access, a latency *penalty* relative to plain DRAM (tag probe
  in MCDRAM + DDR access on each miss), which is why Graph500 on a large
  graph runs 1.3x faster on DRAM than in cache mode.

Model structure
---------------
``streaming_hit_rate`` uses a monotone survival curve h(r) of the footprint
ratio r = footprint / capacity, anchored at the paper's measured STREAM
points (Section IV-A) for the direct-mapped organization, with the
mechanistic modulo-mapping tail ``(2C - F)/F`` bounding large-r behaviour.
``random_hit_rate`` uses the classic closed form for a direct-mapped cache
under uniform random access, h(r) = (1/r)(1 - e^-r).

``associativity`` is an ablation knob: with >= 8 ways and LRU-like
replacement the premature conflict drop disappears (h = 1 while the set
fits), isolating how much of the paper's cache-mode degradation is due to
direct mapping rather than capacity.
"""

from __future__ import annotations

import functools
import math
from dataclasses import dataclass

import numpy as np
from scipy.interpolate import PchipInterpolator

from repro.memory.device import MemoryDevice
from repro.obs import metrics as obs_metrics
from repro.util.validation import check_non_negative, check_positive

# Survival anchors (footprint ratio -> resident fraction) for streaming
# reuse under direct mapping with OS page scatter.  Calibrated so the
# bandwidth composition reproduces the paper's STREAM measurements:
# 260 GB/s @ 8 GB, 125 GB/s @ 11.4 GB, below-DRAM beyond ~24 GB (Fig. 2).
#
# Ratios are byte ratios against the 16 GiB capacity; the paper's decimal
# "8 / 11.4 / 22.8 GB" STREAM points land at r = 0.466 / 0.664 / 1.327.
_STREAM_SURVIVAL_ANCHORS: tuple[tuple[float, float], ...] = (
    (0.0, 1.0),
    (0.28, 0.998),
    (0.466, 0.995),
    (0.58, 0.95),
    (0.664, 0.675),
    (0.80, 0.55),
    (0.93, 0.46),
    (1.12, 0.38),
    (1.327, 0.28),
    (1.49, 0.22),
    (1.86, 0.10),
    (2.8, 0.03),
    (5.6, 0.0),
)


@functools.lru_cache(maxsize=None)
def _survival_interpolator(
    anchors: tuple[tuple[float, float], ...] = _STREAM_SURVIVAL_ANCHORS,
) -> tuple[PchipInterpolator, float]:
    """The survival spline, built once per anchor set per process.

    Rebuilding the interpolator per :class:`MCDRAMCacheModel` was the
    single largest setup cost on the scalar run path, so it is memoized.
    The memo keys on the anchor tuple — not a single process-wide slot —
    so machines that calibrate their own survival curve never share (or
    clobber) another machine's interpolator.
    """
    xs = np.array([a[0] for a in anchors])
    ys = np.array([a[1] for a in anchors])
    return PchipInterpolator(xs, ys, extrapolate=False), float(xs[-1])


@dataclass(frozen=True)
class CacheModeTraffic:
    """Byte accounting for one byte of application traffic in cache mode."""

    hit_rate: float
    mcdram_bytes: float
    dram_bytes: float


class MCDRAMCacheModel:
    """Analytic model of MCDRAM configured as a memory-side cache.

    Parameters
    ----------
    mcdram, dram:
        The backing devices.
    capacity_bytes:
        Cache capacity; defaults to the full MCDRAM.  Hybrid mode passes
        the cache partition here.
    associativity:
        1 (the real hardware) or more (ablation).
    protocol_efficiency:
        Fraction of flat-mode MCDRAM bandwidth available through the cache
        protocol; 0.80 reproduces the ~260 GB/s all-hit STREAM ceiling
        against the 330 GB/s flat-mode measurement.
    tag_probe_fraction:
        Cost of the in-MCDRAM tag probe paid by misses, as a fraction of
        the MCDRAM idle latency.
    survival_anchors:
        The (footprint ratio, resident fraction) anchor points of the
        streaming survival curve.  Defaults to the KNL calibration above;
        a machine with a differently-organized memory-side cache may pass
        its own.
    """

    def __init__(
        self,
        mcdram: MemoryDevice,
        dram: MemoryDevice,
        *,
        capacity_bytes: int | None = None,
        associativity: int = 1,
        protocol_efficiency: float = 0.80,
        tag_probe_fraction: float = 0.5,
        survival_anchors: tuple[tuple[float, float], ...] = _STREAM_SURVIVAL_ANCHORS,
    ) -> None:
        self.mcdram = mcdram
        self.dram = dram
        self.capacity_bytes = (
            mcdram.capacity_bytes if capacity_bytes is None else capacity_bytes
        )
        check_positive("capacity_bytes", self.capacity_bytes)
        if self.capacity_bytes > mcdram.capacity_bytes:
            raise ValueError(
                f"cache capacity {self.capacity_bytes} exceeds MCDRAM capacity "
                f"{mcdram.capacity_bytes}"
            )
        check_positive("associativity", associativity)
        self.associativity = int(associativity)
        if not 0.0 < protocol_efficiency <= 1.0:
            raise ValueError(
                f"protocol_efficiency must be in (0, 1], got {protocol_efficiency}"
            )
        self.protocol_efficiency = protocol_efficiency
        if not 0.0 <= tag_probe_fraction <= 1.0:
            raise ValueError(
                f"tag_probe_fraction must be in [0, 1], got {tag_probe_fraction}"
            )
        self.tag_probe_fraction = tag_probe_fraction
        self._survival, self._survival_max_r = _survival_interpolator(
            tuple(tuple(a) for a in survival_anchors)
        )
        # footprint_bytes -> hit rate, per pattern.  The model parameters
        # are fixed at construction and sweeps re-ask the same footprints
        # for every thread count, so the scalar path memoizes the spline
        # and exp() evaluations (bit-identical: the stored float is the
        # value the first call computed).
        self._streaming_hit_memo: dict[int, float] = {}
        self._random_hit_memo: dict[int, float] = {}

    # -- geometry -------------------------------------------------------------
    def footprint_ratio(self, footprint_bytes: int) -> float:
        """r = footprint / cache capacity."""
        check_non_negative("footprint_bytes", footprint_bytes)
        return footprint_bytes / self.capacity_bytes

    # -- hit rates --------------------------------------------------------------
    def streaming_hit_rate(self, footprint_bytes: int) -> float:
        """Steady-state hit rate for a repeatedly streamed working set."""
        memo = self._streaming_hit_memo.get(footprint_bytes)
        if memo is not None:
            return memo
        h = self._streaming_hit_rate(footprint_bytes)
        self._streaming_hit_memo[footprint_bytes] = h
        return h

    def _streaming_hit_rate(self, footprint_bytes: int) -> float:
        r = self.footprint_ratio(footprint_bytes)
        if self.associativity >= 8:
            # LRU-like associative organization: no conflict misses while
            # the set fits; beyond capacity approximate random replacement
            # residency C/F (cyclic-LRU thrashing does not occur with the
            # hardware's pseudo-random indexing).
            return 1.0 if r <= 1.0 else min(1.0, 0.95 / r)
        if r >= self._survival_max_r:
            return 0.0
        h = float(self._survival(r))
        # The modulo-mapping bound for contiguous placement: beyond capacity
        # at most (2C - F)/F of a cyclic stream can survive, and residency
        # can never exceed C/F.
        if r > 0:
            h = min(h, 1.0 / r) if r > 1.0 else h
        return max(0.0, min(1.0, h))

    def random_hit_rate(self, footprint_bytes: int) -> float:
        """Steady-state hit rate under uniform random access.

        Direct-mapped closed form h(r) = (1/r)(1 - e^-r); associative
        organizations approach min(1, 1/r).
        """
        memo = self._random_hit_memo.get(footprint_bytes)
        if memo is not None:
            return memo
        h = self._random_hit_rate(footprint_bytes)
        self._random_hit_memo[footprint_bytes] = h
        return h

    def _random_hit_rate(self, footprint_bytes: int) -> float:
        r = self.footprint_ratio(footprint_bytes)
        if r == 0.0:
            return 1.0
        if self.associativity >= 8:
            return min(1.0, 1.0 / r)
        return min(1.0, (1.0 / r) * (1.0 - math.exp(-r)))

    def hit_rate(self, footprint_bytes: int, pattern: str) -> float:
        """Dispatch on access pattern ('sequential' or 'random')."""
        if pattern == "sequential":
            return self.streaming_hit_rate(footprint_bytes)
        if pattern == "random":
            return self.random_hit_rate(footprint_bytes)
        raise ValueError(f"pattern must be 'sequential' or 'random', got {pattern!r}")

    # -- columnar twins ---------------------------------------------------------
    # Each *_many method answers a whole footprint column at once and is
    # bit-identical per element to its scalar twin above: the arithmetic
    # replicates the scalar expression order with exact IEEE ops
    # (multiply, divide, min, max), the survival spline is evaluated
    # through the same PchipInterpolator (whose vectorized evaluation is
    # per-point identical to scalar calls), and transcendentals stay on
    # :mod:`math` per element — ``np.exp`` is not bit-identical to
    # ``math.exp``.  ``tests/memory/test_mcdram_cache.py`` pins exact
    # elementwise equality over a dense footprint grid.

    def streaming_hit_rate_many(self, footprints: np.ndarray) -> np.ndarray:
        """Columnar twin of :meth:`streaming_hit_rate`."""
        r = footprints / self.capacity_bytes
        if self.associativity >= 8:
            out = np.ones(len(r))
            over = r > 1.0
            out[over] = np.minimum(1.0, 0.95 / r[over])
            return out
        out = np.zeros(len(r))
        live = r < self._survival_max_r
        if live.any():
            rl = r[live]
            h = np.asarray(self._survival(rl), dtype=np.float64)
            over = rl > 1.0
            h[over] = np.minimum(h[over], 1.0 / rl[over])
            out[live] = np.maximum(0.0, np.minimum(1.0, h))
        return out

    def random_hit_rate_many(self, footprints: np.ndarray) -> np.ndarray:
        """Columnar twin of :meth:`random_hit_rate`."""
        r = footprints / self.capacity_bytes
        out = np.ones(len(r))
        busy = r != 0.0
        if not busy.any():
            return out
        rb = r[busy]
        if self.associativity >= 8:
            out[busy] = np.minimum(1.0, 1.0 / rb)
            return out
        decay = np.array([math.exp(-x) for x in rb.tolist()])
        out[busy] = np.minimum(1.0, (1.0 / rb) * (1.0 - decay))
        return out

    def hit_rate_many(self, footprints: np.ndarray, pattern: str) -> np.ndarray:
        """Columnar twin of :meth:`hit_rate`."""
        if pattern == "sequential":
            return self.streaming_hit_rate_many(footprints)
        if pattern == "random":
            return self.random_hit_rate_many(footprints)
        raise ValueError(f"pattern must be 'sequential' or 'random', got {pattern!r}")

    def streaming_bandwidth_many(
        self,
        footprints: np.ndarray,
        threads_per_core: int = 1,
        write_fraction: float = 0.0,
    ) -> np.ndarray:
        """Columnar twin of :meth:`streaming_bandwidth`."""
        h = self.streaming_hit_rate_many(footprints)
        mc_bw = (
            self.mcdram.stream_bandwidth(threads_per_core, write_fraction)
            * self.protocol_efficiency
        )
        dr_bw = self.dram.stream_bandwidth(threads_per_core, write_fraction)
        # streaming_traffic: MCDRAM sees every byte, DRAM the miss share.
        time_per_byte = 1.0 / mc_bw + (1.0 - h) / dr_bw
        return 1.0 / time_per_byte

    def random_bandwidth_cap_many(
        self, footprints: np.ndarray, write_fraction: float = 0.0
    ) -> np.ndarray:
        """Columnar twin of :meth:`random_bandwidth_cap`."""
        h = self.random_hit_rate_many(footprints)
        mc = (
            self.mcdram.random_bandwidth(write_fraction=write_fraction)
            * self.protocol_efficiency
        )
        dr = self.dram.random_bandwidth(write_fraction=write_fraction)
        miss = 1.0 - h
        out = np.full(len(h), mc)
        limited = miss > 0.0
        out[limited] = np.minimum(mc, dr / miss[limited])
        return out

    def random_latency_ns_many(self, footprints: np.ndarray) -> np.ndarray:
        """Columnar twin of :meth:`random_latency_ns`."""
        h = self.random_hit_rate_many(footprints)
        hit_ns = self.mcdram.idle_latency_ns
        miss_ns = (
            self.tag_probe_fraction * self.mcdram.idle_latency_ns
            + self.dram.idle_latency_ns
        )
        return h * hit_ns + (1.0 - h) * miss_ns

    # -- observability -----------------------------------------------------------
    def record_accesses(
        self, footprint_bytes: int, pattern: str, lines: float
    ) -> float:
        """Account ``lines`` cache-line accesses in the metrics registry.

        Called by the performance engine per phase-placement when an
        observation session is active (:mod:`repro.obs`).  Emits
        ``mcdram_cache.hits`` / ``misses`` / ``conflict_misses`` counters
        labelled by pattern.  Conflict misses are the misses a
        fully-associative cache of the same capacity would not have taken
        — the share the paper attributes to direct-mapped page scatter
        (its premature pre-16 GB bandwidth drop) — i.e.
        ``(h_capacity - h) x lines`` with ``h_capacity = min(1, C/F)``.

        Returns the hit rate used, so callers can split device traffic
        without recomputing it.
        """
        h = self.hit_rate(footprint_bytes, pattern)
        if lines <= 0.0 or not obs_metrics.enabled():
            return h
        r = self.footprint_ratio(footprint_bytes)
        capacity_hit_rate = 1.0 if r <= 1.0 else 1.0 / r
        labels = {"pattern": pattern}
        obs_metrics.add("mcdram_cache.accesses", lines, labels)
        obs_metrics.add("mcdram_cache.hits", h * lines, labels)
        obs_metrics.add("mcdram_cache.misses", (1.0 - h) * lines, labels)
        obs_metrics.add(
            "mcdram_cache.conflict_misses",
            max(0.0, capacity_hit_rate - h) * lines,
            labels,
        )
        obs_metrics.set_gauge("mcdram_cache.hit_rate", h, labels)
        return h

    # -- bandwidth --------------------------------------------------------------
    def streaming_traffic(self, footprint_bytes: int) -> CacheModeTraffic:
        """Per-byte traffic on each device for a streaming access."""
        h = self.streaming_hit_rate(footprint_bytes)
        # Hits read MCDRAM; misses read DRAM and write the fill into
        # MCDRAM, so MCDRAM sees one byte either way.
        return CacheModeTraffic(hit_rate=h, mcdram_bytes=1.0, dram_bytes=1.0 - h)

    def streaming_bandwidth(
        self,
        footprint_bytes: int,
        threads_per_core: int = 1,
        write_fraction: float = 0.0,
    ) -> float:
        """Application-visible sequential bandwidth (bytes/s) in cache mode.

        Composition: the MCDRAM side serves every byte through the cache
        protocol (``protocol_efficiency`` of flat-mode bandwidth); misses
        additionally serialize a DRAM transfer.  The additive form captures
        the observed below-DRAM regime for far-over-capacity footprints.
        ``write_fraction`` reaches both devices' sequential write-asymmetry
        penalties (a no-op for the KNL devices).
        """
        traffic = self.streaming_traffic(footprint_bytes)
        mc_bw = (
            self.mcdram.stream_bandwidth(threads_per_core, write_fraction)
            * self.protocol_efficiency
        )
        dr_bw = self.dram.stream_bandwidth(threads_per_core, write_fraction)
        time_per_byte = traffic.mcdram_bytes / mc_bw + traffic.dram_bytes / dr_bw
        return 1.0 / time_per_byte

    def random_bandwidth_cap(
        self, footprint_bytes: int, write_fraction: float = 0.0
    ) -> float:
        """Sustained random-access bandwidth through the cache (bytes/s).

        Every probe consumes MCDRAM tag/data capacity; the miss fraction
        additionally consumes DDR capacity.  The two operate concurrently,
        so whichever saturates first caps the stream.
        """
        h = self.random_hit_rate(footprint_bytes)
        mc = (
            self.mcdram.random_bandwidth(write_fraction=write_fraction)
            * self.protocol_efficiency
        )
        dr = self.dram.random_bandwidth(write_fraction=write_fraction)
        miss = 1.0 - h
        if miss <= 0.0:
            return mc
        return min(mc, dr / miss)

    # -- latency ----------------------------------------------------------------
    def random_latency_ns(self, footprint_bytes: int) -> float:
        """Average random-read latency through the cache (ns).

        A hit costs the MCDRAM latency; a miss pays the MCDRAM tag probe
        plus the DRAM access.  With a large footprint this tends to
        ``tag + DRAM`` — *worse* than plain DRAM, matching the paper's
        Fig. 4 bottom panels.
        """
        h = self.random_hit_rate(footprint_bytes)
        hit_ns = self.mcdram.idle_latency_ns
        miss_ns = (
            self.tag_probe_fraction * self.mcdram.idle_latency_ns
            + self.dram.idle_latency_ns
        )
        return h * hit_ns + (1.0 - h) * miss_ns
