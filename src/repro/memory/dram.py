"""DDR4 device preset for the Archer testbed.

Numbers come straight from the paper's measurements (Section IV-A):
77 GB/s STREAM triad with one thread per core, only marginal gains from
hyper-threading (the overlapping red lines of Fig. 5), and 130.4 ns idle
latency.  The random-access cap is calibrated so that latency-bound
workloads on DRAM gain ~1.5x from hyper-threading before saturating
(Figs. 6c/6d, DRAM series).
"""

from __future__ import annotations

from repro.memory.device import MemoryDevice
from repro.util.units import GB, GiB


def ddr4_archer(capacity_gib: float = 96.0) -> MemoryDevice:
    """The 96 GiB six-channel DDR4-2133 system of the testbed."""
    return MemoryDevice(
        name="DDR4",
        capacity_bytes=int(capacity_gib * GiB),
        channels=6,
        idle_latency_ns=130.4,
        peak_bandwidth=80.0 * GB,
        stream_efficiency_1t=77.0 / 80.0,
        smt_bandwidth_gain=80.0 / 77.0,
        # ~370M independent 64 B lines/s: calibrated so XSBench's DRAM
        # hyper-threading gain saturates at the paper's 1.5x (Fig. 6d).
        random_bandwidth_cap=20.7 * GB,
        random_write_penalty=0.0,
    )
