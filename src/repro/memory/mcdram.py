"""MCDRAM (on-package HBM) device preset for the Archer testbed.

Measured characteristics from the paper: 330 GB/s STREAM triad with one
thread per core, up to ~420 GB/s with two or more hardware threads per core
(the 1.27x of Section IV-D), and 154.0 ns idle latency — *higher* than
DDR4, which is the paper's central explanation for random-access workloads
preferring DRAM.  The random-access cap exceeds DDR4's (8 EDC channels and
more bank-level parallelism), which is why enough hardware threads make HBM
the best option even for XSBench (Fig. 6d).
"""

from __future__ import annotations

from repro.memory.device import MemoryDevice
from repro.util.units import GB, GiB


def mcdram_archer(capacity_gib: float = 16.0) -> MemoryDevice:
    """The 16 GiB eight-module MCDRAM of the testbed."""
    return MemoryDevice(
        name="MCDRAM",
        capacity_bytes=int(capacity_gib * GiB),
        channels=8,
        idle_latency_ns=154.0,
        peak_bandwidth=430.0 * GB,
        stream_efficiency_1t=330.0 / 430.0,
        smt_bandwidth_gain=1.27,
        # ~535M independent 64 B lines/s: calibrated so XSBench's HBM
        # hyper-threading gain reaches the paper's 2.5x at 256 threads
        # (Fig. 6d).  Scattered writes pay heavily at the EDCs.
        random_bandwidth_cap=30.3 * GB,
        random_write_penalty=0.65,
    )
