"""Placement policies mirroring numactl semantics.

The paper's three configurations are expressed through these policies:

* ``DRAM``  = flat mode + :class:`Membind` (node 0),
* ``HBM``   = flat mode + :class:`Membind` (node 1),
* ``Cache`` = cache mode + :class:`Membind` (node 0), the only node.

:class:`Interleave` covers the paper's Section IV-C remark about running
problems larger than either memory by interleaving pages across both, and
:class:`Preferred` is the memkind ``HBW_PREFERRED`` fallback behaviour.

A policy, given a topology and a request size, yields the per-node byte
split; strict policies raise :class:`~repro.memory.numa.OutOfNodeMemory`
through the node accounting, while ``Preferred`` falls back.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

from repro.memory.numa import NUMATopology, OutOfNodeMemory
from repro.util.validation import check_non_negative


class PlacementPolicy(abc.ABC):
    """Strategy deciding which NUMA node(s) back an allocation."""

    @abc.abstractmethod
    def split(self, topology: NUMATopology, num_bytes: int) -> dict[int, int]:
        """Return ``{node_id: bytes}`` for an allocation of ``num_bytes``.

        The split must sum to ``num_bytes``.  Implementations may raise
        :class:`OutOfNodeMemory` for strict bindings that cannot be
        satisfied; they must *not* mutate node accounting (the allocator
        reserves after a successful split).
        """

    @abc.abstractmethod
    def describe(self) -> str:
        """numactl-style rendering, e.g. ``--membind=1``."""


@dataclass(frozen=True)
class Membind(PlacementPolicy):
    """Strict binding to one node (``numactl --membind=N``)."""

    node_id: int

    def split(self, topology: NUMATopology, num_bytes: int) -> dict[int, int]:
        check_non_negative("num_bytes", num_bytes)
        node = topology.node(self.node_id)
        if num_bytes > node.free_bytes:
            raise OutOfNodeMemory(self.node_id, num_bytes, node.free_bytes)
        return {self.node_id: num_bytes}

    def describe(self) -> str:
        return f"--membind={self.node_id}"


@dataclass(frozen=True)
class Preferred(PlacementPolicy):
    """Prefer one node, overflow to the others (``numactl --preferred=N``).

    Overflow goes to the remaining nodes in id order, matching Linux's
    default fallback ordering on a two-node KNL.
    """

    node_id: int

    def split(self, topology: NUMATopology, num_bytes: int) -> dict[int, int]:
        check_non_negative("num_bytes", num_bytes)
        topology.node(self.node_id)
        remaining = num_bytes
        split: dict[int, int] = {}
        order = [self.node_id] + [
            n.node_id for n in topology.nodes if n.node_id != self.node_id
        ]
        for node_id in order:
            if remaining == 0:
                break
            take = min(remaining, topology.node(node_id).free_bytes)
            if take:
                split[node_id] = take
                remaining -= take
        if remaining:
            raise OutOfNodeMemory(self.node_id, num_bytes, num_bytes - remaining)
        return split

    def describe(self) -> str:
        return f"--preferred={self.node_id}"


@dataclass(frozen=True)
class Interleave(PlacementPolicy):
    """Round-robin pages over a node set (``numactl --interleave=...``).

    The byte split is proportional to equal page shares, truncated by each
    node's free space; a node running out redirects its share to the
    remaining nodes (Linux behaviour).
    """

    node_ids: tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.node_ids:
            raise ValueError("interleave needs at least one node")
        if len(set(self.node_ids)) != len(self.node_ids):
            raise ValueError(f"duplicate node ids: {self.node_ids}")

    def split(self, topology: NUMATopology, num_bytes: int) -> dict[int, int]:
        check_non_negative("num_bytes", num_bytes)
        for node_id in self.node_ids:
            topology.node(node_id)
        active = list(self.node_ids)
        split = {node_id: 0 for node_id in active}
        remaining = num_bytes
        while remaining and active:
            share, leftover = divmod(remaining, len(active))
            progressed = False
            next_active: list[int] = []
            for idx, node_id in enumerate(active):
                want = share + (1 if idx < leftover else 0)
                room = topology.node(node_id).free_bytes - split[node_id]
                take = min(want, room)
                split[node_id] += take
                remaining -= take
                if take:
                    progressed = True
                if room - take > 0:
                    next_active.append(node_id)
            active = next_active
            if not progressed and remaining:
                break
        if remaining:
            raise OutOfNodeMemory(self.node_ids[0], num_bytes, num_bytes - remaining)
        return {k: v for k, v in split.items() if v}

    def describe(self) -> str:
        return "--interleave=" + ",".join(str(n) for n in self.node_ids)


@dataclass(frozen=True)
class DefaultLocal(PlacementPolicy):
    """First-touch local allocation (no numactl).

    On the KNL testbed threads run on the cores, whose local node is the
    DDR node in both flat and cache modes, so default-local behaves like
    ``Membind(0)`` with ``Preferred``-style overflow to other nodes.
    """

    def split(self, topology: NUMATopology, num_bytes: int) -> dict[int, int]:
        return Preferred(0).split(topology, num_bytes)

    def describe(self) -> str:
        return "(default local)"
