"""Epoch-based hot-page migration between DDR and the flat HBM node.

The paper's future work points from coarse binding toward per-structure
and eventually automatic placement.  This module models the next step on
that road — an AutoHBW-style runtime that samples page access counts per
epoch and migrates the hottest pages into the (limited) HBM node:

* pages have per-epoch access frequencies (the caller supplies a
  distribution; Zipf for graph-like workloads, uniform for GUPS-like),
* each epoch the policy promotes the hottest non-resident pages and
  demotes the coldest resident ones, bounded by a migration budget,
* migrations cost real traffic (a page read + write across both
  memories), charged against the epoch's useful traffic.

The study's question — when does dynamic migration beat the static
placements the paper evaluates? — is answered in
``bench_ablation_migration.py``: skewed access wins big, uniform access
can lose to plain DRAM binding.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.prng import make_rng
from repro.util.validation import check_positive

PAGE_BYTES = 4096


@dataclass(frozen=True)
class MigrationOutcome:
    """Result of simulating one epoch sequence."""

    epochs: int
    hbm_hit_fraction: float        # share of accesses served from HBM
    migrated_pages: int
    migration_traffic_bytes: int
    steady_state_epoch: int        # first epoch within 1% of final hit rate

    @property
    def converged(self) -> bool:
        return self.steady_state_epoch < self.epochs


@dataclass(frozen=True)
class MigrationPolicy:
    """Hot-page promotion policy.

    Parameters
    ----------
    hbm_pages:
        Capacity of the HBM node in pages.
    budget_pages_per_epoch:
        Migration bandwidth bound per epoch.
    promotion_threshold:
        A page must be accessed at least this many times in an epoch to
        be a promotion candidate (filters cold noise).
    """

    hbm_pages: int
    budget_pages_per_epoch: int = 4096
    promotion_threshold: int = 2

    def __post_init__(self) -> None:
        check_positive("hbm_pages", self.hbm_pages)
        check_positive("budget_pages_per_epoch", self.budget_pages_per_epoch)
        check_positive("promotion_threshold", self.promotion_threshold)


def zipfian_page_weights(n_pages: int, skew: float = 0.99) -> np.ndarray:
    """Zipf popularity over pages, scattered so rank is uncorrelated with
    page index."""
    check_positive("n_pages", n_pages)
    if skew <= 0:
        raise ValueError(f"skew must be positive, got {skew}")
    weights = np.arange(1, n_pages + 1, dtype=np.float64) ** -skew
    rng = make_rng(None, "zipf-pages", n_pages, skew)
    rng.shuffle(weights)
    return weights / weights.sum()


def uniform_page_weights(n_pages: int) -> np.ndarray:
    """Uniform popularity (the GUPS situation: no hot set to find)."""
    check_positive("n_pages", n_pages)
    return np.full(n_pages, 1.0 / n_pages)


def simulate_migration(
    page_weights: np.ndarray,
    policy: MigrationPolicy,
    *,
    epochs: int = 20,
    accesses_per_epoch: int = 200_000,
    seed: int | None = None,
) -> MigrationOutcome:
    """Run the epoch loop.

    Each epoch samples accesses from ``page_weights``, counts per-page
    frequencies, and applies the policy; the HBM hit fraction is
    accumulated over all epochs (including the cold start).
    """
    weights = np.asarray(page_weights, dtype=np.float64)
    if weights.ndim != 1 or weights.size == 0:
        raise ValueError("page_weights must be a non-empty 1-D array")
    if not np.isclose(weights.sum(), 1.0):
        raise ValueError("page_weights must sum to 1")
    check_positive("epochs", epochs)
    check_positive("accesses_per_epoch", accesses_per_epoch)
    rng = make_rng(seed, "migration", weights.size, epochs)

    n_pages = weights.size
    resident = np.zeros(n_pages, dtype=bool)
    hits = 0
    total = 0
    migrated = 0
    hit_history: list[float] = []

    for _ in range(epochs):
        pages = rng.choice(n_pages, size=accesses_per_epoch, p=weights)
        counts = np.bincount(pages, minlength=n_pages)
        epoch_hits = int(counts[resident].sum())
        hits += epoch_hits
        total += accesses_per_epoch
        hit_history.append(epoch_hits / accesses_per_epoch)

        # Promotion candidates: hot non-resident pages.
        candidates = np.flatnonzero(
            (~resident) & (counts >= policy.promotion_threshold)
        )
        if candidates.size == 0:
            continue
        order = candidates[np.argsort(counts[candidates])[::-1]]
        order = order[: policy.budget_pages_per_epoch]
        free = policy.hbm_pages - int(resident.sum())
        promote_into_free = order[:free]
        resident[promote_into_free] = True
        migrated += promote_into_free.size
        overflow = order[free:]
        if overflow.size:
            # Demote the coldest resident pages to make room, but only
            # where the newcomer is strictly hotter.
            resident_idx = np.flatnonzero(resident)
            coldest = resident_idx[np.argsort(counts[resident_idx])]
            swaps = min(overflow.size, coldest.size)
            hotter = counts[overflow[:swaps]] > counts[coldest[:swaps]]
            resident[coldest[:swaps][hotter]] = False
            resident[overflow[:swaps][hotter]] = True
            migrated += 2 * int(hotter.sum())

    final = hit_history[-1]
    steady = epochs
    for i, value in enumerate(hit_history):
        if abs(value - final) <= 0.01:
            steady = i
            break
    return MigrationOutcome(
        epochs=epochs,
        hbm_hit_fraction=hits / total,
        migrated_pages=migrated,
        migration_traffic_bytes=migrated * 2 * PAGE_BYTES,
        steady_state_epoch=steady,
    )
