"""MCDRAM memory modes and the assembled memory system.

Section II of the paper: MCDRAM can be configured at boot in three modes —

* **flat**: MCDRAM is a second NUMA node beside DDR (Table II: node 0 =
  96 GB DDR, node 1 = 16 GB MCDRAM, distances 10/31),
* **cache**: MCDRAM is an OS-transparent direct-mapped memory-side cache
  (one NUMA node visible), and
* **hybrid**: a boot-time split — part cache, part flat node.

Changing mode requires "a system reboot and modification of the BIOS"; in
the simulation that corresponds to constructing a fresh
:class:`MemorySystem`, which is exactly as stateless as the paper's
per-configuration experiment sets.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.memory.device import MemoryDevice
from repro.memory.dram import ddr4_archer
from repro.memory.mcdram import mcdram_archer
from repro.memory.mcdram_cache import MCDRAMCacheModel
from repro.memory.numa import (
    KNL_REMOTE_DISTANCE,
    LOCAL_DISTANCE,
    NUMANode,
    NUMATopology,
)


class MemoryMode(enum.Enum):
    """BIOS-selected MCDRAM operating mode."""

    FLAT = "flat"
    CACHE = "cache"
    HYBRID = "hybrid"


# Hybrid mode on real hardware allows 25%, 50% or 75% of MCDRAM as cache.
HYBRID_CACHE_FRACTIONS = (0.25, 0.5, 0.75)


@dataclass(frozen=True)
class MCDRAMConfig:
    """Mode selection plus the hybrid split.

    ``cache_fraction`` is the share of MCDRAM acting as cache: it is forced
    to 0.0 in flat mode and 1.0 in cache mode, and must be one of
    :data:`HYBRID_CACHE_FRACTIONS` in hybrid mode (the BIOS only offers
    quarter steps).
    """

    mode: MemoryMode = MemoryMode.CACHE
    cache_fraction: float = 1.0
    cache_associativity: int = 1

    def __post_init__(self) -> None:
        if self.cache_associativity < 1:
            raise ValueError(
                f"cache_associativity must be >= 1, got {self.cache_associativity}"
            )
        if self.mode is MemoryMode.FLAT and self.cache_fraction != 0.0:
            raise ValueError("flat mode requires cache_fraction == 0.0")
        if self.mode is MemoryMode.CACHE and self.cache_fraction != 1.0:
            raise ValueError("cache mode requires cache_fraction == 1.0")
        if (
            self.mode is MemoryMode.HYBRID
            and self.cache_fraction not in HYBRID_CACHE_FRACTIONS
        ):
            raise ValueError(
                f"hybrid cache_fraction must be one of {HYBRID_CACHE_FRACTIONS}, "
                f"got {self.cache_fraction}"
            )

    @classmethod
    def flat(cls, *, cache_associativity: int = 1) -> "MCDRAMConfig":
        return cls(MemoryMode.FLAT, 0.0, cache_associativity)

    @classmethod
    def cache(cls, *, cache_associativity: int = 1) -> "MCDRAMConfig":
        return cls(MemoryMode.CACHE, 1.0, cache_associativity)

    @classmethod
    def hybrid(
        cls, cache_fraction: float = 0.5, *, cache_associativity: int = 1
    ) -> "MCDRAMConfig":
        return cls(MemoryMode.HYBRID, cache_fraction, cache_associativity)


class MemorySystem:
    """The node's memory subsystem under one MCDRAM configuration.

    Exposes the OS-visible NUMA topology (with capacity accounting), the
    per-node backing devices, and — in cache/hybrid modes — the
    :class:`MCDRAMCacheModel` standing in front of DDR.
    """

    def __init__(
        self,
        config: MCDRAMConfig,
        *,
        dram: MemoryDevice | None = None,
        mcdram: MemoryDevice | None = None,
    ) -> None:
        self.config = config
        self.dram = dram if dram is not None else ddr4_archer()
        self.mcdram = mcdram if mcdram is not None else mcdram_archer()

        cache_bytes = int(round(self.mcdram.capacity_bytes * config.cache_fraction))
        flat_hbm_bytes = self.mcdram.capacity_bytes - cache_bytes
        self.cache_bytes = cache_bytes
        self.flat_hbm_bytes = flat_hbm_bytes

        nodes = [NUMANode(0, self.dram, self.dram.capacity_bytes)]
        if flat_hbm_bytes > 0:
            nodes.append(NUMANode(1, self.mcdram, flat_hbm_bytes))
        n = len(nodes)
        distances = [
            [LOCAL_DISTANCE if i == j else KNL_REMOTE_DISTANCE for j in range(n)]
            for i in range(n)
        ]
        self.topology = NUMATopology(nodes, distances)

        self.cache_model: MCDRAMCacheModel | None = None
        if cache_bytes > 0:
            self.cache_model = MCDRAMCacheModel(
                self.mcdram,
                self.dram,
                capacity_bytes=cache_bytes,
                associativity=config.cache_associativity,
            )

    # -- queries --------------------------------------------------------------
    @property
    def mode(self) -> MemoryMode:
        return self.config.mode

    @property
    def has_flat_hbm(self) -> bool:
        return self.flat_hbm_bytes > 0

    @property
    def dram_fronted_by_cache(self) -> bool:
        """True when accesses to node 0 pass through the MCDRAM cache."""
        return self.cache_model is not None

    def device_of_node(self, node_id: int) -> MemoryDevice:
        """The technology backing a NUMA node."""
        self.topology.node(node_id)
        return self.dram if node_id == 0 else self.mcdram

    def numactl_hardware(self) -> str:
        """The `numactl --hardware` distance table (reproduces Table II)."""
        return self.topology.describe_hardware()

    def describe(self) -> str:
        parts = [f"MCDRAM mode: {self.mode.value}"]
        if self.cache_bytes:
            parts.append(
                f"cache partition {self.cache_bytes / (1 << 30):.0f} GiB "
                f"({self.config.cache_associativity}-way)"
            )
        if self.flat_hbm_bytes:
            parts.append(
                f"flat HBM node {self.flat_hbm_bytes / (1 << 30):.0f} GiB"
            )
        parts.append(f"DDR node {self.dram.capacity_bytes / (1 << 30):.0f} GiB")
        return ", ".join(parts)
