"""TLB and page-walk model.

Fig. 3 of the paper notes that beyond 128 MB the measured random-read
latency "includes effects from cache misses, TLB misses and page walk".
This module models the KNL address-translation path:

* a first-level DTLB (64 entries x 4 KB pages = 256 KB coverage),
* a second-level TLB (256 entries, 1 MB coverage with 4 KB pages), and
* a hardware page walker whose accesses themselves hit in the cache
  hierarchy while the page tables are small and fall out to memory as the
  footprint grows — page walks to a slower memory are slower, which keeps
  the DRAM-vs-HBM latency gap alive at gigabyte block sizes.

The output is an *additional* average latency per random access as a
function of block size and backing-memory latency.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.obs import metrics as obs_metrics
from repro.util.units import KiB, MiB
from repro.util.validation import check_non_negative, check_positive


@dataclass(frozen=True)
class TLBModel:
    """Two-level TLB with a hardware page walker.

    Parameters
    ----------
    l1_entries, l2_entries:
        TLB entry counts (KNL: 64 / 256 for 4 KB pages).
    page_bytes:
        Page size used for translations (the testbed ran 4 KB pages; pass
        2 MiB to model hugepage runs).
    l2_tlb_hit_ns:
        Cost of an L1-TLB miss that hits the second-level TLB.
    walk_levels:
        Page-table levels walked on a full miss (4 on x86-64).
    walk_cache_coverage_bytes:
        Footprint up to which walker accesses mostly hit cached page-table
        entries (the mesh L2 caching the page tables).
    walk_overlap:
        Fraction of walk time *not* hidden under the data access.
    """

    l1_entries: int = 64
    l2_entries: int = 256
    page_bytes: int = 4 * KiB
    l2_tlb_hit_ns: float = 8.0
    walk_levels: int = 4
    walk_cache_coverage_bytes: int = 64 * MiB
    walk_overlap: float = 0.85

    def __post_init__(self) -> None:
        check_positive("l1_entries", self.l1_entries)
        check_positive("l2_entries", self.l2_entries)
        check_positive("page_bytes", self.page_bytes)
        check_non_negative("l2_tlb_hit_ns", self.l2_tlb_hit_ns)
        check_positive("walk_levels", self.walk_levels)
        check_positive("walk_cache_coverage_bytes", self.walk_cache_coverage_bytes)
        if not 0.0 <= self.walk_overlap <= 1.0:
            raise ValueError(f"walk_overlap must be in [0, 1], got {self.walk_overlap}")

    # -- coverage -----------------------------------------------------------
    @property
    def l1_coverage_bytes(self) -> int:
        return self.l1_entries * self.page_bytes

    @property
    def l2_coverage_bytes(self) -> int:
        return self.l2_entries * self.page_bytes

    def l1_miss_rate(self, footprint_bytes: int) -> float:
        """Probability a random access misses the first-level TLB."""
        check_non_negative("footprint_bytes", footprint_bytes)
        if footprint_bytes <= self.l1_coverage_bytes:
            return 0.0
        return 1.0 - self.l1_coverage_bytes / footprint_bytes

    def l2_miss_rate(self, footprint_bytes: int) -> float:
        """Probability a random access misses both TLB levels."""
        check_non_negative("footprint_bytes", footprint_bytes)
        if footprint_bytes <= self.l2_coverage_bytes:
            return 0.0
        return 1.0 - self.l2_coverage_bytes / footprint_bytes

    # -- cost -----------------------------------------------------------------
    def walk_depth(self, footprint_bytes: int) -> float:
        """Average page-table levels that fall out of the walker caches.

        While the leaf tables fit in the mesh L2 (below
        ``walk_cache_coverage_bytes`` of mapped data) walks cost cache
        hits; each doubling beyond pushes roughly half a level out to
        memory, saturating at ``walk_levels`` (at extreme footprints even
        the upper levels fall out of cache between touches — this slow
        tail is the gentle large-size decline of Figs. 4d/4e).
        """
        check_non_negative("footprint_bytes", footprint_bytes)
        if footprint_bytes <= self.walk_cache_coverage_bytes:
            return 0.0
        doublings = math.log2(footprint_bytes / self.walk_cache_coverage_bytes)
        return min(float(self.walk_levels), 0.5 * doublings)

    def translation_overhead_ns(
        self,
        footprint_bytes: int,
        memory_latency_ns: float,
        cached_walk_ns: float = 40.0,
    ) -> float:
        """Average added latency per random access from address translation.

        Three contributions: L1-TLB misses that hit the L2 TLB, L2-TLB
        misses whose walk stays in cache (``cached_walk_ns``), and the
        memory-resident share of deep walks, priced at the backing memory's
        latency per level.
        """
        check_positive("memory_latency_ns", memory_latency_ns)
        check_non_negative("cached_walk_ns", cached_walk_ns)
        l1_miss = self.l1_miss_rate(footprint_bytes)
        l2_miss = self.l2_miss_rate(footprint_bytes)
        depth = self.walk_depth(footprint_bytes)
        stlb_term = (l1_miss - l2_miss) * self.l2_tlb_hit_ns
        cached_walk_term = l2_miss * cached_walk_ns
        memory_walk_term = l2_miss * depth * memory_latency_ns * self.walk_overlap
        return stlb_term + cached_walk_term + memory_walk_term

    # -- columnar twins ---------------------------------------------------------
    # Bit-identical per element to the scalar methods above: divisions and
    # the fused sum replicate the scalar expression order, and ``log2``
    # stays on :mod:`math` per element (``np.log2`` is not bit-identical).
    # Footprints are exact in float64 for every modelled size, so the
    # float division matches Python's exact-int true division.

    def l1_miss_rate_many(self, footprints: np.ndarray) -> np.ndarray:
        """Columnar twin of :meth:`l1_miss_rate`."""
        out = np.zeros(len(footprints))
        over = footprints > self.l1_coverage_bytes
        out[over] = 1.0 - self.l1_coverage_bytes / footprints[over]
        return out

    def l2_miss_rate_many(self, footprints: np.ndarray) -> np.ndarray:
        """Columnar twin of :meth:`l2_miss_rate`."""
        out = np.zeros(len(footprints))
        over = footprints > self.l2_coverage_bytes
        out[over] = 1.0 - self.l2_coverage_bytes / footprints[over]
        return out

    def walk_depth_many(self, footprints: np.ndarray) -> np.ndarray:
        """Columnar twin of :meth:`walk_depth`."""
        out = np.zeros(len(footprints))
        over = footprints > self.walk_cache_coverage_bytes
        if over.any():
            cov = self.walk_cache_coverage_bytes
            doublings = np.array(
                [math.log2(fp / cov) for fp in footprints[over].tolist()]
            )
            out[over] = np.minimum(float(self.walk_levels), 0.5 * doublings)
        return out

    def translation_overhead_ns_many(
        self,
        footprints: np.ndarray,
        memory_latency_ns: float | np.ndarray,
        cached_walk_ns: float = 40.0,
    ) -> np.ndarray:
        """Columnar twin of :meth:`translation_overhead_ns`.

        ``memory_latency_ns`` may be a scalar or a per-element column
        (DRAM-cached locations price the walk at a footprint-dependent
        latency).
        """
        check_non_negative("cached_walk_ns", cached_walk_ns)
        l1_miss = self.l1_miss_rate_many(footprints)
        l2_miss = self.l2_miss_rate_many(footprints)
        depth = self.walk_depth_many(footprints)
        stlb_term = (l1_miss - l2_miss) * self.l2_tlb_hit_ns
        cached_walk_term = l2_miss * cached_walk_ns
        memory_walk_term = l2_miss * depth * memory_latency_ns * self.walk_overlap
        return stlb_term + cached_walk_term + memory_walk_term

    # -- observability -----------------------------------------------------------
    def record_walks(self, footprint_bytes: int, accesses: float) -> None:
        """Account the translation behaviour of ``accesses`` random accesses.

        Called by the performance engine per random phase when an
        observation session is active (:mod:`repro.obs`).  Emits
        ``tlb.l1_misses`` (accesses missing the first-level DTLB),
        ``tlb.walks`` (accesses missing both levels and walking the page
        tables) and the ``tlb.walk_depth`` gauge (average page-table
        levels falling out of the walker caches at this footprint).
        """
        if accesses <= 0.0 or not obs_metrics.enabled():
            return
        obs_metrics.add(
            "tlb.l1_misses", self.l1_miss_rate(footprint_bytes) * accesses
        )
        obs_metrics.add("tlb.walks", self.l2_miss_rate(footprint_bytes) * accesses)
        obs_metrics.set_gauge("tlb.walk_depth", self.walk_depth(footprint_bytes))
