"""Zero-dependency span tracer with a no-op fast path.

A *span* is one timed, named, optionally tagged stretch of execution.
Spans nest: the tracer keeps a per-thread stack, so a span opened while
another is active records its parent and depth, and the collected records
reconstruct the call tree (``runner.run`` > ``perfmodel.run`` >
``perfmodel.phase`` ...).

Tracing is **off by default** and free when off: :func:`span` checks one
module-level boolean and returns a shared singleton no-op context manager
— no object construction, no clock read, no lock.  The test suite pins
this with an allocation-counting test
(``tests/obs/test_trace.py::TestDisabledFastPath``).

Enabled tracing is driven through :mod:`repro.obs` (an
:class:`~repro.obs.session.Observation` session installs a
:class:`Tracer` here); this module only owns the mechanics: clocking
(``time.perf_counter_ns``), nesting, thread-safe record collection and
the Chrome ``trace_event`` export consumed by ``chrome://tracing`` /
Perfetto.
"""

from __future__ import annotations

import threading
import time
from collections.abc import Mapping
from dataclasses import dataclass, field
from typing import Any

__all__ = [
    "SpanRecord",
    "Tracer",
    "span",
    "enabled",
    "install",
    "uninstall",
    "active_tracer",
    "to_chrome_trace",
]


@dataclass(frozen=True)
class SpanRecord:
    """One completed span."""

    name: str
    start_ns: int
    duration_ns: int
    depth: int
    thread_id: int
    parent: str | None = None
    tags: Mapping[str, Any] | None = None

    @property
    def end_ns(self) -> int:
        return self.start_ns + self.duration_ns


class _NullSpan:
    """The shared disabled-path span: every operation is a no-op."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        return False

    def tag(self, key: str, value: Any) -> "_NullSpan":
        return self


_NULL_SPAN = _NullSpan()


class _LiveSpan:
    """A span being timed; created only while tracing is enabled."""

    __slots__ = ("_tracer", "name", "tags", "_start_ns", "_depth", "_parent")

    def __init__(
        self, tracer: "Tracer", name: str, tags: Mapping[str, Any] | None
    ) -> None:
        self._tracer = tracer
        self.name = name
        self.tags = dict(tags) if tags else None

    def tag(self, key: str, value: Any) -> "_LiveSpan":
        """Attach one tag to an open span (e.g. an outcome)."""
        if self.tags is None:
            self.tags = {}
        self.tags[key] = value
        return self

    def __enter__(self) -> "_LiveSpan":
        stack = self._tracer._stack()
        self._depth = len(stack)
        self._parent = stack[-1] if stack else None
        stack.append(self.name)
        self._start_ns = time.perf_counter_ns()
        return self

    def __exit__(self, *exc_info: object) -> bool:
        duration = time.perf_counter_ns() - self._start_ns
        stack = self._tracer._stack()
        if stack and stack[-1] == self.name:
            stack.pop()
        self._tracer._record(
            SpanRecord(
                name=self.name,
                start_ns=self._start_ns,
                duration_ns=duration,
                depth=self._depth,
                thread_id=threading.get_ident(),
                parent=self._parent,
                tags=self.tags,
            )
        )
        return False


@dataclass
class Tracer:
    """Collects :class:`SpanRecord` objects from any number of threads."""

    max_spans: int = 1_000_000
    _records: list[SpanRecord] = field(default_factory=list)
    _lock: threading.Lock = field(default_factory=threading.Lock)
    _local: threading.local = field(default_factory=threading.local)
    dropped: int = 0

    def _stack(self) -> list[str]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _record(self, record: SpanRecord) -> None:
        with self._lock:
            if len(self._records) >= self.max_spans:
                self.dropped += 1
                return
            self._records.append(record)

    def span(self, name: str, tags: Mapping[str, Any] | None = None) -> _LiveSpan:
        return _LiveSpan(self, name, tags)

    def records(self) -> list[SpanRecord]:
        """Snapshot of completed spans, in completion order."""
        with self._lock:
            return list(self._records)

    def clear(self) -> None:
        with self._lock:
            self._records.clear()
            self.dropped = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)


# -- global switch -------------------------------------------------------------
#
# One boolean + one tracer reference.  `span()` reads only the boolean on
# the disabled path; `install()`/`uninstall()` flip both under a lock so
# enabling is atomic with respect to concurrent spans.

_enabled: bool = False
_tracer: Tracer | None = None
_switch_lock = threading.Lock()


def enabled() -> bool:
    """Whether tracing is currently collecting spans."""
    return _enabled


def active_tracer() -> Tracer | None:
    """The installed tracer, or ``None`` when tracing is disabled."""
    return _tracer


def install(tracer: Tracer | None = None) -> Tracer:
    """Install (and return) a tracer, enabling span collection."""
    global _enabled, _tracer
    with _switch_lock:
        _tracer = tracer if tracer is not None else Tracer()
        _enabled = True
        return _tracer


def uninstall() -> None:
    """Disable tracing; spans return to the no-op fast path."""
    global _enabled, _tracer
    with _switch_lock:
        _enabled = False
        _tracer = None


def span(name: str, tags: Mapping[str, Any] | None = None):
    """Open a span context manager.

    When tracing is disabled this returns a process-wide singleton no-op
    object without allocating anything — instrument hot paths freely.
    ``tags`` is an optional mapping recorded on the span; build it only
    when :func:`enabled` is true if constructing it is itself costly.
    """
    if not _enabled:
        return _NULL_SPAN
    tracer = _tracer
    if tracer is None:  # racing an uninstall(): behave as disabled
        return _NULL_SPAN
    return tracer.span(name, tags)


# -- Chrome trace_event export -------------------------------------------------

def to_chrome_trace(
    records: list[SpanRecord], *, process_name: str = "repro"
) -> dict[str, Any]:
    """Encode spans in the Chrome ``trace_event`` JSON format.

    The output loads directly in ``chrome://tracing`` or
    https://ui.perfetto.dev.  Each span becomes a complete ("X") event;
    timestamps are microseconds relative to the earliest span, and
    threads map to Chrome ``tid`` lanes so nesting renders as stacked
    bars.
    """
    if not records:
        return {"traceEvents": [], "displayTimeUnit": "ms"}
    t0 = min(r.start_ns for r in records)
    tids = {tid: i for i, tid in enumerate(sorted({r.thread_id for r in records}))}
    events: list[dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 0,
            "tid": 0,
            "args": {"name": process_name},
        }
    ]
    for record in records:
        event: dict[str, Any] = {
            "name": record.name,
            "cat": record.name.split(".", 1)[0],
            "ph": "X",
            "pid": 0,
            "tid": tids[record.thread_id],
            "ts": (record.start_ns - t0) / 1000.0,
            "dur": record.duration_ns / 1000.0,
        }
        args: dict[str, Any] = {"depth": record.depth}
        if record.parent is not None:
            args["parent"] = record.parent
        if record.tags:
            args.update(record.tags)
        event["args"] = args
        events.append(event)
    return {"traceEvents": events, "displayTimeUnit": "ms"}
