"""Observation sessions: enable, collect, export.

An :class:`Observation` owns one :class:`~repro.obs.trace.Tracer` and one
:class:`~repro.obs.metrics.MetricsRegistry` and installs/uninstalls both
atomically.  Use it as a context manager around any pipeline entry point
— a figure generator, a sweep, a single ``runner.run`` — and everything
instrumented underneath reports into it:

>>> from repro import obs
>>> with obs.observe() as session:
...     fig4.generate_c(runner)
>>> session.write(trace_out="fig4c.trace.json", metrics_out="fig4c.metrics.json")

Exports:

* ``metrics_out`` — the registry's JSON (:meth:`Observation.metrics_dict`),
* ``trace_out`` — a Chrome ``trace_event`` file
  (:meth:`Observation.chrome_trace`) for ``chrome://tracing`` / Perfetto.

Environment wiring: :func:`observation_from_env` honours ``REPRO_TRACE``
(truthy values enable; ``0``/``false``/``off``/empty keep the no-op fast
path) plus ``REPRO_TRACE_OUT`` / ``REPRO_METRICS_OUT`` for export paths,
mirroring how ``REPRO_JOBS`` opts suites into the parallel executor.

Sessions observe the **calling process**: with the executor's
``processes`` strategy the model evaluations happen in workers, so only
executor/cache-level activity is visible.  Use ``serial`` or ``threads``
when a full-depth trace is wanted (``docs/OBSERVABILITY.md``).
"""

from __future__ import annotations

import json
import os
import pathlib
from collections.abc import Mapping
from contextlib import contextmanager
from typing import Any, Iterator

from repro.obs import metrics as metrics_mod
from repro.obs import trace as trace_mod

__all__ = [
    "Observation",
    "observe",
    "enabled",
    "observation_from_env",
    "env_truthy",
]

_FALSY = {"", "0", "false", "off", "no"}


def env_truthy(value: str | None) -> bool:
    """The ``REPRO_TRACE`` convention: unset/0/false/off/no disable."""
    return value is not None and value.strip().lower() not in _FALSY


def enabled() -> bool:
    """True while any observation session is installed."""
    return trace_mod.enabled() or metrics_mod.enabled()


class Observation:
    """One tracing+metrics collection window."""

    def __init__(self) -> None:
        self.tracer = trace_mod.Tracer()
        self.metrics = metrics_mod.MetricsRegistry()
        self._active = False

    # -- lifecycle ------------------------------------------------------------
    def start(self) -> "Observation":
        if self._active:
            raise RuntimeError("observation already started")
        if trace_mod.enabled() or metrics_mod.enabled():
            raise RuntimeError(
                "another observation session is already installed; "
                "observations do not nest"
            )
        trace_mod.install(self.tracer)
        metrics_mod.install(self.metrics)
        self._active = True
        return self

    def stop(self) -> "Observation":
        if self._active:
            trace_mod.uninstall()
            metrics_mod.uninstall()
            self._active = False
        return self

    def __enter__(self) -> "Observation":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # -- views ----------------------------------------------------------------
    def spans(self) -> list[trace_mod.SpanRecord]:
        return self.tracer.records()

    def metrics_dict(self) -> dict[str, Any]:
        return self.metrics.as_dict()

    def chrome_trace(self) -> dict[str, Any]:
        return trace_mod.to_chrome_trace(self.tracer.records())

    def summary(self) -> str:
        """One-line account for stderr reporting."""
        exported = self.metrics_dict()
        instruments = (
            len(exported["counters"])
            + len(exported["gauges"])
            + len(exported["histograms"])
        )
        return f"{len(self.tracer)} spans, {instruments} metric series"

    # -- export ---------------------------------------------------------------
    def write(
        self,
        *,
        trace_out: str | os.PathLike[str] | None = None,
        metrics_out: str | os.PathLike[str] | None = None,
    ) -> list[pathlib.Path]:
        """Write the requested JSON exports; returns the paths written."""
        written: list[pathlib.Path] = []
        if trace_out is not None:
            path = pathlib.Path(trace_out)
            path.write_text(json.dumps(self.chrome_trace(), indent=1))
            written.append(path)
        if metrics_out is not None:
            path = pathlib.Path(metrics_out)
            path.write_text(json.dumps(self.metrics_dict(), indent=1, sort_keys=True))
            written.append(path)
        return written


@contextmanager
def observe() -> Iterator[Observation]:
    """Collect spans and metrics for the duration of the block."""
    session = Observation()
    session.start()
    try:
        yield session
    finally:
        session.stop()


def observation_from_env(
    env: Mapping[str, str] | None = None,
) -> Observation | None:
    """Start an :class:`Observation` when ``REPRO_TRACE`` asks for one.

    Returns the started session (caller owns ``stop()``/``write()``), or
    ``None`` when the environment leaves observability disabled.  This is
    the env-only analogue of the CLI's ``--trace-out``/``--metrics-out``.
    """
    env = env if env is not None else os.environ
    if not env_truthy(env.get("REPRO_TRACE")):
        return None
    return Observation().start()
