"""Per-cell profiling hooks for sweeps.

The tracer answers "where did wall time go" and the metrics registry
answers "what did the model do in aggregate"; this module answers the
question in between: **what did each sweep cell cost and produce?**

:class:`~repro.core.executor.SweepExecutor` accepts any number of
:data:`ProfileHook` callables (``profile_hooks=`` at construction or
:meth:`~repro.core.executor.SweepExecutor.add_profile_hook`).  After each
batch it calls every hook once per cell with a :class:`CellProfile`:
workload identity tags (via :meth:`Workload.obs_tags`), the
configuration, the thread count, whether the record came from cache, the
measured wall time of the cell's model evaluation, and the resulting
metric.  When an observation session is active the executor additionally
emits the same breakdown as ``executor.cell`` spans, so hooks and traces
always agree.

:class:`CellProfileCollector` is the batteries-included hook: it
accumulates profiles and renders a per-cell table — the ``--trace-out``
CLI path uses it to append a cell breakdown to the metrics export.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass
from typing import Any

__all__ = ["CellProfile", "ProfileHook", "CellProfileCollector"]


@dataclass(frozen=True)
class CellProfile:
    """Cost and outcome of one executed (or cache-served) sweep cell."""

    workload: str
    tags: dict[str, Any]
    config: str
    num_threads: int
    cached: bool
    wall_ns: int
    metric: float | None
    infeasible_reason: str | None = None

    def as_dict(self) -> dict[str, Any]:
        return {
            "workload": self.workload,
            "tags": self.tags,
            "config": self.config,
            "num_threads": self.num_threads,
            "cached": self.cached,
            "wall_ns": self.wall_ns,
            "metric": self.metric,
            "infeasible_reason": self.infeasible_reason,
        }


ProfileHook = Callable[[CellProfile], None]


class CellProfileCollector:
    """A :data:`ProfileHook` that accumulates and summarizes profiles."""

    def __init__(self) -> None:
        self.profiles: list[CellProfile] = []

    def __call__(self, profile: CellProfile) -> None:
        self.profiles.append(profile)

    def as_list(self) -> list[dict[str, Any]]:
        return [p.as_dict() for p in self.profiles]

    def describe(self) -> str:
        """Per-cell breakdown table (wall time, cache status, metric)."""
        lines = ["cell breakdown (workload/config/threads  wall  source  metric):"]
        for p in self.profiles:
            source = "cache" if p.cached else "model"
            metric = (
                f"{p.metric:.4g}"
                if p.metric is not None
                else f"- ({p.infeasible_reason})"
            )
            cell = f"{p.workload}/{p.config}/{p.num_threads}"
            lines.append(
                f"  {cell:<32} {p.wall_ns / 1e6:8.2f} ms  {source:<5}  {metric}"
            )
        total_ms = sum(p.wall_ns for p in self.profiles) / 1e6
        cached = sum(1 for p in self.profiles if p.cached)
        lines.append(
            f"  {len(self.profiles)} cells ({cached} cached), {total_ms:.2f} ms total"
        )
        return "\n".join(lines)
