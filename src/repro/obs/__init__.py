"""Structured observability: tracing, metrics and profiling hooks.

The paper's contribution is *measurement* — bandwidth tiers, cache hit
behaviour, concurrency effects — and this package makes the
reproduction's own internals measurable the same way.  Three layers, all
zero-dependency and **off by default with a no-op fast path**:

* :mod:`repro.obs.trace` — nested wall-time spans
  (``runner.run`` > ``perfmodel.run`` > ``perfmodel.phase`` ...), with a
  Chrome ``trace_event`` export for ``chrome://tracing`` / Perfetto;
* :mod:`repro.obs.metrics` — counters/gauges/histograms for the model
  internals the paper reports: per-device bytes moved, MCDRAM-cache
  hit/miss/conflict counts, TLB walks, Little's-law concurrency,
  executor cache hit rates;
* :mod:`repro.obs.profiling` — per-sweep-cell cost/outcome hooks on
  :class:`~repro.core.executor.SweepExecutor`.

Entry points:

* library — ``with obs.observe() as session: ...; session.write(...)``;
* CLI — ``python -m repro --trace-out t.json --metrics-out m.json fig4c``;
* environment — ``REPRO_TRACE=1`` (plus ``REPRO_TRACE_OUT`` /
  ``REPRO_METRICS_OUT``), the observability analogue of ``REPRO_JOBS``.

Enabling observability never changes a reported number: instrumentation
only reads model state, and the golden-identity test
(``tests/obs/test_golden_identity.py``) proves every exhibit renders
byte-identically with tracing on.  See ``docs/OBSERVABILITY.md`` for the
span/metric catalogue and a worked Fig. 4 example.
"""

from repro.obs import metrics, trace
from repro.obs.metrics import MetricsRegistry
from repro.obs.profiling import CellProfile, CellProfileCollector, ProfileHook
from repro.obs.session import (
    Observation,
    enabled,
    env_truthy,
    observation_from_env,
    observe,
)
from repro.obs.trace import SpanRecord, Tracer, span, to_chrome_trace

__all__ = [
    "trace",
    "metrics",
    "span",
    "enabled",
    "observe",
    "Observation",
    "observation_from_env",
    "env_truthy",
    "Tracer",
    "SpanRecord",
    "MetricsRegistry",
    "to_chrome_trace",
    "CellProfile",
    "CellProfileCollector",
    "ProfileHook",
]
