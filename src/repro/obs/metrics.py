"""Counter / gauge / histogram metrics registry.

The registry surfaces the model internals the paper itself reports —
per-device bytes moved, MCDRAM-cache hit/miss/conflict counts, TLB
walks, Little's-law concurrency, executor cache hit rates — as named,
optionally labelled instruments:

* **counter** — monotonically accumulating total (``add``),
* **gauge** — last-written value (``set``),
* **histogram** — streaming summary (count / sum / min / max / mean) of
  observed values (``observe``).

Like the tracer, the module-level helpers (:func:`add`, :func:`set_gauge`,
:func:`observe`) are no-ops returning immediately while no registry is
installed, so instrumentation sites never need their own guards for
correctness — only for skipping expensive *derivations* of the values.

Label conventions follow Prometheus: a metric name plus a small,
low-cardinality label mapping (``("model.bytes_moved", device="dram")``).
Export is plain JSON via :meth:`MetricsRegistry.as_dict`, with flattened
``name{k=v,...}`` keys — see ``docs/OBSERVABILITY.md`` for the name
catalogue.
"""

from __future__ import annotations

import threading
from collections.abc import Mapping
from dataclasses import dataclass, field
from typing import Any

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "add",
    "set_gauge",
    "observe",
    "observe_many",
    "enabled",
    "install",
    "uninstall",
    "active_registry",
    "merge_exports",
]

LabelValue = "str | int | float | bool"


def _label_key(labels: Mapping[str, Any] | None) -> tuple[tuple[str, Any], ...]:
    if not labels:
        return ()
    return tuple(sorted(labels.items()))


def flat_name(name: str, labels: Mapping[str, Any] | None) -> str:
    """``name{k=v,...}`` rendering used by the JSON export."""
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
    return f"{name}{{{inner}}}"


@dataclass
class Counter:
    """Accumulating total."""

    value: float = 0.0

    def add(self, amount: float = 1.0) -> None:
        self.value += amount


@dataclass
class Gauge:
    """Last-written value."""

    value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value


@dataclass
class Histogram:
    """Streaming summary of observed values (no buckets kept)."""

    count: int = 0
    total: float = 0.0
    minimum: float = field(default=float("inf"))
    maximum: float = field(default=float("-inf"))

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    def merge(
        self, count: int, total: float, minimum: float, maximum: float
    ) -> None:
        """Fold a pre-aggregated batch of observations into this summary.

        Used by the batch engine, which accounts whole row blocks at once
        instead of observing per point.
        """
        if count <= 0:
            return
        self.count += count
        self.total += total
        if minimum < self.minimum:
            self.minimum = minimum
        if maximum > self.maximum:
            self.maximum = maximum

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> dict[str, float]:
        if not self.count:
            return {"count": 0, "sum": 0.0, "min": 0.0, "max": 0.0, "mean": 0.0}
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.minimum,
            "max": self.maximum,
            "mean": self.mean,
        }


class MetricsRegistry:
    """Thread-safe home for named instruments."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[tuple[str, tuple], Counter] = {}
        self._gauges: dict[tuple[str, tuple], Gauge] = {}
        self._histograms: dict[tuple[str, tuple], Histogram] = {}

    # -- writes ---------------------------------------------------------------
    def add(
        self,
        name: str,
        amount: float = 1.0,
        labels: Mapping[str, Any] | None = None,
    ) -> None:
        key = (name, _label_key(labels))
        with self._lock:
            counter = self._counters.get(key)
            if counter is None:
                counter = self._counters[key] = Counter()
            counter.add(amount)

    def set_gauge(
        self, name: str, value: float, labels: Mapping[str, Any] | None = None
    ) -> None:
        key = (name, _label_key(labels))
        with self._lock:
            gauge = self._gauges.get(key)
            if gauge is None:
                gauge = self._gauges[key] = Gauge()
            gauge.set(value)

    def observe(
        self, name: str, value: float, labels: Mapping[str, Any] | None = None
    ) -> None:
        key = (name, _label_key(labels))
        with self._lock:
            histogram = self._histograms.get(key)
            if histogram is None:
                histogram = self._histograms[key] = Histogram()
            histogram.observe(value)

    def observe_many(
        self,
        name: str,
        values: "Any",
        labels: Mapping[str, Any] | None = None,
    ) -> None:
        """Record a whole batch of histogram observations at once.

        ``values`` is any numeric sequence (typically a numpy array); the
        summary is updated as if :meth:`observe` had been called per
        element, with one lock acquisition for the batch.
        """
        count = len(values)
        if not count:
            return
        if hasattr(values, "sum"):  # numpy fast path
            total = float(values.sum())
            minimum = float(values.min())
            maximum = float(values.max())
        else:
            total = float(sum(values))
            minimum = float(min(values))
            maximum = float(max(values))
        key = (name, _label_key(labels))
        with self._lock:
            histogram = self._histograms.get(key)
            if histogram is None:
                histogram = self._histograms[key] = Histogram()
            histogram.merge(count, total, minimum, maximum)

    # -- reads ----------------------------------------------------------------
    def counter_value(
        self, name: str, labels: Mapping[str, Any] | None = None
    ) -> float:
        """Current value of a counter (0.0 when never written)."""
        with self._lock:
            counter = self._counters.get((name, _label_key(labels)))
            return counter.value if counter is not None else 0.0

    def gauge_value(
        self, name: str, labels: Mapping[str, Any] | None = None
    ) -> float | None:
        with self._lock:
            gauge = self._gauges.get((name, _label_key(labels)))
            return gauge.value if gauge is not None else None

    def histogram_summary(
        self, name: str, labels: Mapping[str, Any] | None = None
    ) -> Histogram | None:
        with self._lock:
            return self._histograms.get((name, _label_key(labels)))

    def names(self) -> set[str]:
        """All metric names written so far (label-free)."""
        with self._lock:
            keys = (
                list(self._counters) + list(self._gauges) + list(self._histograms)
            )
        return {name for name, _ in keys}

    def as_dict(self) -> dict[str, Any]:
        """JSON-ready export with ``name{label=value}`` flattened keys."""
        with self._lock:
            return {
                "counters": {
                    flat_name(name, dict(labels)): counter.value
                    for (name, labels), counter in sorted(self._counters.items())
                },
                "gauges": {
                    flat_name(name, dict(labels)): gauge.value
                    for (name, labels), gauge in sorted(self._gauges.items())
                },
                "histograms": {
                    flat_name(name, dict(labels)): histogram.as_dict()
                    for (name, labels), histogram in sorted(
                        self._histograms.items()
                    )
                },
            }

    def clear(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()


def merge_exports(exports: "Any") -> dict[str, Any]:
    """Fold several :meth:`MetricsRegistry.as_dict` exports into one.

    The shard router uses this to aggregate per-replica ``/metrics``
    snapshots: **counters are summed** (each replica counted its own
    events exactly once, so the fleet total is the sum — never a
    last-writer-wins read of one replica, which was the latent bug this
    helper exists to prevent), **histograms are merged** exactly
    (count/sum add, min/max extremize — mean is recomputed from the
    merged sums), and **gauges are summed**, which is meaningful for
    depth-like gauges (queue depths, in-flight counts); rate-like gauges
    should be recomputed by the caller from merged counters instead.
    """
    counters: dict[str, float] = {}
    gauges: dict[str, float] = {}
    merged_hist: dict[str, Histogram] = {}
    for export in exports:
        if not isinstance(export, Mapping):
            continue
        for key, value in export.get("counters", {}).items():
            counters[key] = counters.get(key, 0.0) + value
        for key, value in export.get("gauges", {}).items():
            gauges[key] = gauges.get(key, 0.0) + value
        for key, summary in export.get("histograms", {}).items():
            histogram = merged_hist.setdefault(key, Histogram())
            histogram.merge(
                int(summary.get("count", 0)),
                float(summary.get("sum", 0.0)),
                float(summary.get("min", float("inf"))),
                float(summary.get("max", float("-inf"))),
            )
    return {
        "counters": counters,
        "gauges": gauges,
        "histograms": {
            key: histogram.as_dict()
            for key, histogram in sorted(merged_hist.items())
        },
    }


# -- global switch (mirrors repro.obs.trace) -----------------------------------

_enabled: bool = False
_registry: MetricsRegistry | None = None
_switch_lock = threading.Lock()


def enabled() -> bool:
    """Whether a metrics registry is currently collecting."""
    return _enabled


def active_registry() -> MetricsRegistry | None:
    return _registry


def install(registry: MetricsRegistry | None = None) -> MetricsRegistry:
    global _enabled, _registry
    with _switch_lock:
        _registry = registry if registry is not None else MetricsRegistry()
        _enabled = True
        return _registry


def uninstall() -> None:
    global _enabled, _registry
    with _switch_lock:
        _enabled = False
        _registry = None


def add(
    name: str, amount: float = 1.0, labels: Mapping[str, Any] | None = None
) -> None:
    """Increment a counter on the active registry (no-op when disabled)."""
    if not _enabled:
        return
    registry = _registry
    if registry is not None:
        registry.add(name, amount, labels)


def set_gauge(
    name: str, value: float, labels: Mapping[str, Any] | None = None
) -> None:
    """Write a gauge on the active registry (no-op when disabled)."""
    if not _enabled:
        return
    registry = _registry
    if registry is not None:
        registry.set_gauge(name, value, labels)


def observe(
    name: str, value: float, labels: Mapping[str, Any] | None = None
) -> None:
    """Record a histogram observation (no-op when disabled)."""
    if not _enabled:
        return
    registry = _registry
    if registry is not None:
        registry.observe(name, value, labels)


def observe_many(
    name: str, values: "Any", labels: Mapping[str, Any] | None = None
) -> None:
    """Record a batch of histogram observations (no-op when disabled)."""
    if not _enabled:
        return
    registry = _registry
    if registry is not None:
        registry.observe_many(name, values, labels)
