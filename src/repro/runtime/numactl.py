"""`numactl` emulation over the simulated NUMA topology.

Supports the subset of numactl the paper uses (Section III-C):

* ``numactl --hardware`` — the distance/capacity table (Table II),
* ``numactl --membind=N`` — strict binding,
* ``numactl --preferred=N`` — preferred binding with fallback,
* ``numactl --interleave=a,b`` — page interleaving.

:meth:`Numactl.parse` accepts the command-line string form so experiment
configs can be written exactly as the paper writes them.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.memory.numa import NUMATopology
from repro.memory.policy import (
    DefaultLocal,
    Interleave,
    Membind,
    PlacementPolicy,
    Preferred,
)


class NumactlError(ValueError):
    """Malformed numactl invocation or unknown node."""


_FLAG_RE = re.compile(
    r"^--(?P<flag>membind|preferred|interleave)=(?P<arg>[\d,]+)$"
)


@dataclass(frozen=True)
class Numactl:
    """A parsed numactl policy bound to a topology."""

    topology: NUMATopology
    policy: PlacementPolicy

    @classmethod
    def parse(cls, topology: NUMATopology, command: str) -> "Numactl":
        """Parse e.g. ``"--membind=1"`` or ``"--interleave=0,1"``.

        An empty command yields the default-local policy.  Node ids are
        validated against the topology — binding to the HBM node of a
        cache-mode system fails here, like on the real machine.
        """
        command = command.strip()
        if not command:
            return cls(topology, DefaultLocal())
        match = _FLAG_RE.match(command)
        if match is None:
            raise NumactlError(f"unsupported numactl invocation: {command!r}")
        flag = match.group("flag")
        try:
            node_ids = tuple(int(tok) for tok in match.group("arg").split(","))
        except ValueError as exc:
            raise NumactlError(f"bad node list in {command!r}") from exc
        for node_id in node_ids:
            if not 0 <= node_id < topology.num_nodes:
                raise NumactlError(
                    f"{command}: node {node_id} does not exist "
                    f"(topology has {topology.num_nodes} node(s))"
                )
        if flag == "membind":
            if len(node_ids) != 1:
                raise NumactlError("--membind takes exactly one node")
            return cls(topology, Membind(node_ids[0]))
        if flag == "preferred":
            if len(node_ids) != 1:
                raise NumactlError("--preferred takes exactly one node")
            return cls(topology, Preferred(node_ids[0]))
        return cls(topology, Interleave(node_ids))

    def hardware(self) -> str:
        """``numactl --hardware`` output (Table II of the paper)."""
        return self.topology.describe_hardware()

    def describe(self) -> str:
        return f"numactl {self.policy.describe()}"
