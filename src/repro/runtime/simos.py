"""A simulated OS instance: machine + memory system + allocator + threads.

:class:`SimulatedOS` is what an "execution" binds to.  It provides:

* NUMA discovery (``numactl --hardware``),
* policy-controlled allocation via the memkind-style heap allocator,
* OpenMP thread environment handling, and
* a context-manager allocation scope so experiment sweeps can't leak
  simulated memory between runs.
"""

from __future__ import annotations

import contextlib
from collections.abc import Iterator

from repro.machine.presets import knl7210
from repro.machine.topology import KNLMachine
from repro.memory.allocator import Allocation, HeapAllocator, Kind
from repro.memory.modes import MCDRAMConfig, MemorySystem
from repro.memory.policy import PlacementPolicy
from repro.runtime.numactl import Numactl
from repro.runtime.process import OpenMPEnvironment


def ensure_mode_supported(machine: KNLMachine, config: MCDRAMConfig) -> None:
    """Raise :class:`ValueError` when the machine's firmware does not offer
    the requested memory mode (e.g. hybrid on Xeon Max)."""
    mode = config.mode.value
    if mode not in machine.supported_memory_modes:
        raise ValueError(
            f"{machine.name} does not support {mode} memory mode "
            f"(supported: {', '.join(machine.supported_memory_modes)})"
        )


def memory_system_for(machine: KNLMachine, config: MCDRAMConfig) -> MemorySystem:
    """Build the machine's memory subsystem under one mode configuration.

    Machines built from a registry spec contribute their own near/far
    tier devices; hand-constructed machines (``spec is None``) keep the
    historical Archer DDR4/MCDRAM defaults.  The mode must be one the
    machine's firmware offers.
    """
    ensure_mode_supported(machine, config)
    if machine.spec is None:
        return MemorySystem(config)
    return MemorySystem(
        config, dram=machine.far_device(), mcdram=machine.near_device()
    )


class SimulatedOS:
    """One booted node: a machine plus a memory-mode configuration.

    Rebooting into a different MCDRAM mode means constructing a new
    instance, mirroring the BIOS-reconfiguration cost the paper describes.
    """

    def __init__(
        self,
        memory_config: MCDRAMConfig | None = None,
        *,
        machine: KNLMachine | None = None,
        memory: MemorySystem | None = None,
    ) -> None:
        if memory is not None and memory_config is not None:
            raise ValueError("pass either memory_config or memory, not both")
        self.machine = machine if machine is not None else knl7210()
        self.memory = (
            memory
            if memory is not None
            else memory_system_for(
                self.machine, memory_config or MCDRAMConfig.cache()
            )
        )
        self.allocator = HeapAllocator(self.memory.topology)
        # command string -> parsed (frozen) Numactl.  Sweeps re-parse the
        # same few policy strings on every malloc; the topology is fixed
        # for the lifetime of this booted node.
        self._numactl_cache: dict[str, Numactl] = {}

    # -- numactl -----------------------------------------------------------
    def numactl(self, command: str = "") -> Numactl:
        """Parse a numactl invocation against this node's topology.

        Parses are memoized per command string (results are frozen and the
        topology is fixed per boot), so malloc-time policy lookups are a
        dict hit on the sweep hot path.
        """
        cached = self._numactl_cache.get(command)
        if cached is None:
            cached = Numactl.parse(self.memory.topology, command)
            self._numactl_cache[command] = cached
        return cached

    def numactl_hardware(self) -> str:
        return self.memory.numactl_hardware()

    # -- threads -----------------------------------------------------------
    def openmp(self, num_threads: int) -> OpenMPEnvironment:
        """Build the OpenMP environment for a run on this node."""
        return OpenMPEnvironment(self.machine, num_threads)

    # -- allocation -----------------------------------------------------------
    def malloc(
        self,
        name: str,
        num_bytes: int,
        *,
        kind: Kind | None = None,
        policy: PlacementPolicy | None = None,
        numactl: str | None = None,
    ) -> Allocation:
        """Allocate through the heap allocator.

        ``numactl`` is a convenience accepting the command-line string form
        (mutually exclusive with ``kind``/``policy``).
        """
        if numactl is not None:
            if kind is not None or policy is not None:
                raise ValueError("numactl is exclusive with kind/policy")
            policy = self.numactl(numactl).policy
        return self.allocator.malloc(name, num_bytes, kind=kind, policy=policy)

    def free(self, allocation: Allocation) -> None:
        self.allocator.free(allocation)

    @contextlib.contextmanager
    def allocation_scope(self) -> Iterator[HeapAllocator]:
        """Context manager releasing all allocations made inside it.

        Uses a simple watermark: allocations live at entry are preserved,
        everything allocated inside is freed on exit (even on error).
        """
        before = {a.alloc_id for a in self.allocator.live_allocations}
        try:
            yield self.allocator
        finally:
            for allocation in list(self.allocator.live_allocations):
                if allocation.alloc_id not in before:
                    self.allocator.free(allocation)

    def describe(self) -> str:
        return f"{self.machine.describe()}\n{self.memory.describe()}"
