"""OpenMP-style thread environment.

The paper controls threading with ``OMP_NUM_THREADS`` (64/128/192/256) and
compact placement.  :class:`OpenMPEnvironment` validates a thread count
against a machine and exposes the resulting placement, which the
performance engine consumes (threads per core drive both SMT issue scaling
and memory-level parallelism).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.machine.topology import KNLMachine, ThreadPlacement


@dataclass(frozen=True)
class OpenMPEnvironment:
    """Thread count + placement over a machine.

    ``affinity`` is informational; only compact placement (the paper's
    setup) is modelled.
    """

    machine: KNLMachine
    num_threads: int
    affinity: str = "compact"

    def __post_init__(self) -> None:
        # Validates the count against the machine capacity.
        self.machine.place_threads(self.num_threads)
        if self.affinity != "compact":
            raise ValueError(
                f"only compact affinity is modelled, got {self.affinity!r}"
            )

    @property
    def placement(self) -> ThreadPlacement:
        return self.machine.place_threads(self.num_threads)

    @property
    def threads_per_core(self) -> int:
        """Hardware threads per active core (the dominant, rounded-up
        level; 65 threads on 64 cores counts as 2)."""
        return self.placement.max_threads_per_core

    @property
    def active_cores(self) -> int:
        return self.placement.active_cores

    def env(self) -> dict[str, str]:
        """The environment variables an equivalent real run would export."""
        return {
            "OMP_NUM_THREADS": str(self.num_threads),
            "OMP_PROC_BIND": "close",
            "OMP_PLACES": "threads",
        }
