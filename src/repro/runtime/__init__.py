"""Simulated OS/runtime layer.

The paper drives its experiments with `numactl` and OpenMP environment
variables on a Linux node.  This subpackage provides the equivalents over
the simulated machine:

* :mod:`repro.runtime.simos` — a :class:`SimulatedOS` owning the memory
  system, the heap allocator, and process state.
* :mod:`repro.runtime.numactl` — the `numactl` command emulation
  (``--hardware``, ``--membind``, ``--preferred``, ``--interleave``).
* :mod:`repro.runtime.process` — OpenMP-style thread configuration and
  placement (OMP_NUM_THREADS, compact affinity).
"""

from repro.runtime.simos import SimulatedOS
from repro.runtime.numactl import Numactl, NumactlError
from repro.runtime.process import OpenMPEnvironment

__all__ = ["SimulatedOS", "Numactl", "NumactlError", "OpenMPEnvironment"]
