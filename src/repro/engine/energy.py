"""Data-movement energy model.

The paper motivates HBM through data movement ("The effective use of
these memory technologies helps reducing data movement [3]", citing
Kestor et al.'s energy-cost study).  This extension prices a simulated
run's traffic and compute so configurations can be compared on energy and
energy-delay product, not just time.

Per-bit transfer energies follow the literature the paper cites: DDR4
costs roughly 15-20 pJ/bit at the device plus I/O; on-package stacked
DRAM roughly a third of that (shorter, wider interfaces).  Static/leakage
power is charged per second of runtime.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.perfmodel import RunResult
from repro.engine.placement import Location, PlacementMix
from repro.engine.profilephase import MemoryProfile
from repro.util.validation import check_non_negative


@dataclass(frozen=True)
class EnergyParameters:
    """Energy coefficients (defaults from the 3D-stacked-memory
    literature the paper builds on)."""

    dram_pj_per_byte: float = 120.0      # ~15 pJ/bit DDR4 incl. I/O
    hbm_pj_per_byte: float = 40.0        # ~5 pJ/bit on-package stack
    cache_probe_pj_per_byte: float = 8.0  # MCDRAM tag probe per cached access
    flop_pj: float = 20.0                # double-precision FMA + overhead
    static_watts: float = 215.0          # KNL node TDP share at load

    def __post_init__(self) -> None:
        for name in (
            "dram_pj_per_byte",
            "hbm_pj_per_byte",
            "cache_probe_pj_per_byte",
            "flop_pj",
            "static_watts",
        ):
            check_non_negative(name, getattr(self, name))


@dataclass(frozen=True)
class EnergyEstimate:
    """Energy breakdown of one run (joules)."""

    dynamic_memory_j: float
    dynamic_compute_j: float
    static_j: float

    @property
    def total_j(self) -> float:
        return self.dynamic_memory_j + self.dynamic_compute_j + self.static_j

    def edp(self, time_s: float) -> float:
        """Energy-delay product (J*s)."""
        check_non_negative("time_s", time_s)
        return self.total_j * time_s


class EnergyModel:
    """Prices a simulated run."""

    def __init__(self, params: EnergyParameters | None = None) -> None:
        self.params = params if params is not None else EnergyParameters()

    def _per_byte_pj(self, location: Location) -> float:
        p = self.params
        if location is Location.DRAM:
            return p.dram_pj_per_byte
        if location is Location.HBM:
            return p.hbm_pj_per_byte
        # Cache mode: every byte crosses MCDRAM (probe + data) and misses
        # additionally cross DDR; approximate with the blended worst case
        # of an MCDRAM transfer plus the probe overhead (the DDR share is
        # charged by callers through the mix when known).
        return p.hbm_pj_per_byte + p.cache_probe_pj_per_byte

    def estimate(
        self,
        profile: MemoryProfile,
        run: RunResult,
        mix: PlacementMix | dict[str, PlacementMix] | None = None,
    ) -> EnergyEstimate:
        """Energy for a profile executed as ``run``.

        ``mix`` defaults to the run's recorded placement; pass the same
        per-phase mapping used for the run for fine-grained placements.
        """
        if mix is None:
            mix = run.placement
        memory_pj = 0.0
        compute_pj = 0.0
        for phase in profile.phases:
            phase_mix = mix[phase.name] if isinstance(mix, dict) else mix
            for location, fraction in phase_mix.fractions:
                memory_pj += (
                    phase.traffic_bytes * fraction * self._per_byte_pj(location)
                )
            compute_pj += phase.flops * self.params.flop_pj
        static_j = self.params.static_watts * run.time_s
        return EnergyEstimate(
            dynamic_memory_j=memory_pj * 1e-12,
            dynamic_compute_j=compute_pj * 1e-12,
            static_j=static_j,
        )

    def estimate_record(self, workload, record) -> "EnergyEstimate | None":
        """Energy for one feasible :class:`~repro.core.runner.RunRecord`.

        The record-level twin of :meth:`estimate` — prices the
        workload's profile under the record's simulated run, which is
        how the energy report and the capacity planner
        (:mod:`repro.plan`) both consume the model.  Returns ``None``
        for infeasible records (no run to price).
        """
        run = getattr(record, "run_result", None)
        if run is None:
            return None
        return self.estimate(workload.profile(), run)
