"""Hardware-thread scaling model.

Section IV-D of the paper: hyper-threading raises the number of
outstanding memory requests (hence bandwidth via Little's law) and hides
latency for irregular codes, at the price of shared core resources.  This
module converts an OpenMP thread count into:

* machine-wide outstanding-request counts for a phase's pattern,
* the SMT compute-issue multiplier, and
* the synchronization overhead factor (per-phase ``sync_fraction``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.profilephase import AccessPattern, Phase
from repro.machine.topology import KNLMachine
from repro.runtime.process import OpenMPEnvironment


@dataclass(frozen=True)
class ThreadingModel:
    """Scaling rules for a machine."""

    machine: KNLMachine

    def outstanding_requests(
        self, phase: Phase, env: OpenMPEnvironment
    ) -> float:
        """Machine-wide in-flight cache-line requests for this phase.

        Per-thread MLP comes from the phase (or the core's default for the
        pattern), multiplied by threads per core and clamped by the core's
        request-queue capacity, then summed over active cores.
        """
        core = self.machine.reference_core
        if phase.mlp_per_thread is not None:
            per_thread = phase.mlp_per_thread
        elif phase.pattern is AccessPattern.SEQUENTIAL:
            per_thread = core.mlp_sequential
        else:
            per_thread = core.mlp_random
        placement = env.placement
        per_core = core.outstanding_lines(per_thread, placement.max_threads_per_core)
        return per_core * placement.active_cores

    def compute_scale(self, env: OpenMPEnvironment) -> float:
        """Fraction of machine peak flops reachable at this thread count."""
        core = self.machine.reference_core
        placement = env.placement
        issue = core.smt_issue_efficiency(placement.max_threads_per_core)
        return issue * placement.active_cores / self.machine.num_cores

    def sync_overhead_factor(self, phase: Phase, env: OpenMPEnvironment) -> float:
        """Multiplier >= 1 on phase time from synchronization.

        Grows with the *total* thread count relative to the one-per-core
        baseline: barriers and reductions cost O(threads)
        (``sync_fraction``); contended atomics cost O(threads^2)
        (``sync_quadratic``).
        """
        if phase.sync_fraction == 0.0 and phase.sync_quadratic == 0.0:
            return 1.0
        baseline = self.machine.num_cores
        extra = max(0.0, env.num_threads / baseline - 1.0)
        return 1.0 + phase.sync_fraction * extra + phase.sync_quadratic * extra**2
