"""The analytic performance simulator.

For every phase of a workload profile, under a data placement and an
OpenMP environment, the model computes:

* **memory time** — via Little's law: the threads offer a demand
  (outstanding lines / latency); each location serves it up to its
  sequential bandwidth or its random-access capacity (with smooth
  saturation); locations overlap, so the slowest one sets the phase's
  memory time;
* **compute time** — flops against the machine's thread-scaled peak;
* **phase time** — max of the two (perfect overlap — the roofline
  assumption) times the synchronization overhead factor.

All the paper's effects emerge from this composition:

* sequential + HBM → device-bandwidth-bound, ~4x DRAM (Figs. 2, 4 top);
* random + HBM → latency-bound and 15–20 % *slower* than DRAM (Fig. 4
  bottom);
* cache mode → in between, degrading with footprint (Figs. 2, 4);
* hardware threads → more outstanding requests → large gains on HBM,
  none on already-saturated DRAM STREAM (Figs. 5, 6).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

import numpy as np

from repro.engine.littles_law import littles_law_bandwidth
from repro.engine.placement import Location, PlacementMix
from repro.engine.profilephase import AccessPattern, MemoryProfile, Phase
from repro.engine.threading_model import ThreadingModel
from repro.machine.topology import KNLMachine
from repro.memory.modes import MemorySystem
from repro.memory.tlb import TLBModel
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.runtime.process import OpenMPEnvironment
from repro.util.units import CACHE_LINE, NS_PER_S


@dataclass(frozen=True)
class PhaseResult:
    """Timing breakdown for one phase."""

    name: str
    time_ns: float
    memory_time_ns: float
    compute_time_ns: float
    sync_factor: float
    achieved_bandwidth: float
    effective_latency_ns: float

    @property
    def bottleneck(self) -> str:
        return "memory" if self.memory_time_ns >= self.compute_time_ns else "compute"


@dataclass(frozen=True)
class RunResult:
    """Aggregate result of a simulated run."""

    workload: str
    placement: PlacementMix
    num_threads: int
    phase_results: tuple[PhaseResult, ...]

    @property
    def time_ns(self) -> float:
        return sum(p.time_ns for p in self.phase_results)

    @property
    def time_s(self) -> float:
        return self.time_ns / NS_PER_S

    def gflops(self, total_flops: float) -> float:
        """Achieved GFLOP/s given the run's total flop count."""
        if self.time_s == 0:
            raise ZeroDivisionError("run took zero time")
        return total_flops / self.time_s / 1e9

    def rate_per_s(self, operations: float) -> float:
        """Generic operations-per-second metric (updates, TEPS, lookups)."""
        if self.time_s == 0:
            raise ZeroDivisionError("run took zero time")
        return operations / self.time_s

    def describe(self) -> str:
        """Per-phase bottleneck breakdown (for reports and debugging)."""
        lines = [
            f"{self.workload} @ {self.num_threads} threads, "
            f"{self.placement.describe()}: {self.time_s * 1e3:.2f} ms"
        ]
        total = self.time_ns or 1.0
        for phase in self.phase_results:
            bw = (
                f", {phase.achieved_bandwidth / 1e9:.1f} GB/s"
                if phase.achieved_bandwidth
                else ""
            )
            sync = (
                f", sync x{phase.sync_factor:.2f}"
                if phase.sync_factor > 1.0
                else ""
            )
            lines.append(
                f"  {phase.name:<16} {phase.time_ns / total:6.1%}  "
                f"{phase.bottleneck}-bound{bw}{sync}"
            )
        return "\n".join(lines)


class PerformanceModel:
    """Analytic simulator bound to one machine + memory system."""

    def __init__(
        self,
        machine: KNLMachine,
        memory: MemorySystem,
        *,
        tlb: TLBModel | None = None,
    ) -> None:
        self.machine = machine
        self.memory = memory
        self.tlb = tlb if tlb is not None else TLBModel()
        self.threading = ThreadingModel(machine)

    # -- location primitives ----------------------------------------------------
    def _check_location(self, location: Location) -> None:
        if location is Location.HBM and not self.memory.has_flat_hbm:
            raise ValueError(
                "placement uses the flat HBM node but MCDRAM is not in "
                "flat/hybrid mode"
            )
        if location is Location.DRAM_CACHED and self.memory.cache_model is None:
            raise ValueError(
                "placement uses the MCDRAM cache but MCDRAM is in flat mode"
            )
        if (
            location is Location.DRAM
            and self.memory.dram_fronted_by_cache
        ):
            raise ValueError(
                "in cache/hybrid mode DDR accesses go through the MCDRAM "
                "cache; use Location.DRAM_CACHED"
            )

    def sequential_bandwidth(
        self,
        location: Location,
        footprint_bytes: int,
        threads_per_core: int,
        write_fraction: float = 0.0,
    ) -> float:
        """Device-side sequential bandwidth cap for a location (bytes/s).

        ``write_fraction`` engages the sequential write-asymmetry penalty
        on devices that have one (NVM tiers); it is a no-op on the KNL
        devices.
        """
        self._check_location(location)
        if location is Location.DRAM:
            return self.memory.dram.stream_bandwidth(
                threads_per_core, write_fraction
            )
        if location is Location.HBM:
            return self.memory.mcdram.stream_bandwidth(
                threads_per_core, write_fraction
            )
        assert self.memory.cache_model is not None
        return self.memory.cache_model.streaming_bandwidth(
            footprint_bytes, threads_per_core, write_fraction
        )

    def sequential_latency_ns(self, location: Location, footprint_bytes: int) -> float:
        """Latency governing the *demand* side of sequential streams.

        Prefetching hides translation, so this is close to the device idle
        latency plus the mesh directory lookup.
        """
        self._check_location(location)
        directory = self.machine.mesh.directory_lookup_ns()
        if location is Location.DRAM:
            return self.memory.dram.idle_latency_ns + directory
        if location is Location.HBM:
            return self.memory.mcdram.idle_latency_ns + directory
        assert self.memory.cache_model is not None
        cache = self.memory.cache_model
        h = cache.streaming_hit_rate(footprint_bytes)
        miss = (
            cache.tag_probe_fraction * self.memory.mcdram.idle_latency_ns
            + self.memory.dram.idle_latency_ns
        )
        return h * self.memory.mcdram.idle_latency_ns + (1 - h) * miss + directory

    def random_latency_ns(self, location: Location, footprint_bytes: int) -> float:
        """Average random-access latency at a location, incl. translation."""
        self._check_location(location)
        directory = self.machine.mesh.directory_lookup_ns()
        if location is Location.DRAM:
            base = self.memory.dram.idle_latency_ns
        elif location is Location.HBM:
            base = self.memory.mcdram.idle_latency_ns
        else:
            assert self.memory.cache_model is not None
            base = self.memory.cache_model.random_latency_ns(footprint_bytes)
        translation = self.tlb.translation_overhead_ns(footprint_bytes, base)
        return base + directory + translation

    def random_capacity_lines(
        self,
        location: Location,
        footprint_bytes: int,
        write_fraction: float = 0.0,
    ) -> float:
        """Device-side random-access capacity (lines/s)."""
        self._check_location(location)
        if location is Location.DRAM:
            cap = self.memory.dram.random_bandwidth(write_fraction=write_fraction)
        elif location is Location.HBM:
            cap = self.memory.mcdram.random_bandwidth(write_fraction=write_fraction)
        else:
            assert self.memory.cache_model is not None
            cap = self.memory.cache_model.random_bandwidth_cap(
                footprint_bytes, write_fraction
            )
        return cap / CACHE_LINE

    # -- columnar twins ---------------------------------------------------------
    # Bulk (per-footprint-column) twins of the location primitives above,
    # used by the batch engine's table construction
    # (:class:`repro.engine.batch.ModelTables`).  Bit-identical per element
    # to the scalar methods: same expression order, same scalar device
    # constants broadcast over the column, transcendental-free at this
    # layer (the memory models keep those on :mod:`math`).

    def sequential_bandwidth_many(
        self,
        location: Location,
        footprints: np.ndarray,
        threads_per_core: int,
        write_fraction: float = 0.0,
    ) -> np.ndarray:
        """Columnar twin of :meth:`sequential_bandwidth`."""
        self._check_location(location)
        if location is Location.DRAM:
            return np.full(
                len(footprints),
                self.memory.dram.stream_bandwidth(threads_per_core, write_fraction),
            )
        if location is Location.HBM:
            return np.full(
                len(footprints),
                self.memory.mcdram.stream_bandwidth(threads_per_core, write_fraction),
            )
        assert self.memory.cache_model is not None
        return self.memory.cache_model.streaming_bandwidth_many(
            footprints, threads_per_core, write_fraction
        )

    def sequential_latency_ns_many(
        self, location: Location, footprints: np.ndarray
    ) -> np.ndarray:
        """Columnar twin of :meth:`sequential_latency_ns`."""
        self._check_location(location)
        directory = self.machine.mesh.directory_lookup_ns()
        if location is Location.DRAM:
            return np.full(
                len(footprints), self.memory.dram.idle_latency_ns + directory
            )
        if location is Location.HBM:
            return np.full(
                len(footprints), self.memory.mcdram.idle_latency_ns + directory
            )
        assert self.memory.cache_model is not None
        cache = self.memory.cache_model
        h = cache.streaming_hit_rate_many(footprints)
        miss = (
            cache.tag_probe_fraction * self.memory.mcdram.idle_latency_ns
            + self.memory.dram.idle_latency_ns
        )
        return h * self.memory.mcdram.idle_latency_ns + (1 - h) * miss + directory

    def random_latency_ns_many(
        self, location: Location, footprints: np.ndarray
    ) -> np.ndarray:
        """Columnar twin of :meth:`random_latency_ns`."""
        self._check_location(location)
        directory = self.machine.mesh.directory_lookup_ns()
        base: float | np.ndarray
        if location is Location.DRAM:
            base = self.memory.dram.idle_latency_ns
        elif location is Location.HBM:
            base = self.memory.mcdram.idle_latency_ns
        else:
            assert self.memory.cache_model is not None
            base = self.memory.cache_model.random_latency_ns_many(footprints)
        translation = self.tlb.translation_overhead_ns_many(footprints, base)
        return base + directory + translation

    def random_capacity_lines_many(
        self,
        location: Location,
        footprints: np.ndarray,
        write_fraction: float = 0.0,
    ) -> np.ndarray:
        """Columnar twin of :meth:`random_capacity_lines`."""
        self._check_location(location)
        if location is Location.DRAM:
            cap = np.full(
                len(footprints),
                self.memory.dram.random_bandwidth(write_fraction=write_fraction),
            )
        elif location is Location.HBM:
            cap = np.full(
                len(footprints),
                self.memory.mcdram.random_bandwidth(write_fraction=write_fraction),
            )
        else:
            assert self.memory.cache_model is not None
            cap = self.memory.cache_model.random_bandwidth_cap_many(
                footprints, write_fraction
            )
        return cap / CACHE_LINE

    # -- phase timing ---------------------------------------------------------
    def _sequential_memory_time_ns(
        self, phase: Phase, mix: PlacementMix, env: OpenMPEnvironment
    ) -> tuple[float, float, float]:
        """Returns (time_ns, achieved_bw, effective_latency)."""
        outstanding = self.threading.outstanding_requests(phase, env)
        tpc = env.threads_per_core
        worst_time = 0.0
        weighted_latency = 0.0
        for location, fraction in mix.fractions:
            if fraction == 0.0:
                continue
            bytes_here = phase.traffic_bytes * fraction
            latency = self.sequential_latency_ns(location, phase.footprint_bytes)
            weighted_latency += fraction * latency
            demand = littles_law_bandwidth(outstanding * fraction, latency)
            cap = self.sequential_bandwidth(
                location, phase.footprint_bytes, tpc, phase.write_fraction
            )
            bandwidth = min(demand, cap)
            if bytes_here > 0:
                worst_time = max(worst_time, bytes_here / bandwidth * NS_PER_S)
        achieved = (
            phase.traffic_bytes / (worst_time / NS_PER_S) if worst_time else 0.0
        )
        return worst_time, achieved, weighted_latency

    def _random_memory_time_ns(
        self, phase: Phase, mix: PlacementMix, env: OpenMPEnvironment
    ) -> tuple[float, float, float]:
        outstanding = self.threading.outstanding_requests(phase, env)
        worst_time = 0.0
        weighted_latency = 0.0
        for location, fraction in mix.fractions:
            if fraction == 0.0:
                continue
            accesses_here = phase.accesses * fraction
            latency = self.random_latency_ns(location, phase.footprint_bytes)
            weighted_latency += fraction * latency
            demand_lines = outstanding * fraction / (latency / NS_PER_S)
            cap_lines = self.random_capacity_lines(
                location, phase.footprint_bytes, phase.write_fraction
            )
            # Hard capacity: random streams are either latency-bound
            # (demand below the device's bank-level parallelism) or pinned
            # at the device limit.
            rate = min(demand_lines, cap_lines)
            if accesses_here > 0:
                worst_time = max(worst_time, accesses_here / rate * NS_PER_S)
        achieved = (
            phase.accesses * CACHE_LINE / (worst_time / NS_PER_S)
            if worst_time
            else 0.0
        )
        return worst_time, achieved, weighted_latency

    def _compute_time_ns(self, phase: Phase, env: OpenMPEnvironment) -> float:
        if phase.flops == 0.0:
            return 0.0
        scale = self.threading.compute_scale(env)
        gflops = self.machine.peak_dp_gflops * scale * phase.compute_efficiency
        return phase.flops / (gflops * 1e9) * NS_PER_S

    def phase_result(
        self, phase: Phase, mix: PlacementMix, env: OpenMPEnvironment
    ) -> PhaseResult:
        """Simulate one phase.

        With an observation session active (:mod:`repro.obs`) the phase is
        additionally wrapped in a ``perfmodel.phase`` span and its traffic
        decomposition is recorded in the metrics registry; the returned
        numbers are identical either way (golden-identity tested).
        """
        if not (obs_trace.enabled() or obs_metrics.enabled()):
            return self._phase_result(phase, mix, env)
        with obs_trace.span(
            "perfmodel.phase",
            tags={"phase": phase.name, "pattern": phase.pattern.value},
        ):
            result = self._phase_result(phase, mix, env)
        self._observe_phase(phase, mix, env)
        return result

    def _phase_result(
        self, phase: Phase, mix: PlacementMix, env: OpenMPEnvironment
    ) -> PhaseResult:
        if phase.traffic_bytes > 0:
            if phase.pattern is AccessPattern.SEQUENTIAL:
                mem_time, bandwidth, latency = self._sequential_memory_time_ns(
                    phase, mix, env
                )
            else:
                mem_time, bandwidth, latency = self._random_memory_time_ns(
                    phase, mix, env
                )
        else:
            mem_time, bandwidth, latency = 0.0, 0.0, 0.0
        compute_time = self._compute_time_ns(phase, env)
        sync = self.threading.sync_overhead_factor(phase, env)
        total = max(mem_time, compute_time) * sync
        return PhaseResult(
            name=phase.name,
            time_ns=total,
            memory_time_ns=mem_time,
            compute_time_ns=compute_time,
            sync_factor=sync,
            achieved_bandwidth=bandwidth,
            effective_latency_ns=latency,
        )

    def _observe_phase(
        self, phase: Phase, mix: PlacementMix, env: OpenMPEnvironment
    ) -> None:
        """Record the phase's model internals in the metrics registry.

        Emits the quantities the paper reports and the figures are built
        from: Little's-law concurrency (``model.concurrency``), per-device
        bytes moved (``model.bytes_moved{device=...}``) — with cache-mode
        traffic split between the MCDRAM side (every access probes the
        cache) and the DDR side (the miss fraction) — plus the MCDRAM
        cache and TLB accounting delegated to the respective models.
        """
        if not obs_metrics.enabled():
            return
        sequential = phase.pattern is AccessPattern.SEQUENTIAL
        pattern = phase.pattern.value
        obs_metrics.observe(
            "model.concurrency",
            self.threading.outstanding_requests(phase, env),
            {"pattern": pattern},
        )
        lines = phase.accesses
        for location, fraction in mix.fractions:
            if fraction == 0.0:
                continue
            traffic = (
                phase.traffic_bytes if sequential else lines * CACHE_LINE
            ) * fraction
            if location is Location.DRAM:
                obs_metrics.add("model.bytes_moved", traffic, {"device": "dram"})
            elif location is Location.HBM:
                obs_metrics.add("model.bytes_moved", traffic, {"device": "mcdram"})
            else:
                assert self.memory.cache_model is not None
                hit_rate = self.memory.cache_model.record_accesses(
                    phase.footprint_bytes, pattern, traffic / CACHE_LINE
                )
                # Every access probes MCDRAM; the miss fraction also
                # transfers from DDR (the composition of section 2.1 of
                # docs/MODEL.md).
                obs_metrics.add("model.bytes_moved", traffic, {"device": "mcdram"})
                obs_metrics.add(
                    "model.bytes_moved", traffic * (1.0 - hit_rate), {"device": "dram"}
                )
        if not sequential:
            self.tlb.record_walks(phase.footprint_bytes, lines)

    def run(
        self,
        profile: MemoryProfile,
        mix: PlacementMix | dict[str, PlacementMix],
        num_threads: int,
    ) -> RunResult:
        """Deprecated alias of :meth:`evaluate` (the pre-`repro.api`
        entry point; kept for callers of the historical shape)."""
        warnings.warn(
            "PerformanceModel.run is deprecated; use "
            "PerformanceModel.evaluate (or the repro.api facade)",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.evaluate(profile, mix, num_threads)

    def evaluate(
        self,
        profile: MemoryProfile,
        mix: PlacementMix | dict[str, PlacementMix],
        num_threads: int,
    ) -> RunResult:
        """Simulate a full profile under a placement and thread count.

        ``mix`` may be a single :class:`PlacementMix` (the paper's
        coarse-grained binding — every structure in one place) or a
        mapping from phase name to mix (the fine-grained memkind
        placement of the paper's future-work section; every phase must be
        mapped).
        """
        env = OpenMPEnvironment(self.machine, num_threads)
        if isinstance(mix, dict):
            missing = [p.name for p in profile.phases if p.name not in mix]
            if missing:
                raise ValueError(
                    f"fine-grained placement missing phases: {missing}"
                )
            mix_for = lambda phase: mix[phase.name]
            reported = next(iter(mix.values()))
        else:
            mix_for = lambda phase: mix
            reported = mix
        with obs_trace.span(
            "perfmodel.run",
            tags=(
                {"workload": profile.workload, "threads": num_threads}
                if obs_trace.enabled()
                else None
            ),
        ):
            results = tuple(
                self.phase_result(phase, mix_for(phase), env)
                for phase in profile.phases
            )
        obs_metrics.add("model.runs")
        return RunResult(
            workload=profile.workload,
            placement=reported,
            num_threads=num_threads,
            phase_results=results,
        )
