"""Deploy-time prewarming of the persistent ModelTables cache.

A fresh service replica (or a fresh CLI process) answers its first
queries at *cold* speed: every (machine, config) table set is built from
the scalar model before the batch engine can answer from memos.  The
:mod:`repro.engine.table_cache` closes that gap across restarts — but
only after something has paid the cold build once.  This module is that
something, run at deploy time instead of on the first unlucky request:

* :func:`prewarm_tables` builds the tables for every registered machine
  (or a chosen subset) crossed with the paper's configuration trio over
  the standard bench grid, and persists them into a shared
  :class:`~repro.engine.table_cache.TableCache` directory;
* ``knl-hybridmem warmup`` and ``knl-hybridmem serve --prewarm`` are the
  CLI faces (see docs/ENGINE.md, "Prewarming").

A prewarmed directory means a subsequent
:class:`~repro.api.facade.Predictor` or
:class:`~repro.engine.batch.BatchEvaluator` against the same machines
and grid reports **zero** table builds: loads hit, nothing is stored
(``tests/engine/test_warmup.py`` pins this).

Observability: each machine's build runs inside a ``tables.prewarm``
span tagged with the machine key, and the run counts
``tables.prewarm_machines`` / ``tables.prewarm_points`` /
``tables.prewarm_stores`` alongside the cache's own
``tables.cache_*`` counters (docs/OBSERVABILITY.md).
"""

from __future__ import annotations

import pathlib
import time
from dataclasses import dataclass
from typing import Sequence

from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace

__all__ = ["MachinePrewarm", "PrewarmReport", "prewarm_tables"]


@dataclass(frozen=True)
class MachinePrewarm:
    """Outcome of prewarming one machine's tables."""

    machine: str
    grid_points: int
    cache_hits: int
    cache_misses: int
    stores: int
    seconds: float

    @property
    def already_warm(self) -> bool:
        """True when every table loaded and nothing had to be stored."""
        return self.stores == 0 and self.cache_misses == 0

    def describe(self) -> str:
        state = "already warm" if self.already_warm else (
            f"{self.stores} table set(s) stored"
        )
        return (
            f"{self.machine}: {self.grid_points} grid points in "
            f"{self.seconds:.2f}s ({state}; "
            f"{self.cache_hits} hit(s), {self.cache_misses} miss(es))"
        )


@dataclass(frozen=True)
class PrewarmReport:
    """Outcome of one :func:`prewarm_tables` run."""

    directory: str
    entries: tuple[MachinePrewarm, ...]

    @property
    def total_points(self) -> int:
        return sum(e.grid_points for e in self.entries)

    @property
    def total_seconds(self) -> float:
        return sum(e.seconds for e in self.entries)

    @property
    def total_stores(self) -> int:
        return sum(e.stores for e in self.entries)

    def describe(self) -> str:
        lines = [
            f"prewarmed {len(self.entries)} machine(s) into {self.directory} "
            f"({self.total_points} grid points, {self.total_seconds:.2f}s, "
            f"{self.total_stores} table store(s)):"
        ]
        lines += [f"  {entry.describe()}" for entry in self.entries]
        return "\n".join(lines)


def prewarm_tables(
    directory: "str | pathlib.Path",
    *,
    machines: "Sequence[str] | None" = None,
    points: int = 2_520,
) -> PrewarmReport:
    """Build and persist ModelTables for ``machines`` into ``directory``.

    ``machines`` defaults to every key in the machine registry; each is
    crossed with the paper configuration trio over the standard bench
    grid (:func:`repro.core.perfbench.build_grid`, ``points`` cells with
    the thread ladder clamped to the machine), which covers the
    footprint x thread x write-fraction slices real sweeps and serve
    traffic touch.  Idempotent: a second run against the same directory
    loads every table and stores nothing.
    """
    # Imported here: repro.core.perfbench imports the batch engine, and
    # keeping this module import-light lets the CLI load it cheaply.
    from repro.core.perfbench import build_grid
    from repro.engine.batch import BatchEvaluator
    from repro.engine.table_cache import TableCache
    from repro.machine import registry

    keys = tuple(machines) if machines is not None else registry.names()
    entries: list[MachinePrewarm] = []
    for key in keys:
        machine = registry.build(key)
        cache = TableCache(directory)
        evaluator = BatchEvaluator(machine, table_cache=cache)
        grid = build_grid(points, machine=machine)
        with obs_trace.span("tables.prewarm", tags={"machine": key}):
            start = time.perf_counter()
            evaluator.evaluate(grid)
            seconds = time.perf_counter() - start
        entries.append(
            MachinePrewarm(
                machine=key,
                grid_points=len(grid),
                cache_hits=cache.hits,
                cache_misses=cache.misses,
                stores=cache.stores,
                seconds=seconds,
            )
        )
        obs_metrics.add("tables.prewarm_machines")
        obs_metrics.add("tables.prewarm_points", float(len(grid)))
        obs_metrics.add("tables.prewarm_stores", float(cache.stores))
    return PrewarmReport(directory=str(directory), entries=entries)
