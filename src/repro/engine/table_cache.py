"""Persistent content-addressed cache of built :class:`ModelTables`.

The batch engine's warm path pays for table *construction*: every memoized
machine/config-derived quantity (latency tables, bandwidth caps, survival
hit rates, TLB tiers, placement splits) is computed on first touch and
reused forever after.  Construction is vectorized, but a fresh process —
a restarted service, a new CLI invocation, a worker pool — still rebuilds
everything from scratch.  This module persists the built tables to disk,
content-addressed exactly like run results, so a fresh process warms by
*loading* instead of rebuilding.

Content address
---------------
``table_key(machine, config)`` hashes, canonically JSON-encoded:

* the machine fingerprint (:func:`repro.core.executor.machine_fingerprint`
  — preset facts plus registry tier/mode extras), so two machines never
  share an entry;
* :data:`repro.engine.batch.TABLES_VERSION`, so any change to the model
  arithmetic or snapshot schema invalidates every stored table; and
* the config fingerprint (:func:`repro.core.executor.config_fingerprint`
  — MCDRAM mode, cache fraction/associativity, numactl policy).

One entry therefore covers one (machine, model version, configuration)
and accumulates every footprint/thread/write-fraction slice ever seen:
:meth:`TableCache.store` merges with the existing payload (read – merge –
atomic replace), so a grid that extends a cached config space reuses the
overlapping slices and only the new cells are computed.

Bit identity
------------
Snapshots hold plain ints and floats only; Python's JSON round trip is
exact for IEEE doubles, so a loaded table answers with the same bits a
fresh build would.  Files carry a payload checksum; a corrupt or
truncated file (checksum mismatch, unparseable JSON, malformed shape) is
treated as a miss, deleted, and rebuilt — never half-loaded.

Observability: ``tables.cache_hits`` / ``tables.cache_misses`` /
``tables.cache_corrupt`` / ``tables.cache_stores`` counters and
``tables.load`` / ``tables.store`` spans (plus ``tables.build`` around a
config-state boot in :class:`repro.engine.batch.BatchEvaluator`), see
docs/OBSERVABILITY.md.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from pathlib import Path
from typing import TYPE_CHECKING, Any

from repro.engine.batch import TABLES_VERSION
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace

if TYPE_CHECKING:
    from repro.core.configs import SystemConfig
    from repro.machine.topology import KNLMachine


def _canonical(payload: Any) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def _checksum(payload: Any) -> str:
    return hashlib.sha256(_canonical(payload).encode()).hexdigest()


def table_key(machine: "KNLMachine", config: "SystemConfig") -> str:
    """Content address of one machine x model-version x config table set."""
    # Imported lazily: repro.core.executor imports repro.engine.batch at
    # module level, so a top-level import here would be circular.
    from repro.core.executor import config_fingerprint, machine_fingerprint

    material = {
        "kind": "model-tables",
        "tables_version": TABLES_VERSION,
        "machine": machine_fingerprint(machine),
        "config": config_fingerprint(config),
    }
    return hashlib.sha256(_canonical(material).encode()).hexdigest()


def _merge(old: dict[str, Any], new: dict[str, Any]) -> dict[str, Any]:
    """Recursive dict union; ``new`` wins on leaf conflicts.

    Conflicting leaves are bit-identical by construction (both sides
    computed the same scalar quantity), so "wins" only matters against a
    tampered file — and then the fresher build is the right answer.
    """
    out = dict(old)
    for key, value in new.items():
        base = out.get(key)
        if isinstance(value, dict) and isinstance(base, dict):
            out[key] = _merge(base, value)
        else:
            out[key] = value
    return out


class TableCache:
    """On-disk store of :meth:`ModelTables.snapshot` payloads by key.

    Thread-safe; safe for concurrent processes sharing a directory
    (atomic replace, merge-on-store, checksum-verified loads).  Lives in
    a subdirectory of the run-result cache by default (see
    :class:`repro.core.executor.SweepExecutor`).
    """

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.corrupt = 0
        self.stores = 0

    def _path(self, key: str) -> Path:
        return self.directory / f"tables-{key}.json"

    @staticmethod
    def _decode(raw: str) -> dict[str, Any] | None:
        """Parse + checksum-verify a cache file; None if corrupt."""
        try:
            wrapper = json.loads(raw)
            checksum = wrapper["checksum"]
            payload = wrapper["payload"]
        except (json.JSONDecodeError, KeyError, TypeError):
            return None
        if not isinstance(payload, dict) or not isinstance(checksum, str):
            return None
        if checksum != _checksum(payload):
            return None
        return payload

    def load(self, key: str) -> dict[str, Any] | None:
        """The stored payload for ``key``, or None (miss / corrupt)."""
        path = self._path(key)
        with self._lock, obs_trace.span("tables.load"):
            try:
                raw = path.read_text()
            except OSError:
                self.misses += 1
                obs_metrics.add("tables.cache_misses")
                return None
            payload = self._decode(raw)
            if payload is None:
                self._discard_corrupt(path)
                return None
            self.hits += 1
            obs_metrics.add("tables.cache_hits")
            return payload

    def store(self, key: str, payload: dict[str, Any]) -> None:
        """Merge ``payload`` into the entry for ``key`` and persist it.

        Read – merge – atomic replace: an entry only ever grows, so an
        extending grid's slices accumulate and concurrent writers cannot
        clobber each other's footprints (last merge sees both files'
        union of its own read).
        """
        path = self._path(key)
        with self._lock, obs_trace.span("tables.store"):
            try:
                existing = self._decode(path.read_text())
            except OSError:
                existing = None
            if existing is not None:
                payload = _merge(existing, payload)
            wrapper = {"checksum": _checksum(payload), "payload": payload}
            tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
            tmp.write_text(json.dumps(wrapper))
            os.replace(tmp, path)
            self.stores += 1
            obs_metrics.add("tables.cache_stores")

    def mark_corrupt(self, key: str) -> None:
        """Record that a decoded payload turned out structurally invalid.

        Called by :class:`repro.engine.batch.BatchEvaluator` when
        ``prefill`` rejects a payload that passed the checksum (e.g. a
        consistent-but-wrong-schema file).  Deletes the file so the next
        store rebuilds it from scratch.
        """
        with self._lock:
            self._discard_corrupt(self._path(key))

    def _discard_corrupt(self, path: Path) -> None:
        self.corrupt += 1
        self.misses += 1
        obs_metrics.add("tables.cache_corrupt")
        obs_metrics.add("tables.cache_misses")
        try:
            path.unlink()
        except OSError:
            pass
