"""Synthetic address-trace generators and trace-driven cache validation.

The analytic models in :mod:`repro.memory.mcdram_cache` use closed forms
(the random-access hit rate ``(1/r)(1-e^-r)``, the modulo streaming
tail).  This module generates the address streams those formulas describe
and drives the *functional* cache simulator
(:class:`repro.machine.caches.SetAssociativeCache`) with them, so tests
can confirm the formulas at reduced scale instead of trusting them.

Patterns:

* :func:`sequential_trace` — repeated linear sweeps (STREAM-like reuse),
* :func:`random_trace` — uniform random lines (GUPS-like),
* :func:`strided_trace` — fixed-stride walks,
* :func:`zipfian_trace` — skewed popularity (graph-like), an extension
  beyond the paper's uniform assumption.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.machine.caches import CacheGeometry, SetAssociativeCache
from repro.util.prng import make_rng
from repro.util.units import CACHE_LINE
from repro.util.validation import check_positive


def sequential_trace(
    footprint_bytes: int, passes: int = 2, line_bytes: int = CACHE_LINE
) -> np.ndarray:
    """Line-aligned addresses of ``passes`` sweeps over the footprint."""
    check_positive("footprint_bytes", footprint_bytes)
    check_positive("passes", passes)
    lines = max(1, footprint_bytes // line_bytes)
    single = np.arange(lines, dtype=np.int64) * line_bytes
    return np.tile(single, passes)


def strided_trace(
    footprint_bytes: int,
    stride_bytes: int,
    accesses: int,
    line_bytes: int = CACHE_LINE,
) -> np.ndarray:
    """Fixed-stride walk, wrapping at the footprint."""
    check_positive("footprint_bytes", footprint_bytes)
    check_positive("stride_bytes", stride_bytes)
    check_positive("accesses", accesses)
    offsets = (np.arange(accesses, dtype=np.int64) * stride_bytes) % footprint_bytes
    return (offsets // line_bytes) * line_bytes


def random_trace(
    footprint_bytes: int,
    accesses: int,
    *,
    seed: int | None = None,
    line_bytes: int = CACHE_LINE,
    scattered: bool = False,
) -> np.ndarray:
    """Uniform random line addresses within the footprint.

    ``scattered=False`` uses a contiguous footprint (lines 0..F-1), the
    view of a single mmap'd buffer in *virtual* addresses.
    ``scattered=True`` places the F lines at random *physical* addresses
    in a 64x larger space — the OS page-scatter situation a memory-side
    cache actually indexes with, and the assumption behind the analytic
    ``(1/r)(1-e^-r)`` hit-rate form.
    """
    check_positive("footprint_bytes", footprint_bytes)
    check_positive("accesses", accesses)
    rng = make_rng(seed, "random-trace", footprint_bytes, accesses, scattered)
    lines = max(1, footprint_bytes // line_bytes)
    picks = rng.integers(0, lines, size=accesses)
    if not scattered:
        return picks * line_bytes
    space = 64 * lines
    placement = rng.choice(space, size=lines, replace=False)
    return placement[picks] * line_bytes


def zipfian_trace(
    footprint_bytes: int,
    accesses: int,
    *,
    skew: float = 0.99,
    seed: int | None = None,
    line_bytes: int = CACHE_LINE,
) -> np.ndarray:
    """Zipf-distributed line addresses (rank-1 line most popular).

    Uses inverse-CDF sampling over the truncated zeta distribution; the
    popular lines are scattered over the footprint with a fixed random
    permutation so popularity is not correlated with cache sets.
    """
    check_positive("footprint_bytes", footprint_bytes)
    check_positive("accesses", accesses)
    if skew <= 0:
        raise ValueError(f"skew must be positive, got {skew}")
    rng = make_rng(seed, "zipf-trace", footprint_bytes, accesses, skew)
    lines = max(1, footprint_bytes // line_bytes)
    ranks = np.arange(1, lines + 1, dtype=np.float64)
    weights = ranks**-skew
    cdf = np.cumsum(weights)
    cdf /= cdf[-1]
    draws = rng.random(accesses)
    picked = np.searchsorted(cdf, draws)
    scatter = rng.permutation(lines)
    return scatter[picked] * line_bytes


@dataclass(frozen=True)
class TraceResult:
    """Outcome of driving a cache with a trace."""

    accesses: int
    hit_rate: float
    steady_hit_rate: float


def drive_cache(
    geometry: CacheGeometry,
    trace: np.ndarray,
    *,
    warmup_fraction: float = 0.5,
) -> TraceResult:
    """Run a trace through a functional cache.

    ``steady_hit_rate`` excludes the first ``warmup_fraction`` of the
    trace (cold misses), which is what the analytic steady-state formulas
    predict.
    """
    if not 0.0 <= warmup_fraction < 1.0:
        raise ValueError(f"warmup_fraction must be in [0, 1), got {warmup_fraction}")
    cache = SetAssociativeCache(geometry)
    hits = cache.access_block(np.asarray(trace, dtype=np.int64))
    split = int(len(trace) * warmup_fraction)
    steady = hits[split:]
    return TraceResult(
        accesses=len(trace),
        hit_rate=float(hits.mean()) if len(trace) else 0.0,
        steady_hit_rate=float(steady.mean()) if len(steady) else 0.0,
    )


def miniature_mcdram_cache(
    capacity_lines: int = 1024, associativity: int = 1
) -> CacheGeometry:
    """A scaled-down direct-mapped 'MCDRAM cache' for validation runs.

    The analytic formulas depend only on the footprint/capacity *ratio*,
    so a 64 KiB miniature validates the 16 GiB model.
    """
    check_positive("capacity_lines", capacity_lines)
    return CacheGeometry(
        name="mini-mcdram",
        capacity_bytes=capacity_lines * CACHE_LINE,
        associativity=associativity,
        load_to_use_ns=1.0,
    )
