"""Roofline model over the hybrid memory system.

An extension beyond the paper's exhibits: place each workload on a
roofline with *two* bandwidth ceilings (DDR4 and MCDRAM).  The ridge
points make the paper's guideline quantitative — a kernel left of the
MCDRAM ridge cannot benefit from HBM no matter what, a kernel between the
ridges is exactly the population the paper says gains up to ~4x.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.profilephase import MemoryProfile
from repro.machine.topology import KNLMachine
from repro.memory.device import MemoryDevice
from repro.util.validation import check_positive


@dataclass(frozen=True)
class RooflinePoint:
    """One workload's position on the roofline."""

    name: str
    arithmetic_intensity: float
    attainable_gflops_dram: float
    attainable_gflops_hbm: float

    @property
    def hbm_speedup_bound(self) -> float:
        """Upper bound on the HBM/DRAM speedup for this intensity."""
        if self.attainable_gflops_dram == 0:
            return 1.0
        return self.attainable_gflops_hbm / self.attainable_gflops_dram


class RooflineModel:
    """Two-ceiling roofline for a machine with DDR4 + MCDRAM."""

    def __init__(
        self,
        machine: KNLMachine,
        dram: MemoryDevice,
        mcdram: MemoryDevice,
        *,
        threads_per_core: int = 1,
    ) -> None:
        self.machine = machine
        self.dram = dram
        self.mcdram = mcdram
        self.threads_per_core = threads_per_core

    @property
    def peak_gflops(self) -> float:
        return self.machine.peak_dp_gflops

    def dram_bandwidth(self) -> float:
        return self.dram.stream_bandwidth(self.threads_per_core)

    def hbm_bandwidth(self) -> float:
        return self.mcdram.stream_bandwidth(self.threads_per_core)

    def ridge_intensity_dram(self) -> float:
        """Flops/byte where the DRAM roof meets the compute roof."""
        return self.peak_gflops * 1e9 / self.dram_bandwidth()

    def ridge_intensity_hbm(self) -> float:
        """Flops/byte where the MCDRAM roof meets the compute roof."""
        return self.peak_gflops * 1e9 / self.hbm_bandwidth()

    def attainable_gflops(self, intensity: float, bandwidth: float) -> float:
        """min(peak, intensity * bandwidth) in GFLOP/s."""
        check_positive("intensity", intensity)
        check_positive("bandwidth", bandwidth)
        return min(self.peak_gflops, intensity * bandwidth / 1e9)

    def locate(self, profile: MemoryProfile) -> RooflinePoint:
        """Place a workload profile on the roofline."""
        intensity = profile.total_flops / max(profile.total_traffic_bytes, 1.0)
        intensity = max(intensity, 1e-12)
        return RooflinePoint(
            name=profile.workload,
            arithmetic_intensity=intensity,
            attainable_gflops_dram=self.attainable_gflops(
                intensity, self.dram_bandwidth()
            ),
            attainable_gflops_hbm=self.attainable_gflops(
                intensity, self.hbm_bandwidth()
            ),
        )
