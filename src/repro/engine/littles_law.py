"""Little's law and request-concurrency arithmetic.

The paper (Section IV-B, citing Gustafson's encyclopedia entry) frames the
whole access-pattern story through Little's law:

    throughput = outstanding requests / latency

Sequential codes reach high outstanding-request counts (prefetchers), so
they are limited by device bandwidth; random codes sustain only a couple
of outstanding requests per thread, so they are limited by latency — and
HBM's *higher* latency makes it a net loss for them.
"""

from __future__ import annotations

import math

from repro.util.units import CACHE_LINE, NS_PER_S
from repro.util.validation import check_non_negative, check_positive


def littles_law_bandwidth(
    outstanding_requests: float,
    latency_ns: float,
    request_bytes: int = CACHE_LINE,
) -> float:
    """Bandwidth (bytes/s) demanded by ``outstanding_requests`` in-flight
    requests of ``request_bytes`` each at ``latency_ns`` service latency."""
    check_non_negative("outstanding_requests", outstanding_requests)
    check_positive("latency_ns", latency_ns)
    check_positive("request_bytes", request_bytes)
    return outstanding_requests * request_bytes / (latency_ns / NS_PER_S)


def required_concurrency(
    bandwidth: float, latency_ns: float, request_bytes: int = CACHE_LINE
) -> float:
    """Outstanding requests needed to sustain ``bandwidth`` at ``latency_ns``.

    The classic bandwidth-delay product; e.g. 330 GB/s at 154 ns needs
    ~794 outstanding lines machine-wide (about 12 per core on 64 cores).
    """
    check_non_negative("bandwidth", bandwidth)
    check_positive("latency_ns", latency_ns)
    check_positive("request_bytes", request_bytes)
    return bandwidth * (latency_ns / NS_PER_S) / request_bytes


def saturating_rate(demand: float, capacity: float) -> float:
    """Achieved rate when ``demand`` is offered to a resource of ``capacity``.

    Smooth exponential saturation ``capacity * (1 - exp(-demand/capacity))``:
    linear for demand << capacity, asymptotic to capacity, never exceeding
    either input.  Used for random-access request streams hitting the
    devices' bank-level parallelism limit — it is what bends the
    hyper-threading curves of Fig. 6 from linear to saturating.
    """
    check_non_negative("demand", demand)
    check_positive("capacity", capacity)
    if demand == 0.0:
        return 0.0
    return capacity * (1.0 - math.exp(-demand / capacity))
