"""Data placement descriptions consumed by the performance model.

A :class:`PlacementMix` says where a phase's traffic goes:

* ``Location.DRAM`` — the DDR node accessed directly (flat mode,
  ``--membind=0``),
* ``Location.HBM`` — the MCDRAM node accessed directly (flat mode,
  ``--membind=1``),
* ``Location.DRAM_CACHED`` — DDR fronted by the MCDRAM cache (cache or
  hybrid mode).

The paper's three configurations are pure mixes; the memkind fine-grained
extension produces genuine mixtures (e.g. matrix in HBM, everything else
in DRAM).  :meth:`PlacementMix.from_allocation_split` bridges from the
allocator's per-node byte split to a mix.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.util.validation import check_fraction


class Location(enum.Enum):
    """Where a byte of application data physically lives."""

    DRAM = "dram"
    HBM = "hbm"
    DRAM_CACHED = "dram-cached"


@dataclass(frozen=True)
class PlacementMix:
    """Traffic fractions per location; fractions must sum to 1."""

    fractions: tuple[tuple[Location, float], ...]

    def __post_init__(self) -> None:
        seen = set()
        total = 0.0
        for location, fraction in self.fractions:
            if location in seen:
                raise ValueError(f"duplicate location {location}")
            seen.add(location)
            check_fraction(f"fraction[{location.value}]", fraction)
            total += fraction
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"fractions must sum to 1, got {total}")

    # -- constructors ---------------------------------------------------------
    @classmethod
    def pure(cls, location: Location) -> "PlacementMix":
        return cls(((location, 1.0),))

    @classmethod
    def of(cls, **kwargs: float) -> "PlacementMix":
        """Build from keyword fractions, e.g. ``of(hbm=0.6, dram=0.4)``.

        Keys are lowercase location names with '-' as '_'.
        """
        mapping = {
            "dram": Location.DRAM,
            "hbm": Location.HBM,
            "dram_cached": Location.DRAM_CACHED,
        }
        items = []
        for key, value in kwargs.items():
            if key not in mapping:
                raise ValueError(f"unknown location {key!r}")
            if value > 0:
                items.append((mapping[key], float(value)))
        return cls(tuple(items))

    @classmethod
    def from_allocation_split(
        cls, split: dict[int, int], *, dram_cached: bool = False
    ) -> "PlacementMix":
        """Translate an allocator ``{node_id: bytes}`` split.

        Node 0 is DDR (cached if the memory system runs the MCDRAM cache),
        node 1 is the flat HBM node.
        """
        total = sum(split.values())
        if total <= 0:
            raise ValueError("split must contain bytes")
        items = []
        node0 = split.get(0, 0)
        node1 = split.get(1, 0)
        if set(split) - {0, 1}:
            raise ValueError(f"unknown nodes in split: {sorted(split)}")
        if node0:
            location = Location.DRAM_CACHED if dram_cached else Location.DRAM
            items.append((location, node0 / total))
        if node1:
            items.append((Location.HBM, node1 / total))
        return cls(tuple(items))

    # -- queries ----------------------------------------------------------------
    def fraction(self, location: Location) -> float:
        for loc, frac in self.fractions:
            if loc is location:
                return frac
        return 0.0

    @property
    def locations(self) -> tuple[Location, ...]:
        return tuple(loc for loc, frac in self.fractions if frac > 0)

    def describe(self) -> str:
        return " + ".join(
            f"{frac:.0%} {loc.value}" for loc, frac in self.fractions if frac > 0
        )
