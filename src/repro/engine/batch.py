"""Columnar batch evaluation of the analytic performance model.

The scalar engine answers one query at a time: :meth:`ExperimentRunner.run
<repro.core.runner.ExperimentRunner.run>` boots a :class:`SimulatedOS`,
parses the numactl policy, allocates the problem and walks the profile's
phases through :class:`PerformanceModel` — per point.  A paper-scale sweep
is a *grid* of such points (workload x config x size x threads), and every
machine- or config-derived quantity in the model (device bandwidth tables,
the MCDRAM-cache survival interpolator, TLB tiers, Little's-law
concurrency caps) is identical across huge swaths of that grid.

This module evaluates whole grids in a few numpy array ops:

* :class:`ModelTables` — a vectorized twin of :class:`PerformanceModel`
  bound to one (machine, memory system).  Footprint-, threading- and
  write-fraction-dependent quantities are resolved by calling the *scalar*
  model once per unique value and memoizing (``sequential_latency_ns``,
  ``sequential_bandwidth``, ``random_latency_ns``,
  ``random_capacity_lines``); the surrounding phase arithmetic is
  replicated expression-for-expression in numpy.
* :class:`BatchEvaluator` — a vectorized twin of
  :class:`ExperimentRunner`.  One simulated boot per configuration, one
  parsed numactl policy, one memoized placement per (config, footprint) —
  including both modelled failure paths (``check_runnable`` and
  out-of-node-memory), which surface per point exactly as the scalar
  runner reports them.

Bit-for-bit contract
--------------------
Batch results are required to match the scalar engine exactly — same IEEE
double for every time, bandwidth, latency and metric — because the golden
figures are byte-compared.  Two rules make that possible:

1. every transcendental or interpolated quantity goes through the scalar
   model itself (memoized per unique input), never a numpy reimplementation
   (``np.exp``/``np.log2`` are not bit-identical to :mod:`math`);
2. the remaining arithmetic (multiply, divide, min, max, fused sums over
   at most two placement locations) is replicated in the scalar code's
   exact association order; IEEE addition is commutative, so two-location
   mixes are order-safe.

The equivalence suite (``tests/engine/test_batch.py``) sweeps every
registry workload across the paper trio and the thread ladder and compares
records field by field.

Observability: per-point spans would cost more than the evaluation, so
batch mode accounts in aggregate — one ``batch.evaluate`` span, counter
*sums* (``runner.runs``, ``model.bytes_moved``, MCDRAM-cache and TLB
accounting) and histogram merges (``model.concurrency``) equal to what the
scalar path would have accumulated, with gauges left at the last row's
value.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Sequence

import numpy as np

if TYPE_CHECKING:
    from repro.engine.table_cache import TableCache

from repro.core.configs import ConfigName, SystemConfig, make_config
from repro.core.runner import RunRecord
from repro.engine.perfmodel import PerformanceModel, PhaseResult, RunResult
from repro.engine.placement import Location, PlacementMix
from repro.engine.profilephase import AccessPattern, MemoryProfile
from repro.machine.presets import knl7210
from repro.machine.topology import KNLMachine
from repro.memory.modes import MemorySystem
from repro.memory.numa import OutOfNodeMemory
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.runtime.process import OpenMPEnvironment
from repro.runtime.simos import SimulatedOS
from repro.util.units import CACHE_LINE, NS_PER_S
from repro.workloads.base import Workload

#: Version of the ModelTables numbers/serialization.  Part of the
#: persistent table cache's content address
#: (:mod:`repro.engine.table_cache`): bump on ANY change to the model
#: arithmetic, the memo-key packing or the snapshot schema, so stale
#: on-disk tables can never be loaded into a newer engine.
TABLES_VERSION = 1

#: Row-block column order (one row per (point, phase)).
_TEMPLATE_COLUMNS = (
    "traffic_bytes",
    "flops",
    "footprint_bytes",
    "access_bytes",
    "mlp_per_thread",
    "sequential",
    "compute_efficiency",
    "sync_fraction",
    "sync_quadratic",
    "write_fraction",
)


def _gather(
    memo: dict[int, float], keys: np.ndarray, compute: Callable[[int], float]
) -> np.ndarray:
    """Memoized elementwise lookup: one scalar ``compute`` per unique key."""
    uniq, inverse = np.unique(keys, return_inverse=True)
    values = np.empty(len(uniq))
    for j, key in enumerate(uniq):
        key = int(key)
        value = memo.get(key)
        if value is None:
            value = compute(key)
            memo[key] = value
        values[j] = value
    return values[inverse]


def _gather_bulk(
    memo: dict[int, float],
    keys: np.ndarray,
    compute_many: Callable[[np.ndarray], np.ndarray],
) -> np.ndarray:
    """Memoized elementwise lookup: one *columnar* ``compute_many`` call
    covering every unique key not already in the memo.

    The vectorized twin of :func:`_gather`: same memo dicts (plain-int
    keys, plain-float values, so entries survive a JSON round trip
    bit-identically), but the misses are computed in a single bulk call
    instead of a Python loop — this is what moves table *construction*
    off the warm path's critical section.
    """
    uniq, inverse = np.unique(keys, return_inverse=True)
    uniq_list = [int(k) for k in uniq.tolist()]
    missing = [k for k in uniq_list if k not in memo]
    if missing:
        computed = compute_many(np.asarray(missing, dtype=np.int64))
        for key, value in zip(missing, computed.tolist()):
            memo[key] = value
    values = np.array([memo[k] for k in uniq_list])
    return values[inverse]


def _capacity_hit_many(cache: Any, footprints: np.ndarray) -> np.ndarray:
    """Columnar capacity-bound hit rate min(1, C/F) (observe-path twin)."""
    r = footprints / cache.capacity_bytes
    out = np.ones(len(r))
    over = r > 1.0
    out[over] = 1.0 / r[over]
    return out


class ModelTables:
    """Vectorized twin of :class:`PerformanceModel` for one memory system.

    Owns a scalar model instance and answers *rows* — parallel arrays with
    one entry per (query point, phase) — in a handful of array ops.  All
    footprint-dependent quantities are resolved through the scalar model
    (memoized per unique footprint / threading level / write fraction), so
    the numbers are the scalar engine's own.
    """

    def __init__(
        self,
        machine: KNLMachine,
        memory: MemorySystem,
        *,
        vectorized: bool = True,
    ) -> None:
        self.model = PerformanceModel(machine, memory)
        # vectorized=True (the default) fills memo misses through the
        # columnar *_many model twins in one bulk call per lookup;
        # vectorized=False is the retained scalar reference path (one
        # scalar model call per unique key).  Both paths populate the
        # same memo dicts with identical bits (equivalence-tested).
        self._vectorized = vectorized
        core = machine.reference_core
        self._mlp_sequential = core.mlp_sequential
        self._mlp_random = core.mlp_random
        # The superqueue cap, probed rather than duplicated: with infinite
        # per-thread MLP the clamp is all that remains.
        self._line_cap = core.outstanding_lines(float("inf"), 1)
        self._issue = np.array(
            [np.nan]
            + [core.smt_issue_efficiency(t) for t in range(1, core.smt_threads + 1)]
        )
        self._num_cores = machine.num_cores
        self._peak_gflops = machine.peak_dp_gflops
        # The packed (footprint << 3 | tpc) memo key in _sequential_cap
        # requires tpc to fit three bits; every registered machine has
        # smt_threads <= 4.
        if core.smt_threads >= 8:
            raise ValueError(
                f"ModelTables supports at most 7 SMT threads per core, "
                f"got {core.smt_threads}"
            )
        # Memo tables, keyed by the scalar model's own argument tuples.
        self._seq_lat: dict[Location, dict[int, float]] = {}
        self._seq_cap: dict[tuple[Location, float], dict[int, float]] = {}
        self._rand_lat: dict[Location, dict[int, float]] = {}
        self._rand_cap: dict[tuple[Location, float], dict[int, float]] = {}
        self._hit_rate: dict[str, dict[int, float]] = {}
        self._cap_hit: dict[int, float] = {}
        self._tlb_l1: dict[int, float] = {}
        self._tlb_l2: dict[int, float] = {}
        self._tlb_depth: dict[int, float] = {}

    # -- memoized scalar-model lookups --------------------------------------
    def _sequential_latency(self, loc: Location, fps: np.ndarray) -> np.ndarray:
        memo = self._seq_lat.setdefault(loc, {})
        if self._vectorized:
            return _gather_bulk(
                memo, fps, lambda f: self.model.sequential_latency_ns_many(loc, f)
            )
        return _gather(memo, fps, lambda f: self.model.sequential_latency_ns(loc, f))

    def _sequential_cap_many(
        self, loc: Location, keys: np.ndarray, wf: float
    ) -> np.ndarray:
        """Bulk filler for packed (footprint << 3 | tpc) sequential-cap keys."""
        fps = keys >> 3
        tpcs = keys & 7
        values = np.empty(len(keys))
        for tpc in np.unique(tpcs):
            mask = tpcs == tpc
            values[mask] = self.model.sequential_bandwidth_many(
                loc, fps[mask], int(tpc), wf
            )
        return values

    def _sequential_cap(
        self, loc: Location, fps: np.ndarray, tpcs: np.ndarray, wfs: np.ndarray
    ) -> np.ndarray:
        out = np.empty(len(fps))
        # tpc <= smt_threads < 8 (checked in __init__), so
        # (footprint << 3 | tpc) is injective.
        keys = fps * 8 + tpcs
        for wf in np.unique(wfs):
            mask = wfs == wf
            wf = float(wf)
            memo = self._seq_cap.setdefault((loc, wf), {})
            if self._vectorized:
                out[mask] = _gather_bulk(
                    memo,
                    keys[mask],
                    lambda k, wf=wf: self._sequential_cap_many(loc, k, wf),
                )
            else:
                out[mask] = _gather(
                    memo,
                    keys[mask],
                    lambda k, wf=wf: self.model.sequential_bandwidth(
                        loc, k >> 3, k & 7, wf
                    ),
                )
        return out

    def _random_latency(self, loc: Location, fps: np.ndarray) -> np.ndarray:
        memo = self._rand_lat.setdefault(loc, {})
        if self._vectorized:
            return _gather_bulk(
                memo, fps, lambda f: self.model.random_latency_ns_many(loc, f)
            )
        return _gather(memo, fps, lambda f: self.model.random_latency_ns(loc, f))

    def _random_cap(
        self, loc: Location, fps: np.ndarray, wfs: np.ndarray
    ) -> np.ndarray:
        out = np.empty(len(fps))
        for wf in np.unique(wfs):
            mask = wfs == wf
            wf = float(wf)
            memo = self._rand_cap.setdefault((loc, wf), {})
            if self._vectorized:
                out[mask] = _gather_bulk(
                    memo,
                    fps[mask],
                    lambda f, wf=wf: self.model.random_capacity_lines_many(
                        loc, f, wf
                    ),
                )
            else:
                out[mask] = _gather(
                    memo,
                    fps[mask],
                    lambda f, wf=wf: self.model.random_capacity_lines(loc, f, wf),
                )
        return out

    # -- the kernel ---------------------------------------------------------
    def evaluate_rows(self, rows: dict[str, np.ndarray]) -> dict[str, np.ndarray]:
        """Evaluate phase rows; returns per-row result arrays.

        ``rows`` holds, per (point, phase) row: the phase template columns
        (:data:`_TEMPLATE_COLUMNS`), the placement fractions
        (``frac_dram`` / ``frac_cached`` / ``frac_hbm``) and the thread
        shape (``threads_per_core``, ``active_cores``, ``num_threads``).
        Every expression mirrors the scalar model's association order.
        """
        traffic = rows["traffic_bytes"]
        flops = rows["flops"]
        fp = rows["footprint_bytes"]
        access = rows["access_bytes"]
        mlp = rows["mlp_per_thread"]
        sequential = rows["sequential"]
        tpc = rows["threads_per_core"]
        cores = rows["active_cores"]
        nrows = len(traffic)

        per_thread = np.where(
            np.isnan(mlp),
            np.where(sequential, self._mlp_sequential, self._mlp_random),
            mlp,
        )
        outstanding = np.minimum(per_thread * tpc, self._line_cap) * cores

        worst = np.zeros(nrows)
        latency = np.zeros(nrows)
        bandwidth = np.zeros(nrows)
        # Node-0 locations (DRAM / DRAM_CACHED, mutually exclusive) before
        # HBM: the allocator's split order, hence the scalar accumulation
        # order for the weighted latency.
        locations = (
            (Location.DRAM, rows["frac_dram"]),
            (Location.DRAM_CACHED, rows["frac_cached"]),
            (Location.HBM, rows["frac_hbm"]),
        )

        seq_mask = sequential & (traffic > 0)
        for loc, frac in locations:
            idx = np.nonzero(seq_mask & (frac > 0.0))[0]
            if not len(idx):
                continue
            f = frac[idx]
            lat = self._sequential_latency(loc, fp[idx])
            latency[idx] += f * lat
            demand = outstanding[idx] * f * CACHE_LINE / (lat / NS_PER_S)
            cap = self._sequential_cap(
                loc, fp[idx], tpc[idx], rows["write_fraction"][idx]
            )
            bw = np.minimum(demand, cap)
            time = traffic[idx] * f / bw * NS_PER_S
            worst[idx] = np.maximum(worst[idx], time)
        idx = np.nonzero(seq_mask & (worst > 0))[0]
        bandwidth[idx] = traffic[idx] / (worst[idx] / NS_PER_S)

        rand_mask = ~sequential & (traffic > 0)
        accesses = traffic / access
        for loc, frac in locations:
            idx = np.nonzero(rand_mask & (frac > 0.0))[0]
            if not len(idx):
                continue
            f = frac[idx]
            lat = self._random_latency(loc, fp[idx])
            latency[idx] += f * lat
            demand_lines = outstanding[idx] * f / (lat / NS_PER_S)
            cap_lines = self._random_cap(loc, fp[idx], rows["write_fraction"][idx])
            rate = np.minimum(demand_lines, cap_lines)
            time = accesses[idx] * f / rate * NS_PER_S
            worst[idx] = np.maximum(worst[idx], time)
        idx = np.nonzero(rand_mask & (worst > 0))[0]
        bandwidth[idx] = accesses[idx] * CACHE_LINE / (worst[idx] / NS_PER_S)

        compute = np.zeros(nrows)
        idx = np.nonzero(flops != 0.0)[0]
        if len(idx):
            scale = self._issue[tpc[idx]] * cores[idx] / self._num_cores
            gflops = self._peak_gflops * scale * rows["compute_efficiency"][idx]
            compute[idx] = flops[idx] / (gflops * 1e9) * NS_PER_S

        sync_f = rows["sync_fraction"]
        sync_q = rows["sync_quadratic"]
        sync = np.ones(nrows)
        idx = np.nonzero((sync_f != 0.0) | (sync_q != 0.0))[0]
        if len(idx):
            extra = np.maximum(
                0.0, rows["num_threads"][idx] / self._num_cores - 1.0
            )
            sync[idx] = 1.0 + sync_f[idx] * extra + sync_q[idx] * extra**2

        return {
            "time_ns": np.maximum(worst, compute) * sync,
            "memory_time_ns": worst,
            "compute_time_ns": compute,
            "sync_factor": sync,
            "achieved_bandwidth": bandwidth,
            "effective_latency_ns": latency,
            "outstanding": outstanding,
        }

    # -- aggregate observability -------------------------------------------
    def observe_rows(
        self, rows: dict[str, np.ndarray], out: dict[str, np.ndarray]
    ) -> None:
        """Aggregate-metrics twin of ``PerformanceModel._observe_phase``.

        Emits counter *sums* and histogram merges equal to the scalar
        per-phase accounting over the same rows; gauges end at the last
        row's value (the scalar path overwrites them per phase anyway).
        """
        if not obs_metrics.enabled():
            return
        sequential = rows["sequential"]
        traffic = rows["traffic_bytes"]
        fp = rows["footprint_bytes"]
        lines_all = traffic / rows["access_bytes"]
        for pattern in AccessPattern:
            mask = (
                sequential if pattern is AccessPattern.SEQUENTIAL else ~sequential
            )
            if mask.any():
                obs_metrics.observe_many(
                    "model.concurrency",
                    out["outstanding"][mask],
                    {"pattern": pattern.value},
                )
        for loc, frac in (
            (Location.DRAM, rows["frac_dram"]),
            (Location.DRAM_CACHED, rows["frac_cached"]),
            (Location.HBM, rows["frac_hbm"]),
        ):
            mask = frac > 0.0
            if not mask.any():
                continue
            moved = (
                np.where(sequential[mask], traffic[mask], lines_all[mask] * CACHE_LINE)
                * frac[mask]
            )
            if loc is Location.DRAM:
                obs_metrics.add(
                    "model.bytes_moved", float(moved.sum()), {"device": "dram"}
                )
            elif loc is Location.HBM:
                obs_metrics.add(
                    "model.bytes_moved", float(moved.sum()), {"device": "mcdram"}
                )
            else:
                self._observe_cached(fp[mask], sequential[mask], moved)
        rand = ~sequential
        if rand.any():
            lines = lines_all[rand]
            busy = lines > 0.0
            if busy.any():
                fpr = fp[rand][busy]
                tlb = self.model.tlb
                if self._vectorized:
                    l1 = _gather_bulk(self._tlb_l1, fpr, tlb.l1_miss_rate_many)
                    l2 = _gather_bulk(self._tlb_l2, fpr, tlb.l2_miss_rate_many)
                else:
                    l1 = _gather(self._tlb_l1, fpr, tlb.l1_miss_rate)
                    l2 = _gather(self._tlb_l2, fpr, tlb.l2_miss_rate)
                obs_metrics.add("tlb.l1_misses", float((l1 * lines[busy]).sum()))
                obs_metrics.add("tlb.walks", float((l2 * lines[busy]).sum()))
                obs_metrics.set_gauge(
                    "tlb.walk_depth",
                    _gather(self._tlb_depth, fpr[-1:], tlb.walk_depth)[0],
                )

    def _observe_cached(
        self, fps: np.ndarray, sequential: np.ndarray, moved: np.ndarray
    ) -> None:
        """Aggregate twin of ``MCDRAMCacheModel.record_accesses``."""
        cache = self.model.memory.cache_model
        assert cache is not None
        lines = moved / CACHE_LINE
        hits = np.empty(len(fps))
        for pattern in AccessPattern:
            pmask = (
                sequential if pattern is AccessPattern.SEQUENTIAL else ~sequential
            )
            if not pmask.any():
                continue
            memo = self._hit_rate.setdefault(pattern.value, {})
            if self._vectorized:
                h = _gather_bulk(
                    memo,
                    fps[pmask],
                    lambda f: cache.hit_rate_many(f, pattern.value),
                )
            else:
                h = _gather(
                    memo, fps[pmask], lambda f: cache.hit_rate(f, pattern.value)
                )
            hits[pmask] = h
            busy = lines[pmask] > 0.0
            if not busy.any():
                continue
            line_count = lines[pmask][busy]
            hit_rate = h[busy]
            if self._vectorized:
                capacity_hit = _gather_bulk(
                    self._cap_hit,
                    fps[pmask][busy],
                    lambda f: _capacity_hit_many(cache, f),
                )
            else:
                capacity_hit = _gather(
                    self._cap_hit,
                    fps[pmask][busy],
                    lambda f: 1.0 if cache.footprint_ratio(f) <= 1.0
                    else 1.0 / cache.footprint_ratio(f),
                )
            labels = {"pattern": pattern.value}
            obs_metrics.add("mcdram_cache.accesses", float(line_count.sum()), labels)
            obs_metrics.add(
                "mcdram_cache.hits", float((hit_rate * line_count).sum()), labels
            )
            obs_metrics.add(
                "mcdram_cache.misses",
                float(((1.0 - hit_rate) * line_count).sum()),
                labels,
            )
            obs_metrics.add(
                "mcdram_cache.conflict_misses",
                float((np.maximum(0.0, capacity_hit - hit_rate) * line_count).sum()),
                labels,
            )
            obs_metrics.set_gauge(
                "mcdram_cache.hit_rate", float(hit_rate[-1]), labels
            )
        # Every access probes MCDRAM; the miss fraction also reads DDR.
        obs_metrics.add("model.bytes_moved", float(moved.sum()), {"device": "mcdram"})
        obs_metrics.add(
            "model.bytes_moved",
            float((moved * (1.0 - hits)).sum()),
            {"device": "dram"},
        )

    # -- persistence ---------------------------------------------------------
    # The memo dicts hold plain ints/floats only, so a JSON round trip of
    # the snapshot reproduces every entry bit-identically (Python's float
    # repr/parse is exact).  Float write-fraction keys are serialized via
    # repr() for the same reason.  The schema is versioned by
    # :data:`TABLES_VERSION` through the table cache's content address.

    def entry_count(self) -> int:
        """Total memoized entries across every table (dirty tracking)."""
        count = 0
        for keyed in (self._seq_lat, self._rand_lat):
            for memo in keyed.values():
                count += len(memo)
        for keyed_wf in (self._seq_cap, self._rand_cap):
            for memo in keyed_wf.values():
                count += len(memo)
        for pattern_memo in self._hit_rate.values():
            count += len(pattern_memo)
        count += len(self._cap_hit)
        count += len(self._tlb_l1)
        count += len(self._tlb_l2)
        count += len(self._tlb_depth)
        return count

    def snapshot(self) -> dict[str, Any]:
        """JSON-serializable image of every populated memo table."""

        def plain(memo: dict[int, float]) -> dict[str, float]:
            return {str(key): value for key, value in memo.items()}

        def by_loc(
            keyed: dict[Location, dict[int, float]],
        ) -> dict[str, dict[str, float]]:
            return {loc.value: plain(memo) for loc, memo in keyed.items() if memo}

        def by_loc_wf(
            keyed: dict[tuple[Location, float], dict[int, float]],
        ) -> dict[str, dict[str, dict[str, float]]]:
            out: dict[str, dict[str, dict[str, float]]] = {}
            for (loc, wf), memo in keyed.items():
                if memo:
                    out.setdefault(loc.value, {})[repr(wf)] = plain(memo)
            return out

        return {
            "seq_lat": by_loc(self._seq_lat),
            "seq_cap": by_loc_wf(self._seq_cap),
            "rand_lat": by_loc(self._rand_lat),
            "rand_cap": by_loc_wf(self._rand_cap),
            "hit_rate": {
                pattern: plain(memo)
                for pattern, memo in self._hit_rate.items()
                if memo
            },
            "cap_hit": plain(self._cap_hit),
            "tlb_l1": plain(self._tlb_l1),
            "tlb_l2": plain(self._tlb_l2),
            "tlb_depth": plain(self._tlb_depth),
        }

    def prefill(self, payload: dict[str, Any]) -> None:
        """Merge a :meth:`snapshot` payload into the memo tables.

        Entries already memoized in-process win (they are bit-identical
        by construction anyway).  A structurally malformed payload raises
        (``KeyError``/``ValueError``/``TypeError``/``AttributeError``);
        the table cache treats that as a corrupt file and falls back to
        building from scratch.
        """

        def parse(entries: dict[str, Any]) -> dict[int, float]:
            return {int(key): float(value) for key, value in entries.items()}

        for loc_name, entries in payload.get("seq_lat", {}).items():
            memo = self._seq_lat.setdefault(Location(loc_name), {})
            memo.update({k: v for k, v in parse(entries).items() if k not in memo})
        for loc_name, by_wf in payload.get("seq_cap", {}).items():
            for wf_repr, entries in by_wf.items():
                memo = self._seq_cap.setdefault(
                    (Location(loc_name), float(wf_repr)), {}
                )
                memo.update(
                    {k: v for k, v in parse(entries).items() if k not in memo}
                )
        for loc_name, entries in payload.get("rand_lat", {}).items():
            memo = self._rand_lat.setdefault(Location(loc_name), {})
            memo.update({k: v for k, v in parse(entries).items() if k not in memo})
        for loc_name, by_wf in payload.get("rand_cap", {}).items():
            for wf_repr, entries in by_wf.items():
                memo = self._rand_cap.setdefault(
                    (Location(loc_name), float(wf_repr)), {}
                )
                memo.update(
                    {k: v for k, v in parse(entries).items() if k not in memo}
                )
        for pattern, entries in payload.get("hit_rate", {}).items():
            if not isinstance(pattern, str):
                raise TypeError(f"hit_rate pattern key must be str, got {pattern!r}")
            memo = self._hit_rate.setdefault(pattern, {})
            memo.update({k: v for k, v in parse(entries).items() if k not in memo})
        for name, memo in (
            ("cap_hit", self._cap_hit),
            ("tlb_l1", self._tlb_l1),
            ("tlb_l2", self._tlb_l2),
            ("tlb_depth", self._tlb_depth),
        ):
            memo.update(
                {
                    k: v
                    for k, v in parse(payload.get(name, {})).items()
                    if k not in memo
                }
            )

    # -- model.evaluate twin -------------------------------------------------
    def run_batch(
        self,
        requests: Sequence[
            tuple[MemoryProfile, "PlacementMix | dict[str, PlacementMix]", int]
        ],
    ) -> list[RunResult]:
        """Deprecated alias of :meth:`evaluate_batch` (the pre-`repro.api`
        entry point; kept for callers of the historical shape)."""
        warnings.warn(
            "ModelTables.run_batch is deprecated; use "
            "ModelTables.evaluate_batch (or the repro.api facade)",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.evaluate_batch(requests)

    def evaluate_batch(
        self,
        requests: Sequence[
            tuple[MemoryProfile, "PlacementMix | dict[str, PlacementMix]", int]
        ],
    ) -> list[RunResult]:
        """Evaluate many ``model.evaluate`` calls at once; returns
        RunResults.

        Validation order matches a scalar loop over the requests: the
        OpenMP environment is checked, then fine-grained dicts are checked
        for missing phases, per request in sequence.
        """
        machine = self.model.machine
        columns: dict[str, list[Any]] = {
            name: []
            for name in _TEMPLATE_COLUMNS
            + ("frac_dram", "frac_cached", "frac_hbm")
            + ("threads_per_core", "active_cores", "num_threads")
        }
        shapes: list[tuple[MemoryProfile, PlacementMix, int, int]] = []
        for profile, mix, num_threads in requests:
            env = OpenMPEnvironment(machine, num_threads)
            placement = env.placement
            if isinstance(mix, dict):
                missing = [p.name for p in profile.phases if p.name not in mix]
                if missing:
                    raise ValueError(
                        f"fine-grained placement missing phases: {missing}"
                    )
                mix_for = lambda phase: mix[phase.name]
                reported = next(iter(mix.values()))
            else:
                mix_for = lambda phase: mix
                reported = mix
            for phase in profile.phases:
                phase_mix = mix_for(phase)
                columns["traffic_bytes"].append(phase.traffic_bytes)
                columns["flops"].append(phase.flops)
                columns["footprint_bytes"].append(phase.footprint_bytes)
                columns["access_bytes"].append(phase.access_bytes)
                columns["mlp_per_thread"].append(
                    np.nan if phase.mlp_per_thread is None else phase.mlp_per_thread
                )
                columns["sequential"].append(
                    phase.pattern is AccessPattern.SEQUENTIAL
                )
                columns["compute_efficiency"].append(phase.compute_efficiency)
                columns["sync_fraction"].append(phase.sync_fraction)
                columns["sync_quadratic"].append(phase.sync_quadratic)
                columns["write_fraction"].append(phase.write_fraction)
                columns["frac_dram"].append(phase_mix.fraction(Location.DRAM))
                columns["frac_cached"].append(
                    phase_mix.fraction(Location.DRAM_CACHED)
                )
                columns["frac_hbm"].append(phase_mix.fraction(Location.HBM))
                columns["threads_per_core"].append(placement.max_threads_per_core)
                columns["active_cores"].append(placement.active_cores)
                columns["num_threads"].append(num_threads)
            shapes.append((profile, reported, num_threads, len(profile.phases)))
        rows = _as_arrays(columns)
        out = self.evaluate_rows(rows)
        if obs_metrics.enabled():
            self.observe_rows(rows, out)
            obs_metrics.add("model.runs", float(len(shapes)))
        results = []
        cursor = 0
        for profile, reported, num_threads, count in shapes:
            phase_results = tuple(
                _phase_result(profile.phases[k].name, out, cursor + k)
                for k in range(count)
            )
            cursor += count
            results.append(
                RunResult(
                    workload=profile.workload,
                    placement=reported,
                    num_threads=num_threads,
                    phase_results=phase_results,
                )
            )
        return results


def _as_arrays(columns: dict[str, list[Any]]) -> dict[str, np.ndarray]:
    """Materialize list columns with the dtypes the kernel expects."""
    dtypes = {
        "footprint_bytes": np.int64,
        "access_bytes": np.int64,
        "sequential": bool,
        "threads_per_core": np.int64,
        "active_cores": np.int64,
        "num_threads": np.int64,
    }
    return {
        name: np.array(values, dtype=dtypes.get(name, np.float64))
        for name, values in columns.items()
    }


def _phase_result(name: str, out: dict[str, np.ndarray], row: int) -> PhaseResult:
    """One scalar PhaseResult from a row of kernel output (plain floats)."""
    return PhaseResult(
        name=name,
        time_ns=float(out["time_ns"][row]),
        memory_time_ns=float(out["memory_time_ns"][row]),
        compute_time_ns=float(out["compute_time_ns"][row]),
        sync_factor=float(out["sync_factor"][row]),
        achieved_bandwidth=float(out["achieved_bandwidth"][row]),
        effective_latency_ns=float(out["effective_latency_ns"][row]),
    )


@dataclass
class _WorkloadEntry:
    """Per-unique-workload data hoisted out of the point loop."""

    workload: Workload
    slot: int
    profile: MemoryProfile
    footprint_bytes: int
    num_phases: int
    operations: float
    calibration: float
    default_metric: bool
    default_runnable: bool


class _ConfigState:
    """One booted configuration: OS, policy, model tables, placements."""

    def __init__(self, machine: KNLMachine, config: SystemConfig) -> None:
        self.config = config
        self.sim_os = SimulatedOS(config.mcdram, machine=machine)
        self.tables = ModelTables(machine, self.sim_os.memory)
        self._policy = self.sim_os.numactl(config.numactl).policy
        self._placements: dict[int, tuple[PlacementMix | None, str | None]] = {}

    def placement(
        self, name: str, footprint_bytes: int
    ) -> tuple[PlacementMix | None, str | None]:
        """Memoized allocation outcome for a footprint under this config.

        The allocator starts empty for every scalar run (the runner's
        allocation scope frees on exit), so the split — and the
        out-of-memory message, which carries no allocation name — depends
        only on (config, footprint).
        """
        cached = self._placements.get(footprint_bytes)
        if cached is not None:
            return cached
        sim_os = self.sim_os
        try:
            with sim_os.allocation_scope():
                allocation = sim_os.allocator.malloc(
                    f"{name}-data", footprint_bytes, policy=self._policy
                )
                mix = PlacementMix.from_allocation_split(
                    allocation.split,
                    dram_cached=sim_os.memory.dram_fronted_by_cache,
                )
            outcome: tuple[PlacementMix | None, str | None] = (mix, None)
        except OutOfNodeMemory as exc:
            outcome = (None, f"problem does not fit the bound NUMA node: {exc}")
        self._placements[footprint_bytes] = outcome
        return outcome

    # -- persistence ---------------------------------------------------------
    def entry_count(self) -> int:
        """Memoized entries (tables + placements) for dirty tracking."""
        return self.tables.entry_count() + len(self._placements)

    def snapshot(self) -> dict[str, Any]:
        """JSON-serializable image of the tables and placement memo."""
        placements: dict[str, Any] = {}
        for footprint, (mix, reason) in self._placements.items():
            placements[str(footprint)] = {
                "mix": (
                    None
                    if mix is None
                    else [[loc.value, frac] for loc, frac in mix.fractions]
                ),
                "reason": reason,
            }
        return {"tables": self.tables.snapshot(), "placements": placements}

    def prefill(self, payload: dict[str, Any]) -> None:
        """Merge a :meth:`snapshot` payload (in-process entries win)."""
        self.tables.prefill(payload.get("tables", {}))
        for footprint_str, entry in payload.get("placements", {}).items():
            footprint = int(footprint_str)
            if footprint in self._placements:
                continue
            mix_data = entry["mix"]
            mix = (
                None
                if mix_data is None
                else PlacementMix(
                    tuple(
                        (Location(loc_name), float(frac))
                        for loc_name, frac in mix_data
                    )
                )
            )
            reason = entry["reason"]
            if reason is not None and not isinstance(reason, str):
                raise TypeError(f"placement reason must be str, got {reason!r}")
            self._placements[footprint] = (mix, reason)


@dataclass
class _Block:
    """Rows and kernel output for one configuration's share of the grid."""

    rows: dict[str, np.ndarray]
    out: dict[str, np.ndarray]
    names: list[str]


@dataclass
class BatchResult:
    """Columnar outcome of one :meth:`BatchEvaluator.evaluate` call.

    ``time_ns`` / ``metric`` are NaN and ``feasible`` False where the
    scalar runner would have produced an infeasible record (the reason
    string is in ``infeasible_reasons``).  Full :class:`RunRecord` objects
    — bit-identical to the scalar runner's — are materialized lazily.
    """

    cells: list[tuple[Workload, SystemConfig, int]]
    time_ns: np.ndarray
    metric: np.ndarray
    feasible: np.ndarray
    infeasible_reasons: list[str | None]
    _mixes: list[PlacementMix | None] = field(repr=False, default_factory=list)
    _rows_of: list[tuple[_Block, int, int] | None] = field(
        repr=False, default_factory=list
    )
    _profiles: list[MemoryProfile | None] = field(repr=False, default_factory=list)

    def __len__(self) -> int:
        return len(self.cells)

    def run_result(self, i: int) -> RunResult | None:
        """The simulated RunResult for point ``i`` (None if infeasible)."""
        located = self._rows_of[i]
        if located is None:
            return None
        block, start, count = located
        profile = self._profiles[i]
        assert profile is not None
        mix = self._mixes[i]
        assert mix is not None
        _, _, num_threads = self.cells[i]
        return RunResult(
            workload=profile.workload,
            placement=mix,
            num_threads=num_threads,
            phase_results=tuple(
                _phase_result(block.names[start + k], block.out, start + k)
                for k in range(count)
            ),
        )

    def record(self, i: int) -> RunRecord:
        """The RunRecord the scalar runner would have returned for point i."""
        workload, config, num_threads = self.cells[i]
        spec = workload.spec
        if not self.feasible[i]:
            return RunRecord(
                workload=spec.name,
                workload_params=workload.params(),
                config=config.name,
                num_threads=num_threads,
                metric=None,
                metric_name=spec.metric_name,
                metric_unit=spec.metric_unit,
                infeasible_reason=self.infeasible_reasons[i],
            )
        return RunRecord(
            workload=spec.name,
            workload_params=workload.params(),
            config=config.name,
            num_threads=num_threads,
            metric=float(self.metric[i]),
            metric_name=spec.metric_name,
            metric_unit=spec.metric_unit,
            run_result=self.run_result(i),
        )

    def records(self) -> list[RunRecord]:
        return [self.record(i) for i in range(len(self.cells))]


class BatchEvaluator:
    """Vectorized twin of :class:`ExperimentRunner` over query grids.

    Configuration state (simulated boot, numactl policy, model tables) is
    built once per named configuration and kept across :meth:`evaluate`
    calls; placements are memoized per (config, footprint).
    """

    def __init__(
        self,
        machine: KNLMachine | None = None,
        *,
        table_cache: "TableCache | None" = None,
    ) -> None:
        self.machine = machine if machine is not None else knl7210()
        self.table_cache = table_cache
        self._states: dict[SystemConfig, _ConfigState] = {}
        self._thread_shapes: dict[int, tuple[int, int]] = {}
        # Per-state persistence bookkeeping: the content-address key and
        # the entry count at the last load/store (id(state)-keyed).
        self._table_keys: dict[int, str] = {}
        self._persisted_counts: dict[int, int] = {}

    def state(self, config: "SystemConfig | ConfigName") -> _ConfigState:
        if isinstance(config, ConfigName):
            config = make_config(config)
        state = self._states.get(config)
        if state is None:
            with obs_trace.span(
                "tables.build",
                tags=(
                    {"config": config.name.value} if obs_trace.enabled() else None
                ),
            ):
                state = _ConfigState(self.machine, config)
            self._states[config] = state
            if self.table_cache is not None:
                from repro.engine.table_cache import table_key

                key = table_key(self.machine, state.config)
                self._table_keys[id(state)] = key
                payload = self.table_cache.load(key)
                if payload is not None:
                    try:
                        state.prefill(payload)
                    except (KeyError, ValueError, TypeError, AttributeError):
                        # Structurally corrupt payload: drop whatever
                        # partial entries merged (rebuilding from the
                        # scalar model would produce identical bits, but
                        # a malformed file must never half-poison state).
                        self._states[config] = state = _ConfigState(
                            self.machine, config
                        )
                        self._table_keys[id(state)] = key
                        self.table_cache.mark_corrupt(key)
                self._persisted_counts[id(state)] = state.entry_count()
        return state

    def _flush_tables(self) -> None:
        """Persist any state whose memo tables grew since the last flush."""
        if self.table_cache is None:
            return
        for state in self._states.values():
            count = state.entry_count()
            if count != self._persisted_counts.get(id(state)):
                self.table_cache.store(self._table_keys[id(state)], state.snapshot())
                self._persisted_counts[id(state)] = count

    def _thread_shape(self, num_threads: int) -> tuple[int, int]:
        shape = self._thread_shapes.get(num_threads)
        if shape is None:
            placement = self.machine.place_threads(num_threads)
            shape = (placement.max_threads_per_core, placement.active_cores)
            self._thread_shapes[num_threads] = shape
        return shape

    def evaluate(
        self,
        cells: Sequence[tuple[Workload, "SystemConfig | ConfigName", int]],
    ) -> BatchResult:
        """Evaluate a grid of (workload, config, num_threads) points.

        Failure semantics mirror a scalar loop in submission order:
        ``check_runnable`` and allocation failures become per-point
        infeasible entries; an invalid thread count raises the scalar
        engine's ValueError.
        """
        if obs_trace.enabled() or obs_metrics.enabled():
            with obs_trace.span("batch.evaluate", tags={"points": len(cells)}):
                result = self._evaluate(cells, observe=True)
        else:
            result = self._evaluate(cells, observe=False)
        self._flush_tables()
        return result

    def _evaluate(
        self,
        cells: Sequence[tuple[Workload, "SystemConfig | ConfigName", int]],
        observe: bool,
    ) -> BatchResult:
        n = len(cells)
        reasons: list[str | None] = [None] * n
        mixes: list[PlacementMix | None] = [None] * n
        profiles: list[MemoryProfile | None] = [None] * n
        resolved: list[tuple[Workload, SystemConfig, int]] = []
        entries: dict[int, _WorkloadEntry] = {}
        entry_list: list[_WorkloadEntry] = []
        groups: dict[int, tuple[_ConfigState, list[Any]]] = {}
        operations = np.zeros(n)
        calibration = np.zeros(n)
        fallback_metric: list[int] = []

        for i, (workload, config, num_threads) in enumerate(cells):
            state = self.state(config)
            resolved.append((workload, state.config, num_threads))
            entry = entries.get(id(workload))
            if entry is None:
                entry = _make_entry(workload, len(entry_list))
                entries[id(workload)] = entry
                entry_list.append(entry)
            if not entry.default_runnable:
                try:
                    workload.check_runnable(num_threads)
                except RuntimeError as exc:
                    reasons[i] = str(exc)
                    continue
            mix, reason = state.placement(entry.profile.workload, entry.footprint_bytes)
            if mix is None:
                reasons[i] = reason
                continue
            tpc, active_cores = self._thread_shape(num_threads)
            mixes[i] = mix
            profiles[i] = entry.profile
            operations[i] = entry.operations
            calibration[i] = entry.calibration
            if not entry.default_metric:
                fallback_metric.append(i)
            group = groups.get(id(state))
            if group is None:
                group = (state, [])
                groups[id(state)] = group
            group[1].append(
                (
                    i,
                    entry.slot,
                    mix.fraction(Location.DRAM),
                    mix.fraction(Location.DRAM_CACHED),
                    mix.fraction(Location.HBM),
                    tpc,
                    active_cores,
                    num_threads,
                )
            )

        # Concatenated phase templates over the workloads actually seen.
        template, names, offsets, counts = _stack_templates(entry_list)

        time_ns = np.full(n, np.nan)
        feasible = np.zeros(n, dtype=bool)
        rows_of: list[tuple[_Block, int, int] | None] = [None] * n
        run_counts: dict[ConfigName, int] = {}
        for state, members in groups.values():
            block, point_idx, starts, row_counts = _expand_group(
                state, members, template, names, offsets, counts
            )
            block.out = state.tables.evaluate_rows(block.rows)
            if observe:
                state.tables.observe_rows(block.rows, block.out)
            point_of_row = np.repeat(point_idx, row_counts)
            time_ns[point_idx] = np.bincount(
                np.repeat(np.arange(len(point_idx)), row_counts),
                weights=block.out["time_ns"],
                minlength=len(point_idx),
            )
            feasible[point_idx] = True
            for j, i in enumerate(point_idx):
                rows_of[i] = (block, int(starts[j]), int(row_counts[j]))
            run_counts[state.config.name] = run_counts.get(
                state.config.name, 0
            ) + len(point_idx)
            del point_of_row

        metric = np.full(n, np.nan)
        if feasible.any():
            if (time_ns[feasible] == 0.0).any():
                raise ZeroDivisionError("run took zero time")
            idx = np.nonzero(feasible)[0]
            metric[idx] = (
                operations[idx] / (time_ns[idx] / NS_PER_S) * calibration[idx]
            )

        result = BatchResult(
            cells=resolved,
            time_ns=time_ns,
            metric=metric,
            feasible=feasible,
            infeasible_reasons=reasons,
            _mixes=mixes,
            _rows_of=rows_of,
            _profiles=profiles,
        )
        for i in fallback_metric:
            workload = resolved[i][0]
            run = result.run_result(i)
            if run is not None:
                metric[i] = workload.metric(run)

        if observe and obs_metrics.enabled():
            obs_metrics.add("model.runs", float(int(feasible.sum())))
            infeasible_counts: dict[ConfigName, int] = {}
            for i, reason in enumerate(reasons):
                if reason is not None:
                    name = resolved[i][1].name
                    infeasible_counts[name] = infeasible_counts.get(name, 0) + 1
            totals: dict[ConfigName, int] = dict(run_counts)
            for name, count in infeasible_counts.items():
                totals[name] = totals.get(name, 0) + count
            for name, count in totals.items():
                obs_metrics.add("runner.runs", float(count), {"config": name.value})
            for name, count in infeasible_counts.items():
                obs_metrics.add(
                    "runner.infeasible", float(count), {"config": name.value}
                )
        return result


def _make_entry(workload: Workload, slot: int) -> _WorkloadEntry:
    cls = type(workload)
    profile = workload.profile()
    return _WorkloadEntry(
        workload=workload,
        slot=slot,
        profile=profile,
        footprint_bytes=workload.footprint_bytes,
        num_phases=len(profile.phases),
        operations=workload.operations,
        calibration=workload.calibration,
        default_metric=cls.metric is Workload.metric,
        default_runnable=cls.check_runnable is Workload.check_runnable,
    )


def _stack_templates(
    entry_list: list[_WorkloadEntry],
) -> tuple[dict[str, np.ndarray], list[str], np.ndarray, np.ndarray]:
    """Concatenate per-workload phase templates into flat column arrays."""
    columns: dict[str, list[Any]] = {name: [] for name in _TEMPLATE_COLUMNS}
    names: list[str] = []
    offsets = np.zeros(len(entry_list), dtype=np.int64)
    counts = np.zeros(len(entry_list), dtype=np.int64)
    cursor = 0
    for entry in entry_list:
        offsets[entry.slot] = cursor
        counts[entry.slot] = len(entry.profile.phases)
        cursor += len(entry.profile.phases)
        for phase in entry.profile.phases:
            names.append(phase.name)
            columns["traffic_bytes"].append(phase.traffic_bytes)
            columns["flops"].append(phase.flops)
            columns["footprint_bytes"].append(phase.footprint_bytes)
            columns["access_bytes"].append(phase.access_bytes)
            columns["mlp_per_thread"].append(
                np.nan if phase.mlp_per_thread is None else phase.mlp_per_thread
            )
            columns["sequential"].append(phase.pattern is AccessPattern.SEQUENTIAL)
            columns["compute_efficiency"].append(phase.compute_efficiency)
            columns["sync_fraction"].append(phase.sync_fraction)
            columns["sync_quadratic"].append(phase.sync_quadratic)
            columns["write_fraction"].append(phase.write_fraction)
    return _as_arrays(columns), names, offsets, counts


def _expand_group(
    state: _ConfigState,
    members: list[tuple[Any, ...]],
    template: dict[str, np.ndarray],
    names: list[str],
    offsets: np.ndarray,
    counts: np.ndarray,
) -> tuple[_Block, np.ndarray, np.ndarray, np.ndarray]:
    """Expand one configuration's points into phase rows (vectorized)."""
    member_cols = np.array(members, dtype=np.float64)
    point_idx = member_cols[:, 0].astype(np.int64)
    slots = member_cols[:, 1].astype(np.int64)
    row_counts = counts[slots]
    total = int(row_counts.sum())
    point_of_row = np.repeat(np.arange(len(members)), row_counts)
    row_start = np.cumsum(row_counts) - row_counts
    template_row = np.repeat(offsets[slots], row_counts) + (
        np.arange(total) - np.repeat(row_start, row_counts)
    )
    rows = {name: column[template_row] for name, column in template.items()}
    rows["frac_dram"] = member_cols[:, 2][point_of_row]
    rows["frac_cached"] = member_cols[:, 3][point_of_row]
    rows["frac_hbm"] = member_cols[:, 4][point_of_row]
    rows["threads_per_core"] = member_cols[:, 5].astype(np.int64)[point_of_row]
    rows["active_cores"] = member_cols[:, 6].astype(np.int64)[point_of_row]
    rows["num_threads"] = member_cols[:, 7].astype(np.int64)[point_of_row]
    block = _Block(rows=rows, out={}, names=[names[t] for t in template_row])
    return block, point_idx, row_start, row_counts
