"""The paper's measured hardware characterization, in one place.

Every constant the models are calibrated against is recorded here with its
source in the paper, so tests can assert the models reproduce them and
EXPERIMENTS.md can cite them.  Nothing in the engine imports numbers from
anywhere else.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PaperCharacterization:
    """Section IV-A measurements on the Archer KNL 7210 testbed."""

    # STREAM triad, 64 threads, one hardware thread per core (Fig. 2).
    dram_stream_gbs: float = 77.0
    hbm_stream_gbs: float = 330.0
    # STREAM with >= 2 hardware threads per core (Section IV-A / Fig. 5).
    hbm_stream_max_gbs: float = 420.0
    hbm_smt_gain: float = 1.27
    # Idle latencies (Section IV-A, consistent with McCalpin's measurements).
    dram_latency_ns: float = 130.4
    hbm_latency_ns: float = 154.0
    # Latency gap band reported for Fig. 3.
    latency_gap_min: float = 0.15
    latency_gap_max: float = 0.20
    # Cache-mode STREAM anchors (Fig. 2), decimal GB sizes.
    cache_peak_gbs: float = 260.0
    cache_peak_size_gb: float = 8.0
    cache_drop_gbs: float = 125.0
    cache_drop_size_gb: float = 11.4
    cache_below_dram_size_gb: float = 24.0
    # Fig. 3 latency tiers.
    l2_tier_ns: float = 10.0
    mid_tier_ns: float = 200.0
    mid_tier_limit_mb: float = 64.0
    growth_onset_mb: float = 128.0
    # Headline application results.
    dgemm_hbm_speedup: float = 2.0       # Fig. 4a
    minife_hbm_speedup: float = 3.0      # Fig. 4b
    minife_ht_speedup: float = 3.8       # 4 threads/core vs DRAM 1/core
    graph500_dram_vs_cache: float = 1.3  # Fig. 4d, large graphs
    dgemm_ht_speedup: float = 1.7        # Fig. 6a, 192 vs 64 threads
    xsbench_ht_speedup_hbm: float = 2.5  # Fig. 6d, 256 threads
    xsbench_ht_speedup_dram: float = 1.5
    graph500_ht_speedup: float = 1.5     # Fig. 6c, peak at 128 threads
    # Node configuration (Section III-A).
    cores: int = 64
    frequency_ghz: float = 1.3
    smt: int = 4
    dram_gib: float = 96.0
    hbm_gib: float = 16.0


PAPER_CHARACTERIZATION = PaperCharacterization()
