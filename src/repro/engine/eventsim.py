"""Discrete-event memory-system simulator.

An independent, finer-grained second opinion on the analytic engine:
threads issue cache-line requests into per-channel queues of a memory
device; each channel serves one request at a time at the device's service
rate; a thread keeps at most ``mlp`` requests in flight (closed-loop).

The simulator makes no use of Little's law — throughput *emerges* from
queueing — so agreement with the analytic model on both regimes
(latency-bound at low concurrency, bandwidth-bound at high concurrency)
is a real consistency check, exercised in
``tests/engine/test_eventsim.py``.

Scale: event-driven with a heap, O((requests) log channels); tests run
tens of thousands of requests in milliseconds.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from repro.memory.device import MemoryDevice
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.util.prng import make_rng
from repro.util.units import CACHE_LINE, NS_PER_S
from repro.util.validation import check_positive


@dataclass(frozen=True)
class EventSimResult:
    """Aggregate outcome of a simulation run."""

    requests: int
    elapsed_ns: float
    mean_latency_ns: float

    @property
    def bandwidth_bytes_per_s(self) -> float:
        if self.elapsed_ns == 0:
            return 0.0
        return self.requests * CACHE_LINE / (self.elapsed_ns / NS_PER_S)


class MemoryEventSimulator:
    """Closed-loop queueing simulation of one memory device.

    Parameters
    ----------
    device:
        Supplies the unloaded access latency and the aggregate service
        bandwidth (``peak_bandwidth`` split evenly over ``channels``).
    sequential:
        Sequential streams enjoy row-buffer/prefetch efficiency: service
        time per line is ``line / (peak / channels)``; random streams pay
        the device's random-capacity service rate instead.
    """

    def __init__(self, device: MemoryDevice, *, sequential: bool = True) -> None:
        self.device = device
        self.sequential = sequential
        peak = (
            device.peak_bandwidth if sequential else device.random_bandwidth_cap
        )
        self.channels = device.channels
        self.service_ns = CACHE_LINE / (peak / self.channels) * NS_PER_S
        # The pipe/wire delay that is not queueing: idle latency minus one
        # unloaded service time.
        self.wire_ns = max(0.0, device.idle_latency_ns - self.service_ns)

    def run(
        self,
        *,
        threads: int,
        mlp: float,
        requests_per_thread: int,
        seed: int | None = None,
    ) -> EventSimResult:
        """Simulate ``threads`` x ``requests_per_thread`` line requests.

        Each thread keeps ``mlp`` requests outstanding; completions
        immediately release the next request (closed loop).  Requests are
        spread over channels uniformly at random (address hashing).

        With an observation session active (:mod:`repro.obs`) the run is
        wrapped in an ``eventsim.run`` span and its request count and
        emergent latency/bandwidth are recorded (``eventsim.requests``,
        ``eventsim.mean_latency_ns``, ``eventsim.bandwidth_bytes_per_s``).
        """
        if not (obs_trace.enabled() or obs_metrics.enabled()):
            return self._simulate(
                threads=threads,
                mlp=mlp,
                requests_per_thread=requests_per_thread,
                seed=seed,
            )
        with obs_trace.span(
            "eventsim.run",
            tags={
                "device": type(self.device).__name__,
                "threads": threads,
                "mlp": mlp,
                "sequential": self.sequential,
            },
        ):
            result = self._simulate(
                threads=threads,
                mlp=mlp,
                requests_per_thread=requests_per_thread,
                seed=seed,
            )
        obs_metrics.add("eventsim.requests", result.requests)
        obs_metrics.observe("eventsim.mean_latency_ns", result.mean_latency_ns)
        obs_metrics.observe(
            "eventsim.bandwidth_bytes_per_s", result.bandwidth_bytes_per_s
        )
        return result

    #: In-flight population below which the scalar event loop wins: the
    #: batched core amortizes ~40 numpy calls per step over the events it
    #: can safely pop at once, and that batch is bounded by the in-flight
    #: population divided across channels.  Measured on the bench machine
    #: the crossover sits between 512 and 768 outstanding requests
    #: (1.3-2.8x for the batched core at >= 768 across DDR4/MCDRAM and
    #: sequential/random; 0.7-1.2x below).
    _BATCH_MIN_INFLIGHT = 768

    def _simulate(
        self,
        *,
        threads: int,
        mlp: float,
        requests_per_thread: int,
        seed: int | None = None,
    ) -> EventSimResult:
        """Optimized event core; result-identical to ``_simulate_reference``.

        Dispatches between two cores, both pinned bit-identical to the
        reference loop by ``tests/engine/test_eventsim.py``:

        * ``_simulate_batched`` — numpy event arrays with batched pops and
          per-channel cumulative bookkeeping, for runs with enough
          outstanding requests to amortize the vector ops;
        * ``_simulate_scalar`` — the per-event Python loop with a hoisted
          vectorized channel draw, which stays faster for latency-bound
          runs (small thread x window products).
        """
        check_positive("threads", threads)
        check_positive("mlp", mlp)
        check_positive("requests_per_thread", requests_per_thread)
        window = max(1, int(round(mlp)))
        in_flight_cap = threads * min(window, requests_per_thread)
        if in_flight_cap >= self._BATCH_MIN_INFLIGHT:
            return self._simulate_batched(
                threads=threads,
                mlp=mlp,
                requests_per_thread=requests_per_thread,
                seed=seed,
            )
        return self._simulate_scalar(
            threads=threads,
            mlp=mlp,
            requests_per_thread=requests_per_thread,
            seed=seed,
        )

    def _simulate_scalar(
        self,
        *,
        threads: int,
        mlp: float,
        requests_per_thread: int,
        seed: int | None = None,
    ) -> EventSimResult:
        """Per-event loop with a hoisted vectorized channel draw.

        ``Generator.integers(..., size=n)`` consumes the identical bit
        stream as n scalar draws, so hoisting all channel picks into one
        vectorized draw preserves every simulated event.  The rest of the
        state lives in plain Python lists — scalar indexing on small numpy
        arrays is slower than list access in this loop.
        """
        rng = make_rng(seed, "eventsim", threads, mlp, requests_per_thread)

        total = threads * requests_per_thread
        window = max(1, int(round(mlp)))
        channel_of = rng.integers(0, self.channels, size=total).tolist()
        channel_free = [0.0] * self.channels
        in_flight: list[tuple[float, int]] = []
        remaining = [requests_per_thread] * threads
        issued_at: list[float] = []
        completed_at: list[float] = []
        service_ns = self.service_ns
        wire_ns = self.wire_ns
        push, pop = heapq.heappush, heapq.heappop
        cursor = 0
        now = 0.0

        prime = min(window, requests_per_thread)
        for thread in range(threads):
            for _ in range(prime):
                channel = channel_of[cursor]
                cursor += 1
                # Channels start free at t=0, so a priming request starts
                # exactly when its channel frees up.
                finish = channel_free[channel] + service_ns
                channel_free[channel] = finish
                completion = finish + wire_ns
                push(in_flight, (completion, thread))
                issued_at.append(0.0)
                completed_at.append(completion)
            remaining[thread] = requests_per_thread - prime

        while in_flight:
            now, thread = pop(in_flight)
            if remaining[thread] > 0:
                remaining[thread] -= 1
                channel = channel_of[cursor]
                cursor += 1
                free = channel_free[channel]
                start = free if free > now else now
                finish = start + service_ns
                channel_free[channel] = finish
                completion = finish + wire_ns
                push(in_flight, (completion, thread))
                issued_at.append(now)
                completed_at.append(completion)

        latencies = np.array(completed_at) - np.array(issued_at)
        return EventSimResult(
            requests=total,
            elapsed_ns=now,
            mean_latency_ns=float(latencies.mean()),
        )

    def _simulate_batched(
        self,
        *,
        threads: int,
        mlp: float,
        requests_per_thread: int,
        seed: int | None = None,
    ) -> EventSimResult:
        """Vectorized event core over numpy event arrays.

        Bit-identity with the reference heap loop rests on three facts:

        * **Batch safety.**  Channel draws are consumed in pop order from
          a pre-generated array, so the channel of the j-th future issue
          is known before it happens.  That issue enters its channel as
          its (o_j + 1)-th new request (``o_j`` = occurrence rank of the
          draw within its channel), so it completes no earlier than
          ``free[c_j] + (o_j + 1)·s + w``; a relative safety margin on
          that closed form makes it a certain lower bound on the exact
          iterated-addition value.  Processing a batch of r pops triggers
          at most r issues, consuming draws 0..r-1 — so the sorted
          in-flight events up to (exclusive) the first rank r whose
          completion reaches ``min(bound_0..bound_{r-1})`` all pop before
          any future event can be pushed, and form one batch in
          ``(completion, thread)`` order — exactly the heap's tuple
          order.
        * **Exact channel bookkeeping.**  Within a batch, channels are
          independent.  For a channel that stays busy, successive finish
          times are iterated additions of the service time, which
          ``np.add.accumulate`` reproduces addition-for-addition; the
          busy speculation is validated elementwise (previous finish
          strictly greater than the request's ``now``, matching the
          scalar ``free if free > now else now``) and falls back to the
          scalar per-channel loop when it fails.
        * **Identical RNG stream.**  ``Generator.integers(..., size=n)``
          consumes the same bit stream as n scalar draws, and issuing
          events consume draws in batch-sorted order — the pop order of
          the reference heap.

        ``issued_at``/``completed_at`` chunks are appended in batch-sorted
        order, so the final latency array is element-for-element the
        reference's and ``np.mean`` (pairwise summation, order-sensitive)
        agrees exactly.
        """
        rng = make_rng(seed, "eventsim", threads, mlp, requests_per_thread)

        total = threads * requests_per_thread
        window = max(1, int(round(mlp)))
        service_ns = self.service_ns
        wire_ns = self.wire_ns
        nch = self.channels
        channel_of = rng.integers(0, nch, size=total)
        channel_free = np.zeros(nch)
        remaining = np.full(threads, requests_per_thread, dtype=np.int64)

        # Global occurrence rank of every draw within its channel; windowed
        # ranks follow by subtracting how many draws each channel has
        # already consumed (draws are consumed strictly sequentially).
        g_order = np.argsort(channel_of, kind="stable")
        g_sorted = channel_of[g_order]
        g_first = np.searchsorted(g_sorted, g_sorted, side="left")
        glob_occ = np.empty(total, dtype=np.int64)
        glob_occ[g_order] = np.arange(total) - g_first

        issued_chunks: list[np.ndarray] = []
        completed_chunks: list[np.ndarray] = []

        # -- priming: every thread issues its window at t=0 ------------------
        # Channels start free, so the k-th priming request on a channel
        # finishes after k+1 iterated service-time additions from zero —
        # one shared accumulate table serves every channel.
        prime = min(window, requests_per_thread)
        n_prime = threads * prime
        prime_chan = channel_of[:n_prime]
        cursor = n_prime
        occ = glob_occ[:n_prime]
        consumed = np.bincount(prime_chan, minlength=nch)
        finish_table = np.add.accumulate(
            np.full(max(1, int(occ.max()) + 1), service_ns)
        )
        used = consumed > 0
        channel_free[used] = finish_table[consumed[used] - 1]
        completions = finish_table[occ] + wire_ns
        issued_chunks.append(np.zeros(n_prime))
        completed_chunks.append(completions)
        remaining -= prime

        comp_arr = completions
        thr_arr = np.repeat(np.arange(threads, dtype=np.int64), prime)
        elapsed = 0.0
        # Conservative rounding slack: the closed-form spawn bound below
        # uses one multiply where the simulation uses iterated adds; the
        # relative error of either is far below 2^-30, so scaling the
        # bound down by (1 - 2^-30) keeps it a certain lower bound.
        margin = 1.0 - 2.0**-30

        # -- main loop: pop safe batches until the system drains -------------
        while comp_arr.size:
            n = comp_arr.size
            order = np.lexsort((thr_arr, comp_arr))
            q_comp = comp_arr[order]
            q_thr = thr_arr[order]

            # Lower-bound the completion of every issue the batch could
            # trigger (at most n, consuming the next n channel draws).
            look = channel_of[cursor : cursor + n]
            if look.size:
                l_occ = glob_occ[cursor : cursor + n] - consumed[look]
                bound = (
                    channel_free[look] + (l_occ + 1) * service_ns + wire_ns
                ) * margin
                # An issue is also no earlier than its triggering pop, and
                # no pop precedes the current minimum completion — exact
                # IEEE monotone arithmetic, so no margin needed.
                np.maximum(
                    bound, (q_comp[0] + service_ns) + wire_ns, out=bound
                )
                np.minimum.accumulate(bound, out=bound)
                if look.size < n:
                    tail = np.full(n, bound[-1])
                    tail[: look.size] = bound
                    bound = tail
            else:
                bound = np.full(n, np.inf)
            # Rank r is safe iff it pops before any issue triggered by the
            # r pops ahead of it; rank 0 always pops first.
            unsafe = np.nonzero(q_comp[1:] >= bound[:-1])[0]
            cut = int(unsafe[0]) + 1 if unsafe.size else n

            s_comp = q_comp[:cut]
            s_thr = q_thr[:cut]
            comp_arr = q_comp[cut:]
            thr_arr = q_thr[cut:]
            # Batches ascend in time, so the last batch's final pop is the
            # run's elapsed time (the reference's final ``now``).
            elapsed = s_comp[-1]

            # Eligibility: in pop order, a thread issues for its first
            # ``remaining`` pops of this batch (its occurrence rank).
            # Fast path: when no thread's pop count exceeds its remaining
            # quota, every pop issues and ranks are irrelevant.
            t_counts = np.bincount(s_thr, minlength=threads)
            if (t_counts <= remaining).all():
                m = cut
                i_thr = s_thr
                i_now = s_comp
                remaining -= t_counts
            else:
                t_order = np.argsort(s_thr, kind="stable")
                t_sorted = s_thr[t_order]
                t_first = np.searchsorted(t_sorted, t_sorted, side="left")
                t_occ = np.empty(cut, dtype=np.int64)
                t_occ[t_order] = np.arange(cut) - t_first
                issue = t_occ < remaining[s_thr]
                m = int(issue.sum())
                if m == 0:
                    continue
                i_thr = s_thr[issue]
                i_now = s_comp[issue]
                np.subtract.at(remaining, i_thr, 1)

            # Channel bookkeeping, all channels in one segmented buffer:
            # segment k holds [free_c, s, s, ...] for present channel c and
            # one in-place accumulate per segment yields its exact iterated
            # finish times.
            i_chan = channel_of[cursor : cursor + m]
            cursor += m
            m_counts = np.bincount(i_chan, minlength=nch)
            consumed += m_counts
            c_order = np.argsort(i_chan, kind="stable")
            nows_sorted = i_now[c_order]
            present = np.nonzero(m_counts)[0]
            csizes = m_counts[present]
            n_present = present.size
            ev_starts = np.zeros(n_present, dtype=np.int64)
            np.cumsum(csizes[:-1], out=ev_starts[1:])
            buf_starts = ev_starts + np.arange(n_present)
            buf = np.empty(m + n_present)
            buf.fill(service_ns)
            buf[buf_starts] = channel_free[present]
            starts_list = buf_starts.tolist()
            sizes_list = csizes.tolist()
            for lo, k in zip(starts_list, sizes_list):
                seg = buf[lo : lo + k + 1]
                np.add.accumulate(seg, out=seg)
            fin_idx = np.arange(m) + np.repeat(
                np.arange(1, n_present + 1), csizes
            )
            # Busy speculation: valid where the previous finish strictly
            # beats the request's pop time (the scalar branch
            # ``free if free > now else now``).
            valid = buf[fin_idx - 1] > nows_sorted
            seg_ok = np.logical_and.reduceat(valid, ev_starts)
            completions_sorted = buf[fin_idx] + wire_ns
            if seg_ok.all():
                channel_free[present] = buf[buf_starts + csizes]
            else:
                ok = np.nonzero(seg_ok)[0]
                channel_free[present[ok]] = buf[buf_starts[ok] + csizes[ok]]
                for k in np.nonzero(~seg_ok)[0].tolist():
                    c = int(present[k])
                    lo = int(ev_starts[k])
                    hi = lo + int(csizes[k])
                    free = channel_free[c]
                    replay = []
                    for t_now in nows_sorted[lo:hi].tolist():
                        start = free if free > t_now else t_now
                        free = start + service_ns
                        replay.append(free + wire_ns)
                    completions_sorted[lo:hi] = replay
                    channel_free[c] = free
            completions = np.empty(m)
            completions[c_order] = completions_sorted

            issued_chunks.append(i_now)
            completed_chunks.append(completions)
            comp_arr = np.concatenate((comp_arr, completions))
            thr_arr = np.concatenate((thr_arr, i_thr))

        issued_at = np.concatenate(issued_chunks)
        completed_at = np.concatenate(completed_chunks)
        latencies = completed_at - issued_at
        return EventSimResult(
            requests=total,
            elapsed_ns=float(elapsed),
            mean_latency_ns=float(latencies.mean()),
        )

    def _simulate_reference(
        self,
        *,
        threads: int,
        mlp: float,
        requests_per_thread: int,
        seed: int | None = None,
    ) -> EventSimResult:
        """The readable per-event loop the optimized path must match."""
        check_positive("threads", threads)
        check_positive("mlp", mlp)
        check_positive("requests_per_thread", requests_per_thread)
        rng = make_rng(seed, "eventsim", threads, mlp, requests_per_thread)

        total = threads * requests_per_thread
        window = max(1, int(round(mlp)))
        # channel_free[c]: time channel c becomes free.
        channel_free = np.zeros(self.channels)
        # Heap of (completion_time, thread) for in-flight requests.
        in_flight: list[tuple[float, int]] = []
        remaining = np.full(threads, requests_per_thread, dtype=np.int64)
        issued_at: list[float] = []
        completed_at: list[float] = []
        now = 0.0

        def issue(thread: int, time_now: float) -> None:
            channel = int(rng.integers(0, self.channels))
            start = max(time_now, channel_free[channel])
            finish = start + self.service_ns
            channel_free[channel] = finish
            completion = finish + self.wire_ns
            heapq.heappush(in_flight, (completion, thread))
            issued_at.append(time_now)
            completed_at.append(completion)
            remaining[thread] -= 1

        # Prime every thread's window.
        for thread in range(threads):
            for _ in range(min(window, requests_per_thread)):
                issue(thread, 0.0)

        done = 0
        while in_flight:
            now, thread = heapq.heappop(in_flight)
            done += 1
            if remaining[thread] > 0:
                issue(thread, now)

        latencies = np.array(completed_at) - np.array(issued_at)
        return EventSimResult(
            requests=total,
            elapsed_ns=now,
            mean_latency_ns=float(latencies.mean()),
        )
