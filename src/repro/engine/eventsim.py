"""Discrete-event memory-system simulator.

An independent, finer-grained second opinion on the analytic engine:
threads issue cache-line requests into per-channel queues of a memory
device; each channel serves one request at a time at the device's service
rate; a thread keeps at most ``mlp`` requests in flight (closed-loop).

The simulator makes no use of Little's law — throughput *emerges* from
queueing — so agreement with the analytic model on both regimes
(latency-bound at low concurrency, bandwidth-bound at high concurrency)
is a real consistency check, exercised in
``tests/engine/test_eventsim.py``.

Scale: event-driven with a heap, O((requests) log channels); tests run
tens of thousands of requests in milliseconds.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from repro.memory.device import MemoryDevice
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.util.prng import make_rng
from repro.util.units import CACHE_LINE, NS_PER_S
from repro.util.validation import check_positive


@dataclass(frozen=True)
class EventSimResult:
    """Aggregate outcome of a simulation run."""

    requests: int
    elapsed_ns: float
    mean_latency_ns: float

    @property
    def bandwidth_bytes_per_s(self) -> float:
        if self.elapsed_ns == 0:
            return 0.0
        return self.requests * CACHE_LINE / (self.elapsed_ns / NS_PER_S)


class MemoryEventSimulator:
    """Closed-loop queueing simulation of one memory device.

    Parameters
    ----------
    device:
        Supplies the unloaded access latency and the aggregate service
        bandwidth (``peak_bandwidth`` split evenly over ``channels``).
    sequential:
        Sequential streams enjoy row-buffer/prefetch efficiency: service
        time per line is ``line / (peak / channels)``; random streams pay
        the device's random-capacity service rate instead.
    """

    def __init__(self, device: MemoryDevice, *, sequential: bool = True) -> None:
        self.device = device
        self.sequential = sequential
        peak = (
            device.peak_bandwidth if sequential else device.random_bandwidth_cap
        )
        self.channels = device.channels
        self.service_ns = CACHE_LINE / (peak / self.channels) * NS_PER_S
        # The pipe/wire delay that is not queueing: idle latency minus one
        # unloaded service time.
        self.wire_ns = max(0.0, device.idle_latency_ns - self.service_ns)

    def run(
        self,
        *,
        threads: int,
        mlp: float,
        requests_per_thread: int,
        seed: int | None = None,
    ) -> EventSimResult:
        """Simulate ``threads`` x ``requests_per_thread`` line requests.

        Each thread keeps ``mlp`` requests outstanding; completions
        immediately release the next request (closed loop).  Requests are
        spread over channels uniformly at random (address hashing).

        With an observation session active (:mod:`repro.obs`) the run is
        wrapped in an ``eventsim.run`` span and its request count and
        emergent latency/bandwidth are recorded (``eventsim.requests``,
        ``eventsim.mean_latency_ns``, ``eventsim.bandwidth_bytes_per_s``).
        """
        if not (obs_trace.enabled() or obs_metrics.enabled()):
            return self._simulate(
                threads=threads,
                mlp=mlp,
                requests_per_thread=requests_per_thread,
                seed=seed,
            )
        with obs_trace.span(
            "eventsim.run",
            tags={
                "device": type(self.device).__name__,
                "threads": threads,
                "mlp": mlp,
                "sequential": self.sequential,
            },
        ):
            result = self._simulate(
                threads=threads,
                mlp=mlp,
                requests_per_thread=requests_per_thread,
                seed=seed,
            )
        obs_metrics.add("eventsim.requests", result.requests)
        obs_metrics.observe("eventsim.mean_latency_ns", result.mean_latency_ns)
        obs_metrics.observe(
            "eventsim.bandwidth_bytes_per_s", result.bandwidth_bytes_per_s
        )
        return result

    def _simulate(
        self,
        *,
        threads: int,
        mlp: float,
        requests_per_thread: int,
        seed: int | None = None,
    ) -> EventSimResult:
        """Optimized event loop; result-identical to ``_simulate_reference``.

        The per-request ``rng.integers`` call dominated the reference
        loop.  ``Generator.integers(..., size=n)`` consumes the identical
        bit stream as n scalar draws, so hoisting all channel picks into
        one vectorized draw preserves every simulated event
        (``tests/engine/test_eventsim.py`` pins exact equality).  The rest
        of the state lives in plain Python lists — scalar indexing on
        small numpy arrays is slower than list access in this loop.
        """
        check_positive("threads", threads)
        check_positive("mlp", mlp)
        check_positive("requests_per_thread", requests_per_thread)
        rng = make_rng(seed, "eventsim", threads, mlp, requests_per_thread)

        total = threads * requests_per_thread
        window = max(1, int(round(mlp)))
        channel_of = rng.integers(0, self.channels, size=total).tolist()
        channel_free = [0.0] * self.channels
        in_flight: list[tuple[float, int]] = []
        remaining = [requests_per_thread] * threads
        issued_at: list[float] = []
        completed_at: list[float] = []
        service_ns = self.service_ns
        wire_ns = self.wire_ns
        push, pop = heapq.heappush, heapq.heappop
        cursor = 0
        now = 0.0

        prime = min(window, requests_per_thread)
        for thread in range(threads):
            for _ in range(prime):
                channel = channel_of[cursor]
                cursor += 1
                start = channel_free[channel]
                finish = (start if start > 0.0 else 0.0) + service_ns
                channel_free[channel] = finish
                completion = finish + wire_ns
                push(in_flight, (completion, thread))
                issued_at.append(0.0)
                completed_at.append(completion)
            remaining[thread] = requests_per_thread - prime

        while in_flight:
            now, thread = pop(in_flight)
            if remaining[thread] > 0:
                remaining[thread] -= 1
                channel = channel_of[cursor]
                cursor += 1
                free = channel_free[channel]
                start = free if free > now else now
                finish = start + service_ns
                channel_free[channel] = finish
                completion = finish + wire_ns
                push(in_flight, (completion, thread))
                issued_at.append(now)
                completed_at.append(completion)

        latencies = np.array(completed_at) - np.array(issued_at)
        return EventSimResult(
            requests=total,
            elapsed_ns=now,
            mean_latency_ns=float(latencies.mean()),
        )

    def _simulate_reference(
        self,
        *,
        threads: int,
        mlp: float,
        requests_per_thread: int,
        seed: int | None = None,
    ) -> EventSimResult:
        """The readable per-event loop the optimized path must match."""
        check_positive("threads", threads)
        check_positive("mlp", mlp)
        check_positive("requests_per_thread", requests_per_thread)
        rng = make_rng(seed, "eventsim", threads, mlp, requests_per_thread)

        total = threads * requests_per_thread
        window = max(1, int(round(mlp)))
        # channel_free[c]: time channel c becomes free.
        channel_free = np.zeros(self.channels)
        # Heap of (completion_time, thread) for in-flight requests.
        in_flight: list[tuple[float, int]] = []
        remaining = np.full(threads, requests_per_thread, dtype=np.int64)
        issued_at: list[float] = []
        completed_at: list[float] = []
        now = 0.0

        def issue(thread: int, time_now: float) -> None:
            channel = int(rng.integers(0, self.channels))
            start = max(time_now, channel_free[channel])
            finish = start + self.service_ns
            channel_free[channel] = finish
            completion = finish + self.wire_ns
            heapq.heappush(in_flight, (completion, thread))
            issued_at.append(time_now)
            completed_at.append(completion)
            remaining[thread] -= 1

        # Prime every thread's window.
        for thread in range(threads):
            for _ in range(min(window, requests_per_thread)):
                issue(thread, 0.0)

        done = 0
        while in_flight:
            now, thread = heapq.heappop(in_flight)
            done += 1
            if remaining[thread] > 0:
                issue(thread, now)

        latencies = np.array(completed_at) - np.array(issued_at)
        return EventSimResult(
            requests=total,
            elapsed_ns=now,
            mean_latency_ns=float(latencies.mean()),
        )
