"""Workload memory profiles.

A workload run is summarized as a sequence of :class:`Phase` objects, each
describing one homogeneous stretch of execution: how many bytes move, how
many flops retire, over what footprint, with what access pattern and
memory-level parallelism.  Profiles are *derived by the workloads from
their real data structures* (a CG iteration knows its nnz, a BFS knows its
frontier sizes), so the performance engine's inputs follow the algorithms,
not hand-tuned tables.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace

from repro.util.units import CACHE_LINE
from repro.util.validation import check_fraction, check_non_negative, check_positive


class AccessPattern(enum.Enum):
    """Dominant access pattern of a phase.

    SEQUENTIAL — streaming/strided, prefetcher-friendly (DGEMM, MiniFE,
    STREAM).  RANDOM — data-dependent addresses, prefetchers useless (GUPS,
    Graph500, XSBench).  The paper's headline result is the contrast in how
    these two classes respond to HBM.
    """

    SEQUENTIAL = "sequential"
    RANDOM = "random"


@dataclass(frozen=True)
class Phase:
    """One homogeneous execution phase.

    Parameters
    ----------
    name:
        Label for reporting ("cg-spmv", "bfs-expand", ...).
    pattern:
        Dominant access pattern.
    traffic_bytes:
        Bytes that must move to/from main memory over the phase, assuming
        the on-chip caches filter what they filter (the workload computes
        this from its data structures).  For RANDOM phases this counts
        *useful* bytes; line-granularity inflation is applied by the
        engine via ``access_bytes``.
    flops:
        Floating-point work of the phase (0 for pure data workloads).
    footprint_bytes:
        Size of the data the phase touches — drives cache-mode hit rates
        and TLB behaviour.
    access_bytes:
        Useful bytes per memory access for RANDOM phases (8 for GUPS
        doubles, ~16 for XSBench grid pairs).  Each access still moves a
        full 64 B line.
    mlp_per_thread:
        Outstanding memory requests one hardware thread sustains in this
        phase.  Defaults: sequential phases inherit the core's prefetcher
        MLP; random phases the core's out-of-order MLP (set explicitly to
        model e.g. software prefetching).
    compute_efficiency:
        Fraction of machine peak flops reachable by this phase's kernel
        (MKL DGEMM ~0.8; bandwidth-bound codes can leave it at 1.0 since
        memory time dominates anyway).
    sync_fraction:
        Linear serial/synchronization overhead per extra hardware-thread
        multiple beyond one per core (Amdahl-style).
    sync_quadratic:
        Quadratic overhead term in the same variable; models contended
        atomics/barriers whose cost grows superlinearly with threads —
        BFS's per-level frontier atomics give Graph500 its 128-thread
        optimum (Fig. 6c).
    write_fraction:
        Share of traffic that is stores (affects DRAM-cache fills and the
        scattered-write capacity penalty).
    """

    name: str
    pattern: AccessPattern
    traffic_bytes: float
    flops: float = 0.0
    footprint_bytes: int = 0
    access_bytes: int = CACHE_LINE
    mlp_per_thread: float | None = None
    compute_efficiency: float = 1.0
    sync_fraction: float = 0.0
    sync_quadratic: float = 0.0
    write_fraction: float = 0.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("phase needs a name")
        check_non_negative("traffic_bytes", self.traffic_bytes)
        check_non_negative("flops", self.flops)
        check_non_negative("footprint_bytes", self.footprint_bytes)
        check_positive("access_bytes", self.access_bytes)
        if self.access_bytes > CACHE_LINE:
            raise ValueError(
                f"access_bytes cannot exceed the {CACHE_LINE} B line size"
            )
        if self.mlp_per_thread is not None:
            check_positive("mlp_per_thread", self.mlp_per_thread)
        if not 0.0 < self.compute_efficiency <= 1.0:
            raise ValueError(
                f"compute_efficiency must be in (0, 1], got {self.compute_efficiency}"
            )
        check_non_negative("sync_fraction", self.sync_fraction)
        check_non_negative("sync_quadratic", self.sync_quadratic)
        check_fraction("write_fraction", self.write_fraction)

    @property
    def accesses(self) -> float:
        """Number of memory accesses implied by traffic and granularity."""
        return self.traffic_bytes / self.access_bytes

    @property
    def arithmetic_intensity(self) -> float:
        """Flops per byte of memory traffic (roofline x-axis)."""
        if self.traffic_bytes == 0:
            return float("inf") if self.flops else 0.0
        return self.flops / self.traffic_bytes

    def scaled(self, factor: float) -> "Phase":
        """A copy with traffic and flops scaled (e.g. per-iteration phases
        repeated ``factor`` times)."""
        check_positive("factor", factor)
        return replace(
            self,
            traffic_bytes=self.traffic_bytes * factor,
            flops=self.flops * factor,
        )


@dataclass(frozen=True)
class MemoryProfile:
    """A complete workload run: ordered phases plus identity metadata."""

    workload: str
    phases: tuple[Phase, ...]

    def __post_init__(self) -> None:
        if not self.workload:
            raise ValueError("profile needs a workload name")
        if not self.phases:
            raise ValueError("profile needs at least one phase")

    @property
    def footprint_bytes(self) -> int:
        """Peak footprint across phases (what must be allocated)."""
        return max(p.footprint_bytes for p in self.phases)

    @property
    def total_traffic_bytes(self) -> float:
        return sum(p.traffic_bytes for p in self.phases)

    @property
    def total_flops(self) -> float:
        return sum(p.flops for p in self.phases)

    @property
    def dominant_pattern(self) -> AccessPattern:
        """Pattern of the phase carrying the most traffic."""
        top = max(self.phases, key=lambda p: p.traffic_bytes)
        return top.pattern
