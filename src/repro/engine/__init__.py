"""Analytic performance engine.

Turns a workload's *memory profile* plus a machine/memory configuration
into predicted runtime and throughput.  The engine embodies the paper's
own analysis framework (Section IV-B):

    "By Little's Law, the memory throughput equals the ratio between the
     outstanding memory requests and the memory latency."

* :mod:`repro.engine.profilephase` — workload profiles: traffic, flops,
  footprint, access pattern, per-thread memory-level parallelism.
* :mod:`repro.engine.littles_law` — the throughput law itself.
* :mod:`repro.engine.threading_model` — hardware-thread scaling of
  concurrency and issue capacity.
* :mod:`repro.engine.placement` — where data lives (DRAM / flat HBM /
  DRAM behind the MCDRAM cache), including mixed placements.
* :mod:`repro.engine.perfmodel` — the simulator proper.
* :mod:`repro.engine.roofline` — a roofline view used for reporting.
* :mod:`repro.engine.calibration` — the paper's measured hardware
  characterization in one table, for tests and documentation.
"""

from repro.engine.profilephase import AccessPattern, Phase, MemoryProfile
from repro.engine.littles_law import (
    littles_law_bandwidth,
    required_concurrency,
    saturating_rate,
)
from repro.engine.placement import Location, PlacementMix
from repro.engine.threading_model import ThreadingModel
from repro.engine.perfmodel import PerformanceModel, PhaseResult, RunResult
from repro.engine.roofline import RooflineModel, RooflinePoint
from repro.engine.calibration import PAPER_CHARACTERIZATION
from repro.engine.energy import EnergyEstimate, EnergyModel, EnergyParameters
from repro.engine.traces import (
    TraceResult,
    drive_cache,
    miniature_mcdram_cache,
    random_trace,
    sequential_trace,
    strided_trace,
    zipfian_trace,
)

__all__ = [
    "AccessPattern",
    "Phase",
    "MemoryProfile",
    "littles_law_bandwidth",
    "required_concurrency",
    "saturating_rate",
    "Location",
    "PlacementMix",
    "ThreadingModel",
    "PerformanceModel",
    "PhaseResult",
    "RunResult",
    "RooflineModel",
    "RooflinePoint",
    "PAPER_CHARACTERIZATION",
    "EnergyEstimate",
    "EnergyModel",
    "EnergyParameters",
    "TraceResult",
    "drive_cache",
    "miniature_mcdram_cache",
    "random_trace",
    "sequential_trace",
    "strided_trace",
    "zipfian_trace",
]
