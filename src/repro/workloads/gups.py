"""GUPS — HPCC RandomAccess (giga-updates per second).

Uniformly random read-modify-write (XOR) updates into a large table; the
canonical latency-bound probe.  The paper (Fig. 4c) finds a *narrow* band
of ~1.06-1.10 x 10^-2 GUPS across 1-32 GB tables, with DRAM marginally
best and HBM never ahead: the updates are latency-bound and MCDRAM's
higher latency costs more than its bandwidth can pay back.

Functional face: vectorized batched updates with ``np.bitwise_xor.at``
(which, unlike fancy-indexed assignment, applies duplicate indices
correctly).  Verification uses the XOR involution: replaying the same
update stream must restore the initial table exactly.

Profiled face: each update is a random 8-byte read plus write of the same
line.  The HPCC kernel keeps a small batch of updates in flight
(mlp_per_thread=3, between the pure pointer chase and the hardware limit),
which together with device saturation reproduces the paper's flat-vs-size,
DRAM-slightly-ahead band.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, ClassVar

import numpy as np

from repro.engine.profilephase import AccessPattern, MemoryProfile, Phase
from repro.util.prng import make_rng
from repro.util.validation import check_positive
from repro.workloads.base import ExecutionResult, Workload, WorkloadSpec

#: HPCC runs 4 updates per table entry.
UPDATES_PER_ENTRY = 4
#: In-flight updates a thread sustains (software batching of the kernel).
GUPS_MLP = 3.0


@dataclass
class GUPS(Workload):
    """One RandomAccess problem over a table of ``2**log2_entries`` words."""

    log2_entries: int
    updates: int | None = None  # default: UPDATES_PER_ENTRY * entries

    spec: ClassVar[WorkloadSpec] = WorkloadSpec(
        name="GUPS",
        app_type="Data analytics",
        pattern="Random",
        metric_name="GUPS",
        metric_unit="Gup/s",
        max_scale_gb=32.0,
    )

    #: Maps raw modelled updates/s to the paper's reported *giga*-updates
    #: per second (the 1e-9 factor), folded together with the absolute
    #: scale of the reference binary (its measured 1.07e-2 GUPS sits far
    #: below raw random-access capacity: the kernel recomputes the LCG
    #: stream, masks addresses and runs its error-tolerant loop).
    #: Identical across configurations, so comparisons are unaffected.
    calibration: ClassVar[float] = 0.0107 / 0.161 * 1e-9

    def __post_init__(self) -> None:
        check_positive("log2_entries", self.log2_entries)
        if self.updates is not None:
            check_positive("updates", self.updates)

    @classmethod
    def from_table_gb(cls, table_gb: float) -> "GUPS":
        """Instance with a table of ``table_gb`` binary GiB, rounded down
        to a power of two.

        GUPS tables are powers of two, so the paper's 1/2/4/.../32 "GB"
        axis values are GiB (a "32 GB" table is 2^32 words and does not
        fit the 16 GiB HBM node — the missing red bar)."""
        check_positive("table_gb", table_gb)
        entries = int(table_gb * (1 << 30) // 8)
        if entries < 2:
            raise ValueError(f"table of {table_gb} GB too small")
        return cls(log2_entries=entries.bit_length() - 1)

    # -- sizing -----------------------------------------------------------------
    @property
    def n_entries(self) -> int:
        return 1 << self.log2_entries

    @property
    def n_updates(self) -> int:
        return (
            self.updates
            if self.updates is not None
            else UPDATES_PER_ENTRY * self.n_entries
        )

    @property
    def footprint_bytes(self) -> int:
        return self.n_entries * 8

    @property
    def operations(self) -> float:
        return float(self.n_updates)

    def params(self) -> dict[str, Any]:
        return {"log2_entries": self.log2_entries, "updates": self.n_updates}

    # -- profiled face ------------------------------------------------------------
    def profile(self) -> MemoryProfile:
        phase = Phase(
            name="random-access",
            pattern=AccessPattern.RANDOM,
            # Each update reads and writes one 8-byte word at a random
            # address (two accesses; the line transfer inflation is the
            # engine's job via access_bytes).
            traffic_bytes=2.0 * 8.0 * self.n_updates,
            footprint_bytes=self.footprint_bytes,
            access_bytes=8,
            mlp_per_thread=GUPS_MLP,
            write_fraction=0.5,
        )
        return MemoryProfile(workload="gups", phases=(phase,))

    # -- functional face ----------------------------------------------------------
    def execute(self, *, seed: int | None = None) -> ExecutionResult:
        """Apply the update stream, then replay it to verify (XOR involution)."""
        rng = make_rng(seed, "gups", self.log2_entries)
        n = self.n_entries
        table = np.arange(n, dtype=np.uint64)  # HPCC initializes table[i] = i
        initial = table.copy()
        batch = 1 << 10
        remaining = self.n_updates
        update_seed = rng.integers(0, 2**63)
        stream = np.random.default_rng(int(update_seed))
        batches: list[tuple[np.ndarray, np.ndarray]] = []
        while remaining > 0:
            count = min(batch, remaining)
            idx = stream.integers(0, n, size=count)
            val = stream.integers(0, 2**64, size=count, dtype=np.uint64)
            np.bitwise_xor.at(table, idx, val)
            batches.append((idx, val))
            remaining -= count
        mutated = not np.array_equal(table, initial)
        # Replay: XOR is an involution, so the table must return to start.
        for idx, val in batches:
            np.bitwise_xor.at(table, idx, val)
        verified = bool(np.array_equal(table, initial)) and mutated
        return ExecutionResult(
            workload="gups",
            params=self.params(),
            operations=float(self.n_updates),
            verified=verified,
            details={"entries": n},
        )
