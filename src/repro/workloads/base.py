"""Workload base classes.

A :class:`Workload` instance is one parameterized problem (a given matrix
order, table size, graph scale...).  It can

* :meth:`~Workload.execute` — actually run the algorithm (functional face;
  sizes are the caller's business — tests run small, examples medium), and
* :meth:`~Workload.profile` — describe its memory behaviour for the
  performance engine (profiled face, any size).

``calibration`` maps the engine's raw operation rate to the absolute scale
the paper reports for that benchmark binary (documented per workload);
it is a single scalar per workload, identical across memory
configurations, problem sizes and thread counts — so every *comparison*
the reproduction makes is calibration-free.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any, ClassVar

from repro.engine.perfmodel import RunResult
from repro.engine.profilephase import MemoryProfile


@dataclass(frozen=True)
class WorkloadSpec:
    """Identity row of Table I."""

    name: str
    app_type: str          # "Scientific" | "Data analytics" | "Micro"
    pattern: str           # "Sequential" | "Random"
    metric_name: str       # e.g. "GFLOPS"
    metric_unit: str       # e.g. "Gflop/s"
    max_scale_gb: float    # largest problem the paper runs (Table I)


@dataclass
class ExecutionResult:
    """Outcome of a functional run."""

    workload: str
    params: dict[str, Any]
    operations: float
    verified: bool
    details: dict[str, Any] = field(default_factory=dict)


class Workload(abc.ABC):
    """One parameterized problem instance."""

    spec: ClassVar[WorkloadSpec]
    #: Scalar mapping engine op-rates to the paper's absolute metric scale.
    calibration: ClassVar[float] = 1.0

    # -- sizing -----------------------------------------------------------------
    @property
    @abc.abstractmethod
    def footprint_bytes(self) -> int:
        """Bytes of main-memory data the problem allocates."""

    @property
    @abc.abstractmethod
    def operations(self) -> float:
        """Metric numerator for one profiled run (flops, updates, edges,
        lookups ... whatever the workload's metric counts)."""

    # -- the two faces ------------------------------------------------------------
    @abc.abstractmethod
    def profile(self) -> MemoryProfile:
        """Memory profile of one run at this instance's parameters."""

    @abc.abstractmethod
    def execute(self, *, seed: int | None = None) -> ExecutionResult:
        """Really run the algorithm and self-validate the result."""

    def profile_cached(self) -> MemoryProfile:
        """Memoized :meth:`profile` for the sweep hot path.

        Workload parameters are fixed at construction everywhere in this
        codebase, so the profile is a constant of the instance.  Callers
        that mutate a workload in place must use :meth:`profile` directly.
        """
        memo = self.__dict__.get("_profile_memo")
        if memo is None:
            memo = self.profile()
            self.__dict__["_profile_memo"] = memo
        return memo

    # -- feasibility -----------------------------------------------------------
    def check_runnable(self, num_threads: int) -> None:
        """Raise ``RuntimeError`` for configurations the real benchmark
        could not run (default: everything runs).  DGEMM overrides this
        to reproduce the paper's failed 256-thread runs."""

    # -- metrics ------------------------------------------------------------
    def metric(self, run: RunResult) -> float:
        """The paper's reported metric from a simulated run."""
        return run.rate_per_s(self.operations) * self.calibration

    def params(self) -> dict[str, Any]:
        """Instance parameters for reporting (overridden as useful)."""
        return {"footprint_bytes": self.footprint_bytes}

    # -- observability -----------------------------------------------------------
    def obs_tags(self) -> dict[str, Any]:
        """Identity tags attached to observability spans and per-cell
        profiles (:mod:`repro.obs`).  Workloads may override to add
        algorithm-specific tags (graph scale, matrix order, ...); keep
        values low-cardinality — these label trace lanes, not records."""
        return {
            "workload": self.spec.name,
            "pattern": self.spec.pattern.lower(),
            "footprint_gb": round(self.footprint_bytes / 1e9, 3),
        }

    def describe(self) -> str:
        return (
            f"{self.spec.name} ({self.spec.app_type}, {self.spec.pattern}): "
            f"{self.footprint_bytes / 1e9:.2f} GB footprint"
        )
