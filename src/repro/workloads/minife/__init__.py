"""MiniFE — the Mantevo implicit finite-element proxy application.

The paper's second sequential-pattern application (Fig. 4b, 6b): assemble
a hexahedral finite-element diffusion problem and solve it with
(unpreconditioned) conjugate gradient, reporting the MFLOPS of the CG
phase.

* :mod:`repro.workloads.minife.mesh` — the structured brick mesh.
* :mod:`repro.workloads.minife.assembly` — element stiffness matrices and
  scatter-add assembly into CSR.
* :mod:`repro.workloads.minife.cg` — the CG solver with miniFE's flop
  accounting.
* :mod:`repro.workloads.minife.workload` — the Workload adapter.
"""

from repro.workloads.minife.mesh import BrickMesh
from repro.workloads.minife.assembly import (
    hex8_stiffness,
    assemble_stiffness,
    assemble_system,
)
from repro.workloads.minife.cg import CGResult, conjugate_gradient, cg_flops
from repro.workloads.minife.workload import MiniFE

__all__ = [
    "BrickMesh",
    "hex8_stiffness",
    "assemble_stiffness",
    "assemble_system",
    "CGResult",
    "conjugate_gradient",
    "cg_flops",
    "MiniFE",
]
