"""Conjugate gradient with miniFE's flop accounting.

miniFE reports "CG Mflops": the flops of the CG iteration loop divided by
its wall time.  Per iteration the loop does one SpMV (2 flops per nnz),
two dot products and three axpy-style vector updates (2 flops per element
each), which is exactly what :func:`cg_flops` counts.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.validation import check_positive
from repro.workloads.common.sparse import CSRMatrix


@dataclass
class CGResult:
    """Solution plus convergence metadata."""

    x: np.ndarray
    iterations: int
    residual_norm: float
    converged: bool
    flops: float


def cg_flops(nnz: int, n: int, iterations: int) -> float:
    """Flops of ``iterations`` CG iterations on an (n, nnz) system.

    Per iteration: SpMV 2*nnz, two dots 2*2*n, three vector updates
    2*3*n — miniFE's own accounting.
    """
    check_positive("iterations", iterations)
    return float(iterations) * (2.0 * nnz + 10.0 * n)


def conjugate_gradient(
    a: CSRMatrix,
    b: np.ndarray,
    *,
    tol: float = 1e-8,
    max_iterations: int = 200,
    x0: np.ndarray | None = None,
) -> CGResult:
    """Unpreconditioned CG for SPD ``a`` (miniFE's solver, default 200
    iterations cap)."""
    check_positive("max_iterations", max_iterations)
    check_positive("tol", tol)
    if a.n_rows != a.n_cols:
        raise ValueError(f"matrix must be square, got {a.n_rows}x{a.n_cols}")
    b = np.asarray(b, dtype=np.float64)
    if b.shape != (a.n_rows,):
        raise ValueError(f"b must have shape ({a.n_rows},), got {b.shape}")

    x = np.zeros_like(b) if x0 is None else np.array(x0, dtype=np.float64)
    r = b - a.matvec(x)
    p = r.copy()
    rs = float(r @ r)
    b_norm = float(np.linalg.norm(b)) or 1.0
    iterations = 0
    converged = np.sqrt(rs) / b_norm <= tol
    while not converged and iterations < max_iterations:
        ap = a.matvec(p)
        pap = float(p @ ap)
        if pap <= 0.0:
            # Matrix is not SPD along p; bail out like miniFE's breakdown check.
            break
        alpha = rs / pap
        x += alpha * p
        r -= alpha * ap
        rs_new = float(r @ r)
        iterations += 1
        if np.sqrt(rs_new) / b_norm <= tol:
            rs = rs_new
            converged = True
            break
        p *= rs_new / rs
        p += r
        rs = rs_new
    return CGResult(
        x=x,
        iterations=iterations,
        residual_norm=float(np.sqrt(rs)) / b_norm,
        converged=bool(converged),
        flops=cg_flops(a.nnz, a.n_rows, max(iterations, 1)),
    )
