"""Finite-element assembly for the miniFE diffusion problem.

Trilinear (hex8) elements on the brick mesh, 2x2x2 Gauss quadrature,
assembling the Poisson stiffness matrix (the same operator miniFE
assembles).  On a uniform mesh every element shares one 8x8 stiffness
matrix, so assembly is a vectorized scatter-add of ``Ke`` over the
connectivity — the same memory pattern as miniFE's FE-assembly phase.

Dirichlet conditions (u = 0 on the box surface) are imposed by replacing
boundary rows/columns with identity, preserving symmetry.
"""

from __future__ import annotations

import numpy as np

from repro.workloads.common.sparse import CSRMatrix
from repro.workloads.minife.mesh import BrickMesh

# 2-point Gauss rule on [-1, 1].
_GAUSS = (-1.0 / np.sqrt(3.0), 1.0 / np.sqrt(3.0))

# Reference-corner signs for the trilinear shape functions.
_SIGNS = np.array(
    [
        (-1, -1, -1),
        (+1, -1, -1),
        (+1, +1, -1),
        (-1, +1, -1),
        (-1, -1, +1),
        (+1, -1, +1),
        (+1, +1, +1),
        (-1, +1, +1),
    ],
    dtype=np.float64,
)


def hex8_stiffness(h: float = 1.0) -> np.ndarray:
    """8x8 element stiffness matrix for -div(grad u) on a cube of side h.

    Computed by Gauss quadrature of grad(Ni) . grad(Nj) over the reference
    element; for the uniform cube the Jacobian is diagonal (h/2).
    """
    if h <= 0:
        raise ValueError(f"element size must be positive, got {h}")
    ke = np.zeros((8, 8))
    jac = h / 2.0  # dx/dxi for the cube element
    detj = jac**3
    for gx in _GAUSS:
        for gy in _GAUSS:
            for gz in _GAUSS:
                # Shape-function gradients in reference coordinates.
                grads = np.empty((8, 3))
                for a in range(8):
                    sx, sy, sz = _SIGNS[a]
                    grads[a, 0] = sx * (1 + sy * gy) * (1 + sz * gz) / 8.0
                    grads[a, 1] = sy * (1 + sx * gx) * (1 + sz * gz) / 8.0
                    grads[a, 2] = sz * (1 + sx * gx) * (1 + sy * gy) / 8.0
                grads /= jac  # to physical coordinates
                ke += detj * (grads @ grads.T)
    return ke


def assemble_stiffness(mesh: BrickMesh, h: float = 1.0) -> CSRMatrix:
    """Assemble the global stiffness matrix (no boundary conditions)."""
    ke = hex8_stiffness(h)
    conn = mesh.element_connectivity()
    n_el = conn.shape[0]
    # Scatter-add: rows/cols are the 8x8 outer structure per element.
    rows = np.repeat(conn, 8, axis=1).ravel()
    cols = np.tile(conn, (1, 8)).ravel()
    vals = np.tile(ke.ravel(), n_el)
    return CSRMatrix.from_coo(mesh.n_nodes, mesh.n_nodes, rows, cols, vals)


def assemble_system(
    mesh: BrickMesh, h: float = 1.0, source: float = 1.0
) -> tuple[CSRMatrix, np.ndarray]:
    """Assemble K and f with u=0 Dirichlet walls, symmetric elimination.

    Returns the modified CSR matrix (boundary rows/cols are identity) and
    the right-hand side (uniform source, zero on the boundary).
    """
    k = assemble_stiffness(mesh, h)
    boundary = mesh.boundary_nodes()
    is_bc = np.zeros(mesh.n_nodes, dtype=bool)
    is_bc[boundary] = True

    # Rebuild in COO, dropping off-diagonal entries touching the boundary
    # and pinning the boundary diagonal to 1 (u_bc = 0, so no RHS lift).
    degrees = k.row_degrees()
    rows = np.repeat(np.arange(k.n_rows, dtype=np.int64), degrees)
    cols = k.indices
    vals = k.data
    assert vals is not None
    on_bc = is_bc[rows] | is_bc[cols]
    diag_bc = (rows == cols) & is_bc[rows]
    keep = ~on_bc | diag_bc
    rows, cols, vals = rows[keep], cols[keep], vals[keep].copy()
    vals[is_bc[rows] & (rows == cols)] = 1.0
    k_bc = CSRMatrix.from_coo(mesh.n_nodes, mesh.n_nodes, rows, cols, vals)

    # Uniform source scaled by nodal volume h^3 (lumped load vector).
    f = np.full(mesh.n_nodes, source * h**3)
    f[is_bc] = 0.0
    return k_bc, f
