"""Structured hexahedral brick mesh, miniFE style.

miniFE discretizes a box with ``nx x ny x nz`` hex elements; nodes sit on
the ``(nx+1)(ny+1)(nz+1)`` lattice.  Node numbering is x-fastest, matching
miniFE's generation order (which gives the assembled matrix its banded
27-point structure).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.validation import check_positive

# Local corner offsets of a hex element, x-fastest.
_CORNER_OFFSETS = np.array(
    [
        (0, 0, 0),
        (1, 0, 0),
        (1, 1, 0),
        (0, 1, 0),
        (0, 0, 1),
        (1, 0, 1),
        (1, 1, 1),
        (0, 1, 1),
    ],
    dtype=np.int64,
)


@dataclass(frozen=True)
class BrickMesh:
    """A box of hex elements."""

    nx: int
    ny: int
    nz: int

    def __post_init__(self) -> None:
        check_positive("nx", self.nx)
        check_positive("ny", self.ny)
        check_positive("nz", self.nz)

    @classmethod
    def cube(cls, n: int) -> "BrickMesh":
        return cls(n, n, n)

    # -- counts ---------------------------------------------------------------
    @property
    def n_elements(self) -> int:
        return self.nx * self.ny * self.nz

    @property
    def n_nodes(self) -> int:
        return (self.nx + 1) * (self.ny + 1) * (self.nz + 1)

    @property
    def node_shape(self) -> tuple[int, int, int]:
        return (self.nx + 1, self.ny + 1, self.nz + 1)

    # -- numbering ---------------------------------------------------------------
    def node_id(self, ix: np.ndarray, iy: np.ndarray, iz: np.ndarray) -> np.ndarray:
        """Lattice coordinates -> node id (x-fastest)."""
        sx, sy, _ = self.node_shape
        return np.asarray(ix) + sx * (np.asarray(iy) + sy * np.asarray(iz))

    def element_connectivity(self) -> np.ndarray:
        """(n_elements, 8) array of the corner node ids of every element."""
        ex, ey, ez = np.meshgrid(
            np.arange(self.nx), np.arange(self.ny), np.arange(self.nz),
            indexing="ij",
        )
        # Element order x-fastest like the nodes.
        ex = ex.ravel(order="F")
        ey = ey.ravel(order="F")
        ez = ez.ravel(order="F")
        conn = np.empty((self.n_elements, 8), dtype=np.int64)
        for local, (dx, dy, dz) in enumerate(_CORNER_OFFSETS):
            conn[:, local] = self.node_id(ex + dx, ey + dy, ez + dz)
        return conn

    def boundary_nodes(self) -> np.ndarray:
        """Node ids on the box surface (Dirichlet boundary in miniFE)."""
        sx, sy, sz = self.node_shape
        ix, iy, iz = np.meshgrid(
            np.arange(sx), np.arange(sy), np.arange(sz), indexing="ij"
        )
        on_surface = (
            (ix == 0) | (ix == sx - 1)
            | (iy == 0) | (iy == sy - 1)
            | (iz == 0) | (iz == sz - 1)
        )
        return self.node_id(ix[on_surface], iy[on_surface], iz[on_surface])

    def interior_node_count(self) -> int:
        sx, sy, sz = self.node_shape
        return max(0, (sx - 2) * (sy - 2) * (sz - 2))
