"""MiniFE workload adapter.

Functional face: assemble the FE system on a brick mesh and solve with CG,
verifying convergence (residual reduction) and solution physics (interior
positivity, boundary zeros).

Profiled face: per CG iteration, three phases mirroring the solver loop —

* ``spmv-stream`` — the CSR matrix streams through once (values + column
  indices + row pointers) plus the y vector write: sequential.
* ``spmv-gather`` — the x-vector gather.  The 27-point banded structure
  keeps almost all gathers in cache; a small residue (``GATHER_FRACTION``
  of nnz) goes to memory at random.  This latency-bound residue is what
  holds MiniFE's HBM speedup at the measured ~3x instead of the raw
  330/77 bandwidth ratio.
* ``vector-ops`` — dots and axpys over the five CG vectors: sequential,
  small footprint (these stay MCDRAM-cache resident even when the matrix
  does not — the mechanism behind the paper's cache-mode improvement
  staying above 1x at twice the HBM capacity).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, ClassVar

import numpy as np

from repro.engine.profilephase import AccessPattern, MemoryProfile, Phase
from repro.util.validation import check_positive
from repro.workloads.base import ExecutionResult, Workload, WorkloadSpec
from repro.workloads.minife.assembly import assemble_system
from repro.workloads.minife.cg import cg_flops, conjugate_gradient
from repro.workloads.minife.mesh import BrickMesh

#: Fraction of SpMV x-gathers that miss the cache hierarchy and pay a
#: random-access latency (the banded 27-point stencil reuses each x entry
#: ~27 times; only page-boundary/band-edge accesses go far).
GATHER_FRACTION = 0.007
#: Bytes per stored nonzero: 8 (value) + 4 (int32 column index).
NNZ_BYTES = 12
#: CG working vectors: x, b, r, p, Ap.
CG_VECTORS = 5


@dataclass
class MiniFE(Workload):
    """One miniFE problem: an ``nx^3``-element brick."""

    nx: int
    cg_iterations: int = 200

    spec: ClassVar[WorkloadSpec] = WorkloadSpec(
        name="MiniFE",
        app_type="Scientific",
        pattern="Sequential",
        metric_name="CG MFLOPS",
        metric_unit="Mflop/s",
        max_scale_gb=30.0,
    )

    #: Absolute-scale factor to the paper's reported CG MFLOPS (the real
    #: binary's CG loop includes halo exchange and OpenMP overheads the
    #: traffic model does not charge).  Shared by all configurations.
    calibration: ClassVar[float] = 0.40

    def __post_init__(self) -> None:
        check_positive("nx", self.nx)
        check_positive("cg_iterations", self.cg_iterations)

    @classmethod
    def from_matrix_gb(cls, matrix_gb: float) -> "MiniFE":
        """Instance whose CSR matrix occupies ~``matrix_gb`` decimal GB
        (the Fig. 4b x-axis)."""
        check_positive("matrix_gb", matrix_gb)
        # nnz ~ 27 per node, node count ~ nx^3.
        nodes = matrix_gb * 1e9 / (27 * NNZ_BYTES)
        return cls(nx=max(2, int(round(nodes ** (1.0 / 3.0))) - 1))

    # -- sizing -----------------------------------------------------------------
    @property
    def mesh(self) -> BrickMesh:
        return BrickMesh.cube(self.nx)

    @property
    def n_rows(self) -> int:
        return self.mesh.n_nodes

    @property
    def nnz(self) -> int:
        """Nonzeros of the assembled operator (tensor-product banding)."""
        m = self.nx + 1
        return (3 * m - 2) ** 3

    @property
    def matrix_bytes(self) -> int:
        return self.nnz * NNZ_BYTES + (self.n_rows + 1) * 8

    @property
    def vector_bytes(self) -> int:
        return CG_VECTORS * self.n_rows * 8

    @property
    def footprint_bytes(self) -> int:
        return self.matrix_bytes + self.vector_bytes

    @property
    def operations(self) -> float:
        """Total CG flops (the metric numerator; reported in Mflop/s)."""
        return cg_flops(self.nnz, self.n_rows, self.cg_iterations)

    def params(self) -> dict[str, Any]:
        return {
            "nx": self.nx,
            "rows": self.n_rows,
            "nnz": self.nnz,
            "cg_iterations": self.cg_iterations,
            "matrix_gb": self.matrix_bytes / 1e9,
        }

    # -- profiled face ------------------------------------------------------------
    def profile(self) -> MemoryProfile:
        iters = float(self.cg_iterations)
        n = self.n_rows
        spmv_stream = Phase(
            name="spmv-stream",
            pattern=AccessPattern.SEQUENTIAL,
            traffic_bytes=iters * (self.nnz * NNZ_BYTES + 2 * 8 * n),
            flops=iters * 2.0 * self.nnz,
            footprint_bytes=self.matrix_bytes,
            sync_fraction=0.02,
        )
        spmv_gather = Phase(
            name="spmv-gather",
            pattern=AccessPattern.RANDOM,
            traffic_bytes=iters * GATHER_FRACTION * self.nnz * 8,
            footprint_bytes=n * 8,
            access_bytes=8,
            # The missing gathers chain through the CSR column walk.
            mlp_per_thread=1.0,
        )
        vector_ops = Phase(
            name="vector-ops",
            pattern=AccessPattern.SEQUENTIAL,
            traffic_bytes=iters * 96.0 * n,
            flops=iters * 10.0 * n,
            footprint_bytes=self.vector_bytes,
            sync_fraction=0.05,  # two all-reduce dots per iteration
        )
        return MemoryProfile(
            workload="minife", phases=(spmv_stream, spmv_gather, vector_ops)
        )

    # -- functional face ----------------------------------------------------------
    def execute(self, *, seed: int | None = None) -> ExecutionResult:
        """Assemble and solve; verify convergence and solution physics."""
        mesh = self.mesh
        k, f = assemble_system(mesh)
        result = conjugate_gradient(
            k, f, tol=1e-8, max_iterations=self.cg_iterations
        )
        x = result.x
        boundary = mesh.boundary_nodes()
        interior_mask = np.ones(mesh.n_nodes, dtype=bool)
        interior_mask[boundary] = False
        boundary_ok = bool(np.allclose(x[boundary], 0.0))
        # Diffusion from a positive source with zero walls is positive inside.
        interior_ok = bool(
            not interior_mask.any() or (x[interior_mask] > 0).all()
        )
        residual_ok = result.residual_norm < 1e-6 or result.converged
        return ExecutionResult(
            workload="minife",
            params=self.params(),
            operations=result.flops,
            verified=boundary_ok and interior_ok and residual_ok,
            details={
                "iterations": result.iterations,
                "residual": result.residual_norm,
                "nnz": k.nnz,
            },
        )
