"""TinyMemBench dual random read latency (Fig. 3).

The benchmark walks randomized dependency chains through a buffer of a
given block size and reports the average latency per access; the "dual"
variant keeps two independent chains in flight, probing the memory
system's ability to overlap concurrent requests (what the paper says
matters for KNL's out-of-order cores).

Functional face: build a random single-cycle permutation (so the chase
visits every element) and walk one or two chains for a given number of
steps, verifying full coverage.

Profiled face: the measured latency decomposes into the Fig. 3 tiers —
local-L2 hits for sub-1 MB blocks, then directory + memory idle latency +
dual-chain contention, then TLB/page-walk growth beyond ~128 MB.  The
composition lives in :meth:`TinyMemBench.model_latency_ns` and consumes
the machine/memory models directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, ClassVar

import numpy as np

from repro.engine.placement import Location
from repro.engine.perfmodel import PerformanceModel
from repro.engine.profilephase import AccessPattern, MemoryProfile, Phase
from repro.util.prng import make_rng
from repro.util.units import CACHE_LINE
from repro.util.validation import check_positive
from repro.workloads.base import ExecutionResult, Workload, WorkloadSpec

# Extra latency a second in-flight chain adds at the device (bank and
# queue contention).  DDR pays a flat cost; MCDRAM's EDC queues contend
# hardest when a small block hammers few banks, decaying as the block
# spreads over more of the device — the asymmetry produces the Fig. 3
# gap line's shape: ~20 % just above the tile L2 size, declining toward
# ~15 % at gigabyte blocks.
DDR_DUAL_CONTENTION_NS = 40.0
MCDRAM_DUAL_CONTENTION_FLOOR_NS = 38.0
MCDRAM_DUAL_CONTENTION_AMPLITUDE_NS = 24.0
MCDRAM_CONTENTION_DECAY_BYTES = 128 * 1024 * 1024


def dual_contention_ns(device_name: str, block_bytes: int) -> float:
    """Per-access contention of the second chain at a device."""
    if device_name == "DDR4":
        return DDR_DUAL_CONTENTION_NS
    if device_name == "MCDRAM":
        import math

        return (
            MCDRAM_DUAL_CONTENTION_FLOOR_NS
            + MCDRAM_DUAL_CONTENTION_AMPLITUDE_NS
            * math.exp(-block_bytes / MCDRAM_CONTENTION_DECAY_BYTES)
        )
    raise ValueError(f"unknown device {device_name!r}")


@dataclass
class TinyMemBench(Workload):
    """One block-size configuration of the dual random read test."""

    block_bytes: int
    chains: int = 2
    steps: int = 1 << 12

    spec: ClassVar[WorkloadSpec] = WorkloadSpec(
        name="TinyMemBench",
        app_type="Micro",
        pattern="Random",
        metric_name="Dual random read latency",
        metric_unit="ns",
        max_scale_gb=1.0,
    )

    def __post_init__(self) -> None:
        check_positive("block_bytes", self.block_bytes)
        if self.chains not in (1, 2):
            raise ValueError(f"chains must be 1 or 2, got {self.chains}")
        check_positive("steps", self.steps)
        if self.n_lines < 2:
            raise ValueError("block must hold at least two cache lines")

    # -- sizing -----------------------------------------------------------------
    @property
    def n_lines(self) -> int:
        return self.block_bytes // CACHE_LINE

    @property
    def footprint_bytes(self) -> int:
        return self.n_lines * CACHE_LINE

    @property
    def operations(self) -> float:
        return float(self.steps * self.chains)

    def params(self) -> dict[str, Any]:
        return {
            "block_bytes": self.block_bytes,
            "chains": self.chains,
            "steps": self.steps,
        }

    # -- profiled face ------------------------------------------------------------
    def profile(self) -> MemoryProfile:
        phase = Phase(
            name="dual-random-read",
            pattern=AccessPattern.RANDOM,
            traffic_bytes=self.operations * CACHE_LINE,
            footprint_bytes=self.footprint_bytes,
            mlp_per_thread=float(self.chains),
        )
        return MemoryProfile(workload="tinymembench", phases=(phase,))

    def model_latency_ns(self, model: PerformanceModel, location: Location) -> float:
        """Predicted dual random read latency for this block size.

        Composition (single-threaded benchmark):

        * hits in the walker's tile L2 for the resident fraction of the
          block (the ~10 ns tier below 1 MB),
        * misses pay directory lookup + device idle latency + dual-chain
          contention + address-translation overhead (the ~200 ns tier),
        * translation grows with block size (the >=128 MB rise).
        """
        machine = model.machine
        l2 = machine.tile_l2_bytes
        l2_fraction = min(1.0, l2 / self.footprint_bytes)
        l2_ns = machine.mesh.tiles[0].l2.load_to_use_ns

        if location is Location.DRAM:
            device = model.memory.dram
            base = device.idle_latency_ns
        elif location is Location.HBM:
            device = model.memory.mcdram
            base = device.idle_latency_ns
        else:
            assert model.memory.cache_model is not None
            device = model.memory.mcdram
            base = model.memory.cache_model.random_latency_ns(self.footprint_bytes)
        contention = (
            dual_contention_ns(device.name, self.footprint_bytes)
            if self.chains == 2
            else 0.0
        )
        directory = machine.mesh.directory_lookup_ns()
        translation = model.tlb.translation_overhead_ns(self.footprint_bytes, base)
        miss_ns = base + directory + contention + translation
        return l2_fraction * l2_ns + (1.0 - l2_fraction) * miss_ns

    # -- functional face ----------------------------------------------------------
    def execute(self, *, seed: int | None = None) -> ExecutionResult:
        """Walk the chains through a random cyclic permutation.

        Verifies that a full walk of ``n_lines`` steps visits every line
        exactly once (the permutation is a single cycle, as in the real
        benchmark's buffer initialization).
        """
        rng = make_rng(seed, "tinymembench", self.block_bytes)
        n = self.n_lines
        # Build a single-cycle permutation via a random ordering:
        # order[i] -> order[i+1] closes into one cycle of length n.
        order = rng.permutation(n)
        nxt = np.empty(n, dtype=np.int64)
        nxt[order[:-1]] = order[1:]
        nxt[order[-1]] = order[0]

        starts = [int(order[0])]
        if self.chains == 2:
            starts.append(int(order[n // 2]))
        visited = np.zeros(n, dtype=bool)
        positions = list(starts)
        steps_done = 0
        walk_steps = min(self.steps, n)
        for _ in range(walk_steps):
            for c in range(self.chains):
                visited[positions[c]] = True
                positions[c] = int(nxt[positions[c]])
            steps_done += self.chains
        full_walk = walk_steps >= n
        verified = bool(visited.all()) if full_walk else bool(visited.sum() > 0)
        return ExecutionResult(
            workload="tinymembench",
            params=self.params(),
            operations=float(steps_done),
            verified=verified,
            details={"lines_visited": int(visited.sum()), "lines": n},
        )
