"""STREAM memory bandwidth benchmark (McCalpin), OpenMP flavour.

The paper uses STREAM triad with varying array sizes to characterize the
three memory configurations (Fig. 2) and the hardware-thread scaling
(Fig. 5).  STREAM's bandwidth accounting is reproduced exactly: triad
counts 3 arrays x 8 bytes x N elements per iteration, i.e. exactly the
benchmark footprint, so the paper's "Size (GB)" axis *is* the per-
iteration traffic.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, ClassVar

import numpy as np

from repro.engine.profilephase import AccessPattern, MemoryProfile, Phase
from repro.util.validation import check_positive
from repro.workloads.base import ExecutionResult, Workload, WorkloadSpec

# STREAM's constants.
SCALAR = 3.0
ARRAYS = 3  # a, b, c
ELEMENT_BYTES = 8


class StreamKernel(enum.Enum):
    """The four STREAM kernels with their counted bytes per element."""

    COPY = ("copy", 2)
    SCALE = ("scale", 2)
    ADD = ("add", 3)
    TRIAD = ("triad", 3)

    def __init__(self, label: str, arrays_counted: int) -> None:
        self.label = label
        self.arrays_counted = arrays_counted

    def bytes_per_element(self) -> int:
        return self.arrays_counted * ELEMENT_BYTES


@dataclass
class StreamBenchmark(Workload):
    """One STREAM configuration.

    Parameters
    ----------
    size_bytes:
        Total size of the three arrays (the Fig. 2 x-axis).
    ntimes:
        Benchmark repetitions (STREAM default 10); the paper reports the
        best iteration, the model's iterations are identical anyway.
    kernel:
        Which kernel's bandwidth to report; the paper reports triad.
    """

    size_bytes: int
    ntimes: int = 10
    kernel: StreamKernel = StreamKernel.TRIAD

    spec: ClassVar[WorkloadSpec] = WorkloadSpec(
        name="STREAM",
        app_type="Micro",
        pattern="Sequential",
        metric_name="Triad bandwidth",
        metric_unit="GB/s",
        max_scale_gb=40.0,
    )

    def __post_init__(self) -> None:
        check_positive("size_bytes", self.size_bytes)
        check_positive("ntimes", self.ntimes)
        if self.n_elements < 1:
            raise ValueError(f"size {self.size_bytes} too small for 3 arrays")

    # -- sizing -----------------------------------------------------------------
    @property
    def n_elements(self) -> int:
        """Elements per array."""
        return self.size_bytes // (ARRAYS * ELEMENT_BYTES)

    @property
    def footprint_bytes(self) -> int:
        return self.n_elements * ARRAYS * ELEMENT_BYTES

    @property
    def operations(self) -> float:
        """Counted bytes over the whole run (metric is bytes/s)."""
        return float(
            self.kernel.bytes_per_element() * self.n_elements * self.ntimes
        )

    def params(self) -> dict[str, Any]:
        return {
            "size_bytes": self.size_bytes,
            "ntimes": self.ntimes,
            "kernel": self.kernel.label,
        }

    # -- profiled face ------------------------------------------------------------
    def profile(self) -> MemoryProfile:
        phase = Phase(
            name=self.kernel.label,
            pattern=AccessPattern.SEQUENTIAL,
            traffic_bytes=self.operations,
            flops=(
                self.n_elements * self.ntimes
                if self.kernel in (StreamKernel.SCALE, StreamKernel.ADD)
                else 2.0 * self.n_elements * self.ntimes
                if self.kernel is StreamKernel.TRIAD
                else 0.0
            ),
            footprint_bytes=self.footprint_bytes,
            write_fraction=1.0 / self.kernel.arrays_counted,
        )
        return MemoryProfile(workload="stream", phases=(phase,))

    # -- functional face ----------------------------------------------------------
    def execute(self, *, seed: int | None = None) -> ExecutionResult:
        """Run all four kernels ``ntimes`` times and self-check like STREAM.

        STREAM initializes a=1, b=2, c=0 and checks the arrays against the
        analytically propagated scalars after the timed loop.
        """
        n = self.n_elements
        a = np.full(n, 1.0)
        b = np.full(n, 2.0)
        c = np.zeros(n)
        scratch = np.empty(n)
        for _ in range(self.ntimes):
            np.copyto(c, a)                # copy:  c = a
            np.multiply(c, SCALAR, out=b)  # scale: b = S*c
            np.add(a, b, out=c)            # add:   c = a + b
            np.multiply(c, SCALAR, out=scratch)
            np.add(b, scratch, out=a)      # triad: a = b + S*c
        # Propagate expected scalar values the same way STREAM's checker does.
        ea, eb, ec = 1.0, 2.0, 0.0
        for _ in range(self.ntimes):
            ec = ea
            eb = SCALAR * ec
            ec = ea + eb
            ea = eb + SCALAR * ec
        verified = bool(
            np.allclose(a, ea) and np.allclose(b, eb) and np.allclose(c, ec)
        )
        return ExecutionResult(
            workload="stream",
            params=self.params(),
            operations=self.operations,
            verified=verified,
            details={"expected": (ea, eb, ec)},
        )
