"""XSBench workload adapter.

Functional face: build grids + unionized grid at the instance parameters,
run a batch of lookups, and verify the unionized fast path against the
direct per-nuclide reference path.

Profiled face: one random-access phase.  Per lookup the kernel touches
~log2(union) lines for the binary search plus one scattered gather per
nuclide (index-table row reads are contiguous and stay cached); the
accesses are data-dependent (mlp ~2, the out-of-order dual read), which
makes XSBench latency-bound — DRAM wins at 64 threads, HBM's larger
random-access capacity wins once hyper-threading raises the demand
(Fig. 6d's crossover).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, ClassVar

import numpy as np

from repro.engine.profilephase import AccessPattern, MemoryProfile, Phase
from repro.util.prng import make_rng
from repro.workloads.base import ExecutionResult, Workload, WorkloadSpec
from repro.workloads.xsbench.grids import (
    XSBenchParams,
    build_nuclide_grids,
    build_unionized_grid,
)
from repro.workloads.xsbench.lookup import macro_xs_direct, macro_xs_unionized

#: Out-of-order dual read; the nuclide gathers are data-dependent through
#: the index table.
XS_MLP = 2.0


@dataclass
class XSBench(Workload):
    """One XSBench problem."""

    xs_params: XSBenchParams = field(default_factory=XSBenchParams)

    spec: ClassVar[WorkloadSpec] = WorkloadSpec(
        name="XSBench",
        app_type="Scientific",
        pattern="Random",
        metric_name="Lookups/s",
        metric_unit="lookups/s",
        max_scale_gb=90.0,
    )

    #: The hardware resolves several independent nuclide gathers per
    #: memory latency (the inner loop has abundant ILP the single-phase
    #: random model does not credit); single scalar, identical across
    #: configurations.
    calibration: ClassVar[float] = 4.0

    @classmethod
    def from_problem_gb(cls, problem_gb: float) -> "XSBench":
        return cls(xs_params=XSBenchParams.from_problem_gb(problem_gb))

    @classmethod
    def small(cls, n_nuclides: int = 12, n_gridpoints: int = 64,
              n_lookups: int = 2000) -> "XSBench":
        """A host-runnable instance for tests and examples."""
        return cls(
            xs_params=XSBenchParams(
                n_nuclides=n_nuclides,
                n_gridpoints=n_gridpoints,
                n_lookups=n_lookups,
            )
        )

    # -- sizing -----------------------------------------------------------------
    @property
    def footprint_bytes(self) -> int:
        return self.xs_params.footprint_bytes

    @property
    def accesses_per_lookup(self) -> float:
        """Random lines touched per lookup (binary search + nuclide gathers)."""
        search = math.log2(max(2, self.xs_params.union_points))
        return search + self.xs_params.n_nuclides

    @property
    def operations(self) -> float:
        return float(self.xs_params.n_lookups)

    def params(self) -> dict[str, Any]:
        p = self.xs_params
        return {
            "n_nuclides": p.n_nuclides,
            "n_gridpoints": p.n_gridpoints,
            "n_lookups": p.n_lookups,
            "problem_gb": p.footprint_bytes / 1e9,
        }

    # -- profiled face ------------------------------------------------------------
    def profile(self) -> MemoryProfile:
        phase = Phase(
            name="xs-lookups",
            pattern=AccessPattern.RANDOM,
            traffic_bytes=self.operations * self.accesses_per_lookup * 8.0,
            footprint_bytes=self.footprint_bytes,
            access_bytes=8,
            mlp_per_thread=XS_MLP,
        )
        return MemoryProfile(workload="xsbench", phases=(phase,))

    # -- functional face ----------------------------------------------------------
    def execute(self, *, seed: int | None = None) -> ExecutionResult:
        """Run lookups through both paths and cross-validate."""
        p = self.xs_params
        grids = build_nuclide_grids(p, seed=seed)
        union = build_unionized_grid(grids)
        rng = make_rng(seed, "xsbench-lookups", p.n_lookups)
        concentrations = rng.random(p.n_nuclides)
        lo = grids.energies[:, 0].max()
        hi = grids.energies[:, -1].min()
        energies = rng.uniform(lo, hi, size=p.n_lookups)
        fast = macro_xs_unionized(grids, union, energies, concentrations)
        reference = macro_xs_direct(grids, energies, concentrations)
        verified = bool(np.allclose(fast, reference, rtol=1e-12, atol=1e-12))
        return ExecutionResult(
            workload="xsbench",
            params=self.params(),
            operations=float(p.n_lookups),
            verified=verified,
            details={
                "union_points": union.n_union,
                "max_abs_diff": float(np.max(np.abs(fast - reference))),
            },
        )
