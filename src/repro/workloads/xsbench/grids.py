"""XSBench data structures: per-nuclide grids and the unionized grid.

Each nuclide has an ascending energy grid with five cross sections per
point (total, elastic, absorption, fission, nu-fission).  The unionized
grid merges every nuclide's energies into one sorted array, with an
index table mapping each union point to the bracketing point of every
nuclide — XSBench's big memory hog (union_points x n_nuclides ints),
which is exactly what the ``-g`` option scales.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.prng import make_rng
from repro.util.validation import check_positive

N_XS = 5  # cross sections stored per grid point


@dataclass(frozen=True)
class XSBenchParams:
    """Problem parameters (XSBench 'large' defaults, -g scales gridpoints)."""

    n_nuclides: int = 355
    n_gridpoints: int = 11_303
    n_lookups: int = 15_000_000

    def __post_init__(self) -> None:
        check_positive("n_nuclides", self.n_nuclides)
        check_positive("n_gridpoints", self.n_gridpoints)
        check_positive("n_lookups", self.n_lookups)

    @property
    def union_points(self) -> int:
        return self.n_nuclides * self.n_gridpoints

    @property
    def footprint_bytes(self) -> int:
        """Heap data of the benchmark (the Fig. 4e x-axis).

        Union energies (8 B) + index table (4 B per nuclide per union
        point) + nuclide grids (energy + five XS values per point).
        """
        union = self.union_points * (8 + 4 * self.n_nuclides)
        nuclides = self.n_nuclides * self.n_gridpoints * 8 * (1 + N_XS)
        return union + nuclides

    @classmethod
    def from_problem_gb(cls, problem_gb: float) -> "XSBenchParams":
        """Choose ``n_gridpoints`` so the footprint is ~``problem_gb`` GB
        (how the paper scales the test)."""
        check_positive("problem_gb", problem_gb)
        base = cls(n_gridpoints=1)
        per_gridpoint = base.footprint_bytes
        n = max(1, int(round(problem_gb * 1e9 / per_gridpoint)))
        return cls(n_gridpoints=n)


@dataclass
class NuclideGrids:
    """Per-nuclide energy grids and cross sections.

    ``energies``: (n_nuclides, n_gridpoints) ascending per row.
    ``xs``: (n_nuclides, n_gridpoints, N_XS).
    """

    energies: np.ndarray
    xs: np.ndarray

    def __post_init__(self) -> None:
        if self.energies.ndim != 2:
            raise ValueError("energies must be (nuclides, gridpoints)")
        if self.xs.shape != (*self.energies.shape, N_XS):
            raise ValueError(
                f"xs shape {self.xs.shape} does not match energies "
                f"{self.energies.shape}"
            )
        if not (np.diff(self.energies, axis=1) > 0).all():
            raise ValueError("per-nuclide energies must be strictly ascending")

    @property
    def n_nuclides(self) -> int:
        return self.energies.shape[0]

    @property
    def n_gridpoints(self) -> int:
        return self.energies.shape[1]


@dataclass
class UnionizedGrid:
    """The merged grid: sorted union energies + per-nuclide bracket indices.

    ``index[u, n]`` is the largest grid index ``j`` of nuclide ``n`` with
    ``energies[n, j] <= union_energies[u]`` (clamped to the interior so
    ``j+1`` is always valid for interpolation).
    """

    union_energies: np.ndarray
    index: np.ndarray

    def __post_init__(self) -> None:
        if self.union_energies.ndim != 1:
            raise ValueError("union_energies must be 1-D")
        if self.index.shape[0] != self.union_energies.size:
            raise ValueError("index rows must match union size")
        if not (np.diff(self.union_energies) >= 0).all():
            raise ValueError("union energies must be sorted")

    @property
    def n_union(self) -> int:
        return self.union_energies.size


def build_nuclide_grids(
    params: XSBenchParams, *, seed: int | None = None
) -> NuclideGrids:
    """Random but reproducible grids in (0, 1), ascending per nuclide."""
    rng = make_rng(seed, "xsbench-grids", params.n_nuclides, params.n_gridpoints)
    energies = np.sort(
        rng.random((params.n_nuclides, params.n_gridpoints)), axis=1
    )
    # Guarantee strict ascent (ties are measure-zero but seeds are forever).
    eps = np.arange(params.n_gridpoints) * 1e-12
    energies = energies + eps
    xs = rng.random((params.n_nuclides, params.n_gridpoints, N_XS))
    return NuclideGrids(energies=energies, xs=xs)


def build_unionized_grid(grids: NuclideGrids) -> UnionizedGrid:
    """Merge all nuclide energies and precompute the bracket index table."""
    union = np.sort(grids.energies.ravel())
    n_nuc = grids.n_nuclides
    n_grid = grids.n_gridpoints
    index = np.empty((union.size, n_nuc), dtype=np.int32)
    for nuc in range(n_nuc):
        j = np.searchsorted(grids.energies[nuc], union, side="right") - 1
        np.clip(j, 0, n_grid - 2, out=j)
        index[:, nuc] = j
    return UnionizedGrid(union_energies=union, index=index)
