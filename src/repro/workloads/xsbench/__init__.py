"""XSBench — the Monte Carlo macroscopic cross-section lookup kernel.

Isolates the dominant kernel of OpenMC (Figs. 4e, 6d): random energy /
material samples drive lookups through a *unionized energy grid* into
per-nuclide cross-section tables; the accesses are random over a
footprint the paper scales from 5.6 to 90 GB via the ``-g`` grid-points
option.

* :mod:`repro.workloads.xsbench.grids` — nuclide grids and the unionized
  grid construction.
* :mod:`repro.workloads.xsbench.lookup` — vectorized macroscopic lookups
  (unionized fast path + direct per-nuclide reference path used for
  validation).
* :mod:`repro.workloads.xsbench.workload` — the Workload adapter.
"""

from repro.workloads.xsbench.grids import (
    XSBenchParams,
    NuclideGrids,
    UnionizedGrid,
    build_nuclide_grids,
    build_unionized_grid,
)
from repro.workloads.xsbench.lookup import (
    macro_xs_unionized,
    macro_xs_direct,
)
from repro.workloads.xsbench.workload import XSBench

__all__ = [
    "XSBenchParams",
    "NuclideGrids",
    "UnionizedGrid",
    "build_nuclide_grids",
    "build_unionized_grid",
    "macro_xs_unionized",
    "macro_xs_direct",
    "XSBench",
]
