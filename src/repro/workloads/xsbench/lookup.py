"""Macroscopic cross-section lookups.

Two implementations of the same physics:

* :func:`macro_xs_unionized` — XSBench's fast path: one binary search on
  the union grid, then a gather through the precomputed index table into
  every nuclide's bracketing grid points.
* :func:`macro_xs_direct` — the reference path: an independent binary
  search per nuclide.  Slower, structurally different, used to validate
  the unionized path bit-for-bit (same interpolation arithmetic).

Both are vectorized over a batch of lookups.
"""

from __future__ import annotations

import numpy as np

from repro.workloads.xsbench.grids import NuclideGrids, UnionizedGrid


def _interpolate(
    grids: NuclideGrids,
    nuclide_index: np.ndarray,  # (batch, n_nuclides) bracket index per nuclide
    energy: np.ndarray,  # (batch,)
    concentrations: np.ndarray,  # (n_nuclides,)
) -> np.ndarray:
    """Linear interpolation + concentration-weighted sum -> (batch, N_XS)."""
    n_nuc = grids.n_nuclides
    nuclides = np.arange(n_nuc)
    j = nuclide_index  # (batch, n_nuc)
    e_low = grids.energies[nuclides, j]        # (batch, n_nuc)
    e_high = grids.energies[nuclides, j + 1]
    frac = (energy[:, None] - e_low) / (e_high - e_low)
    xs_low = grids.xs[nuclides, j]             # (batch, n_nuc, N_XS)
    xs_high = grids.xs[nuclides, j + 1]
    micro = xs_low + frac[..., None] * (xs_high - xs_low)
    return np.einsum("bnx,n->bx", micro, concentrations)


def macro_xs_unionized(
    grids: NuclideGrids,
    union: UnionizedGrid,
    energy: np.ndarray,
    concentrations: np.ndarray,
) -> np.ndarray:
    """Macro XS via the unionized grid; returns (batch, N_XS)."""
    energy = np.asarray(energy, dtype=np.float64)
    u = np.searchsorted(union.union_energies, energy, side="right") - 1
    np.clip(u, 0, union.n_union - 1, out=u)
    bracket = union.index[u].astype(np.int64)  # (batch, n_nuclides)
    return _interpolate(grids, bracket, energy, concentrations)


def macro_xs_direct(
    grids: NuclideGrids,
    energy: np.ndarray,
    concentrations: np.ndarray,
) -> np.ndarray:
    """Macro XS via per-nuclide binary searches (validation reference)."""
    energy = np.asarray(energy, dtype=np.float64)
    batch = energy.size
    n_nuc = grids.n_nuclides
    bracket = np.empty((batch, n_nuc), dtype=np.int64)
    for nuc in range(n_nuc):
        j = np.searchsorted(grids.energies[nuc], energy, side="right") - 1
        np.clip(j, 0, grids.n_gridpoints - 2, out=j)
        bracket[:, nuc] = j
    return _interpolate(grids, bracket, energy, concentrations)
