"""DGEMM benchmark (dense matrix multiply, C = alpha*A*B + beta*C).

The paper runs the NERSC APEX DGEMM benchmark linked against MKL and
reports GFLOPS for array sizes from 0.1 to 24 GB (Figs. 4a, 6a).  Two
measured behaviours pin the model:

* HBM gives ~2x over DRAM at 64 threads — the kernel as run is
  bandwidth-sensitive, with an effective arithmetic intensity around
  ``BLOCK/8`` flops/byte for L1-sized blocking (BLOCK=32 -> 4 flops/byte;
  at higher intensities the 64-thread compute roof would hide the memory
  system entirely and the measured 2x could not occur);
* 192 threads give ~1.7x over 64 — the KNL front end needs >= 2 threads
  per core to approach full issue (see
  :meth:`repro.machine.core.Core.smt_issue_efficiency`).

The paper also notes the 256-thread DGEMM run "can not complete
successfully"; :meth:`DGEMM.check_runnable` reproduces that as an
explicit failure (per-thread MKL buffers exhaust the node at 256
threads), which the experiment runner reports as a missing data point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, ClassVar

import numpy as np

from repro.engine.profilephase import AccessPattern, MemoryProfile, Phase
from repro.util.prng import make_rng
from repro.util.validation import check_positive
from repro.workloads.base import ExecutionResult, Workload, WorkloadSpec

#: Effective blocking of the benchmark binary as measured (see module doc).
EFFECTIVE_BLOCK = 32
#: Fraction of machine peak DP flops the kernel reaches at full issue,
#: calibrated to the ~600 GFLOPS the paper measures on HBM at 64 threads.
MKL_EFFICIENCY = 0.42
#: Thread count at which the paper's DGEMM run fails to complete.
FAILING_THREADS = 256


class WorkloadFailure(RuntimeError):
    """A configuration the real benchmark could not run (paper footnote 1)."""


@dataclass
class DGEMM(Workload):
    """One DGEMM problem: three dense n x n double matrices."""

    n: int

    spec: ClassVar[WorkloadSpec] = WorkloadSpec(
        name="DGEMM",
        app_type="Scientific",
        pattern="Sequential",
        metric_name="GFLOPS",
        metric_unit="Gflop/s",
        max_scale_gb=24.0,
    )

    def __post_init__(self) -> None:
        check_positive("n", self.n)

    @classmethod
    def from_array_gb(cls, array_gb: float) -> "DGEMM":
        """Instance whose three matrices total ``array_gb`` decimal GB
        (the Fig. 4a x-axis)."""
        check_positive("array_gb", array_gb)
        n = int(round((array_gb * 1e9 / (3 * 8)) ** 0.5))
        return cls(n=max(n, 1))

    # -- sizing -----------------------------------------------------------------
    @property
    def footprint_bytes(self) -> int:
        return 3 * self.n * self.n * 8

    @property
    def flops(self) -> float:
        return 2.0 * float(self.n) ** 3

    @property
    def operations(self) -> float:
        return self.flops

    def params(self) -> dict[str, Any]:
        return {"n": self.n, "array_gb": self.footprint_bytes / 1e9}

    # -- feasibility --------------------------------------------------------------
    def check_runnable(self, num_threads: int) -> None:
        """Raise :class:`WorkloadFailure` for the configurations the paper
        could not run."""
        if num_threads >= FAILING_THREADS:
            raise WorkloadFailure(
                f"DGEMM with {num_threads} threads does not complete on the "
                f"testbed (per-thread MKL buffers exhaust memory; paper "
                f"footnote 1)"
            )

    # -- profiled face ------------------------------------------------------------
    def profile(self) -> MemoryProfile:
        # Blocked matmul traffic: each A/B element is loaded n/BLOCK times.
        traffic = 2.0 * 8.0 * float(self.n) ** 3 / EFFECTIVE_BLOCK
        # C read+write once.
        traffic += 2.0 * 8.0 * float(self.n) ** 2
        phase = Phase(
            name="dgemm",
            pattern=AccessPattern.SEQUENTIAL,
            traffic_bytes=traffic,
            flops=self.flops,
            footprint_bytes=self.footprint_bytes,
            compute_efficiency=MKL_EFFICIENCY,
            write_fraction=0.1,
        )
        return MemoryProfile(workload="dgemm", phases=(phase,))

    # -- functional face ----------------------------------------------------------
    @staticmethod
    def blocked_matmul(
        a: np.ndarray, b: np.ndarray, block: int = EFFECTIVE_BLOCK
    ) -> np.ndarray:
        """Cache-blocked matrix multiply (the kernel the profile models).

        Panel-blocked over k and j so the inner product accumulates into a
        C block that stays resident, exactly the traffic structure the
        profile's ``2 * 8 * n^3 / BLOCK`` term counts.
        """
        check_positive("block", block)
        if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[0]:
            raise ValueError(f"incompatible shapes {a.shape} x {b.shape}")
        m, k = a.shape
        _, n = b.shape
        c = np.zeros((m, n), dtype=np.result_type(a, b))
        for jj in range(0, n, block):
            j_end = min(jj + block, n)
            for kk in range(0, k, block):
                k_end = min(kk + block, k)
                # One panel update; numpy does the inner dense block.
                c[:, jj:j_end] += a[:, kk:k_end] @ b[kk:k_end, jj:j_end]
        return c

    def execute(self, *, seed: int | None = None) -> ExecutionResult:
        """Run the blocked kernel and verify against numpy's reference."""
        rng = make_rng(seed, "dgemm", self.n)
        a = rng.standard_normal((self.n, self.n))
        b = rng.standard_normal((self.n, self.n))
        c = self.blocked_matmul(a, b)
        reference = a @ b
        verified = bool(np.allclose(c, reference, rtol=1e-10, atol=1e-8))
        return ExecutionResult(
            workload="dgemm",
            params=self.params(),
            operations=self.flops,
            verified=verified,
            details={"max_abs_err": float(np.max(np.abs(c - reference)))},
        )
