"""Compressed Sparse Row matrix, built from scratch on numpy.

Used by MiniFE (weighted stiffness matrix, matvec) and Graph500 (the
reference implementation's CSR adjacency).  The matvec is fully
vectorized: gather + segment-sum via ``np.add.reduceat`` with an explicit
empty-row correction (reduceat repeats the element at the boundary for
empty segments, which would corrupt isolated-vertex rows).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.validation import check_positive


@dataclass
class CSRMatrix:
    """CSR storage: ``indptr`` (n+1), ``indices`` (nnz), ``data`` (nnz).

    ``data=None`` models a pattern/adjacency matrix (all ones), storing no
    value array — Graph500's CSR.
    """

    n_rows: int
    n_cols: int
    indptr: np.ndarray
    indices: np.ndarray
    data: np.ndarray | None = None

    def __post_init__(self) -> None:
        check_positive("n_rows", self.n_rows)
        check_positive("n_cols", self.n_cols)
        self.indptr = np.asarray(self.indptr, dtype=np.int64)
        self.indices = np.asarray(self.indices, dtype=np.int64)
        if self.indptr.shape != (self.n_rows + 1,):
            raise ValueError(
                f"indptr must have {self.n_rows + 1} entries, got "
                f"{self.indptr.shape}"
            )
        if self.indptr[0] != 0 or self.indptr[-1] != self.indices.size:
            raise ValueError("indptr must start at 0 and end at nnz")
        if np.any(np.diff(self.indptr) < 0):
            raise ValueError("indptr must be non-decreasing")
        if self.indices.size and (
            self.indices.min() < 0 or self.indices.max() >= self.n_cols
        ):
            raise ValueError("column indices out of range")
        if self.data is not None:
            self.data = np.asarray(self.data, dtype=np.float64)
            if self.data.shape != self.indices.shape:
                raise ValueError("data and indices must have the same length")

    # -- constructors ---------------------------------------------------------
    @classmethod
    def from_coo(
        cls,
        n_rows: int,
        n_cols: int,
        rows: np.ndarray,
        cols: np.ndarray,
        values: np.ndarray | None = None,
        *,
        sum_duplicates: bool = True,
    ) -> "CSRMatrix":
        """Build from COO triplets; duplicate entries are summed (values)
        or collapsed (pattern matrices)."""
        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        if rows.shape != cols.shape:
            raise ValueError("rows and cols must have the same length")
        if rows.size and (rows.min() < 0 or rows.max() >= n_rows):
            raise ValueError("row indices out of range")
        if rows.size and (cols.min() < 0 or cols.max() >= n_cols):
            raise ValueError("column indices out of range")
        order = np.lexsort((cols, rows))
        rows, cols = rows[order], cols[order]
        vals = None if values is None else np.asarray(values, dtype=np.float64)[order]
        if sum_duplicates and rows.size:
            # Collapse duplicate (row, col) pairs.
            key_new = np.empty(rows.size, dtype=bool)
            key_new[0] = True
            key_new[1:] = (rows[1:] != rows[:-1]) | (cols[1:] != cols[:-1])
            group_start = np.flatnonzero(key_new)
            rows_u = rows[group_start]
            cols_u = cols[group_start]
            if vals is not None:
                sums = np.add.reduceat(vals, group_start)
                vals = sums
            rows, cols = rows_u, cols_u
        counts = np.bincount(rows, minlength=n_rows)
        indptr = np.zeros(n_rows + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return cls(n_rows, n_cols, indptr, cols, vals)

    # -- properties -------------------------------------------------------------
    @property
    def nnz(self) -> int:
        return int(self.indices.size)

    @property
    def has_values(self) -> bool:
        return self.data is not None

    def row_degrees(self) -> np.ndarray:
        return np.diff(self.indptr)

    def memory_bytes(self) -> int:
        """Bytes of the CSR arrays (what the workloads' footprints count)."""
        total = self.indptr.nbytes + self.indices.nbytes
        if self.data is not None:
            total += self.data.nbytes
        return total

    # -- operations ---------------------------------------------------------------
    def matvec(self, x: np.ndarray) -> np.ndarray:
        """y = A @ x, vectorized; requires a value array."""
        if self.data is None:
            raise ValueError("pattern matrix has no values; use spmv_pattern")
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (self.n_cols,):
            raise ValueError(f"x must have shape ({self.n_cols},), got {x.shape}")
        products = self.data * x[self.indices]
        return self._segment_sum(products)

    def spmv_pattern(self, x: np.ndarray) -> np.ndarray:
        """y = A @ x for an implicit all-ones matrix (graph aggregation)."""
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (self.n_cols,):
            raise ValueError(f"x must have shape ({self.n_cols},), got {x.shape}")
        return self._segment_sum(x[self.indices])

    def _segment_sum(self, products: np.ndarray) -> np.ndarray:
        y = np.zeros(self.n_rows, dtype=np.float64)
        nonempty = np.flatnonzero(np.diff(self.indptr) > 0)
        if nonempty.size:
            starts = self.indptr[nonempty]
            y[nonempty] = np.add.reduceat(products, starts)
        return y

    def row(self, i: int) -> tuple[np.ndarray, np.ndarray | None]:
        """(column indices, values) of row ``i``."""
        if not 0 <= i < self.n_rows:
            raise IndexError(f"row {i} out of range")
        sl = slice(self.indptr[i], self.indptr[i + 1])
        return self.indices[sl], None if self.data is None else self.data[sl]

    def to_dense(self) -> np.ndarray:
        """Dense copy for tests (small matrices only)."""
        dense = np.zeros((self.n_rows, self.n_cols))
        for i in range(self.n_rows):
            cols, vals = self.row(i)
            dense[i, cols] = 1.0 if vals is None else vals
        return dense

    def transpose(self) -> "CSRMatrix":
        """CSR of the transpose (CSC view re-expressed as CSR)."""
        rows = np.repeat(np.arange(self.n_rows, dtype=np.int64), self.row_degrees())
        return CSRMatrix.from_coo(
            self.n_cols,
            self.n_rows,
            self.indices,
            rows,
            self.data,
            sum_duplicates=False,
        )
