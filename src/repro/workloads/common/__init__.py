"""Shared substrate data structures for the workloads (CSR sparse matrix)."""

from repro.workloads.common.sparse import CSRMatrix

__all__ = ["CSRMatrix"]
