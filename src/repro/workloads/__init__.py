"""Benchmark and application implementations (Table I plus the two
micro-benchmarks).

Every workload has two faces:

* **functional** — the algorithm really runs (vectorized numpy), at any
  size that fits the host, with validated results; tests exercise this.
* **profiled** — the same parameterization yields a
  :class:`~repro.engine.profilephase.MemoryProfile` derived from the data
  structures (array sizes, nnz, edge counts, lookup counts), which the
  performance engine turns into the paper's metrics at full testbed scale.

Workloads:

======================  ==========  ==========  =======================
workload                type        pattern     metric
======================  ==========  ==========  =======================
STREAM                  micro       sequential  GB/s (triad)
TinyMemBench            micro       random      dual random read ns
DGEMM                   scientific  sequential  GFLOPS
MiniFE                  scientific  sequential  CG MFLOPS
GUPS                    analytics   random      giga-updates/s
Graph500                analytics   random      TEPS
XSBench                 scientific  random      lookups/s
======================  ==========  ==========  =======================
"""

from repro.workloads.base import WorkloadSpec, Workload, ExecutionResult
from repro.workloads.stream import StreamBenchmark, StreamKernel
from repro.workloads.tinymembench import TinyMemBench
from repro.workloads.dgemm import DGEMM
from repro.workloads.gups import GUPS
from repro.workloads.minife import MiniFE
from repro.workloads.graph500 import Graph500
from repro.workloads.xsbench import XSBench
from repro.workloads.registry import WORKLOADS, get_workload, table1_rows

__all__ = [
    "WorkloadSpec",
    "Workload",
    "ExecutionResult",
    "StreamBenchmark",
    "StreamKernel",
    "TinyMemBench",
    "DGEMM",
    "GUPS",
    "MiniFE",
    "Graph500",
    "XSBench",
    "WORKLOADS",
    "get_workload",
    "table1_rows",
]
