"""Kronecker (R-MAT) edge generator, per the Graph500 specification.

Vectorized port of the spec's octave reference: for each of ``scale``
bit levels, every edge independently picks a quadrant of the adjacency
matrix with probabilities (A, B, C, D=1-A-B-C) = (0.57, 0.19, 0.19, 0.05),
then vertex labels and edge order are randomly permuted.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.prng import make_rng
from repro.util.validation import check_positive


@dataclass(frozen=True)
class KroneckerParams:
    """Generator parameters (spec defaults)."""

    scale: int
    edgefactor: int = 16
    a: float = 0.57
    b: float = 0.19
    c: float = 0.19

    def __post_init__(self) -> None:
        check_positive("scale", self.scale)
        check_positive("edgefactor", self.edgefactor)
        if min(self.a, self.b, self.c) < 0 or self.a + self.b + self.c >= 1.0:
            raise ValueError(
                f"quadrant probabilities invalid: {(self.a, self.b, self.c)}"
            )

    @property
    def n_vertices(self) -> int:
        return 1 << self.scale

    @property
    def n_edges(self) -> int:
        return self.edgefactor * self.n_vertices


def kronecker_edges(
    params: KroneckerParams, *, seed: int | None = None
) -> np.ndarray:
    """Generate the (2, n_edges) directed edge list.

    Follows the spec's reference: per-level quadrant selection, then a
    random relabeling of vertices and shuffle of edge order (so locality
    cannot be exploited by construction order).
    """
    rng = make_rng(seed, "kronecker", params.scale, params.edgefactor)
    m = params.n_edges
    ij = np.zeros((2, m), dtype=np.int64)
    ab = params.a + params.b
    c_norm = params.c / (1.0 - ab)
    a_norm = params.a / ab
    for _ in range(params.scale):
        ii_bit = rng.random(m) > ab
        jj_threshold = np.where(ii_bit, c_norm, a_norm)
        jj_bit = rng.random(m) > jj_threshold
        ij[0] = 2 * ij[0] + ii_bit
        ij[1] = 2 * ij[1] + jj_bit
    # Permute vertex labels and edge order.
    relabel = rng.permutation(params.n_vertices)
    ij = relabel[ij]
    ij = ij[:, rng.permutation(m)]
    return ij
