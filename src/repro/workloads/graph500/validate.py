"""Graph500 result validation (spec section "Validation").

Checks, given the original edge list and a BFS result:

1. the parent of the root is the root;
2. every reached vertex has a reached parent, with level exactly one more
   than its parent's;
3. every tree edge (v, parent[v]) exists in the graph;
4. every graph edge spans at most one level (both endpoints reached on
   levels differing by <= 1, or both unreached — reached/unreached pairs
   are impossible in a correct BFS);
5. the set of reached vertices is exactly the root's connected component.
"""

from __future__ import annotations

import numpy as np

from repro.workloads.graph500.bfs import BFSResult, _gather_neighbors
from repro.workloads.common.sparse import CSRMatrix


def _edge_exists(graph: CSRMatrix, u: np.ndarray, v: np.ndarray) -> np.ndarray:
    """Vectorized membership test: is v in u's adjacency row?

    CSR rows are sorted by construction (lexsort in from_coo), so a
    searchsorted per row segment suffices.
    """
    starts = graph.indptr[u]
    ends = graph.indptr[u + 1]
    found = np.zeros(u.size, dtype=bool)
    # Search within the global indices array, bounded per row.
    for i in range(u.size):  # row segments are tiny; clarity over cleverness
        row = graph.indices[starts[i] : ends[i]]
        j = np.searchsorted(row, v[i])
        found[i] = j < row.size and row[j] == v[i]
    return found


def validate_bfs(
    graph: CSRMatrix, result: BFSResult, *, check_component: bool = True
) -> tuple[bool, list[str]]:
    """Run the spec's checks; returns (ok, list of violation messages)."""
    errors: list[str] = []
    parent, level, root = result.parent, result.level, result.root

    if parent[root] != root:
        errors.append(f"root parent is {parent[root]}, expected {root}")
    if level[root] != 0:
        errors.append(f"root level is {level[root]}, expected 0")

    reached = np.flatnonzero(parent >= 0)
    non_root = reached[reached != root]
    if non_root.size:
        parents = parent[non_root]
        if (parent[parents] < 0).any():
            errors.append("some parents are unreached vertices")
        bad_level = level[non_root] != level[parents] + 1
        if bad_level.any():
            errors.append(
                f"{int(bad_level.sum())} vertices with level != parent level + 1"
            )
        exists = _edge_exists(graph, non_root, parents)
        if not exists.all():
            errors.append(
                f"{int((~exists).sum())} tree edges missing from the graph"
            )

    # Level-span check over all edges, via frontier expansion of reached set.
    if reached.size:
        neighbors, sources = _gather_neighbors(graph, reached)
        unreached_neighbor = parent[neighbors] < 0
        if unreached_neighbor.any():
            errors.append(
                f"{int(unreached_neighbor.sum())} edges from reached to "
                f"unreached vertices (component not fully explored)"
            )
        span = np.abs(level[neighbors] - level[sources])
        if (span[~unreached_neighbor] > 1).any():
            errors.append("some graph edges span more than one BFS level")

    if check_component and (parent < 0).any():
        # Any unreached vertex adjacent to a reached one is an error; the
        # frontier check above covers it, so here only assert consistency
        # of the unreached set being closed under adjacency.
        unreached = np.flatnonzero(parent < 0)
        neighbors, _ = _gather_neighbors(graph, unreached)
        if neighbors.size and (parent[neighbors] >= 0).any():
            errors.append("unreached set is adjacent to the BFS tree")

    return not errors, errors
