"""Graph500 workload adapter.

Functional face: generate a Kronecker graph, BFS from sampled roots (the
spec runs 64; small instances use fewer), validate every parent tree, and
report the harmonic-mean TEPS accounting.

Profiled face: one BFS over the whole graph decomposes into

* ``adjacency-stream`` — the CSR row slices of the frontier stream
  through sequentially (indices array, 8 B per directed edge);
* ``visit-random`` — the parent/visited check per traversed edge is a
  random 8-byte access over the vertex arrays: latency-bound, data-
  dependent (mlp barely above the pointer-chase floor), with contended
  frontier atomics (quadratic sync) — together these give the
  DRAM-is-best ordering of Fig. 4d and the 128-thread optimum of Fig. 6c.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, ClassVar

import numpy as np

from repro.engine.profilephase import AccessPattern, MemoryProfile, Phase
from repro.util.prng import make_rng
from repro.util.validation import check_positive
from repro.workloads.base import ExecutionResult, Workload, WorkloadSpec
from repro.workloads.graph500.bfs import bfs_csr, build_adjacency
from repro.workloads.graph500.kronecker import KroneckerParams, kronecker_edges
from repro.workloads.graph500.validate import validate_bfs

def harmonic_mean_teps(
    edges_traversed: list[int], times_s: list[float]
) -> float:
    """The spec's reported statistic: harmonic mean of per-root TEPS.

    Graph500 reports the harmonic mean over the 64 search roots because
    TEPS is a rate — the harmonic mean weights each search by its time,
    matching aggregate edges / aggregate time for equal edge counts.
    """
    if len(edges_traversed) != len(times_s) or not edges_traversed:
        raise ValueError("need matching, non-empty edge and time lists")
    rates = []
    for edges, time_s in zip(edges_traversed, times_s):
        if edges <= 0 or time_s <= 0:
            raise ValueError("edges and times must be positive")
        rates.append(edges / time_s)
    return len(rates) / sum(1.0 / r for r in rates)


#: Data-dependent edge inspection sustains little memory parallelism.
BFS_MLP = 1.2
#: Contended frontier atomics (quadratic in extra hardware threads).
BFS_SYNC_QUADRATIC = 0.06
BFS_SYNC_LINEAR = 0.27


@dataclass
class Graph500(Workload):
    """One Graph500 problem (scale, edgefactor)."""

    scale: int
    edgefactor: int = 16
    n_roots: int = 64

    spec: ClassVar[WorkloadSpec] = WorkloadSpec(
        name="Graph500",
        app_type="Data analytics",
        pattern="Random",
        metric_name="TEPS",
        metric_unit="traversed edges/s",
        max_scale_gb=35.0,
    )

    #: The reference OpenMP code reaches about half of the raw random-
    #: access edge-inspection rate (validation bookkeeping, bitmap
    #: maintenance); single scalar, identical across configurations.
    calibration: ClassVar[float] = 1.15

    def __post_init__(self) -> None:
        check_positive("scale", self.scale)
        check_positive("edgefactor", self.edgefactor)
        check_positive("n_roots", self.n_roots)

    @classmethod
    def from_graph_gb(cls, graph_gb: float) -> "Graph500":
        """Instance whose CSR graph occupies ~``graph_gb`` decimal GB
        (the Fig. 4d x-axis)."""
        check_positive("graph_gb", graph_gb)
        # CSR bytes ~ 2 * edgefactor * n * 8 (symmetrized int64 indices).
        for scale in range(10, 40):
            if cls(scale=scale).footprint_bytes >= graph_gb * 1e9:
                return cls(scale=scale)
        raise ValueError(f"no scale reaches {graph_gb} GB")

    # -- sizing -----------------------------------------------------------------
    @property
    def params_kron(self) -> KroneckerParams:
        return KroneckerParams(scale=self.scale, edgefactor=self.edgefactor)

    @property
    def n_vertices(self) -> int:
        return self.params_kron.n_vertices

    @property
    def n_edges(self) -> int:
        return self.params_kron.n_edges

    @property
    def directed_entries(self) -> int:
        """CSR entries after symmetrization (~2 per input edge)."""
        return 2 * self.n_edges

    @property
    def footprint_bytes(self) -> int:
        csr = self.directed_entries * 8 + (self.n_vertices + 1) * 8
        vertex_arrays = 3 * self.n_vertices * 8  # parent, level, frontier
        return csr + vertex_arrays

    @property
    def operations(self) -> float:
        """Input edges per BFS (the TEPS numerator, spec definition)."""
        return float(self.n_edges)

    def params(self) -> dict[str, Any]:
        return {
            "scale": self.scale,
            "edgefactor": self.edgefactor,
            "vertices": self.n_vertices,
            "edges": self.n_edges,
            "graph_gb": self.footprint_bytes / 1e9,
        }

    # -- profiled face ------------------------------------------------------------
    def profile(self) -> MemoryProfile:
        adjacency_stream = Phase(
            name="adjacency-stream",
            pattern=AccessPattern.SEQUENTIAL,
            traffic_bytes=float(self.directed_entries * 8),
            footprint_bytes=self.footprint_bytes,
            sync_fraction=BFS_SYNC_LINEAR,
        )
        visit_random = Phase(
            name="visit-random",
            pattern=AccessPattern.RANDOM,
            # One parent/visited probe per directed edge, plus the parent
            # and level writes for each discovered vertex (~n of each).
            traffic_bytes=float(self.directed_entries * 8 + 2 * self.n_vertices * 8),
            footprint_bytes=self.footprint_bytes,
            access_bytes=8,
            mlp_per_thread=BFS_MLP,
            sync_fraction=BFS_SYNC_LINEAR,
            sync_quadratic=BFS_SYNC_QUADRATIC,
            write_fraction=0.1,
        )
        return MemoryProfile(
            workload="graph500", phases=(adjacency_stream, visit_random)
        )

    # -- functional face ----------------------------------------------------------
    def execute(self, *, seed: int | None = None) -> ExecutionResult:
        """Generate, BFS from sampled roots, validate each tree."""
        rng = make_rng(seed, "graph500", self.scale, self.edgefactor)
        edges = kronecker_edges(self.params_kron, seed=seed)
        graph = build_adjacency(edges, self.n_vertices)
        degrees = graph.row_degrees()
        candidates = np.flatnonzero(degrees > 0)
        if candidates.size == 0:
            raise RuntimeError("generated graph has no edges")
        n_roots = min(self.n_roots, candidates.size)
        roots = rng.choice(candidates, size=n_roots, replace=False)
        all_ok = True
        traversed = 0
        messages: list[str] = []
        for root in roots:
            result = bfs_csr(graph, int(root))
            ok, errs = validate_bfs(graph, result)
            all_ok &= ok
            messages.extend(errs)
            traversed += result.edges_traversed
        return ExecutionResult(
            workload="graph500",
            params=self.params(),
            operations=float(self.n_edges * n_roots),
            verified=all_ok,
            details={
                "roots": n_roots,
                "edges_traversed": traversed,
                "errors": messages,
                "csr_entries": graph.nnz,
            },
        )
