"""Level-synchronous BFS over CSR, vectorized.

The reference Graph500 OpenMP code does top-down level-synchronous BFS
over the CSR "compression" of the symmetrized Kronecker graph; this is a
numpy port with the same structure: per level, gather all frontier
neighbours, filter unvisited, write parents, form the next frontier.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.workloads.common.sparse import CSRMatrix


def build_adjacency(edges: np.ndarray, n_vertices: int) -> CSRMatrix:
    """Symmetrized, deduplicated, self-loop-free CSR adjacency.

    This is the benchmark's "graph construction" kernel (untimed in the
    spec, but part of the footprint).
    """
    edges = np.asarray(edges, dtype=np.int64)
    if edges.ndim != 2 or edges.shape[0] != 2:
        raise ValueError(f"edges must be (2, m), got {edges.shape}")
    src, dst = edges
    keep = src != dst
    src, dst = src[keep], dst[keep]
    rows = np.concatenate([src, dst])
    cols = np.concatenate([dst, src])
    return CSRMatrix.from_coo(n_vertices, n_vertices, rows, cols, None)


@dataclass
class BFSResult:
    """Parent tree plus traversal accounting."""

    root: int
    parent: np.ndarray   # -1 for unreached
    level: np.ndarray    # -1 for unreached
    edges_traversed: int
    levels: int

    @property
    def vertices_visited(self) -> int:
        return int((self.parent >= 0).sum())


def _gather_neighbors(
    graph: CSRMatrix, frontier: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """All (neighbor, source) pairs of the frontier, vectorized.

    Expands CSR row slices without a Python loop: positions are built from
    cumulative degree offsets.
    """
    starts = graph.indptr[frontier]
    degrees = graph.indptr[frontier + 1] - starts
    total = int(degrees.sum())
    if total == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    offsets = np.zeros(frontier.size, dtype=np.int64)
    np.cumsum(degrees[:-1], out=offsets[1:])
    positions = np.arange(total, dtype=np.int64)
    positions += np.repeat(starts - offsets, degrees)
    neighbors = graph.indices[positions]
    sources = np.repeat(frontier, degrees)
    return neighbors, sources


def bfs_csr(graph: CSRMatrix, root: int) -> BFSResult:
    """Top-down level-synchronous BFS from ``root``."""
    n = graph.n_rows
    if not 0 <= root < n:
        raise ValueError(f"root {root} out of range for {n} vertices")
    parent = np.full(n, -1, dtype=np.int64)
    level = np.full(n, -1, dtype=np.int64)
    parent[root] = root
    level[root] = 0
    frontier = np.array([root], dtype=np.int64)
    edges_traversed = 0
    depth = 0
    while frontier.size:
        neighbors, sources = _gather_neighbors(graph, frontier)
        edges_traversed += neighbors.size
        fresh = parent[neighbors] == -1
        neighbors = neighbors[fresh]
        sources = sources[fresh]
        if neighbors.size:
            # First occurrence wins, like the reference's atomic CAS: keep
            # the first (neighbor, source) pair per neighbor.
            order = np.argsort(neighbors, kind="stable")
            neighbors = neighbors[order]
            sources = sources[order]
            first = np.ones(neighbors.size, dtype=bool)
            first[1:] = neighbors[1:] != neighbors[:-1]
            neighbors = neighbors[first]
            sources = sources[first]
            parent[neighbors] = sources
            depth += 1
            level[neighbors] = depth
            frontier = neighbors
        else:
            break
    return BFSResult(
        root=root,
        parent=parent,
        level=level,
        edges_traversed=edges_traversed,
        levels=depth,
    )
