"""Graph500 breadth-first search benchmark (reference OpenMP/CSR flavour).

The paper's data-analytics representative (Figs. 4d, 6c): generate a
Kronecker graph (scale S, edge factor 16), build the CSR compression the
reference code uses, run BFS from sampled roots, validate the parent
trees, and report the harmonic-mean TEPS.

* :mod:`repro.workloads.graph500.kronecker` — the spec's R-MAT generator.
* :mod:`repro.workloads.graph500.bfs` — vectorized level-synchronous BFS.
* :mod:`repro.workloads.graph500.validate` — the spec's result validation.
* :mod:`repro.workloads.graph500.workload` — the Workload adapter.
"""

from repro.workloads.graph500.kronecker import kronecker_edges, KroneckerParams
from repro.workloads.graph500.bfs import BFSResult, bfs_csr, build_adjacency
from repro.workloads.graph500.validate import validate_bfs
from repro.workloads.graph500.workload import Graph500, harmonic_mean_teps

__all__ = [
    "kronecker_edges",
    "KroneckerParams",
    "BFSResult",
    "bfs_csr",
    "build_adjacency",
    "validate_bfs",
    "Graph500",
    "harmonic_mean_teps",
]
