"""Workload registry and the Table I view."""

from __future__ import annotations

from typing import Callable

from repro.util.tables import TextTable
from repro.workloads.base import Workload
from repro.workloads.dgemm import DGEMM
from repro.workloads.graph500 import Graph500
from repro.workloads.gups import GUPS
from repro.workloads.minife import MiniFE
from repro.workloads.stream import StreamBenchmark
from repro.workloads.tinymembench import TinyMemBench
from repro.workloads.xsbench import XSBench

#: Name -> workload class.  Order matches Table I (applications first),
#: micro-benchmarks appended.
WORKLOADS: dict[str, type[Workload]] = {
    "dgemm": DGEMM,
    "minife": MiniFE,
    "gups": GUPS,
    "graph500": Graph500,
    "xsbench": XSBench,
    "stream": StreamBenchmark,
    "tinymembench": TinyMemBench,
}

#: Constructors from the paper's size axes (decimal GB), per workload.
FROM_GB: dict[str, Callable[[float], Workload]] = {
    "dgemm": DGEMM.from_array_gb,
    "minife": MiniFE.from_matrix_gb,
    "gups": GUPS.from_table_gb,
    "graph500": Graph500.from_graph_gb,
    "xsbench": XSBench.from_problem_gb,
}


def get_workload(name: str) -> type[Workload]:
    """Look up a workload class by (case-insensitive) name."""
    key = name.lower()
    if key not in WORKLOADS:
        raise KeyError(
            f"unknown workload {name!r}; available: {sorted(WORKLOADS)}"
        )
    return WORKLOADS[key]


def table1_rows() -> list[tuple[str, str, str, str]]:
    """The rows of the paper's Table I (applications only)."""
    rows = []
    for name in ("dgemm", "minife", "gups", "graph500", "xsbench"):
        spec = WORKLOADS[name].spec
        rows.append(
            (
                spec.name,
                spec.app_type,
                spec.pattern,
                f"{spec.max_scale_gb:.0f} GB",
            )
        )
    return rows


def render_table1() -> str:
    """Table I as text."""
    table = TextTable(
        ["Application", "Type", "Access Pattern", "Max. Scale"],
        title="Table I: List of Evaluated Applications",
        align=["l", "l", "l", "r"],
    )
    table.add_rows(table1_rows())
    return table.render()
