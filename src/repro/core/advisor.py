"""Model-driven placement advisor.

Answers the question the paper poses for programmers: *given this
application and problem size, which memory configuration should I use,
and what improvement should I expect?*  The advisor simply runs the
performance model under every candidate configuration (the honest version
of the paper's guidelines) and attaches the matching Section-VI guideline
text as the explanation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.configs import ConfigName, make_config
from repro.core.guidelines import Guideline, applicable_guidelines
from repro.core.metrics import improvement
from repro.core.runner import ExperimentRunner, RunRecord
from repro.workloads.base import Workload


@dataclass(frozen=True)
class Recommendation:
    """The advisor's verdict for one workload instance."""

    workload: str
    num_threads: int
    best: ConfigName
    expected_improvement_vs_dram: float | None
    records: tuple[RunRecord, ...]
    guidelines: tuple[Guideline, ...]

    def describe(self) -> str:
        lines = [
            f"{self.workload} @ {self.num_threads} threads: "
            f"use {self.best.value}"
        ]
        if self.expected_improvement_vs_dram is not None:
            lines[0] += (
                f" (expected {self.expected_improvement_vs_dram:.2f}x vs DRAM)"
            )
        for rec in self.records:
            value = "-" if rec.metric is None else f"{rec.metric:.4g}"
            note = f"  [{rec.infeasible_reason}]" if rec.infeasible_reason else ""
            lines.append(f"  {rec.config.value:<12} {value}{note}")
        for g in self.guidelines:
            lines.append(f"  guideline[{g.rule_id}]: {g.advice}")
        return "\n".join(lines)


class PlacementAdvisor:
    """Recommends a memory configuration for a workload instance."""

    def __init__(
        self,
        runner: ExperimentRunner | None = None,
        *,
        candidates: tuple[ConfigName, ...] | None = None,
    ) -> None:
        self.runner = runner if runner is not None else ExperimentRunner()
        self.candidates = (
            candidates if candidates is not None else ConfigName.paper_trio()
        )

    def recommend(self, workload: Workload, num_threads: int = 64) -> Recommendation:
        """Evaluate every candidate configuration and pick the best feasible."""
        # Imported lazily: repro.api resolves core modules at import time.
        from repro.api import InfeasibleConfigError, compare_configs

        records = tuple(
            compare_configs(
                workload,
                tuple(make_config(name) for name in self.candidates),
                num_threads,
                runner=self.runner,
            )
        )
        feasible = [r for r in records if r.feasible]
        if not feasible:
            # An InfeasibleConfigError IS a RuntimeError (the historical
            # contract of this method).
            raise InfeasibleConfigError(
                f"no feasible configuration for {workload.spec.name} "
                f"({workload.footprint_bytes / 1e9:.1f} GB)"
            )
        best = max(feasible, key=lambda r: r.metric)  # type: ignore[arg-type]
        dram = next((r for r in records if r.config is ConfigName.DRAM), None)
        profile = workload.profile()
        placement = self.runner.machine.place_threads(num_threads)
        matched = applicable_guidelines(
            profile.dominant_pattern,
            workload.footprint_bytes,
            placement.max_threads_per_core,
        )
        return Recommendation(
            workload=workload.spec.name,
            num_threads=num_threads,
            best=best.config,
            expected_improvement_vs_dram=improvement(
                best.metric, None if dram is None else dram.metric
            ),
            records=records,
            guidelines=tuple(matched),
        )
