"""Full-study report generation.

Regenerates every exhibit and composes a single text report (the
reproduction's analogue of the paper's evaluation section), optionally
with the energy extension appended.  The CLI's ``report`` subcommand and
the EXPERIMENTS.md workflow are built on this.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.configs import ConfigName
from repro.core.executor import SweepExecutor
from repro.core.runner import ExperimentRunner
from repro.engine.energy import EnergyModel
from repro.util.tables import TextTable
from repro.workloads.base import Workload
from repro.workloads.registry import FROM_GB


@dataclass(frozen=True)
class StudyReport:
    """The composed report."""

    sections: tuple[tuple[str, str], ...]

    def render(self) -> str:
        parts = []
        for title, body in self.sections:
            parts.append(f"{'=' * 72}\n{title}\n{'=' * 72}\n{body}")
        return "\n\n".join(parts)


def generate_report(runner: ExperimentRunner | SweepExecutor | None = None) -> StudyReport:
    """Regenerate every exhibit into one report."""
    # Imported here: repro.figures imports repro.core, so a module-level
    # import would be circular.
    from repro.figures import EXHIBITS

    runner = runner if runner is not None else ExperimentRunner()
    sections: list[tuple[str, str]] = []
    for exhibit_id, generate in EXHIBITS.items():
        try:
            exhibit = generate(runner)  # type: ignore[call-arg]
        except TypeError:
            exhibit = generate()
        sections.append((f"{exhibit_id}: {exhibit.title}", exhibit.render()))
    return StudyReport(sections=tuple(sections))


def energy_comparison(
    workload: Workload,
    *,
    runner: ExperimentRunner | SweepExecutor | None = None,
    num_threads: int = 64,
) -> TextTable:
    """Time/energy/EDP of a workload under the three configurations.

    An extension beyond the paper's exhibits: the data-movement argument
    of its introduction, quantified.
    """
    runner = runner if runner is not None else ExperimentRunner()
    energy_model = EnergyModel()
    table = TextTable(
        ["config", "time (s)", "memory (J)", "compute (J)", "static (J)",
         "total (J)", "EDP (J*s)"],
        title=(
            f"Energy comparison: {workload.spec.name} "
            f"({workload.footprint_bytes / 1e9:.1f} GB, {num_threads} threads)"
        ),
    )
    profile = workload.profile()
    for config in ConfigName.paper_trio():
        record = runner.run(workload, config, num_threads)
        if record.metric is None or record.run_result is None:
            table.add_row([config.value, "-", "-", "-", "-", "-", "-"])
            continue
        run = record.run_result
        estimate = energy_model.estimate(profile, run)
        table.add_row(
            [
                config.value,
                f"{run.time_s:.3f}",
                f"{estimate.dynamic_memory_j:.2f}",
                f"{estimate.dynamic_compute_j:.2f}",
                f"{estimate.static_j:.2f}",
                f"{estimate.total_j:.2f}",
                f"{estimate.edp(run.time_s):.2f}",
            ]
        )
    return table


def energy_comparison_by_name(
    workload_name: str,
    size_gb: float,
    *,
    runner: ExperimentRunner | SweepExecutor | None = None,
    num_threads: int = 64,
) -> TextTable:
    """CLI-facing wrapper resolving a workload by name and size."""
    if workload_name not in FROM_GB:
        raise KeyError(
            f"unknown workload {workload_name!r}; available: {sorted(FROM_GB)}"
        )
    workload = FROM_GB[workload_name](size_gb)
    return energy_comparison(workload, runner=runner, num_threads=num_threads)
