"""Multi-node decomposition sizing (Section IV-C's guideline).

The paper: "If the application has good parallel efficiency across
multi-nodes, with enough compute nodes, the optimal setup is to decompose
the problem so that each compute node is assigned with a sub-problem that
has a size close to the HBM capacity."

This module makes that quantitative: split a total problem over N nodes,
pick the best feasible memory configuration for the per-node sub-problem,
and aggregate with a communication-efficiency factor.  The decomposition
ablation bench sweeps N and shows the knee where sub-problems start
fitting HBM.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

from repro.core.advisor import PlacementAdvisor
from repro.core.configs import ConfigName
from repro.core.runner import ExperimentRunner
from repro.util.validation import check_fraction, check_positive
from repro.workloads.base import Workload


@dataclass(frozen=True)
class NodeCount:
    """One point of a decomposition sweep.

    Metrics are ``None`` when the sub-problem fits no memory
    configuration at all (too few nodes — it does not even fit DDR).
    """

    nodes: int
    per_node_gb: float
    best_config: ConfigName | None
    per_node_metric: float | None
    aggregate_metric: float | None
    parallel_efficiency: float

    @property
    def feasible(self) -> bool:
        return self.per_node_metric is not None


def parallel_efficiency(nodes: int, comm_fraction: float = 0.01) -> float:
    """Efficiency of an N-node decomposition.

    A mild surface-to-volume communication term: each doubling of the
    node count adds ``comm_fraction`` of lost time.  The paper assumes
    "good parallel efficiency"; this keeps aggregate throughput growing
    with N while making over-decomposition visibly sub-linear.
    """
    check_positive("nodes", nodes)
    check_fraction("comm_fraction", comm_fraction)
    import math

    return 1.0 / (1.0 + comm_fraction * math.log2(nodes)) if nodes > 1 else 1.0


def decompose(
    factory: Callable[[float], Workload],
    total_gb: float,
    nodes: int,
    *,
    runner: ExperimentRunner | None = None,
    num_threads: int = 64,
    comm_fraction: float = 0.01,
) -> NodeCount:
    """Evaluate an N-node decomposition of a ``total_gb`` problem.

    The per-node sub-problem runs under the advisor's best configuration;
    the aggregate is N x per-node metric x parallel efficiency.
    """
    check_positive("total_gb", total_gb)
    check_positive("nodes", nodes)
    runner = runner if runner is not None else ExperimentRunner()
    per_node_gb = total_gb / nodes
    workload = factory(per_node_gb)
    efficiency = parallel_efficiency(nodes, comm_fraction)
    try:
        recommendation = PlacementAdvisor(runner).recommend(
            workload, num_threads
        )
    except RuntimeError:
        return NodeCount(
            nodes=nodes,
            per_node_gb=per_node_gb,
            best_config=None,
            per_node_metric=None,
            aggregate_metric=None,
            parallel_efficiency=efficiency,
        )
    best = next(
        r for r in recommendation.records if r.config is recommendation.best
    )
    assert best.metric is not None
    return NodeCount(
        nodes=nodes,
        per_node_gb=per_node_gb,
        best_config=recommendation.best,
        per_node_metric=best.metric,
        aggregate_metric=nodes * best.metric * efficiency,
        parallel_efficiency=efficiency,
    )


def sweep_node_counts(
    factory: Callable[[float], Workload],
    total_gb: float,
    node_counts: list[int],
    *,
    runner: ExperimentRunner | None = None,
    num_threads: int = 64,
    comm_fraction: float = 0.01,
) -> list[NodeCount]:
    """Decomposition sweep over node counts."""
    if not node_counts:
        raise ValueError("node_counts must be non-empty")
    runner = runner if runner is not None else ExperimentRunner()
    return [
        decompose(
            factory,
            total_gb,
            n,
            runner=runner,
            num_threads=num_threads,
            comm_fraction=comm_fraction,
        )
        for n in node_counts
    ]


def hbm_knee(points: list[NodeCount], hbm_gb: float = 16.0) -> NodeCount | None:
    """The first sweep point whose sub-problem fits HBM (the paper's
    recommended operating point)."""
    for point in sorted(points, key=lambda p: p.nodes):
        if point.per_node_gb <= hbm_gb:
            return point
    return None
