"""The experiment runner.

Executes one workload under one configuration the way the paper's scripts
did: boot (simulated) into the MCDRAM mode, apply the numactl policy,
allocate the problem, run, report the metric.  Two failure paths are
modelled faithfully rather than papered over:

* the allocation can exceed the bound node's capacity (HBM flat with a
  problem over 16 GB) — the record carries ``infeasible_reason`` and a
  ``None`` metric, which the figures render as the paper's missing bars;
* the workload itself can declare a configuration unrunnable
  (DGEMM at 256 threads, paper footnote 1).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any

from repro.core.configs import ConfigName, SystemConfig, make_config
from repro.engine.perfmodel import PerformanceModel, RunResult
from repro.engine.placement import PlacementMix
from repro.machine.presets import knl7210
from repro.machine.topology import KNLMachine
from repro.memory.numa import OutOfNodeMemory
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.runtime.simos import SimulatedOS
from repro.workloads.base import Workload


@dataclass(frozen=True)
class RunRecord:
    """One (workload, configuration, threads) measurement."""

    workload: str
    workload_params: dict[str, Any]
    config: ConfigName
    num_threads: int
    metric: float | None
    metric_name: str
    metric_unit: str
    infeasible_reason: str | None = None
    run_result: RunResult | None = None

    @property
    def feasible(self) -> bool:
        return self.metric is not None


class ExperimentRunner:
    """Runs workloads under named configurations on one machine model."""

    def __init__(self, machine: KNLMachine | None = None) -> None:
        self.machine = machine if machine is not None else knl7210()
        self._local = threading.local()

    # -- internals ---------------------------------------------------------
    def _boot(self, config: SystemConfig) -> tuple[SimulatedOS, PerformanceModel]:
        """Booted OS + model for a configuration, cached per MCDRAM mode.

        Booting a :class:`SimulatedOS` (and with it a scipy cache-survival
        interpolator) per run dominated the scalar path's setup cost; one
        boot per configuration serves every subsequent run.  The cache is
        thread-local because the OS allocator is mutated during a run
        (``allocation_scope`` restores it afterwards, but not atomically),
        so threads-strategy executors must not share instances.

        Machine safety: one runner binds exactly one ``self.machine`` for
        its lifetime and every booted OS is built from it, so interleaving
        runs across two runners (two machines) can never cross-contaminate
        — each runner's boot cache only ever holds its own machine's
        memory systems (``tests/machine/test_conformance.py`` pins this).
        """
        cache = getattr(self._local, "boot", None)
        if cache is None:
            cache = self._local.boot = {}
        entry = cache.get(config.mcdram)
        if entry is None:
            sim_os = SimulatedOS(config.mcdram, machine=self.machine)
            entry = (sim_os, PerformanceModel(self.machine, sim_os.memory))
            cache[config.mcdram] = entry
        return entry

    def __getstate__(self) -> dict[str, Any]:
        # Process-pool workers pickle the runner; the boot cache is
        # per-process scratch state and is rebuilt on first use.
        state = self.__dict__.copy()
        del state["_local"]
        return state

    def __setstate__(self, state: dict[str, Any]) -> None:
        self.__dict__.update(state)
        self._local = threading.local()

    def _infeasible(
        self, workload: Workload, config: SystemConfig, threads: int, reason: str
    ) -> RunRecord:
        return RunRecord(
            workload=workload.spec.name,
            workload_params=workload.params(),
            config=config.name,
            num_threads=threads,
            metric=None,
            metric_name=workload.spec.metric_name,
            metric_unit=workload.spec.metric_unit,
            infeasible_reason=reason,
        )

    # -- public API ---------------------------------------------------------
    def run(
        self,
        workload: Workload,
        config: SystemConfig | ConfigName,
        num_threads: int = 64,
    ) -> RunRecord:
        """Simulate one run; never raises for modelled failure modes.

        With an observation session active (:mod:`repro.obs`) the run is
        wrapped in a ``runner.run`` span tagged with the workload's
        identity (:meth:`~repro.workloads.base.Workload.obs_tags`) and
        counted in ``runner.runs`` / ``runner.infeasible``; the returned
        record is identical either way.
        """
        if isinstance(config, ConfigName):
            config = make_config(config)
        if not (obs_trace.enabled() or obs_metrics.enabled()):
            return self._run(workload, config, num_threads)
        tags = workload.obs_tags()
        tags["config"] = config.name.value
        tags["threads"] = num_threads
        with obs_trace.span("runner.run", tags):
            record = self._run(workload, config, num_threads)
        labels = {"config": record.config.value}
        obs_metrics.add("runner.runs", 1.0, labels)
        if record.infeasible_reason is not None:
            obs_metrics.add("runner.infeasible", 1.0, labels)
        return record

    def _run(
        self,
        workload: Workload,
        config: SystemConfig,
        num_threads: int,
    ) -> RunRecord:
        sim_os, model = self._boot(config)

        try:
            workload.check_runnable(num_threads)
        except RuntimeError as exc:
            return self._infeasible(workload, config, num_threads, str(exc))

        try:
            with sim_os.allocation_scope():
                allocation = sim_os.malloc(
                    f"{workload.spec.name}-data",
                    workload.footprint_bytes,
                    numactl=config.numactl,
                )
                mix = PlacementMix.from_allocation_split(
                    allocation.split,
                    dram_cached=sim_os.memory.dram_fronted_by_cache,
                )
                result = model.evaluate(
                    workload.profile_cached(), mix, num_threads
                )
        except OutOfNodeMemory as exc:
            return self._infeasible(
                workload,
                config,
                num_threads,
                f"problem does not fit the bound NUMA node: {exc}",
            )
        return RunRecord(
            workload=workload.spec.name,
            workload_params=workload.params(),
            config=config.name,
            num_threads=num_threads,
            metric=workload.metric(result),
            metric_name=workload.spec.metric_name,
            metric_unit=workload.spec.metric_unit,
            run_result=result,
        )

    def run_configs(
        self,
        workload: Workload,
        configs: tuple[SystemConfig | ConfigName, ...] | None = None,
        num_threads: int = 64,
    ) -> list[RunRecord]:
        """Deprecated alias of :func:`repro.api.compare_configs` (which
        preserves this runner's per-config dispatch exactly)."""
        import warnings

        warnings.warn(
            "ExperimentRunner.run_configs is deprecated; use "
            "repro.api.compare_configs",
            DeprecationWarning,
            stacklevel=2,
        )
        # Imported lazily: repro.api resolves core modules at import time.
        from repro.api import compare_configs

        return compare_configs(workload, configs, num_threads, runner=self)
