"""Per-structure placement optimization (the future work, automated).

The paper closes: "we plan to investigate a finer-grained approach in
which we can apply our conclusions to individual data structures".  Given
a workload that names its structures (each backing one profile phase),
the optimizer searches all feasible DRAM/HBM assignments in flat mode and
returns the best predicted placement — which for mixed workloads can beat
every coarse configuration (bandwidth-hungry structures in HBM,
latency-sensitive ones in DRAM).

Structure counts are tiny (2-4 per workload), so the search is exhaustive
and therefore exact with respect to the performance model.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.engine.batch import ModelTables
from repro.engine.placement import Location, PlacementMix
from repro.machine.topology import KNLMachine
from repro.memory.modes import MCDRAMConfig, MemorySystem
from repro.util.validation import check_positive
from repro.workloads.base import Workload


@dataclass(frozen=True)
class Structure:
    """One application data structure.

    ``phase`` names the profile phase whose traffic targets this
    structure (the workloads are factored so each phase reads/writes one
    dominant structure).
    """

    name: str
    num_bytes: int
    phase: str

    def __post_init__(self) -> None:
        if not self.name or not self.phase:
            raise ValueError("structure needs a name and a phase")
        check_positive("num_bytes", self.num_bytes)


@dataclass(frozen=True)
class OptimizedPlacement:
    """The search result."""

    assignments: dict[str, Location]
    metric: float
    hbm_bytes: int
    evaluated: int

    def describe(self) -> str:
        parts = [
            f"{name} -> {location.value}"
            for name, location in self.assignments.items()
        ]
        return (
            ", ".join(parts)
            + f"  (HBM {self.hbm_bytes / 1e9:.1f} GB, "
            + f"{self.evaluated} placements evaluated)"
        )


def structures_for(workload: Workload) -> list[Structure]:
    """Built-in structure decompositions for the bundled workloads."""
    from repro.workloads.graph500 import Graph500
    from repro.workloads.minife import MiniFE

    if isinstance(workload, MiniFE):
        return [
            Structure("stiffness-matrix", workload.matrix_bytes, "spmv-stream"),
            Structure("x-vector", workload.n_rows * 8, "spmv-gather"),
            Structure("cg-vectors", workload.vector_bytes, "vector-ops"),
        ]
    if isinstance(workload, Graph500):
        csr = workload.directed_entries * 8 + (workload.n_vertices + 1) * 8
        return [
            Structure("csr-adjacency", csr, "adjacency-stream"),
            Structure(
                "vertex-arrays", 3 * workload.n_vertices * 8, "visit-random"
            ),
        ]
    raise ValueError(
        f"no built-in structure decomposition for {workload.spec.name}; "
        f"pass structures explicitly"
    )


class PlacementOptimizer:
    """Exhaustive per-structure DRAM/HBM placement search (flat mode)."""

    def __init__(self, machine: KNLMachine | None = None) -> None:
        from repro.machine.presets import knl7210

        self.machine = machine if machine is not None else knl7210()
        self.memory = MemorySystem(MCDRAMConfig.flat())
        self.tables = ModelTables(self.machine, self.memory)
        self.model = self.tables.model

    def optimize(
        self,
        workload: Workload,
        structures: list[Structure] | None = None,
        *,
        num_threads: int = 64,
    ) -> OptimizedPlacement:
        """Search all feasible assignments; returns the best placement.

        Raises when the workload's profile has phases not covered by the
        structures, or when no assignment fits (total > DDR + HBM is the
        caller's problem — node capacities are not modelled here beyond
        the HBM constraint, since DDR dwarfs every workload structure).
        """
        if structures is None:
            structures = structures_for(workload)
        profile = workload.profile()
        phase_names = {p.name for p in profile.phases}
        covered = {s.phase for s in structures}
        if phase_names != covered:
            raise ValueError(
                f"structures cover phases {sorted(covered)} but the profile "
                f"has {sorted(phase_names)}"
            )
        hbm_capacity = self.memory.mcdram.capacity_bytes

        # Enumerate the feasible assignments first, then evaluate them as
        # ONE columnar batch (bit-identical to per-assignment model.run);
        # the winner is picked with the same strict-> tie-break the
        # per-point loop used, in the same enumeration order.
        feasible: list[tuple[tuple[Location, ...], int]] = []
        for assignment in itertools.product(
            (Location.DRAM, Location.HBM), repeat=len(structures)
        ):
            hbm_bytes = sum(
                s.num_bytes
                for s, loc in zip(structures, assignment)
                if loc is Location.HBM
            )
            if hbm_bytes > hbm_capacity:
                continue
            feasible.append((assignment, hbm_bytes))
        if not feasible:
            raise RuntimeError("no feasible assignment (HBM capacity)")
        # Imported lazily: repro.api resolves core modules at import time.
        from repro.api import evaluate_placements

        runs = evaluate_placements(
            profile,
            [
                {
                    s.phase: PlacementMix.pure(loc)
                    for s, loc in zip(structures, assignment)
                }
                for assignment, _ in feasible
            ],
            num_threads,
            tables=self.tables,
        )
        best: OptimizedPlacement | None = None
        evaluated = 0
        for (assignment, hbm_bytes), run in zip(feasible, runs):
            evaluated += 1
            metric = workload.metric(run)
            if best is None or metric > best.metric:
                best = OptimizedPlacement(
                    assignments={
                        s.name: loc for s, loc in zip(structures, assignment)
                    },
                    metric=metric,
                    hbm_bytes=hbm_bytes,
                    evaluated=evaluated,
                )
        assert best is not None
        return OptimizedPlacement(
            assignments=best.assignments,
            metric=best.metric,
            hbm_bytes=best.hbm_bytes,
            evaluated=evaluated,
        )
