"""Sensitivity analysis: do the paper's conclusions survive calibration
uncertainty?

The reproduction calibrates device characteristics to the paper's
measurements.  Those measurements carry error, and other machines differ;
Section VI claims the conclusions "can be generalized to other
heterogeneous memory systems with similar characteristics".  This module
tests that claim mechanically: perturb the calibrated device parameters,
re-run the key comparisons, and report which conclusions (if any) flip.

A *conclusion* is a named boolean over simulated results, e.g.
"HBM beats DRAM for MiniFE at 64 threads".  The default set covers the
paper's six contributions.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Callable, Sequence
from dataclasses import dataclass

from repro.core.configs import ConfigName
from repro.machine.topology import KNLMachine
from repro.memory.device import MemoryDevice
from repro.memory.dram import ddr4_archer
from repro.memory.mcdram import mcdram_archer
from repro.memory.modes import MCDRAMConfig, MemorySystem
from repro.engine.batch import ModelTables
from repro.engine.placement import Location, PlacementMix
from repro.util.validation import check_positive
from repro.workloads.base import Workload
from repro.workloads.gups import GUPS
from repro.workloads.minife import MiniFE
from repro.workloads.xsbench import XSBench


@dataclass(frozen=True)
class PerturbedDevices:
    """One perturbation of the calibrated device pair."""

    label: str
    dram: MemoryDevice
    mcdram: MemoryDevice


def scale_device(
    device: MemoryDevice,
    *,
    latency: float = 1.0,
    bandwidth: float = 1.0,
    random_cap: float = 1.0,
) -> MemoryDevice:
    """A copy of ``device`` with scaled characteristics."""
    check_positive("latency", latency)
    check_positive("bandwidth", bandwidth)
    check_positive("random_cap", random_cap)
    return dataclasses.replace(
        device,
        idle_latency_ns=device.idle_latency_ns * latency,
        peak_bandwidth=device.peak_bandwidth * bandwidth,
        random_bandwidth_cap=device.random_bandwidth_cap * random_cap,
    )


def default_perturbations(spread: float = 0.2) -> list[PerturbedDevices]:
    """Baseline plus one-factor-at-a-time ±spread on each characteristic."""
    if not 0 < spread < 1:
        raise ValueError(f"spread must be in (0, 1), got {spread}")
    dram, mcdram = ddr4_archer(), mcdram_archer()
    out = [PerturbedDevices("baseline", dram, mcdram)]
    for sign, tag in ((1 + spread, f"+{spread:.0%}"), (1 - spread, f"-{spread:.0%}")):
        out.append(
            PerturbedDevices(
                f"hbm-latency {tag}", dram, scale_device(mcdram, latency=sign)
            )
        )
        out.append(
            PerturbedDevices(
                f"hbm-bandwidth {tag}", dram, scale_device(mcdram, bandwidth=sign)
            )
        )
        out.append(
            PerturbedDevices(
                f"dram-bandwidth {tag}", scale_device(dram, bandwidth=sign), mcdram
            )
        )
        out.append(
            PerturbedDevices(
                f"random-caps {tag}",
                scale_device(dram, random_cap=sign),
                scale_device(mcdram, random_cap=sign),
            )
        )
    return out


@dataclass(frozen=True)
class ConclusionCheck:
    """One of the paper's conclusions as a testable predicate.

    ``predicate`` receives a metric function
    ``metric(workload, config_name, threads) -> float | None`` and
    returns True when the conclusion holds.
    """

    name: str
    predicate: Callable[[Callable[[Workload, ConfigName, int], float | None]], bool]


def _safe_ratio(a: float | None, b: float | None) -> float:
    if a is None or b is None or b == 0:
        return float("nan")
    return a / b


def paper_conclusions() -> list[ConclusionCheck]:
    """The headline conclusions of Section VI."""
    minife = MiniFE.from_matrix_gb(7.2)
    gups = GUPS.from_table_gb(8.0)
    xsbench = XSBench.from_problem_gb(11.3)
    return [
        ConclusionCheck(
            "sequential-prefers-hbm",
            lambda m: _safe_ratio(
                m(minife, ConfigName.HBM, 64), m(minife, ConfigName.DRAM, 64)
            )
            > 1.5,
        ),
        ConclusionCheck(
            "random-prefers-dram",
            lambda m: _safe_ratio(
                m(gups, ConfigName.DRAM, 64), m(gups, ConfigName.HBM, 64)
            )
            >= 1.0,
        ),
        ConclusionCheck(
            "cache-mode-between",
            lambda m: (
                (m(minife, ConfigName.DRAM, 64) or 0)
                < (m(minife, ConfigName.CACHE, 64) or 0)
                < (m(minife, ConfigName.HBM, 64) or float("inf"))
            ),
        ),
        ConclusionCheck(
            "smt-rescues-hbm-for-xsbench",
            lambda m: _safe_ratio(
                m(xsbench, ConfigName.HBM, 256), m(xsbench, ConfigName.DRAM, 256)
            )
            > 1.0,
        ),
        ConclusionCheck(
            "dram-best-for-xsbench-at-1tpc",
            lambda m: _safe_ratio(
                m(xsbench, ConfigName.DRAM, 64), m(xsbench, ConfigName.HBM, 64)
            )
            > 1.0,
        ),
    ]


@dataclass(frozen=True)
class SensitivityResult:
    """Outcome of one (perturbation, conclusion) cell."""

    perturbation: str
    conclusion: str
    holds: bool


class SensitivityAnalysis:
    """Run the conclusion checks under perturbed device parameters."""

    def __init__(self, machine: KNLMachine | None = None) -> None:
        from repro.machine.presets import knl7210

        self.machine = machine if machine is not None else knl7210()

    def _metric_function(
        self, devices: PerturbedDevices
    ) -> Callable[[Workload, ConfigName, int], float | None]:
        flat = MemorySystem(
            MCDRAMConfig.flat(), dram=devices.dram, mcdram=devices.mcdram
        )
        cache = MemorySystem(
            MCDRAMConfig.cache(), dram=devices.dram, mcdram=devices.mcdram
        )
        # Hoisted columnar tables instead of per-call PerformanceModel
        # plumbing: device latencies, random caps, cache survival and TLB
        # tiers are memoized across every metric call of a perturbation
        # (conclusions repeatedly probe the same small point set), and
        # evaluated points are memoized outright.  evaluate_batch is
        # bit-identical to PerformanceModel.evaluate, so the predicates
        # see exactly the values the per-point loop produced.
        flat_tables = ModelTables(self.machine, flat)
        cache_tables = ModelTables(self.machine, cache)
        memo: dict[tuple[int, ConfigName, int], float | None] = {}

        def metric(
            workload: Workload, config: ConfigName, threads: int
        ) -> float | None:
            key = (id(workload), config, threads)
            if key in memo:
                return memo[key]
            if config is ConfigName.HBM:
                if workload.footprint_bytes > devices.mcdram.capacity_bytes:
                    memo[key] = None
                    return None
                tables, location = flat_tables, Location.HBM
            elif config is ConfigName.DRAM:
                tables, location = flat_tables, Location.DRAM
            else:
                tables, location = cache_tables, Location.DRAM_CACHED
            run = tables.evaluate_batch(
                [(workload.profile(), PlacementMix.pure(location), threads)]
            )[0]
            value = workload.metric(run)
            memo[key] = value
            return value

        return metric

    def run(
        self,
        perturbations: Sequence[PerturbedDevices] | None = None,
        conclusions: Sequence[ConclusionCheck] | None = None,
        *,
        jobs: int = 1,
    ) -> list[SensitivityResult]:
        """Evaluate every (perturbation, conclusion) cell.

        ``jobs > 1`` spreads perturbations over a thread pool (the
        predicates are closures, so a process pool cannot be used);
        result order is perturbation-major regardless of ``jobs``.
        """
        perturbations = (
            list(perturbations)
            if perturbations is not None
            else default_perturbations()
        )
        conclusion_list = (
            list(conclusions) if conclusions is not None else paper_conclusions()
        )

        def evaluate(devices: PerturbedDevices) -> list[SensitivityResult]:
            metric = self._metric_function(devices)
            return [
                SensitivityResult(
                    perturbation=devices.label,
                    conclusion=check.name,
                    holds=bool(check.predicate(metric)),
                )
                for check in conclusion_list
            ]

        from repro.core.executor import ordered_map

        chunks = ordered_map(evaluate, perturbations, jobs=jobs)
        return [result for chunk in chunks for result in chunk]

    @staticmethod
    def flipped(results: list[SensitivityResult]) -> list[SensitivityResult]:
        """Conclusions that fail under some perturbation."""
        return [r for r in results if not r.holds]
