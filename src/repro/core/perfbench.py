"""Scalar-vs-batch engine throughput measurement (``BENCH_engine.json``).

The batch engine's reason to exist is throughput, so its speedup over the
per-point scalar path is part of the repo's checked surface: this module
builds a dense, realistic query grid (size x workload x configuration x
threads — the shape every figure sweeps), times the scalar
:class:`~repro.core.runner.ExperimentRunner` loop against
:class:`~repro.engine.batch.BatchEvaluator`, verifies the two agree
bit-for-bit on a sample, and serializes the numbers to
``BENCH_engine.json`` at the repo root — the perf trajectory file that
``make bench`` regenerates and CI guards with a conservative floor.

Three batch timings are reported (the caching hierarchy of
docs/ENGINE.md, measured tier by tier):

* **cold** — first evaluation of a fresh evaluator with an *empty*
  persistent table cache: pays vectorized table construction for the
  whole grid and populates the cache;
* **warm** — first evaluation of a *new* evaluator against the populated
  table cache (the restarted-process case): tables load from disk
  instead of being rebuilt.  The acceptance bar keeps this within 2x of
  hot;
* **hot** — steady state (in-process memo), the number that matters for
  a long-lived service answering many grids against the same machine
  model.

The bit-identity cross-check runs against the *warm* records, so the
recorded numbers certify that cache-loaded tables answer with the scalar
engine's exact bits.  The event simulator's optimized inner loop is
measured against its retained reference implementation in the same file.
"""

from __future__ import annotations

import json
import pathlib
import tempfile
import time
from dataclasses import dataclass

from repro.core.configs import ConfigName, SystemConfig, make_config
from repro.core.runner import ExperimentRunner
from repro.engine.batch import BatchEvaluator
from repro.engine.eventsim import MemoryEventSimulator
from repro.machine.topology import KNLMachine
from repro.memory.dram import ddr4_archer
from repro.workloads.base import Workload
from repro.workloads.registry import FROM_GB

#: Default grid shape: 240 sizes x 2 workloads x 3 configs x 7 thread
#: counts = 10 080 points (the acceptance grid on KNL).
_WORKLOADS = ("minife", "gups")
_THREADS = (1, 2, 4, 16, 64, 128, 256)
_POINTS_PER_SIZE = len(_WORKLOADS) * 3 * len(_THREADS)


def _thread_ladder(machine: "KNLMachine | None") -> tuple[int, ...]:
    """The 1..256 ladder clamped to a machine's thread capacity.

    The KNL ladder tops out at 256 (64 cores x SMT4); machines with
    fewer hardware threads keep the ladder's shape but cap it, with the
    machine's own maximum as the final rung so saturation behaviour is
    still exercised.
    """
    if machine is None:
        return _THREADS
    ladder = [t for t in _THREADS if t <= machine.max_threads]
    if not ladder or ladder[-1] != machine.max_threads:
        ladder.append(machine.max_threads)
    return tuple(ladder)


@dataclass(frozen=True)
class EngineBenchResult:
    """One measurement of the engine perf trajectory."""

    grid_points: int
    scalar_sample_points: int
    scalar_seconds: float
    batch_cold_seconds: float
    batch_warm_seconds: float
    batch_hot_seconds: float
    identity_checked_points: int
    eventsim_requests: int
    eventsim_reference_seconds: float
    eventsim_optimized_seconds: float
    eventsim_vector_requests: int
    eventsim_vector_reference_seconds: float
    eventsim_vector_optimized_seconds: float

    @property
    def scalar_us_per_point(self) -> float:
        return self.scalar_seconds / self.scalar_sample_points * 1e6

    @property
    def batch_hot_us_per_point(self) -> float:
        return self.batch_hot_seconds / self.grid_points * 1e6

    @property
    def speedup_hot(self) -> float:
        """Steady-state batch speedup over the scalar per-point loop."""
        return self.scalar_us_per_point / self.batch_hot_us_per_point

    @property
    def speedup_cold(self) -> float:
        """Batch speedup on a fresh evaluator with no persisted tables."""
        return self.scalar_us_per_point / (
            self.batch_cold_seconds / self.grid_points * 1e6
        )

    @property
    def speedup_warm(self) -> float:
        """Batch speedup on a fresh evaluator warming from the table cache."""
        return self.scalar_us_per_point / (
            self.batch_warm_seconds / self.grid_points * 1e6
        )

    @property
    def eventsim_speedup(self) -> float:
        return self.eventsim_reference_seconds / self.eventsim_optimized_seconds

    @property
    def eventsim_vector_speedup(self) -> float:
        """Speedup at the high-occupancy point served by the batched core."""
        return (
            self.eventsim_vector_reference_seconds
            / self.eventsim_vector_optimized_seconds
        )

    def as_dict(self) -> dict:
        return {
            "grid_points": self.grid_points,
            "scalar": {
                "sample_points": self.scalar_sample_points,
                "seconds": self.scalar_seconds,
                "us_per_point": self.scalar_us_per_point,
                "points_per_s": 1e6 / self.scalar_us_per_point,
            },
            "batch": {
                "cold_seconds": self.batch_cold_seconds,
                "warm_seconds": self.batch_warm_seconds,
                "hot_seconds": self.batch_hot_seconds,
                "hot_us_per_point": self.batch_hot_us_per_point,
                "hot_points_per_s": 1e6 / self.batch_hot_us_per_point,
                "speedup_cold": self.speedup_cold,
                "speedup_warm": self.speedup_warm,
                "speedup_hot": self.speedup_hot,
                "warm_uses_table_cache": True,
            },
            "identity_checked_points": self.identity_checked_points,
            "eventsim": {
                "requests": self.eventsim_requests,
                "reference_seconds": self.eventsim_reference_seconds,
                "optimized_seconds": self.eventsim_optimized_seconds,
                "speedup": self.eventsim_speedup,
            },
            "eventsim_vector": {
                "requests": self.eventsim_vector_requests,
                "reference_seconds": self.eventsim_vector_reference_seconds,
                "optimized_seconds": self.eventsim_vector_optimized_seconds,
                "speedup": self.eventsim_vector_speedup,
            },
        }

    def describe(self) -> str:
        return (
            f"{self.grid_points} points: scalar "
            f"{self.scalar_us_per_point:.0f} us/pt, batch hot "
            f"{self.batch_hot_us_per_point:.2f} us/pt -> "
            f"{self.speedup_hot:.1f}x (warm {self.speedup_warm:.1f}x with "
            f"table cache, cold {self.speedup_cold:.1f}x); "
            f"eventsim {self.eventsim_speedup:.1f}x over reference "
            f"({self.eventsim_vector_speedup:.1f}x at the high-occupancy "
            f"vector point)"
        )


def build_grid(
    points: int = 10_080,
    *,
    machine: "KNLMachine | None" = None,
) -> list[tuple[Workload, SystemConfig, int]]:
    """A dense sweep grid of at least ``points`` cells.

    One workload object per (name, size) — the shape real sweeps produce
    (``factory(size)`` once per size) — crossed with the paper trio and a
    1..256 thread ladder (clamped to ``machine``'s thread capacity when
    one is given).  Sizes straddle the near tier's capacity so the grid
    contains infeasible HBM cells, like real sweeps do.
    """
    if points < 1:
        raise ValueError(f"points must be >= 1, got {points}")
    threads = _thread_ladder(machine)
    points_per_size = len(_WORKLOADS) * 3 * len(threads)
    num_sizes = -(-points // points_per_size)
    sizes = [0.5 + 0.15 * i for i in range(num_sizes)]
    trio = [make_config(c) for c in ConfigName.paper_trio()]
    workloads = [FROM_GB[name](s) for s in sizes for name in _WORKLOADS]
    return [
        (workload, config, num_threads)
        for workload in workloads
        for config in trio
        for num_threads in threads
    ]


#: The two measured event-simulator operating points.  The first is the
#: historical 512-in-flight point (below the batched core's dispatch
#: threshold, so it times the scalar core); the second saturates the
#: channels with 2048 outstanding requests and is served by the
#: vectorized batched core.
_EVENTSIM_POINT = dict(threads=64, mlp=8.0, requests_per_thread=200, seed=1)
_EVENTSIM_VECTOR_POINT = dict(
    threads=128, mlp=16.0, requests_per_thread=200, seed=1
)


def _bench_eventsim(params: dict, repeats: int = 3) -> tuple[int, float, float]:
    """Time the optimized event loop against the retained reference.

    Best-of-``repeats`` per side: the runs are deterministic (same seed,
    same bits every time), so the minimum is the measurement least
    disturbed by scheduler noise.  Every repeat re-verifies equality.
    """
    simulator = MemoryEventSimulator(ddr4_archer(), sequential=False)
    requests = params["threads"] * params["requests_per_thread"]
    reference_s = optimized_s = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        reference = simulator._simulate_reference(**params)
        reference_s = min(reference_s, time.perf_counter() - start)
        start = time.perf_counter()
        optimized = simulator._simulate(**params)
        optimized_s = min(optimized_s, time.perf_counter() - start)
        if reference != optimized:
            raise AssertionError(
                "optimized event loop diverged from reference: "
                f"{optimized} != {reference}"
            )
    return requests, reference_s, optimized_s


def measure_engine(
    points: int = 10_080,
    *,
    scalar_sample: int = 1_000,
    identity_sample: int = 100,
    machine: "KNLMachine | None" = None,
) -> EngineBenchResult:
    """Time scalar vs batch on a fresh grid and cross-check identity.

    The scalar loop is timed over the grid's first ``scalar_sample``
    cells (timing all 10k+ takes several scalar seconds for no extra
    information — throughput is per-point).  The batch engine then walks
    the caching hierarchy: a fresh evaluator with an empty persistent
    table cache evaluates the whole grid (**cold**, populating the
    cache), a second fresh evaluator evaluates it against the populated
    cache (**warm** — the restarted-process case), and that evaluator
    runs once more memoized (**hot**).  The first ``identity_sample``
    records of the *warm* pass must compare equal to the scalar records,
    so the recorded speedups are for bit-identical, cache-loaded output.
    ``machine`` defaults to the KNL 7210 testbed; any registry machine
    works — the grid's thread ladder adapts to its capacity.
    """
    from repro.engine.table_cache import TableCache

    grid = build_grid(points, machine=machine)
    runner = ExperimentRunner(machine)
    sample = grid[: min(scalar_sample, len(grid))]
    start = time.perf_counter()
    scalar_records = [
        runner.run(workload, config, threads)
        for workload, config, threads in sample
    ]
    scalar_seconds = time.perf_counter() - start

    with tempfile.TemporaryDirectory(prefix="repro-tables-") as tables_dir:
        cold_evaluator = BatchEvaluator(
            runner.machine, table_cache=TableCache(tables_dir)
        )
        start = time.perf_counter()
        cold_evaluator.evaluate(grid)
        batch_cold_seconds = time.perf_counter() - start

        evaluator = BatchEvaluator(
            runner.machine, table_cache=TableCache(tables_dir)
        )
        start = time.perf_counter()
        result = evaluator.evaluate(grid)
        batch_warm_seconds = time.perf_counter() - start
        start = time.perf_counter()
        evaluator.evaluate(grid)
        batch_hot_seconds = time.perf_counter() - start

    checked = min(identity_sample, len(sample))
    for i in range(checked):
        if result.record(i) != scalar_records[i]:
            raise AssertionError(
                f"batch/scalar mismatch at grid point {i}: "
                f"{result.record(i)} != {scalar_records[i]}"
            )

    requests, reference_s, optimized_s = _bench_eventsim(_EVENTSIM_POINT)
    vec_requests, vec_reference_s, vec_optimized_s = _bench_eventsim(
        _EVENTSIM_VECTOR_POINT
    )
    return EngineBenchResult(
        grid_points=len(grid),
        scalar_sample_points=len(sample),
        scalar_seconds=scalar_seconds,
        batch_cold_seconds=batch_cold_seconds,
        batch_warm_seconds=batch_warm_seconds,
        batch_hot_seconds=batch_hot_seconds,
        identity_checked_points=checked,
        eventsim_requests=requests,
        eventsim_reference_seconds=reference_s,
        eventsim_optimized_seconds=optimized_s,
        eventsim_vector_requests=vec_requests,
        eventsim_vector_reference_seconds=vec_reference_s,
        eventsim_vector_optimized_seconds=vec_optimized_s,
    )


#: Recalibration record for the 2026-08 scalar hot-path overhaul.  The
#: scalar per-point baseline dropped ~12x (closed-form mesh coherence
#: timing, memoized machine/placement/profile/hit-rate chains), which
#: *compresses* every batch-over-scalar ratio: the batch engine did not
#: get slower — the yardstick got faster.  The note rides along in
#: ``BENCH_engine.json`` so the trajectory stays comparable across the
#: break; regenerations preserve any note already present in the file.
RECALIBRATION_NOTE = {
    "date": "2026-08-08",
    "reason": (
        "scalar hot path overhauled (closed-form mesh hop distance, "
        "memoized machine properties, thread placements, numactl parses, "
        "workload profiles and MCDRAM hit rates); batch speedup ratios "
        "compress because the scalar denominator improved, not because "
        "the batch engine regressed"
    ),
    "previous_baseline": {
        "scalar_us_per_point": 690.33,
        "speedup_cold": 67.9,
        "speedup_warm": 128.6,
        "speedup_hot": 156.6,
        "eventsim_speedup": 4.238,
    },
}


def _history_entry(result: EngineBenchResult) -> dict:
    """Compact trajectory row appended to the ``history`` list."""
    return {
        "at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "scalar_us_per_point": round(result.scalar_us_per_point, 3),
        "batch_hot_us_per_point": round(result.batch_hot_us_per_point, 4),
        "speedup_cold": round(result.speedup_cold, 2),
        "speedup_warm": round(result.speedup_warm, 2),
        "speedup_hot": round(result.speedup_hot, 2),
        "eventsim_speedup": round(result.eventsim_speedup, 2),
        "eventsim_vector_speedup": round(result.eventsim_vector_speedup, 2),
    }


def write_bench_json(
    result: EngineBenchResult,
    path: "str | pathlib.Path" = "BENCH_engine.json",
) -> pathlib.Path:
    """Serialize one measurement to the perf-trajectory file.

    The headline numbers are replaced each run, but two keys accumulate
    across regenerations instead of being overwritten: ``history`` (one
    compact timestamped row per ``make bench``) and ``recalibration``
    (the note explaining the 2026-08 scalar-baseline break, carried over
    from the existing file when present).
    """
    out = pathlib.Path(path)
    history: list = []
    recalibration = RECALIBRATION_NOTE
    if out.exists():
        try:
            previous = json.loads(out.read_text())
        except (OSError, ValueError):
            previous = {}
        carried = previous.get("history")
        if isinstance(carried, list):
            history = carried
        noted = previous.get("recalibration")
        if isinstance(noted, dict):
            recalibration = noted
    history.append(_history_entry(result))
    payload = result.as_dict()
    payload["recalibration"] = recalibration
    payload["history"] = history
    out.write_text(json.dumps(payload, indent=2) + "\n")
    return out
