"""The experiment memory configurations (Section III-C).

The paper evaluates exactly three:

* **DRAM** — MCDRAM in flat mode, ``numactl --membind=0`` (all data in
  DDR; the baseline),
* **HBM** — MCDRAM in flat mode, ``numactl --membind=1`` (all data in
  MCDRAM; fails when the problem exceeds 16 GB),
* **CACHE** — MCDRAM in cache mode, ``numactl --membind=0`` "for
  consistency even though there is only one NUMA domain available".

Two more configurations support the ablation studies:

* **HYBRID** — half cache / half flat node, data bound to the flat HBM
  partition with DDR overflow,
* **INTERLEAVE** — flat mode, pages interleaved over both nodes
  (Section IV-C's suggestion for problems larger than either memory).
"""

from __future__ import annotations

import enum
import functools
from dataclasses import dataclass

from repro.memory.modes import MCDRAMConfig


class ConfigName(enum.Enum):
    """Named memory configurations."""

    DRAM = "DRAM"
    HBM = "HBM"
    CACHE = "Cache Mode"
    HYBRID = "Hybrid"
    INTERLEAVE = "Interleave"

    @classmethod
    def paper_trio(cls) -> tuple["ConfigName", "ConfigName", "ConfigName"]:
        """The three configurations every figure compares."""
        return (cls.DRAM, cls.HBM, cls.CACHE)


@dataclass(frozen=True)
class SystemConfig:
    """A named configuration: MCDRAM mode + numactl policy."""

    name: ConfigName
    mcdram: MCDRAMConfig
    numactl: str

    @property
    def label(self) -> str:
        return self.name.value

    def describe(self) -> str:
        mode = self.mcdram.mode.value
        return f"{self.label}: MCDRAM {mode} mode, numactl {self.numactl or '(none)'}"


@functools.lru_cache(maxsize=None)
def make_config(
    name: ConfigName, *, cache_associativity: int = 1, hybrid_cache_fraction: float = 0.5
) -> SystemConfig:
    """Build a named configuration (memoized — the result is frozen).

    ``cache_associativity`` parameterizes the cache-organization ablation;
    ``hybrid_cache_fraction`` the hybrid split (0.25/0.5/0.75).

    Machine safety: the global ``lru_cache`` is sound across machines
    because a :class:`SystemConfig` is machine-*independent* — it names a
    memory mode and a numactl policy, never capacities or bandwidths.
    Tier sizes bind later, when a machine's memory system is built from
    the config (:func:`repro.runtime.simos.memory_system_for`), so a
    config object cached under one machine is byte-for-byte the config
    any other machine uses.
    """
    if name is ConfigName.DRAM:
        return SystemConfig(name, MCDRAMConfig.flat(), "--membind=0")
    if name is ConfigName.HBM:
        return SystemConfig(name, MCDRAMConfig.flat(), "--membind=1")
    if name is ConfigName.CACHE:
        return SystemConfig(
            name,
            MCDRAMConfig.cache(cache_associativity=cache_associativity),
            "--membind=0",
        )
    if name is ConfigName.HYBRID:
        return SystemConfig(
            name,
            MCDRAMConfig.hybrid(
                hybrid_cache_fraction, cache_associativity=cache_associativity
            ),
            "--preferred=1",
        )
    if name is ConfigName.INTERLEAVE:
        return SystemConfig(name, MCDRAMConfig.flat(), "--interleave=0,1")
    raise AssertionError(f"unhandled config {name!r}")


def standard_configs() -> tuple[SystemConfig, SystemConfig, SystemConfig]:
    """The paper's three configurations, in figure order (DRAM, HBM, Cache)."""
    return tuple(make_config(n) for n in ConfigName.paper_trio())  # type: ignore[return-value]
