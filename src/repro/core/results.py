"""Result containers: series and tables over run records."""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

from repro.core.configs import ConfigName
from repro.core.metrics import improvement
from repro.core.runner import RunRecord
from repro.util.ascii_plot import AsciiChart
from repro.util.tables import TextTable


@dataclass(frozen=True)
class Series:
    """One plottable series: x values and (possibly missing) y values."""

    name: str
    xs: tuple[float, ...]
    ys: tuple[float | None, ...]

    def __post_init__(self) -> None:
        if len(self.xs) != len(self.ys):
            raise ValueError("xs and ys must have the same length")

    def defined(self) -> tuple[tuple[float, ...], tuple[float, ...]]:
        """(xs, ys) restricted to present points."""
        pairs = [(x, y) for x, y in zip(self.xs, self.ys) if y is not None]
        if not pairs:
            return (), ()
        xs, ys = zip(*pairs)
        return tuple(xs), tuple(ys)

    @property
    def max_y(self) -> float | None:
        _, ys = self.defined()
        return max(ys) if ys else None


class ResultSet:
    """Records from a sweep, indexable by (x, config)."""

    def __init__(
        self,
        records: Iterable[tuple[float, RunRecord]],
        *,
        x_label: str,
        title: str,
    ) -> None:
        self.records: list[tuple[float, RunRecord]] = list(records)
        if not self.records:
            raise ValueError("result set needs at least one record")
        self.x_label = x_label
        self.title = title

    # -- access -----------------------------------------------------------------
    @property
    def xs(self) -> list[float]:
        seen: list[float] = []
        for x, _ in self.records:
            if x not in seen:
                seen.append(x)
        return seen

    @property
    def configs(self) -> list[ConfigName]:
        seen: list[ConfigName] = []
        for _, rec in self.records:
            if rec.config not in seen:
                seen.append(rec.config)
        return seen

    def record(self, x: float, config: ConfigName) -> RunRecord | None:
        for rx, rec in self.records:
            if rx == x and rec.config is config:
                return rec
        return None

    def value(self, x: float, config: ConfigName) -> float | None:
        rec = self.record(x, config)
        return None if rec is None else rec.metric

    def series(self, config: ConfigName) -> Series:
        xs = self.xs
        return Series(
            name=config.value,
            xs=tuple(xs),
            ys=tuple(self.value(x, config) for x in xs),
        )

    def improvement_series(
        self, config: ConfigName, baseline: ConfigName
    ) -> Series:
        """The paper's black improvement lines (config vs baseline)."""
        xs = self.xs
        return Series(
            name=f"{config.value} / {baseline.value}",
            xs=tuple(xs),
            ys=tuple(
                improvement(self.value(x, config), self.value(x, baseline))
                for x in xs
            ),
        )

    # -- rendering ---------------------------------------------------------------
    def to_table(self, *, x_format: str = "{:g}") -> TextTable:
        configs = self.configs
        sample = self.records[0][1]
        table = TextTable(
            [self.x_label] + [c.value for c in configs],
            title=f"{self.title}  [{sample.metric_name}, {sample.metric_unit}]",
        )
        for x in self.xs:
            row: list[object] = [x_format.format(x)]
            for config in configs:
                value = self.value(x, config)
                row.append("-" if value is None else f"{value:.4g}")
            table.add_row(row)
        return table

    def to_chart(self, *, logx: bool = False, ylabel: str = "") -> AsciiChart:
        chart = AsciiChart(title=self.title, logx=logx, ylabel=ylabel,
                           xlabel=self.x_label)
        for config in self.configs:
            xs, ys = self.series(config).defined()
            if xs:
                chart.add_series(config.value, xs, ys)
        return chart

    def render(self, *, logx: bool = False) -> str:
        return self.to_table().render() + "\n\n" + self.to_chart(logx=logx).render()

    # -- export -----------------------------------------------------------------
    def to_csv(self) -> str:
        """CSV with one row per x value, one column per configuration.

        Missing measurements render as empty cells, the conventional CSV
        encoding for absent data.
        """
        import csv
        import io

        buffer = io.StringIO()
        writer = csv.writer(buffer)
        configs = self.configs
        writer.writerow([self.x_label] + [c.value for c in configs])
        for x in self.xs:
            row: list[object] = [x]
            for config in configs:
                value = self.value(x, config)
                row.append("" if value is None else repr(value))
            writer.writerow(row)
        return buffer.getvalue()

    def to_records(self) -> list[dict[str, object]]:
        """JSON-ready list of per-measurement dicts (including failures)."""
        out: list[dict[str, object]] = []
        for x, record in self.records:
            out.append(
                {
                    "x": x,
                    "x_label": self.x_label,
                    "workload": record.workload,
                    "config": record.config.value,
                    "threads": record.num_threads,
                    "metric": record.metric,
                    "metric_name": record.metric_name,
                    "metric_unit": record.metric_unit,
                    "infeasible_reason": record.infeasible_reason,
                }
            )
        return out
