"""Parameter sweeps: the two axes every figure varies.

* :func:`size_sweep` — problem size at fixed threads (Fig. 2, Fig. 4),
* :func:`thread_sweep` — OpenMP threads at fixed size (Fig. 5, Fig. 6).
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

from repro.core.configs import ConfigName, SystemConfig
from repro.core.results import ResultSet
from repro.core.runner import ExperimentRunner
from repro.workloads.base import Workload


def size_sweep(
    runner: ExperimentRunner,
    factory: Callable[[float], Workload],
    sizes_gb: Sequence[float],
    *,
    configs: Sequence[SystemConfig | ConfigName] | None = None,
    num_threads: int = 64,
    title: str = "size sweep",
    x_label: str = "Size (GB)",
) -> ResultSet:
    """Run ``factory(size)`` for every size under every configuration."""
    if not sizes_gb:
        raise ValueError("sizes_gb must be non-empty")
    config_list = list(configs) if configs is not None else list(ConfigName.paper_trio())
    records = []
    for size in sizes_gb:
        workload = factory(size)
        for config in config_list:
            records.append((float(size), runner.run(workload, config, num_threads)))
    return ResultSet(records, x_label=x_label, title=title)


def thread_sweep(
    runner: ExperimentRunner,
    workload: Workload,
    thread_counts: Sequence[int],
    *,
    configs: Sequence[SystemConfig | ConfigName] | None = None,
    title: str = "thread sweep",
    x_label: str = "No. of Threads",
) -> ResultSet:
    """Run the workload at each thread count under every configuration."""
    if not thread_counts:
        raise ValueError("thread_counts must be non-empty")
    config_list = list(configs) if configs is not None else list(ConfigName.paper_trio())
    records = []
    for threads in thread_counts:
        for config in config_list:
            records.append(
                (float(threads), runner.run(workload, config, int(threads)))
            )
    return ResultSet(records, x_label=x_label, title=title)
