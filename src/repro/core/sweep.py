"""Parameter sweeps: the two axes every figure varies.

* :func:`size_sweep` — problem size at fixed threads (Fig. 2, Fig. 4),
* :func:`thread_sweep` — OpenMP threads at fixed size (Fig. 5, Fig. 6).

Both accept either a plain :class:`ExperimentRunner` (executed serially,
the historical behaviour) or a :class:`~repro.core.executor.SweepExecutor`
(parallel strategies + the content-addressed run cache).  Record order is
identical either way: x-major, configuration-minor.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

from repro.checks.checker import check_sweep
from repro.core.configs import ConfigName, SystemConfig, make_config
from repro.core.executor import SweepCell, SweepExecutor, as_executor
from repro.core.results import ResultSet
from repro.core.runner import ExperimentRunner, RunRecord
from repro.workloads.base import Workload


def _check_sweep_batch(
    executor: SweepExecutor,
    cells: Sequence[SweepCell],
    records: Sequence[RunRecord],
    axis: str,
) -> None:
    """Evaluate the sweep-scope invariants when checking is active.

    Run-scope checks already happened cell by cell inside the executor's
    :class:`~repro.checks.checker.CheckingRunner` (cache misses only —
    cached records were audited when first computed); the cross-cell
    orderings need the whole batch, so they run here, after it.
    """
    checking = executor.checking
    if checking is None:
        return
    report = check_sweep(
        [
            (cell.workload, cell.config, cell.num_threads, record)
            for cell, record in zip(cells, records)
        ],
        machine=executor.machine,
        axis=axis,
    )
    checking.handle_report(report)


def resolve_configs(
    configs: Sequence[SystemConfig | ConfigName] | None,
) -> list[SystemConfig]:
    """Validate and resolve the sweep's configuration axis once.

    Names become full :class:`SystemConfig` objects up front (instead of
    per cell inside the runner), and duplicates — which would silently
    shadow each other inside a :class:`~repro.core.results.ResultSet` —
    are rejected.
    """
    entries = list(configs) if configs is not None else list(ConfigName.paper_trio())
    if not entries:
        raise ValueError("configs must be non-empty")
    resolved = [
        make_config(entry) if isinstance(entry, ConfigName) else entry
        for entry in entries
    ]
    seen: set[ConfigName] = set()
    for config in resolved:
        if config.name in seen:
            raise ValueError(
                f"duplicate configuration {config.name.value!r} in sweep"
            )
        seen.add(config.name)
    return resolved


def _check_axis(label: str, values: Sequence[float | int]) -> None:
    seen: set[float] = set()
    for value in values:
        point = float(value)
        if point in seen:
            raise ValueError(f"duplicate sweep point {label}={value!r}")
        seen.add(point)


def size_sweep(
    runner: ExperimentRunner | SweepExecutor,
    factory: Callable[[float], Workload],
    sizes_gb: Sequence[float],
    *,
    configs: Sequence[SystemConfig | ConfigName] | None = None,
    num_threads: int = 64,
    title: str = "size sweep",
    x_label: str = "Size (GB)",
) -> ResultSet:
    """Run ``factory(size)`` for every size under every configuration."""
    if not sizes_gb:
        raise ValueError("sizes_gb must be non-empty")
    _check_axis("size_gb", sizes_gb)
    config_list = resolve_configs(configs)
    executor = as_executor(runner)
    xs: list[float] = []
    cells: list[SweepCell] = []
    for size in sizes_gb:
        workload = factory(size)
        for config in config_list:
            xs.append(float(size))
            cells.append(SweepCell(workload, config, num_threads))
    records = executor.run_cells(cells)
    _check_sweep_batch(executor, cells, records, axis="size")
    return ResultSet(list(zip(xs, records)), x_label=x_label, title=title)


def thread_sweep(
    runner: ExperimentRunner | SweepExecutor,
    workload: Workload,
    thread_counts: Sequence[int],
    *,
    configs: Sequence[SystemConfig | ConfigName] | None = None,
    title: str = "thread sweep",
    x_label: str = "No. of Threads",
) -> ResultSet:
    """Run the workload at each thread count under every configuration."""
    if not thread_counts:
        raise ValueError("thread_counts must be non-empty")
    _check_axis("threads", thread_counts)
    config_list = resolve_configs(configs)
    executor = as_executor(runner)
    xs: list[float] = []
    cells: list[SweepCell] = []
    for threads in thread_counts:
        for config in config_list:
            xs.append(float(threads))
            cells.append(SweepCell(workload, config, int(threads)))
    records = executor.run_cells(cells)
    _check_sweep_batch(executor, cells, records, axis="threads")
    return ResultSet(list(zip(xs, records)), x_label=x_label, title=title)
