"""The paper's usage guidelines (Section VI), as data.

Contribution 6 of the paper is "a guideline for setting correct
expectation for performance improvement on systems with 3D-stacked
high-bandwidth memories".  Each :class:`Guideline` encodes one of those
rules; :func:`applicable_guidelines` selects the ones matching a
workload's characteristics so the advisor can explain its model-driven
recommendation in the paper's own terms.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.profilephase import AccessPattern
from repro.util.units import GiB
from repro.util.validation import check_positive


@dataclass(frozen=True)
class Guideline:
    """One recommendation rule."""

    rule_id: str
    when: str
    advice: str
    paper_basis: str

    def matches(
        self,
        pattern: AccessPattern,
        footprint_ratio: float,
        threads_per_core: int,
    ) -> bool:
        return _MATCHERS[self.rule_id](pattern, footprint_ratio, threads_per_core)


_SEQ = AccessPattern.SEQUENTIAL
_RAND = AccessPattern.RANDOM

_MATCHERS = {
    "seq-fits-hbm": lambda p, r, t: p is _SEQ and r <= 1.0,
    "seq-comparable": lambda p, r, t: p is _SEQ and 1.0 < r <= 1.5,
    "seq-oversized": lambda p, r, t: p is _SEQ and r > 1.5,
    "rand-single-thread": lambda p, r, t: p is _RAND and t == 1,
    "rand-multi-thread-fits": lambda p, r, t: p is _RAND and t >= 2 and r <= 1.0,
    "rand-oversized": lambda p, r, t: p is _RAND and r > 1.0,
    "use-hyperthreads-on-hbm": lambda p, r, t: t == 1 and r <= 1.0,
    "decompose-to-hbm": lambda p, r, t: r > 1.0,
}


GUIDELINES: tuple[Guideline, ...] = (
    Guideline(
        "seq-fits-hbm",
        "sequential access pattern, problem fits in HBM",
        "bind all data to the flat HBM node (numactl --membind=1); expect "
        "up to ~3x over DRAM-only, more with 2+ hardware threads/core",
        "Figs. 2, 4a, 4b; Section IV-B",
    ),
    Guideline(
        "seq-comparable",
        "sequential pattern, problem larger than HBM but within ~1.5x",
        "use cache mode; it significantly improves on DRAM in this range, "
        "though the gain shrinks as the footprint grows",
        "Fig. 2 (16-24 GB range); Section IV-C",
    ),
    Guideline(
        "seq-oversized",
        "sequential pattern, problem well beyond HBM capacity",
        "bind to DRAM: the direct-mapped MCDRAM cache's conflict misses "
        "can make cache mode slower than DRAM-only",
        "Fig. 2 (beyond ~24 GB); Section IV-A",
    ),
    Guideline(
        "rand-single-thread",
        "random access pattern at one hardware thread per core",
        "bind to DRAM: the workload is latency-bound and HBM's ~18% "
        "higher latency is a net loss",
        "Figs. 3, 4c-4e; Section IV-B",
    ),
    Guideline(
        "rand-multi-thread-fits",
        "random pattern, 2+ hardware threads/core, fits in HBM",
        "HBM becomes competitive and can win: multiple hardware threads "
        "hide latency and HBM sustains more concurrent requests",
        "Fig. 6d (XSBench 256 threads); Section IV-D",
    ),
    Guideline(
        "rand-oversized",
        "random pattern, problem beyond HBM capacity",
        "bind to DRAM; cache mode adds a tag-probe penalty on every miss "
        "and trails DRAM by ~1.3x on large problems",
        "Fig. 4d (Graph500 large graphs); Section IV-C",
    ),
    Guideline(
        "use-hyperthreads-on-hbm",
        "any pattern currently running one hardware thread per core",
        "try 2-3 hardware threads per core: one thread cannot saturate "
        "HBM bandwidth (1.27x more STREAM bandwidth at 2 threads/core)",
        "Fig. 5; Section IV-D",
    ),
    Guideline(
        "decompose-to-hbm",
        "scalable multi-node problem larger than one node's HBM",
        "decompose so each node's sub-problem is close to (but within) "
        "HBM capacity, then run HBM-bound",
        "Section IV-C (multi-node configuration advice)",
    ),
)


def applicable_guidelines(
    pattern: AccessPattern,
    footprint_bytes: int,
    threads_per_core: int,
    *,
    hbm_capacity_bytes: int = 16 * GiB,
) -> list[Guideline]:
    """Guidelines matching a workload situation, in GUIDELINES order."""
    if footprint_bytes < 0:
        raise ValueError("footprint must be non-negative")
    check_positive("threads_per_core", threads_per_core)
    check_positive("hbm_capacity_bytes", hbm_capacity_bytes)
    ratio = footprint_bytes / hbm_capacity_bytes
    return [
        g for g in GUIDELINES if g.matches(pattern, ratio, threads_per_core)
    ]
