"""Metric helpers shared by results and figures."""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.validation import check_positive


@dataclass(frozen=True)
class Metric:
    """A named metric with its display unit and scale.

    ``scale`` divides raw values for display (the paper plots CG MFLOPS as
    1e4 units, GUPS as 1e-2, TEPS as 1e8 ...).
    """

    name: str
    unit: str
    scale: float = 1.0

    def display(self, value: float | None) -> str:
        if value is None:
            return "-"
        return f"{value / self.scale:.3g}"


def improvement(value: float | None, baseline: float | None) -> float | None:
    """Speedup of ``value`` over ``baseline`` (the paper's black lines);
    None when either side is missing."""
    if value is None or baseline is None or baseline == 0:
        return None
    return value / baseline


def harmonic_mean(values: list[float]) -> float:
    """Harmonic mean (how Graph500 aggregates per-root TEPS)."""
    if not values:
        raise ValueError("harmonic mean of no values")
    for v in values:
        check_positive("value", v)
    return len(values) / sum(1.0 / v for v in values)
