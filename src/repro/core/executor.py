"""Parallel sweep execution with a content-addressed run cache.

Every figure in the paper is a sweep — problem size x threads x the three
memory configurations — and every sweep cell is a pure function of
(machine preset, workload parameters, configuration, thread count).  This
module exploits both facts:

* :class:`SweepExecutor` runs batches of cells through one of three
  strategies — ``serial`` (the historical in-order loop), ``threads``
  (a shared :class:`~concurrent.futures.ThreadPoolExecutor`) or
  ``processes`` (a :class:`~concurrent.futures.ProcessPoolExecutor`;
  cells are pickled to workers) — while always returning records in
  submission order, so results are byte-identical to the serial path;
* every cell is keyed by :func:`cache_key`, a SHA-256 over a canonical
  JSON encoding of the machine fingerprint, the workload identity and
  parameters, the resolved configuration and the thread count.  Records
  are memoized in an in-process LRU and, optionally, an on-disk JSON
  cache (one ``<key>.json`` file per record), so repeated sweeps — the
  common case across benchmarks, figures and examples — cost one model
  evaluation each.

The machine fingerprint is part of the key, so switching presets
(e.g. :func:`~repro.machine.presets.knl7210` to ``knl7250``) invalidates
the cache naturally: the old entries simply stop being addressed.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import threading
import time
from collections import OrderedDict
from collections.abc import Callable, Iterable, Mapping, Sequence
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, TypeVar

from repro.checks.checker import CheckingRunner, CheckMode, check_mode_from_env
from repro.core.configs import ConfigName, SystemConfig, make_config
from repro.core.runner import ExperimentRunner, RunRecord
from repro.engine.batch import BatchEvaluator
from repro.engine.table_cache import TableCache
from repro.engine.perfmodel import PhaseResult, RunResult
from repro.engine.placement import Location, PlacementMix
from repro.machine.topology import KNLMachine
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.obs.profiling import CellProfile, ProfileHook
from repro.workloads.base import Workload

T = TypeVar("T")
R = TypeVar("R")


class ExecutionStrategy(Enum):
    """How a batch of sweep cells is dispatched."""

    SERIAL = "serial"
    THREADS = "threads"
    PROCESSES = "processes"
    BATCH = "batch"

    @classmethod
    def parse(cls, value: "ExecutionStrategy | str") -> "ExecutionStrategy":
        if isinstance(value, cls):
            return value
        try:
            return cls(str(value).lower())
        except ValueError:
            options = ", ".join(s.value for s in cls)
            raise ValueError(
                f"unknown execution strategy {value!r}; expected one of {options}"
            ) from None


@dataclass(frozen=True)
class SweepCell:
    """One (workload, configuration, threads) point of a sweep."""

    workload: Workload
    config: SystemConfig
    num_threads: int


@dataclass(frozen=True)
class ExecutorStats:
    """Cumulative cache counters for one :class:`SweepExecutor`.

    Counters accumulate in the **submitting process** under every
    strategy: cache lookups happen before dispatch and results are
    memoized on return, so worker threads and worker processes never
    carry executor state.  ``--jobs N`` therefore reports one aggregate
    — identical for ``serial``, ``threads`` and ``processes`` on the
    same batch sequence (``tests/core/test_executor.py::
    TestStatsConsistencyAcrossStrategies``).  Counter updates are
    lock-protected, so concurrent ``run_cells`` calls through the
    ``threads`` strategy (e.g. the sensitivity analysis fanning out over
    one shared executor) never lose increments.
    """

    hits: int
    misses: int
    disk_hits: int
    executed: int
    #: Miss batches that went through the columnar evaluator, and the
    #: constituent cells they covered.  A coalesced batch of N cells
    #: counts N in ``batched_cells`` (and N in ``misses``/``executed``
    #: like any other miss), never 1 — per-cell accounting is identical
    #: across strategies, which is why these two stay out of equality
    #: comparisons (``compare=False``): the serial strategy is
    #: batch-eligible while multi-job thread/process pools are not.
    batches: int = field(default=0, compare=False)
    batched_cells: int = field(default=0, compare=False)
    #: Persistent-table-cache traffic (loads answered from disk, misses
    #: that rebuilt, snapshots written), populated only when a table
    #: cache is configured.  Excluded from equality for the same reason
    #: as the batch counters: only batch-eligible strategies touch the
    #: table cache.
    table_cache_hits: int = field(default=0, compare=False)
    table_cache_misses: int = field(default=0, compare=False)
    table_cache_stores: int = field(default=0, compare=False)

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served without a model evaluation."""
        return self.hits / self.lookups if self.lookups else 0.0

    def describe(self) -> str:
        return (
            f"{self.lookups} lookups: {self.hits} hits "
            f"({self.hit_rate:.1%}, {self.disk_hits} from disk), "
            f"{self.executed} model runs"
        )


# -- cache keys ---------------------------------------------------------------

# Fingerprints are memoized per machine *object*: presets are immutable
# and few, but peak_dp_gflops walks every core on every call, which is
# measurable when a serving layer keys thousands of queries per second.
# The strong reference in the value pins the id against reuse.
_MACHINE_FINGERPRINTS: dict[int, tuple[KNLMachine, dict[str, Any]]] = {}


def machine_fingerprint(machine: KNLMachine) -> dict[str, Any]:
    """The preset-identifying facts that influence a simulated run.

    Machines built from a registry spec additionally contribute their
    memory-tier and mode facts (:func:`repro.machine.registry.
    fingerprint_extras`) — except the KNL presets, whose tiers match the
    historical defaults and whose keys must stay byte-identical to every
    on-disk cache written before the registry existed.
    """
    entry = _MACHINE_FINGERPRINTS.get(id(machine))
    if entry is not None and entry[0] is machine:
        return entry[1]
    fingerprint = {
        "name": machine.name,
        "num_cores": machine.num_cores,
        "smt_per_core": machine.smt_per_core,
        "frequency_ghz": machine.frequency_ghz,
        "tile_l2_bytes": machine.tile_l2_bytes,
        "cluster_mode": machine.mesh.cluster_mode.value,
        "peak_dp_gflops": machine.peak_dp_gflops,
    }
    if machine.spec is not None:
        from repro.machine.registry import fingerprint_extras

        fingerprint.update(fingerprint_extras(machine.spec))
    _MACHINE_FINGERPRINTS[id(machine)] = (machine, fingerprint)
    return fingerprint


def config_fingerprint(config: SystemConfig) -> dict[str, Any]:
    """The configuration facts that influence a simulated run."""
    return {
        "name": config.name.value,
        "mode": config.mcdram.mode.value,
        "cache_fraction": config.mcdram.cache_fraction,
        "cache_associativity": config.mcdram.cache_associativity,
        "numactl": config.numactl,
    }


def cache_key(
    machine: KNLMachine,
    workload: Workload,
    config: SystemConfig,
    num_threads: int,
    *,
    check: str | None = None,
) -> str:
    """Deterministic content hash of one sweep cell.

    Two cells share a key exactly when the machine preset, the workload
    identity and parameters, the resolved configuration, the thread
    count and the check mode all agree.  ``check`` is the active
    invariant-checking mode (``"warn"``/``"raise"``) or ``None``; it is
    part of the key so a ``--check`` run never reuses a record that was
    produced — and cached, possibly on disk — without being audited.
    Unchecked keys are byte-identical to the historical format.
    """
    payload = {
        "machine": machine_fingerprint(machine),
        "workload": {"name": workload.spec.name, "params": workload.params()},
        "config": config_fingerprint(config),
        "num_threads": int(num_threads),
    }
    if check is not None:
        payload["check"] = str(check)
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


# -- record (de)serialization -------------------------------------------------

def record_to_json(record: RunRecord) -> dict[str, Any]:
    """A JSON-ready encoding of a :class:`RunRecord` (full fidelity)."""
    run = record.run_result
    run_json = None
    if run is not None:
        run_json = {
            "workload": run.workload,
            "placement": [
                [loc.value, frac] for loc, frac in run.placement.fractions
            ],
            "num_threads": run.num_threads,
            "phase_results": [
                {
                    "name": p.name,
                    "time_ns": p.time_ns,
                    "memory_time_ns": p.memory_time_ns,
                    "compute_time_ns": p.compute_time_ns,
                    "sync_factor": p.sync_factor,
                    "achieved_bandwidth": p.achieved_bandwidth,
                    "effective_latency_ns": p.effective_latency_ns,
                }
                for p in run.phase_results
            ],
        }
    return {
        "workload": record.workload,
        "workload_params": record.workload_params,
        "config": record.config.value,
        "num_threads": record.num_threads,
        "metric": record.metric,
        "metric_name": record.metric_name,
        "metric_unit": record.metric_unit,
        "infeasible_reason": record.infeasible_reason,
        "run_result": run_json,
    }


def record_from_json(data: Mapping[str, Any]) -> RunRecord:
    """Rebuild a :class:`RunRecord` from :func:`record_to_json` output."""
    run_json = data.get("run_result")
    run = None
    if run_json is not None:
        run = RunResult(
            workload=run_json["workload"],
            placement=PlacementMix(
                tuple(
                    (Location(loc), float(frac))
                    for loc, frac in run_json["placement"]
                )
            ),
            num_threads=int(run_json["num_threads"]),
            phase_results=tuple(
                PhaseResult(**phase) for phase in run_json["phase_results"]
            ),
        )
    return RunRecord(
        workload=data["workload"],
        workload_params=dict(data["workload_params"]),
        config=ConfigName(data["config"]),
        num_threads=int(data["num_threads"]),
        metric=data["metric"],
        metric_name=data["metric_name"],
        metric_unit=data["metric_unit"],
        infeasible_reason=data.get("infeasible_reason"),
        run_result=run,
    )


# -- the cache ----------------------------------------------------------------

class RunCache:
    """In-process LRU over run records, optionally backed by a JSON
    directory (one ``<key>.json`` file per record)."""

    def __init__(
        self,
        max_entries: int = 4096,
        cache_dir: str | os.PathLike[str] | None = None,
    ) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = max_entries
        self.cache_dir = (
            pathlib.Path(cache_dir) if cache_dir is not None else None
        )
        if self.cache_dir is not None:
            self.cache_dir.mkdir(parents=True, exist_ok=True)
        self._lru: OrderedDict[str, RunRecord] = OrderedDict()
        self._lock = threading.Lock()
        self.disk_hits = 0

    def __len__(self) -> int:
        return len(self._lru)

    def _disk_path(self, key: str) -> pathlib.Path | None:
        return None if self.cache_dir is None else self.cache_dir / f"{key}.json"

    def get(self, key: str) -> RunRecord | None:
        with self._lock:
            record = self._lru.get(key)
            if record is not None:
                self._lru.move_to_end(key)
                return record
        path = self._disk_path(key)
        if path is None or not path.exists():
            return None
        try:
            record = record_from_json(json.loads(path.read_text()))
        except (ValueError, KeyError, TypeError):
            return None  # corrupt entry: treat as a miss, it will be rewritten
        with self._lock:
            self.disk_hits += 1
            self._store(key, record)
        return record

    def put(self, key: str, record: RunRecord) -> None:
        with self._lock:
            self._store(key, record)
        path = self._disk_path(key)
        if path is not None:
            tmp = path.with_suffix(".tmp")
            tmp.write_text(json.dumps(record_to_json(record), sort_keys=True))
            tmp.replace(path)

    def _store(self, key: str, record: RunRecord) -> None:
        self._lru[key] = record
        self._lru.move_to_end(key)
        while len(self._lru) > self.max_entries:
            self._lru.popitem(last=False)


# -- worker entry point (must be module-level for process pickling) -----------

def _run_cell(runner: ExperimentRunner, cell: SweepCell) -> tuple[RunRecord, int]:
    """Evaluate one cell, returning the record and its wall time (ns).

    Under the ``threads`` strategy the ``executor.cell`` span runs on the
    worker thread, so traces show cells stacked per pool lane; under
    ``processes`` the worker has its own (normally disabled) observability
    state and only the submitting process's executor-level activity is
    traced.
    """
    start = time.perf_counter_ns()
    with obs_trace.span(
        "executor.cell",
        tags=(
            dict(
                cell.workload.obs_tags(),
                config=cell.config.name.value,
                threads=cell.num_threads,
            )
            if obs_trace.enabled()
            else None
        ),
    ):
        record = runner.run(cell.workload, cell.config, cell.num_threads)
    return record, time.perf_counter_ns() - start


# -- the executor -------------------------------------------------------------

class SweepExecutor:
    """Runs sweep cells through a strategy, memoizing by content hash.

    Duck-compatible with :class:`ExperimentRunner` for the read paths the
    figures use (``run`` and ``machine``), so any generator that accepts a
    runner accepts an executor.

    ``strategy`` defaults to ``serial`` when ``jobs == 1`` and
    ``threads`` otherwise.  Record order out of :meth:`run_cells` always
    equals submission order, whatever the strategy.
    """

    def __init__(
        self,
        runner: "ExperimentRunner | CheckingRunner | None" = None,
        *,
        jobs: int = 1,
        strategy: ExecutionStrategy | str | None = None,
        cache_size: int = 4096,
        cache_dir: str | os.PathLike[str] | None = None,
        table_cache_dir: str | os.PathLike[str] | None = None,
        profile_hooks: Sequence[ProfileHook] = (),
        check: "CheckMode | str | None" = None,
    ) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.runner = runner if runner is not None else ExperimentRunner()
        if check is not None and not isinstance(self.runner, CheckingRunner):
            self.runner = CheckingRunner(self.runner, mode=check)
        self.jobs = jobs
        if strategy is None:
            strategy = (
                ExecutionStrategy.SERIAL if jobs == 1 else ExecutionStrategy.THREADS
            )
        self.strategy = ExecutionStrategy.parse(strategy)
        self.cache = RunCache(cache_size, cache_dir)
        # Built ModelTables persist beside run results: with an on-disk
        # run cache at <cache_dir>, tables default to <cache_dir>/tables
        # (docs/ENGINE.md); pass table_cache_dir to split them.
        if table_cache_dir is None and cache_dir is not None:
            table_cache_dir = pathlib.Path(cache_dir) / "tables"
        self.table_cache = (
            TableCache(table_cache_dir) if table_cache_dir is not None else None
        )
        self.profile_hooks: list[ProfileHook] = list(profile_hooks)
        self._pool: Executor | None = None
        self._batch_evaluator: BatchEvaluator | None = None
        self._stats_lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._executed = 0
        self._batches = 0
        self._batched_cells = 0

    def add_profile_hook(self, hook: ProfileHook) -> None:
        """Register a per-cell profiling callback (:mod:`repro.obs.profiling`).

        After every batch the hook receives one
        :class:`~repro.obs.profiling.CellProfile` per submitted cell —
        cache-served and model-evaluated alike — in submission order.
        """
        self.profile_hooks.append(hook)

    # -- runner compatibility -------------------------------------------------
    @property
    def machine(self) -> KNLMachine:
        return self.runner.machine

    @property
    def checking(self) -> "CheckingRunner | None":
        """The active invariant checker, when one wraps the runner."""
        return self.runner if isinstance(self.runner, CheckingRunner) else None

    def run(
        self,
        workload: Workload,
        config: SystemConfig | ConfigName,
        num_threads: int = 64,
    ) -> RunRecord:
        """One cached cell (drop-in for :meth:`ExperimentRunner.run`)."""
        resolved = make_config(config) if isinstance(config, ConfigName) else config
        return self.run_cells([SweepCell(workload, resolved, num_threads)])[0]

    def run_configs(
        self,
        workload: Workload,
        configs: tuple[SystemConfig | ConfigName, ...] | None = None,
        num_threads: int = 64,
    ) -> list[RunRecord]:
        """Cached batch counterpart of :meth:`ExperimentRunner.run_configs`."""
        if configs is None:
            configs = ConfigName.paper_trio()
        cells = [
            SweepCell(
                workload,
                make_config(c) if isinstance(c, ConfigName) else c,
                num_threads,
            )
            for c in configs
        ]
        return self.run_cells(cells)

    # -- batch execution ------------------------------------------------------
    def run_cells(self, cells: Sequence[SweepCell]) -> list[RunRecord]:
        """Run a batch, returning records in submission order.

        Cells are first deduplicated by cache key (a duplicate inside the
        batch counts as a hit and is evaluated once), then the remaining
        misses are dispatched through the configured strategy.
        """
        results: list[RunRecord | None] = [None] * len(cells)
        cached_flags = [True] * len(cells)
        wall_ns = [0] * len(cells)
        indices_for: dict[str, list[int]] = {}
        missing: list[tuple[str, SweepCell]] = []
        batch_hits = batch_misses = 0
        with obs_trace.span(
            "executor.run_cells",
            tags=(
                {"cells": len(cells), "strategy": self.strategy.value}
                if obs_trace.enabled()
                else None
            ),
        ):
            for i, cell in enumerate(cells):
                key = self.cache_key(cell)
                cached = self.cache.get(key)
                if cached is not None:
                    batch_hits += 1
                    results[i] = cached
                    continue
                if key in indices_for:
                    batch_hits += 1
                else:
                    batch_misses += 1
                    indices_for[key] = []
                    missing.append((key, cell))
                indices_for[key].append(i)
            computed = self._execute([cell for _, cell in missing])
            for (key, _), (record, elapsed_ns) in zip(missing, computed):
                self.cache.put(key, record)
                first, *duplicates = indices_for[key]
                results[first] = record
                cached_flags[first] = False
                wall_ns[first] = elapsed_ns
                for i in duplicates:
                    results[i] = record
        with self._stats_lock:
            self._hits += batch_hits
            self._misses += batch_misses
            self._executed += len(computed)
        assert all(r is not None for r in results)
        if obs_metrics.enabled():
            obs_metrics.add("executor.cache_hits", batch_hits)
            obs_metrics.add("executor.cache_misses", batch_misses)
            obs_metrics.add("executor.cells_executed", len(computed))
            stats = self.stats()
            obs_metrics.set_gauge("executor.disk_hits", stats.disk_hits)
            obs_metrics.set_gauge("executor.hit_rate", stats.hit_rate)
        if self.profile_hooks or obs_metrics.enabled():
            self._emit_profiles(cells, results, cached_flags, wall_ns)
        return results  # type: ignore[return-value]

    def _emit_profiles(
        self,
        cells: Sequence[SweepCell],
        results: Sequence[RunRecord | None],
        cached_flags: Sequence[bool],
        wall_ns: Sequence[int],
    ) -> None:
        """Deliver one :class:`CellProfile` per cell, in submission order."""
        for cell, record, was_cached, elapsed_ns in zip(
            cells, results, cached_flags, wall_ns
        ):
            assert record is not None
            profile = CellProfile(
                workload=record.workload,
                tags=cell.workload.obs_tags(),
                config=record.config.value,
                num_threads=record.num_threads,
                cached=was_cached,
                wall_ns=elapsed_ns,
                metric=record.metric,
                infeasible_reason=record.infeasible_reason,
            )
            for hook in self.profile_hooks:
                hook(profile)
            obs_metrics.add(
                "executor.cells",
                1.0,
                {"source": "cache" if was_cached else "model"},
            )

    def cache_key(self, cell: SweepCell) -> str:
        checking = self.checking
        return cache_key(
            self.runner.machine,
            cell.workload,
            cell.config,
            cell.num_threads,
            check=checking.mode.value if checking is not None else None,
        )

    def _execute(
        self, cells: Sequence[SweepCell]
    ) -> list[tuple[RunRecord, int]]:
        if not cells:
            return []
        if self._batch_eligible(cells):
            return self._execute_batch(cells)
        if (
            self.strategy is ExecutionStrategy.SERIAL
            or self.jobs == 1
            or len(cells) == 1
        ):
            return [_run_cell(self.runner, cell) for cell in cells]
        pool = self._ensure_pool()
        futures = [pool.submit(_run_cell, self.runner, cell) for cell in cells]
        return [f.result() for f in futures]

    def _batch_eligible(self, cells: Sequence[SweepCell]) -> bool:
        """Whether a miss batch can go through the columnar evaluator.

        The batch path produces bit-identical records but aggregates
        observability (one ``batch.evaluate`` span instead of per-cell
        ``executor.cell`` / ``perfmodel.run`` spans), so it only engages
        where per-cell dispatch semantics are not part of the contract:
        a plain :class:`ExperimentRunner` (a :class:`CheckingRunner`
        needs the per-run hook), at least two cells, and a serial-ish
        dispatch (the ``threads``/``processes`` strategies with
        ``jobs > 1`` keep per-cell spans stacked on pool lanes).
        """
        return (
            self.checking is None
            and len(cells) >= 2
            and type(self.runner) is ExperimentRunner
            and (
                self.strategy in (ExecutionStrategy.SERIAL, ExecutionStrategy.BATCH)
                or self.jobs == 1
            )
        )

    def _execute_batch(
        self, cells: Sequence[SweepCell]
    ) -> list[tuple[RunRecord, int]]:
        if self._batch_evaluator is None:
            self._batch_evaluator = BatchEvaluator(
                self.runner.machine, table_cache=self.table_cache
            )
        start = time.perf_counter_ns()
        result = self._batch_evaluator.evaluate(
            [(c.workload, c.config, c.num_threads) for c in cells]
        )
        records = result.records()
        per_cell_ns = (time.perf_counter_ns() - start) // len(cells)
        with self._stats_lock:
            self._batches += 1
            self._batched_cells += len(cells)
        if obs_metrics.enabled():
            obs_metrics.add("executor.batches", 1.0)
            obs_metrics.add("executor.batched_cells", float(len(cells)))
        return [(record, per_cell_ns) for record in records]

    def _ensure_pool(self) -> Executor:
        if self._pool is None:
            if self.strategy is ExecutionStrategy.PROCESSES:
                self._pool = ProcessPoolExecutor(max_workers=self.jobs)
            else:
                self._pool = ThreadPoolExecutor(max_workers=self.jobs)
        return self._pool

    # -- bookkeeping ----------------------------------------------------------
    def stats(self) -> ExecutorStats:
        """One aggregate over everything this executor ran, whatever the
        strategy (see :class:`ExecutorStats` for the exact semantics)."""
        with self._stats_lock:
            tables = self.table_cache
            return ExecutorStats(
                hits=self._hits,
                misses=self._misses,
                disk_hits=self.cache.disk_hits,
                executed=self._executed,
                batches=self._batches,
                batched_cells=self._batched_cells,
                table_cache_hits=tables.hits if tables is not None else 0,
                table_cache_misses=tables.misses if tables is not None else 0,
                table_cache_stores=tables.stores if tables is not None else 0,
            )

    def reset_stats(self) -> None:
        with self._stats_lock:
            self._hits = self._misses = self._executed = 0
            self._batches = self._batched_cells = 0
            self.cache.disk_hits = 0
            if self.table_cache is not None:
                self.table_cache.hits = 0
                self.table_cache.misses = 0
                self.table_cache.stores = 0

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def __enter__(self) -> "SweepExecutor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def as_executor(
    runner: "ExperimentRunner | CheckingRunner | SweepExecutor",
) -> SweepExecutor:
    """Wrap a plain runner in a serial executor; pass executors through."""
    if isinstance(runner, SweepExecutor):
        return runner
    return SweepExecutor(runner)


def executor_from_env(
    runner: ExperimentRunner | None = None,
    env: Mapping[str, str] | None = None,
) -> "ExperimentRunner | SweepExecutor":
    """Wrap ``runner`` per the ``REPRO_JOBS`` / ``REPRO_EXECUTOR`` /
    ``REPRO_CACHE_DIR`` / ``REPRO_TABLE_CACHE`` / ``REPRO_CHECK``
    environment variables; unchanged when none are set.

    This is how the test and benchmark harnesses opt whole suites into
    parallel execution (e.g. ``make test-fast``) or invariant checking
    without touching call sites.
    """
    env = env if env is not None else os.environ
    jobs = env.get("REPRO_JOBS", "").strip()
    strategy = env.get("REPRO_EXECUTOR", "").strip()
    cache_dir = env.get("REPRO_CACHE_DIR", "").strip()
    table_cache_dir = env.get("REPRO_TABLE_CACHE", "").strip()
    check = check_mode_from_env(env)
    base = runner if runner is not None else ExperimentRunner()
    if not (jobs or strategy or cache_dir or table_cache_dir or check):
        return base
    return SweepExecutor(
        base,
        jobs=int(jobs) if jobs else 1,
        strategy=strategy or None,
        cache_dir=cache_dir or None,
        table_cache_dir=table_cache_dir or None,
        check=check,
    )


def ordered_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    *,
    jobs: int = 1,
) -> list[R]:
    """Apply ``fn`` over ``items`` preserving order, optionally in a
    thread pool (used by flows whose work units are closures and so
    cannot cross a process boundary, e.g. the sensitivity analysis)."""
    items = list(items)
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    if jobs == 1 or len(items) <= 1:
        return [fn(item) for item in items]
    with ThreadPoolExecutor(max_workers=jobs) as pool:
        return list(pool.map(fn, items))
