"""The paper's experimental methodology as a library.

This package is the reproduction's primary public surface: the three
memory configurations of Section III-C, the experiment runner that
executes workloads under them (handling capacity failures exactly like
the testbed), size/thread sweeps, result sets, and the Section-VI
placement advisor.

Typical use::

    from repro.core import ExperimentRunner, standard_configs
    from repro.workloads import MiniFE

    runner = ExperimentRunner()
    records = [
        runner.run(MiniFE.from_matrix_gb(7.2), config, num_threads=64)
        for config in standard_configs()
    ]
"""

from repro.core.configs import (
    ConfigName,
    SystemConfig,
    standard_configs,
    make_config,
)
from repro.core.runner import ExperimentRunner, RunRecord
from repro.core.executor import (
    ExecutionStrategy,
    ExecutorStats,
    RunCache,
    SweepCell,
    SweepExecutor,
    as_executor,
    cache_key,
    executor_from_env,
    ordered_map,
)
from repro.core.results import ResultSet, Series
from repro.core.sweep import resolve_configs, size_sweep, thread_sweep
from repro.core.metrics import Metric, improvement, harmonic_mean
from repro.core.advisor import PlacementAdvisor, Recommendation
from repro.core.decomposition import (
    NodeCount,
    decompose,
    hbm_knee,
    parallel_efficiency,
    sweep_node_counts,
)
from repro.core.guidelines import GUIDELINES, Guideline, applicable_guidelines
from repro.core.placement_optimizer import (
    OptimizedPlacement,
    PlacementOptimizer,
    Structure,
    structures_for,
)
from repro.core.sensitivity import (
    ConclusionCheck,
    SensitivityAnalysis,
    default_perturbations,
    paper_conclusions,
)

__all__ = [
    "ConfigName",
    "SystemConfig",
    "standard_configs",
    "make_config",
    "ExperimentRunner",
    "RunRecord",
    "ExecutionStrategy",
    "ExecutorStats",
    "RunCache",
    "SweepCell",
    "SweepExecutor",
    "as_executor",
    "cache_key",
    "executor_from_env",
    "ordered_map",
    "ResultSet",
    "Series",
    "resolve_configs",
    "size_sweep",
    "thread_sweep",
    "Metric",
    "improvement",
    "harmonic_mean",
    "PlacementAdvisor",
    "Recommendation",
    "NodeCount",
    "decompose",
    "hbm_knee",
    "parallel_efficiency",
    "sweep_node_counts",
    "GUIDELINES",
    "Guideline",
    "applicable_guidelines",
    "OptimizedPlacement",
    "PlacementOptimizer",
    "Structure",
    "structures_for",
    "ConclusionCheck",
    "SensitivityAnalysis",
    "default_perturbations",
    "paper_conclusions",
]
