# Developer entry points (documentation; everything is plain pytest/python).

# The package lives under src/ and is not installed in dev checkouts;
# every target needs it importable (tier-1 verify sets this itself, but
# bench/check/report/examples used to fail from a clean checkout).
PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH),)
export PYTHONPATH

.PHONY: install test test-fast bench bench-engine bench-serve bench-serve-shard bench-plan serve-shard serve-smoke plan-smoke warmup machine-zoo report examples docs-check check clean

install:
	pip install -e .

test: docs-check
	pytest tests/

# Lint the documentation: relative Markdown links must resolve and every
# CLI flag must be mentioned in README.md or docs/.
docs-check:
	python tools/check_docs.py

# Regenerate every exhibit under full invariant checking (repro.checks):
# run-, sweep- and exhibit-scope physics audits; non-zero exit on any
# violation.  See docs/TESTING.md for the invariant catalogue.
check:
	python -m repro check

# Tier-1 suite through the process-pool executor, plus a no-cacheprovider
# smoke job (catches accidental reliance on pytest's cache plugin).
test-fast:
	REPRO_JOBS=4 REPRO_EXECUTOR=processes pytest tests/ -x -q
	pytest tests/test_package.py tests/core/test_executor.py -q -p no:cacheprovider

bench:
	pytest benchmarks/ --benchmark-only

# Engine perf trajectory: scalar vs columnar batch across the caching
# hierarchy (cold/warm/hot); regenerates BENCH_engine.json at the repo
# root.  Run after changes to repro.engine.batch or the table cache
# (docs/ENGINE.md) and commit the refreshed file.
bench-engine:
	pytest benchmarks/bench_perf_engine.py --benchmark-only

# Serving-layer throughput: coalesced vs naive one-request-one-eval
# (regenerates BENCH_serve.json; see docs/SERVING.md).
bench-serve:
	python -m repro bench serve

# Sharded-deployment scaling curve: 1 -> 2 -> 4 process replicas under
# 1024-client closed-loop overload; merges a `sharded` section into
# BENCH_serve.json (goodput / p99 / retry curves + identity audit); see
# docs/SERVING.md, "The sharded benchmark".
bench-serve-shard:
	python -m repro bench serve --replicas 4

# Capacity-planner latency vs fleet size (10/100/1000 synthetic mix
# items; regenerates BENCH_plan.json; see docs/PLANNING.md).
bench-plan:
	python -m repro bench plan

# The sharding verification layer: hash-ring properties, router/cache
# behaviour, fault injection (kill/stall/slow/drain), loadgen error
# paths.  Includes quarantined timing-sensitive tests (marker `flaky`),
# which plain `make test` excludes.
serve-shard:
	pytest tests/serve/ -q -m "flaky or not flaky"

# CI smoke for the prediction service: 200 concurrent queries, p99
# bound, bit-identity and invariant audit (tools/serve_smoke.py).
serve-smoke:
	python tools/serve_smoke.py

# CI smoke for the capacity planner: prewarm the table cache, solve a
# 3-workload mix on knl7210 + xeonmax9480 through POST /v1/plan, assert
# feasibility, invariant compliance, CLI/service identity and zero
# table builds (tools/plan_smoke.py; docs/PLANNING.md).
plan-smoke:
	python tools/plan_smoke.py

# Deploy-time table prewarm: build the batch-engine model tables for
# every registered machine x the paper config trio into the shared
# persistent table cache (TABLE_CACHE, default .cache/tables), so fresh
# services and CLI runs load tables instead of rebuilding them
# (docs/ENGINE.md, "Prewarming").  `repro serve --prewarm` does the
# same inline at boot; tools/serve_shard_smoke.py exercises the same
# prewarm path before its replicas come up.
TABLE_CACHE ?= .cache/tables
warmup:
	python -m repro warmup --table-cache $(TABLE_CACHE)

# Cross-machine conformance: the full invariant catalogue on every
# registered machine, spec round-trip/rejection properties, KNL
# bit-identity vs the pre-registry presets, and machine-isolation
# regressions (docs/MACHINES.md).
machine-zoo:
	pytest tests/machine/ -q

report:
	python -m repro report

examples:
	@for ex in examples/*.py; do echo "== $$ex"; python $$ex > /dev/null && echo OK; done

clean:
	rm -rf benchmarks/output .pytest_cache .hypothesis
	find . -name __pycache__ -type d -exec rm -rf {} +
