# Developer entry points (documentation; everything is plain pytest/python).

.PHONY: install test bench report examples clean

install:
	pip install -e .

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

report:
	python -m repro report

examples:
	@for ex in examples/*.py; do echo "== $$ex"; python $$ex > /dev/null && echo OK; done

clean:
	rm -rf benchmarks/output .pytest_cache .hypothesis
	find . -name __pycache__ -type d -exec rm -rf {} +
