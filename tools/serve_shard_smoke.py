#!/usr/bin/env python
"""CI smoke for the sharded deployment (`repro.serve.shard`).

Boots a 3-replica process-backend deployment (the production shape:
real subprocesses, real TCP, one shared persistent table-cache
directory), drives it with a reduced closed-loop loadgen, kills one
replica mid-run, and fails (non-zero exit) unless:

* every surviving request completes or surfaces a typed error — no
  hangs, no malformed envelopes;
* at least 90% of offered requests succeed despite the kill (failover
  along the ring absorbs the lost replica's share);
* a sample of responses is bit-identical to direct scalar evaluation;
* `/healthz` reports the victim down and the survivors routable.

The shared table-cache directory is *prewarmed* before the replicas
boot — the same `repro.engine.warmup.prewarm_tables` path behind
`make warmup` and `repro serve --prewarm` — so the smoke also covers
the production deploy shape where every replica loads tables from disk
instead of building them (pass ``--no-prewarm`` for the cold shape).

Usage::

    PYTHONPATH=src python tools/serve_shard_smoke.py [--clients N]
        [--requests-per-client N] [--replicas N] [--no-prewarm]

The defaults (3 replicas, 32 clients x 4 requests) match the CI
serve-shard job — a correctness smoke, not a benchmark
(BENCH_serve.json's `sharded` section does that).
"""

from __future__ import annotations

import argparse
import sys
import tempfile
import threading
import time


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--replicas", type=int, default=3)
    parser.add_argument("--clients", type=int, default=32)
    parser.add_argument("--requests-per-client", type=int, default=4)
    parser.add_argument("--check-sample", type=int, default=16)
    parser.add_argument("--min-success-rate", type=float, default=0.90)
    parser.add_argument(
        "--no-prewarm",
        action="store_true",
        help="skip prewarming the shared table cache before boot",
    )
    args = parser.parse_args(argv)

    from repro.api import Predictor
    from repro.serve.client import ServeClient
    from repro.serve.loadgen import (
        _verify_identity,
        build_keyed_pool,
        run_shard_phase,
    )
    from repro.serve.service import ServiceConfig
    from repro.serve.shard import ShardConfig, ShardDeployment

    total = args.clients * args.requests_per_client
    oracle = Predictor()
    pool = build_keyed_pool(total, predictor=oracle)
    partitions: list[list[tuple]] = [[] for _ in range(args.clients)]
    for i, pair in enumerate(pool):
        partitions[i % args.clients].append(pair)

    failures: list[str] = []
    with tempfile.TemporaryDirectory(prefix="repro-shard-smoke-") as tables:
        if not args.no_prewarm:
            from repro.engine.warmup import prewarm_tables

            report = prewarm_tables(tables, machines=("knl7210",))
            for line in report.describe().splitlines():
                print(f"[serve-shard-smoke] {line}", file=sys.stderr)
        config = ShardConfig(
            replicas=args.replicas,
            backend="process",
            service=ServiceConfig(
                workers=1,
                max_queue=max(64, args.clients),
                cache_entries=2 * total,
                cache_ttl_s=None,
                table_cache_dir=tables,
            ),
            probe_interval_s=0.2,
            fail_after=1,
        )
        deployment = ShardDeployment(config)
        with deployment as (host, port):
            victim = deployment.replicas.routable_ids()[-1]

            def assassin() -> None:
                time.sleep(0.1)
                deployment.kill_replica(victim)

            killer = threading.Thread(target=assassin, name="assassin")
            killer.start()
            phase, responses = run_shard_phase(
                "smoke",
                deployment.replicas,
                partitions,
                request_deadline_s=60.0,
                timeout_s=30.0,
            )
            killer.join()

            if phase.success_rate < args.min_success_rate:
                failures.append(
                    f"success rate {phase.success_rate:.3f} < "
                    f"{args.min_success_rate} ({phase.succeeded}/"
                    f"{phase.offered} ok, {phase.failed} failed)"
                )
            # The probe loop discovers the death asynchronously; give it
            # a bounded window before calling the health view wrong.
            deadline = time.monotonic() + 10.0
            with ServeClient(host, port, timeout=30.0) as client:
                while True:
                    health = client.healthz()
                    states = {
                        rid: info["state"]
                        for rid, info in health[
                            "replica_set"
                        ]["replicas"].items()
                    }
                    if states.get(victim) != "up":
                        break
                    if time.monotonic() >= deadline:
                        failures.append(
                            f"killed replica {victim} still 'up' after 10s"
                        )
                        break
                    time.sleep(0.2)
            down = [r for r in states if r != victim and states[r] != "up"]
            if down:
                failures.append(f"surviving replicas not up: {down}")

            identity = _verify_identity(responses, args.check_sample)
            if not identity["checked"]:
                failures.append("identity audit sampled zero responses")
            if not identity["bit_identical"]:
                failures.append(
                    f"{identity['mismatches']}/{identity['checked']} "
                    "responses differ from direct scalar evaluation"
                )

    if failures:
        for failure in failures:
            print(f"[serve-shard-smoke] FAIL: {failure}", file=sys.stderr)
        return 1
    print(
        f"[serve-shard-smoke] OK: {phase.describe()}; replica {victim} "
        f"killed mid-run; {identity['checked']} responses audited "
        "bit-identical",
        file=sys.stderr,
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
