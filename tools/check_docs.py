#!/usr/bin/env python3
"""Documentation lint (`make docs-check`).

Two checks, both cheap and dependency-free:

1. **Relative links resolve** — every relative Markdown link target in
   README.md and docs/*.md must exist on disk (external http(s)/mailto
   links are skipped, anchors are stripped).
2. **CLI flags are documented** — every ``--flag`` exposed by
   ``repro.cli`` (top-level and subcommand parsers alike) must be
   mentioned somewhere in README.md or docs/*.md, so the CLI surface
   cannot drift ahead of the documentation.

Exit status 0 when clean, 1 with a per-problem report otherwise.  Run
directly (``python tools/check_docs.py``) or via the pytest wrapper
(``tests/test_docs_check.py``), which puts it in the tier-1 suite.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

# Inline Markdown links/images: [text](target) / ![alt](target).
_LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)\)")
_EXTERNAL_PREFIXES = ("http://", "https://", "mailto:")


def doc_files(repo_root: Path = REPO_ROOT) -> list[Path]:
    """The documentation corpus: README plus everything under docs/."""
    return [repo_root / "README.md", *sorted((repo_root / "docs").glob("*.md"))]


def iter_relative_links(text: str) -> list[str]:
    """Relative link targets in ``text`` (anchors stripped, extern skipped)."""
    targets = []
    for match in _LINK_RE.finditer(text):
        target = match.group(1)
        if target.startswith(_EXTERNAL_PREFIXES) or target.startswith("#"):
            continue
        targets.append(target.split("#", 1)[0])
    return targets


def check_links(repo_root: Path = REPO_ROOT) -> list[str]:
    """Relative link targets that do not exist, as error strings."""
    errors = []
    for doc in doc_files(repo_root):
        for target in iter_relative_links(doc.read_text()):
            resolved = (doc.parent / target).resolve()
            if not resolved.exists():
                errors.append(
                    f"{doc.relative_to(repo_root)}: broken link -> {target}"
                )
    return errors


def cli_flags() -> set[str]:
    """Every ``--flag`` of the CLI, including subcommand parsers."""
    sys.path.insert(0, str(REPO_ROOT / "src"))
    try:
        from repro.cli import _build_parser
    finally:
        sys.path.pop(0)

    flags: set[str] = set()

    def walk(parser: argparse.ArgumentParser) -> None:
        for action in parser._actions:
            flags.update(
                s for s in action.option_strings if s.startswith("--")
            )
            if isinstance(action, argparse._SubParsersAction):
                for subparser in action.choices.values():
                    walk(subparser)

    walk(_build_parser())
    flags.discard("--help")
    return flags


def check_flags(repo_root: Path = REPO_ROOT) -> list[str]:
    """CLI flags not mentioned anywhere in the docs corpus."""
    corpus = "\n".join(doc.read_text() for doc in doc_files(repo_root))
    return [
        f"CLI flag not documented in README.md or docs/: {flag}"
        for flag in sorted(cli_flags())
        if flag not in corpus
    ]


def main() -> int:
    errors = check_links() + check_flags()
    for error in errors:
        print(error, file=sys.stderr)
    if errors:
        print(f"docs-check: {len(errors)} problem(s)", file=sys.stderr)
        return 1
    docs = len(doc_files())
    flags = len(cli_flags())
    print(f"docs-check: OK ({docs} documents, {flags} CLI flags covered)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
