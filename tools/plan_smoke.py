#!/usr/bin/env python
"""CI smoke for the capacity planner (`repro.plan` + `/v1/plan`).

End-to-end over a real deployment:

1. prewarms a persistent table cache (``repro warmup``) for the two
   pool machines;
2. boots a real prediction service on that cache and solves a
   3-workload mix over a knl7210 + xeonmax9480 pool through
   ``POST /v1/plan``;
3. fails (non-zero exit) if the plan is infeasible, violates any plan
   invariant, differs from a direct in-process ``CapacityPlanner``
   solve of the same spec, or if serving the plan built **any** model
   table from scratch (the prewarmed deployment must plan with zero
   table builds — executor ``table_cache_misses`` stays 0; stores may
   be nonzero because newly memoized points merge back to disk).

Usage::

    PYTHONPATH=src python tools/plan_smoke.py [--table-cache DIR]
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile

MACHINES = ["knl7210", "xeonmax9480"]

SPEC = {
    "mix": [
        {"workload": "dgemm", "size_gb": 12.0, "num_threads": 64,
         "weight": 0.001},
        {"workload": "minife", "size_gb": 20.0, "num_threads": 64,
         "weight": 0.002},
        {"workload": "gups", "size_gb": 8.0, "num_threads": 32,
         "weight": 0.001},
    ],
    "pool": [
        {"machine": "knl7210", "nodes": 8},
        {"machine": "xeonmax9480", "nodes": 8},
    ],
    "objective": "runtime",
}


def run_smoke(table_cache_dir: str) -> dict:
    from repro.api.facade import Predictor
    from repro.api.plan import PlanRequest
    from repro.cli import main as cli_main
    from repro.plan import CapacityPlanner, check_plan
    from repro.serve.client import ServeClient
    from repro.serve.service import ServiceConfig
    from repro.serve.threadserver import ServerThread

    code = cli_main(
        ["--table-cache", table_cache_dir, "warmup", "--machines", *MACHINES]
    )
    assert code == 0, f"repro warmup exited {code}"

    request = PlanRequest.from_dict(SPEC)
    thread = ServerThread(ServiceConfig(table_cache_dir=table_cache_dir))
    host, port = thread.start()
    try:
        with ServeClient(host, port) as client:
            served = client.plan(request)
            metrics = client.metrics()
    finally:
        thread.stop()

    violations = check_plan(request, served)
    assert not violations, f"served plan violates invariants: {violations}"

    predictor = Predictor(table_cache_dir=table_cache_dir)
    try:
        direct = CapacityPlanner(predictor).plan(request)
    finally:
        predictor.close()
    assert served == direct, (
        "served plan differs from the direct in-process solve:\n"
        f"  served: {served.to_dict()}\n  direct: {direct.to_dict()}"
    )

    executor = metrics["executor"]
    assert executor["table_cache_misses"] == 0, (
        f"prewarmed service missed the table cache "
        f"{executor['table_cache_misses']} times (a miss = a table "
        "built from scratch)"
    )
    assert executor["table_cache_hits"] > 0, (
        "service never touched the table cache — the smoke is not "
        "exercising the prewarmed path"
    )
    return {
        "objective_value": served.objective_value,
        "assignments": [
            {"workload": a.item.workload, "machine": a.machine,
             "config": a.config}
            for a in served.assignments
        ],
        "table_cache_hits": executor["table_cache_hits"],
        "table_cache_misses": executor["table_cache_misses"],
        "table_cache_stores": executor["table_cache_stores"],
    }


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--table-cache",
        default=None,
        metavar="DIR",
        help="table-cache directory to prewarm and serve from "
        "(default: a fresh temporary directory)",
    )
    args = parser.parse_args(argv)
    try:
        if args.table_cache is not None:
            report = run_smoke(args.table_cache)
        else:
            with tempfile.TemporaryDirectory(
                prefix="repro-plan-smoke-"
            ) as tmp:
                report = run_smoke(tmp)
    except AssertionError as exc:
        print(f"[plan-smoke] FAIL: {exc}", file=sys.stderr)
        return 1
    print(json.dumps(report, indent=2, sort_keys=True))
    print(
        f"[plan-smoke] OK: feasible plan "
        f"(objective {report['objective_value']:.4g}), "
        f"{report['table_cache_hits']} table-cache hits, 0 misses",
        file=sys.stderr,
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
