#!/usr/bin/env python
"""CI smoke for the prediction service (`repro.serve`).

Boots a real server on a background thread, drives it with concurrent
clients over TCP, and fails (non-zero exit) if any request errors, the
p99 latency exceeds the bound, any served result differs from direct
scalar evaluation, or the invariant checker flags a served metric.

Usage::

    PYTHONPATH=src python tools/serve_smoke.py [--clients N]
        [--requests-per-client N] [--p99-bound-ms MS]

The defaults (50 clients x 4 requests = 200 concurrent queries) match
the CI serve-smoke job; the p99 bound is deliberately generous — it
exists to catch hangs and collapse, not to benchmark (BENCH_serve.json
does that).
"""

from __future__ import annotations

import argparse
import json
import sys


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--clients", type=int, default=50)
    parser.add_argument("--requests-per-client", type=int, default=4)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--p99-bound-ms", type=float, default=5000.0)
    parser.add_argument("--check-sample", type=int, default=16)
    args = parser.parse_args(argv)

    from repro.serve.loadgen import run_smoke

    try:
        report = run_smoke(
            clients=args.clients,
            requests_per_client=args.requests_per_client,
            workers=args.workers,
            p99_bound_ms=args.p99_bound_ms,
            check_sample=args.check_sample,
        )
    except AssertionError as exc:
        print(f"[serve-smoke] FAIL: {exc}", file=sys.stderr)
        return 1
    print(json.dumps(report, indent=2, sort_keys=True))
    print(
        f"[serve-smoke] OK: {report['phase']['requests']} requests, "
        f"p99 {report['phase']['p99_ms']:.1f} ms, "
        f"{report['invariant_audited']} runs audited, "
        f"{report['violations']} violations",
        file=sys.stderr,
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
