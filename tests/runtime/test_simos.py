"""SimulatedOS tests."""

import pytest

from repro.memory.allocator import Kind
from repro.memory.modes import MCDRAMConfig, MemorySystem
from repro.memory.numa import OutOfNodeMemory
from repro.runtime.simos import SimulatedOS
from repro.util.units import GiB


class TestConstruction:
    def test_default_is_cache_mode(self):
        assert SimulatedOS().memory.dram_fronted_by_cache

    def test_flat(self, flat_os):
        assert flat_os.memory.topology.num_nodes == 2

    def test_memory_and_config_exclusive(self):
        with pytest.raises(ValueError):
            SimulatedOS(
                MCDRAMConfig.flat(), memory=MemorySystem(MCDRAMConfig.cache())
            )


class TestAllocation:
    def test_numactl_string(self, flat_os):
        alloc = flat_os.malloc("x", GiB, numactl="--membind=1")
        assert alloc.split == {1: GiB}

    def test_hbm_capacity_failure(self, flat_os):
        """The missing-bar mechanism: > 16 GiB cannot membind to node 1."""
        with pytest.raises(OutOfNodeMemory):
            flat_os.malloc("x", 17 * GiB, numactl="--membind=1")

    def test_kind(self, flat_os):
        alloc = flat_os.malloc("x", GiB, kind=Kind.HBW)
        assert alloc.split == {1: GiB}

    def test_numactl_exclusive_with_kind(self, flat_os):
        with pytest.raises(ValueError):
            flat_os.malloc("x", GiB, kind=Kind.HBW, numactl="--membind=0")

    def test_free(self, flat_os):
        alloc = flat_os.malloc("x", GiB)
        flat_os.free(alloc)
        assert flat_os.allocator.used_bytes() == 0


class TestAllocationScope:
    def test_scope_releases(self, flat_os):
        with flat_os.allocation_scope():
            flat_os.malloc("x", 4 * GiB, numactl="--membind=1")
            assert flat_os.allocator.used_bytes(1) == 4 * GiB
        assert flat_os.allocator.used_bytes() == 0

    def test_scope_releases_on_error(self, flat_os):
        with pytest.raises(RuntimeError):
            with flat_os.allocation_scope():
                flat_os.malloc("x", GiB)
                raise RuntimeError("boom")
        assert flat_os.allocator.used_bytes() == 0

    def test_scope_preserves_outer_allocations(self, flat_os):
        outer = flat_os.malloc("outer", GiB)
        with flat_os.allocation_scope():
            flat_os.malloc("inner", GiB)
        assert flat_os.allocator.used_bytes() == GiB
        flat_os.free(outer)


class TestFacades:
    def test_openmp(self, flat_os):
        assert flat_os.openmp(128).threads_per_core == 2

    def test_numactl_hardware(self, cache_os):
        assert "96 GB" in cache_os.numactl_hardware()

    def test_describe(self, flat_os):
        text = flat_os.describe()
        assert "Xeon Phi" in text
        assert "flat" in text
