"""OpenMP environment tests."""

import pytest

from repro.machine.presets import knl7210
from repro.runtime.process import OpenMPEnvironment


@pytest.fixture(scope="module")
def machine():
    return knl7210()


class TestOpenMPEnvironment:
    @pytest.mark.parametrize("threads,tpc", [(64, 1), (128, 2), (192, 3), (256, 4)])
    def test_threads_per_core(self, machine, threads, tpc):
        env = OpenMPEnvironment(machine, threads)
        assert env.threads_per_core == tpc
        assert env.active_cores == 64

    def test_env_variables(self, machine):
        env = OpenMPEnvironment(machine, 128)
        assert env.env()["OMP_NUM_THREADS"] == "128"
        assert env.env()["OMP_PROC_BIND"] == "close"

    def test_over_capacity(self, machine):
        with pytest.raises(ValueError):
            OpenMPEnvironment(machine, 512)

    def test_only_compact(self, machine):
        with pytest.raises(ValueError):
            OpenMPEnvironment(machine, 64, affinity="scatter")
