"""numactl emulation tests."""

import pytest

from repro.memory.modes import MCDRAMConfig, MemorySystem
from repro.memory.policy import DefaultLocal, Interleave, Membind, Preferred
from repro.runtime.numactl import Numactl, NumactlError


@pytest.fixture()
def flat_topo():
    return MemorySystem(MCDRAMConfig.flat()).topology


@pytest.fixture()
def cache_topo():
    return MemorySystem(MCDRAMConfig.cache()).topology


class TestParse:
    def test_membind(self, flat_topo):
        n = Numactl.parse(flat_topo, "--membind=1")
        assert isinstance(n.policy, Membind)
        assert n.policy.node_id == 1

    def test_preferred(self, flat_topo):
        n = Numactl.parse(flat_topo, "--preferred=0")
        assert isinstance(n.policy, Preferred)

    def test_interleave(self, flat_topo):
        n = Numactl.parse(flat_topo, "--interleave=0,1")
        assert isinstance(n.policy, Interleave)
        assert n.policy.node_ids == (0, 1)

    def test_empty_is_default_local(self, flat_topo):
        assert isinstance(Numactl.parse(flat_topo, "").policy, DefaultLocal)

    def test_whitespace_tolerated(self, flat_topo):
        assert Numactl.parse(flat_topo, "  --membind=0  ").policy == Membind(0)

    def test_unknown_node_fails_like_hardware(self, cache_topo):
        """Binding to the HBM node in cache mode fails — there is no node 1."""
        with pytest.raises(NumactlError, match="node 1 does not exist"):
            Numactl.parse(cache_topo, "--membind=1")

    @pytest.mark.parametrize(
        "bad",
        ["--membind", "--membind=a", "--frobnicate=1", "membind=0",
         "--membind=0,1", "--preferred=0,1"],
    )
    def test_malformed_rejected(self, flat_topo, bad):
        with pytest.raises(NumactlError):
            Numactl.parse(flat_topo, bad)


class TestHardware:
    def test_table2_flat(self, flat_topo):
        text = Numactl.parse(flat_topo, "").hardware()
        assert "0 (96 GB)" in text and "1 (16 GB)" in text

    def test_describe(self, flat_topo):
        assert Numactl.parse(flat_topo, "--membind=1").describe() == (
            "numactl --membind=1"
        )


class TestRoundTrip:
    def test_describe_reparses(self, flat_topo):
        """numactl policy strings round-trip: parse(describe(p)) == p."""
        from repro.memory.policy import Interleave, Membind, Preferred

        for policy in (Membind(0), Membind(1), Preferred(1), Interleave((0, 1))):
            command = policy.describe()
            assert Numactl.parse(flat_topo, command).policy == policy
