"""Process lifecycle on the simulated OS: boot, bind, allocate, OOM.

Walks the sequence an experiment run performs — boot a node in one
MCDRAM mode, build the OpenMP environment, allocate under a numactl
policy — and pins the failure mode at the heart of the paper's Section
III-C: a strict ``--membind=1`` (flat HBM) allocation beyond 16 GiB
must raise :class:`~repro.memory.numa.OutOfNodeMemory`, never spill.
"""

from __future__ import annotations

import pytest

from repro.memory.modes import MCDRAMConfig
from repro.memory.numa import OutOfNodeMemory
from repro.runtime.simos import SimulatedOS

GIB = 1 << 30


@pytest.fixture()
def flat_node():
    return SimulatedOS(MCDRAMConfig.flat())


def test_boot_bind_run_teardown(flat_node):
    env = flat_node.openmp(128)
    assert env.num_threads == 128
    assert env.threads_per_core == 2
    with flat_node.allocation_scope():
        table = flat_node.malloc("table", 8 * GIB, numactl="--membind=1")
        assert table.fraction_on(1) == 1.0
        assert flat_node.allocator.used_bytes(1) == 8 * GIB
    # Scope exit frees everything allocated inside it.
    assert flat_node.allocator.used_bytes(1) == 0
    assert flat_node.allocator.live_allocations == []


def test_hbm_bind_over_capacity_raises_not_spills(flat_node):
    with pytest.raises(OutOfNodeMemory):
        flat_node.malloc("too-big", 17 * GIB, numactl="--membind=1")
    # The failed allocation reserved nothing anywhere.
    assert flat_node.allocator.used_bytes(0) == 0
    assert flat_node.allocator.used_bytes(1) == 0


def test_hbm_fills_then_next_allocation_ooms(flat_node):
    with flat_node.allocation_scope():
        flat_node.malloc("first", 12 * GIB, numactl="--membind=1")
        with pytest.raises(OutOfNodeMemory):
            flat_node.malloc("second", 8 * GIB, numactl="--membind=1")
        # The survivor is intact; only the failed malloc was rejected.
        assert flat_node.allocator.used_bytes(1) == 12 * GIB
    assert flat_node.allocator.used_bytes(1) == 0


def test_dram_bind_over_capacity_raises(flat_node):
    with pytest.raises(OutOfNodeMemory):
        flat_node.malloc("huge", 100 * GIB, numactl="--membind=0")


def test_preferred_policy_spills_instead_of_failing(flat_node):
    with flat_node.allocation_scope():
        spilled = flat_node.malloc("spill", 20 * GIB, numactl="--preferred=1")
        assert 0.0 < spilled.fraction_on(1) < 1.0
        assert spilled.fraction_on(0) + spilled.fraction_on(1) == pytest.approx(1.0)


def test_cache_mode_has_no_hbm_node(flat_node):
    cache_node = SimulatedOS(MCDRAMConfig.cache())
    assert cache_node.memory.flat_hbm_bytes == 0
    with pytest.raises(Exception):
        cache_node.malloc("hbm", GIB, numactl="--membind=1")
    # Rebooting modes is a new instance; the flat node is untouched.
    assert flat_node.memory.flat_hbm_bytes == 16 * GIB


def test_double_free_is_rejected(flat_node):
    allocation = flat_node.malloc("once", GIB, numactl="--membind=0")
    flat_node.free(allocation)
    with pytest.raises(ValueError, match="not live"):
        flat_node.free(allocation)
