"""Guideline rule tests."""

import pytest

from repro.core.guidelines import GUIDELINES, applicable_guidelines
from repro.engine.profilephase import AccessPattern
from repro.util.units import GiB


def ids(pattern, footprint, tpc):
    return {
        g.rule_id for g in applicable_guidelines(pattern, footprint, tpc)
    }


class TestSelection:
    def test_sequential_fitting(self):
        got = ids(AccessPattern.SEQUENTIAL, 8 * GiB, 1)
        assert "seq-fits-hbm" in got
        assert "use-hyperthreads-on-hbm" in got
        assert "seq-oversized" not in got

    def test_sequential_comparable(self):
        got = ids(AccessPattern.SEQUENTIAL, 20 * GiB, 1)
        assert "seq-comparable" in got
        assert "decompose-to-hbm" in got

    def test_sequential_oversized(self):
        got = ids(AccessPattern.SEQUENTIAL, 40 * GiB, 1)
        assert "seq-oversized" in got
        assert "seq-comparable" not in got

    def test_random_single_thread(self):
        got = ids(AccessPattern.RANDOM, 8 * GiB, 1)
        assert "rand-single-thread" in got
        assert "rand-multi-thread-fits" not in got

    def test_random_multi_thread(self):
        got = ids(AccessPattern.RANDOM, 8 * GiB, 4)
        assert "rand-multi-thread-fits" in got
        assert "rand-single-thread" not in got

    def test_random_oversized(self):
        got = ids(AccessPattern.RANDOM, 35 * GiB, 2)
        assert "rand-oversized" in got

    def test_every_guideline_reachable(self):
        reachable = set()
        for pattern in AccessPattern:
            for footprint in (GiB, 20 * GiB, 40 * GiB):
                for tpc in (1, 2, 4):
                    reachable |= ids(pattern, footprint, tpc)
        assert reachable == {g.rule_id for g in GUIDELINES}

    def test_validation(self):
        with pytest.raises(ValueError):
            applicable_guidelines(AccessPattern.RANDOM, -1, 1)
        with pytest.raises(ValueError):
            applicable_guidelines(AccessPattern.RANDOM, GiB, 0)

    def test_all_guidelines_cite_the_paper(self):
        for g in GUIDELINES:
            assert g.paper_basis
            assert g.advice
