"""Decomposition sizing tests (Section IV-C guideline)."""

import pytest

from repro.core.configs import ConfigName
from repro.core.decomposition import (
    decompose,
    hbm_knee,
    parallel_efficiency,
    sweep_node_counts,
)
from repro.workloads.minife import MiniFE


class TestParallelEfficiency:
    def test_single_node_perfect(self):
        assert parallel_efficiency(1) == 1.0

    def test_decreasing(self):
        effs = [parallel_efficiency(n) for n in (1, 2, 4, 8, 16)]
        assert effs == sorted(effs, reverse=True)

    def test_bounded(self):
        assert 0.9 < parallel_efficiency(1024) <= 1.0 or parallel_efficiency(
            1024
        ) > 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            parallel_efficiency(0)
        with pytest.raises(ValueError):
            parallel_efficiency(4, comm_fraction=2.0)


class TestDecompose:
    def test_infeasible_when_too_few_nodes(self, runner):
        point = decompose(MiniFE.from_matrix_gb, 96.0, 1, runner=runner)
        assert not point.feasible
        assert point.aggregate_metric is None

    def test_config_shifts_with_node_count(self, runner):
        four = decompose(MiniFE.from_matrix_gb, 96.0, 4, runner=runner)
        eight = decompose(MiniFE.from_matrix_gb, 96.0, 8, runner=runner)
        assert four.best_config in (ConfigName.DRAM, ConfigName.CACHE)
        assert eight.best_config is ConfigName.HBM

    def test_aggregate_accounting(self, runner):
        point = decompose(MiniFE.from_matrix_gb, 64.0, 8, runner=runner)
        assert point.aggregate_metric == pytest.approx(
            8 * point.per_node_metric * point.parallel_efficiency
        )

    def test_validation(self, runner):
        with pytest.raises(ValueError):
            decompose(MiniFE.from_matrix_gb, -1.0, 2, runner=runner)


class TestSweepAndKnee:
    def test_knee_is_first_fitting(self, runner):
        points = sweep_node_counts(
            MiniFE.from_matrix_gb, 96.0, [2, 4, 6, 8, 12], runner=runner
        )
        knee = hbm_knee(points)
        assert knee is not None
        assert knee.per_node_gb <= 16.0
        assert all(
            p.per_node_gb > 16.0 for p in points if p.nodes < knee.nodes
        )

    def test_no_knee_when_everything_oversized(self, runner):
        points = sweep_node_counts(
            MiniFE.from_matrix_gb, 96.0, [2, 4], runner=runner
        )
        assert hbm_knee(points) is None

    def test_empty_counts_rejected(self, runner):
        with pytest.raises(ValueError):
            sweep_node_counts(MiniFE.from_matrix_gb, 96.0, [], runner=runner)
