"""Property-based invariants for the cache key and the engine.

* equal workload parameters => equal cache key,
* any single-parameter perturbation => a different key,
* HBM-flat ``--membind=1`` allocations over the 16 GiB MCDRAM node always
  come back infeasible (the Fig. 4 missing-bar behaviour), whatever the
  size or thread count.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.configs import ConfigName, make_config
from repro.core.executor import SweepExecutor, cache_key
from repro.core.runner import ExperimentRunner
from repro.machine.presets import knl7210
from repro.util.units import GiB
from repro.workloads.gups import GUPS
from repro.workloads.stream import StreamBenchmark

MACHINE = knl7210()
DRAM = make_config(ConfigName.DRAM)
HBM = make_config(ConfigName.HBM)
HBM_CAPACITY = 16 * GiB

sizes = st.integers(min_value=10**6, max_value=10**11)
threads = st.sampled_from([1, 64, 128, 192, 256])


class TestKeyInvariants:
    @given(size=sizes, n=threads)
    @settings(max_examples=50, deadline=None)
    def test_equal_params_equal_key(self, size, n):
        a = StreamBenchmark(size_bytes=size)
        b = StreamBenchmark(size_bytes=size)
        assert cache_key(MACHINE, a, DRAM, n) == cache_key(MACHINE, b, DRAM, n)

    @given(size=sizes, delta=st.integers(min_value=1, max_value=10**9), n=threads)
    @settings(max_examples=50, deadline=None)
    def test_size_perturbation_changes_key(self, size, delta, n):
        a = StreamBenchmark(size_bytes=size)
        b = StreamBenchmark(size_bytes=size + delta)
        assert cache_key(MACHINE, a, DRAM, n) != cache_key(MACHINE, b, DRAM, n)

    @given(size=sizes, ntimes=st.integers(min_value=1, max_value=9))
    @settings(max_examples=25, deadline=None)
    def test_secondary_param_perturbation_changes_key(self, size, ntimes):
        a = StreamBenchmark(size_bytes=size, ntimes=10)
        b = StreamBenchmark(size_bytes=size, ntimes=ntimes)
        assert cache_key(MACHINE, a, DRAM, 64) != cache_key(MACHINE, b, DRAM, 64)

    @given(log2=st.integers(min_value=20, max_value=34), n=threads)
    @settings(max_examples=25, deadline=None)
    def test_workload_identity_in_key(self, log2, n):
        gups = GUPS(log2_entries=log2)
        stream = StreamBenchmark(size_bytes=gups.footprint_bytes)
        assert cache_key(MACHINE, gups, DRAM, n) != cache_key(
            MACHINE, stream, DRAM, n
        )


class TestHBMCapacityInvariant:
    @pytest.fixture(scope="class")
    def executor(self):
        return SweepExecutor(ExperimentRunner(MACHINE))

    # STREAM's three arrays quantize the footprint to 24-byte multiples,
    # so the first size guaranteed to overflow the node is capacity + 24.
    @given(
        size=st.integers(min_value=HBM_CAPACITY + 24, max_value=10**11),
        n=threads,
    )
    @settings(max_examples=25, deadline=None)
    def test_membind_over_capacity_always_infeasible(self, executor, size, n):
        workload = StreamBenchmark(size_bytes=size)
        assert workload.footprint_bytes > HBM_CAPACITY
        record = executor.run(workload, HBM, n)
        assert record.metric is None
        assert record.infeasible_reason is not None
        assert "does not fit" in record.infeasible_reason

    @given(size=st.integers(min_value=24, max_value=HBM_CAPACITY))
    @settings(max_examples=25, deadline=None)
    def test_membind_within_capacity_feasible(self, executor, size):
        workload = StreamBenchmark(size_bytes=size)
        assert workload.footprint_bytes <= HBM_CAPACITY
        record = executor.run(workload, HBM, 64)
        assert record.metric is not None
        assert record.infeasible_reason is None
