"""Sweep tests."""

import pytest

from repro.core.configs import ConfigName, make_config
from repro.core.sweep import resolve_configs, size_sweep, thread_sweep
from repro.workloads.stream import StreamBenchmark


class TestSizeSweep:
    def test_shape(self, runner):
        rs = size_sweep(
            runner,
            lambda gb: StreamBenchmark(size_bytes=int(gb * 1e9)),
            [2.0, 20.0],
        )
        assert rs.xs == [2.0, 20.0]
        assert len(rs.records) == 6

    def test_hbm_missing_beyond_capacity(self, runner):
        rs = size_sweep(
            runner,
            lambda gb: StreamBenchmark(size_bytes=int(gb * 1e9)),
            [2.0, 20.0],
        )
        assert rs.value(2.0, ConfigName.HBM) is not None
        assert rs.value(20.0, ConfigName.HBM) is None

    def test_empty_sizes_rejected(self, runner):
        with pytest.raises(ValueError):
            size_sweep(runner, lambda gb: StreamBenchmark(size_bytes=1000), [])

    def test_custom_configs(self, runner):
        rs = size_sweep(
            runner,
            lambda gb: StreamBenchmark(size_bytes=int(gb * 1e9)),
            [1.0],
            configs=[ConfigName.DRAM],
        )
        assert rs.configs == [ConfigName.DRAM]


class TestSweepValidation:
    def test_duplicate_configs_rejected(self, runner):
        with pytest.raises(ValueError, match="duplicate configuration"):
            size_sweep(
                runner,
                lambda gb: StreamBenchmark(size_bytes=int(gb * 1e9)),
                [1.0],
                configs=[ConfigName.DRAM, ConfigName.DRAM],
            )

    def test_duplicate_mixed_form_configs_rejected(self, runner):
        """A name and its resolved config are the same sweep column."""
        with pytest.raises(ValueError, match="duplicate configuration"):
            thread_sweep(
                runner,
                StreamBenchmark(size_bytes=1000),
                [64],
                configs=[make_config(ConfigName.HBM), ConfigName.HBM],
            )

    def test_duplicate_sizes_rejected(self, runner):
        with pytest.raises(ValueError, match="duplicate sweep point"):
            size_sweep(
                runner,
                lambda gb: StreamBenchmark(size_bytes=int(gb * 1e9)),
                [2.0, 4.0, 2.0],
            )

    def test_duplicate_threads_rejected(self, runner):
        with pytest.raises(ValueError, match="duplicate sweep point"):
            thread_sweep(runner, StreamBenchmark(size_bytes=1000), [64, 64])

    def test_empty_configs_rejected(self, runner):
        with pytest.raises(ValueError, match="non-empty"):
            size_sweep(
                runner,
                lambda gb: StreamBenchmark(size_bytes=int(gb * 1e9)),
                [1.0],
                configs=[],
            )

    def test_resolve_configs_resolves_names_once(self):
        resolved = resolve_configs([ConfigName.DRAM, ConfigName.HBM])
        assert [c.name for c in resolved] == [ConfigName.DRAM, ConfigName.HBM]
        assert all(hasattr(c, "numactl") for c in resolved)

    def test_resolve_configs_default_is_paper_trio(self):
        assert [c.name for c in resolve_configs(None)] == list(
            ConfigName.paper_trio()
        )


class TestSweepThroughExecutor:
    def test_size_sweep_identical_via_executor(self, machine):
        from repro.core.executor import SweepExecutor
        from repro.core.runner import ExperimentRunner

        factory = lambda gb: StreamBenchmark(size_bytes=int(gb * 1e9))
        serial = size_sweep(ExperimentRunner(machine), factory, [2.0, 20.0])
        with SweepExecutor(ExperimentRunner(machine), jobs=2) as executor:
            parallel = size_sweep(executor, factory, [2.0, 20.0])
        assert [r for _, r in serial.records] == [r for _, r in parallel.records]


class TestThreadSweep:
    def test_shape(self, runner):
        rs = thread_sweep(
            runner, StreamBenchmark(size_bytes=int(4e9)), [64, 128]
        )
        assert rs.xs == [64.0, 128.0]

    def test_hbm_bandwidth_grows_with_threads(self, runner):
        rs = thread_sweep(
            runner, StreamBenchmark(size_bytes=int(4e9)), [64, 128]
        )
        assert rs.value(128.0, ConfigName.HBM) > rs.value(64.0, ConfigName.HBM)

    def test_empty_threads_rejected(self, runner):
        with pytest.raises(ValueError):
            thread_sweep(runner, StreamBenchmark(size_bytes=1000), [])
