"""Sweep tests."""

import pytest

from repro.core.configs import ConfigName
from repro.core.sweep import size_sweep, thread_sweep
from repro.workloads.stream import StreamBenchmark


class TestSizeSweep:
    def test_shape(self, runner):
        rs = size_sweep(
            runner,
            lambda gb: StreamBenchmark(size_bytes=int(gb * 1e9)),
            [2.0, 20.0],
        )
        assert rs.xs == [2.0, 20.0]
        assert len(rs.records) == 6

    def test_hbm_missing_beyond_capacity(self, runner):
        rs = size_sweep(
            runner,
            lambda gb: StreamBenchmark(size_bytes=int(gb * 1e9)),
            [2.0, 20.0],
        )
        assert rs.value(2.0, ConfigName.HBM) is not None
        assert rs.value(20.0, ConfigName.HBM) is None

    def test_empty_sizes_rejected(self, runner):
        with pytest.raises(ValueError):
            size_sweep(runner, lambda gb: StreamBenchmark(size_bytes=1000), [])

    def test_custom_configs(self, runner):
        rs = size_sweep(
            runner,
            lambda gb: StreamBenchmark(size_bytes=int(gb * 1e9)),
            [1.0],
            configs=[ConfigName.DRAM],
        )
        assert rs.configs == [ConfigName.DRAM]


class TestThreadSweep:
    def test_shape(self, runner):
        rs = thread_sweep(
            runner, StreamBenchmark(size_bytes=int(4e9)), [64, 128]
        )
        assert rs.xs == [64.0, 128.0]

    def test_hbm_bandwidth_grows_with_threads(self, runner):
        rs = thread_sweep(
            runner, StreamBenchmark(size_bytes=int(4e9)), [64, 128]
        )
        assert rs.value(128.0, ConfigName.HBM) > rs.value(64.0, ConfigName.HBM)

    def test_empty_threads_rejected(self, runner):
        with pytest.raises(ValueError):
            thread_sweep(runner, StreamBenchmark(size_bytes=1000), [])
